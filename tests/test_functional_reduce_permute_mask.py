"""Reductions, slides/gathers, and MASKU operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.vec_utils import VecEnv

RNG = np.random.default_rng(17)


def _env(vl=21, sew=64, lmul=1):
    return VecEnv(vl, sew=sew, lmul=lmul)


class TestFpReductions:
    def test_vfredusum(self):
        env = _env()
        a = env.rand_f64(RNG)
        env.set_v(8, a)
        env.set_v(16, np.array([2.0]), emul=1)  # seed
        env.run("vfredusum_vs", "v24", "v8", "v16")
        assert np.isclose(env.get_v(24, count=1)[0], 2.0 + a.sum())

    def test_vfredmax_with_seed_dominant(self):
        env = _env()
        a = env.rand_f64(RNG, -10, 10)
        env.set_v(8, a)
        env.set_v(16, np.array([1e9]), emul=1)
        env.run("vfredmax_vs", "v24", "v8", "v16")
        assert env.get_v(24, count=1)[0] == 1e9

    def test_vfredmin(self):
        env = _env()
        a = env.rand_f64(RNG)
        env.set_v(8, a)
        env.set_v(16, np.array([np.inf]), emul=1)
        env.run("vfredmin_vs", "v24", "v8", "v16")
        assert env.get_v(24, count=1)[0] == a.min()

    def test_masked_reduction_skips_inactive(self):
        env = _env(vl=4)
        env.set_mask(0, [True, False, True, False])
        env.set_v(8, np.array([1.0, 100.0, 2.0, 100.0]))
        env.set_v(16, np.array([0.0]), emul=1)
        env.run("vfredusum_vs", "v24", "v8", "v16", masked=True)
        assert env.get_v(24, count=1)[0] == 3.0


class TestIntReductions:
    def test_vredsum_wraps(self):
        env = _env(vl=3)
        env.set_v(8, np.array([2**62, 2**62, 2**62], dtype=np.int64))
        env.set_v(16, np.array([0], dtype=np.int64), emul=1)
        env.run("vredsum_vs", "v24", "v8", "v16")
        total = (3 * 2**62) % 2**64
        expected = total - 2**64 if total >= 2**63 else total
        assert int(env.get_v(24, count=1, dtype=np.int64)[0]) == expected

    @pytest.mark.parametrize("mn,func", [
        ("vredand_vs", np.bitwise_and.reduce),
        ("vredor_vs", np.bitwise_or.reduce),
        ("vredxor_vs", np.bitwise_xor.reduce)])
    def test_bitwise_reductions(self, mn, func):
        env = _env(vl=9)
        a = env.rand_int(RNG, np.uint64)
        seed = np.array([0xFF], dtype=np.uint64)
        env.set_v(8, a)
        env.set_v(16, seed, emul=1)
        env.run(mn, "v24", "v8", "v16")
        npop = {"vredand_vs": np.bitwise_and, "vredor_vs": np.bitwise_or,
                "vredxor_vs": np.bitwise_xor}[mn]
        assert env.get_v(24, count=1, dtype=np.uint64)[0] == \
            npop(seed[0], func(a))


class TestSlides:
    def test_vslide1down(self):
        env = _env(vl=4)
        env.set_v(8, np.array([1.0, 2.0, 3.0, 4.0]))
        env.state.f.write(1, 9.0)
        event = env.run("vfslide1down_vf", "v16", "v8", "f1")
        assert np.array_equal(env.get_v(16), [2.0, 3.0, 4.0, 9.0])
        assert event.slide_amount == 1

    def test_vslide1up(self):
        env = _env(vl=4)
        env.set_v(8, np.array([1.0, 2.0, 3.0, 4.0]))
        env.state.f.write(1, 9.0)
        env.run("vfslide1up_vf", "v16", "v8", "f1")
        assert np.array_equal(env.get_v(16), [9.0, 1.0, 2.0, 3.0])

    def test_vslideup_keeps_low_elements(self):
        env = _env(vl=5)
        env.set_v(8, np.arange(5, dtype=np.uint64))
        env.set_v(16, np.full(5, 77, dtype=np.uint64))
        env.state.x.write(3, 2)
        env.run("vslideup_vx", "v16", "v8", "x3")
        assert np.array_equal(env.get_v(16, dtype=np.uint64),
                              [77, 77, 0, 1, 2])

    def test_vslidedown_zero_fills_past_group(self):
        env = VecEnv(8, sew=64, lmul=1, vlen_bits=512)  # vlmax = 8
        env.set_v(8, np.arange(8, dtype=np.uint64))
        env.state.x.write(3, 5)
        env.run("vslidedown_vx", "v16", "v8", "x3")
        assert np.array_equal(env.get_v(16, dtype=np.uint64),
                              [5, 6, 7, 0, 0, 0, 0, 0])

    def test_int_slide1down_vx(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1, 2, 3], dtype=np.int64))
        env.state.x.write(3, -7)
        env.run("vslide1down_vx", "v16", "v8", "x3")
        assert np.array_equal(env.get_v(16, dtype=np.int64), [2, 3, -7])

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_slideup_property(self, vl, offset):
        env = VecEnv(vl)
        src = np.arange(vl, dtype=np.uint64)
        dest = np.full(vl, 99, dtype=np.uint64)
        env.set_v(8, src)
        env.set_v(16, dest)
        env.state.x.write(3, offset)
        env.run("vslideup_vx", "v16", "v8", "x3")
        got = env.get_v(16, dtype=np.uint64)
        for i in range(vl):
            if i < offset:
                assert got[i] == 99
            else:
                assert got[i] == src[i - offset]


class TestGatherCompress:
    def test_vrgather(self):
        env = _env(vl=4)
        env.set_v(8, np.array([10.0, 11.0, 12.0, 13.0]))
        env.set_v(16, np.array([3, 3, 0, 500], dtype=np.uint64))
        env.run("vrgather_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24), [13.0, 13.0, 10.0, 0.0])

    def test_vcompress(self):
        env = _env(vl=5)
        env.set_v(8, np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        env.set_mask(3, [True, False, True, False, True])
        env.set_v(24, np.full(5, -1.0))
        env.run("vcompress_vm", "v24", "v8", "v3")
        assert np.array_equal(env.get_v(24), [1.0, 3.0, 5.0, -1.0, -1.0])


class TestMaskUnit:
    def test_logical_ops(self):
        env = _env(vl=8)
        a = np.array([1, 1, 0, 0, 1, 0, 1, 0], dtype=bool)
        b = np.array([1, 0, 1, 0, 0, 1, 1, 0], dtype=bool)
        env.set_mask(4, a)
        env.set_mask(5, b)
        env.run("vmand_mm", "v6", "v4", "v5")
        assert np.array_equal(env.get_mask(6), a & b)
        env.run("vmnor_mm", "v7", "v4", "v5")
        assert np.array_equal(env.get_mask(7), ~(a | b))
        env.run("vmandn_mm", "v2", "v4", "v5")
        assert np.array_equal(env.get_mask(2), a & ~b)

    def test_vcpop_and_vfirst(self):
        env = _env(vl=10)
        bits = np.array([0, 0, 1, 0, 1, 1, 0, 0, 0, 1], dtype=bool)
        env.set_mask(4, bits)
        env.run("vcpop_m", "x5", "v4")
        env.run("vfirst_m", "x6", "v4")
        assert env.state.x.read(5) == 4
        assert env.state.x.read(6) == 2

    def test_vfirst_empty_is_minus_one(self):
        env = _env(vl=6)
        env.set_mask(4, np.zeros(6, dtype=bool))
        env.run("vfirst_m", "x6", "v4")
        assert env.state.x.read(6) == -1

    def test_set_before_including_only_first(self):
        env = _env(vl=6)
        env.set_mask(4, [False, False, True, False, True, False])
        env.run("vmsbf_m", "v5", "v4")
        env.run("vmsif_m", "v6", "v4")
        env.run("vmsof_m", "v7", "v4")
        assert np.array_equal(env.get_mask(5), [1, 1, 0, 0, 0, 0])
        assert np.array_equal(env.get_mask(6), [1, 1, 1, 0, 0, 0])
        assert np.array_equal(env.get_mask(7), [0, 0, 1, 0, 0, 0])

    def test_viota_exclusive_prefix(self):
        env = _env(vl=6)
        env.set_mask(4, [True, False, True, True, False, True])
        env.run("viota_m", "v8", "v4")
        assert np.array_equal(env.get_v(8, dtype=np.uint64),
                              [0, 1, 1, 2, 3, 3])
