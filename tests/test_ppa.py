"""PPA models vs the paper's published numbers (Fig 9, Tables II/III)."""

import pytest

from repro.eval.fig9_area import PAPER_FIG9
from repro.eval.table2_area import PAPER_TABLE2
from repro.eval.table3_ppa import PAPER_TABLE3
from repro.kernels import build_fmatmul
from repro.params import Ara2Config, AraXLConfig
from repro.ppa import (ara2_area, araxl_area, kge_to_mm2, max_frequency_ghz,
                       power_watts, ppa_point)
from repro.ppa.area import clusters_row_kge


class TestAreaVsFig9:
    def test_ara2_components_within_2pct(self):
        row = ara2_area(16).fig9_row()
        paper = PAPER_FIG9["16L-Ara2"]
        for comp in ("LANES", "MASKU", "SLDU", "VLSU", "SEQ+DISP"):
            assert row[comp] == pytest.approx(paper[comp], rel=0.02), comp

    def test_araxl_components_within_3pct(self):
        row = araxl_area(16).fig9_row()
        paper = PAPER_FIG9["16L-AraXL"]
        for comp in ("LANES", "MASKU", "SLDU", "VLSU", "SEQ+DISP"):
            assert row[comp] == pytest.approx(paper[comp], rel=0.03), comp

    def test_totals(self):
        assert ara2_area(16).total_kge == pytest.approx(14773, rel=0.01)
        assert araxl_area(16).total_kge == pytest.approx(12641, rel=0.01)

    def test_a2a_reduction_58pct(self):
        reduction = 1 - araxl_area(16).a2a_units_kge \
            / ara2_area(16).a2a_units_kge
        assert reduction == pytest.approx(0.58, abs=0.03)

    def test_total_reduction_14pct(self):
        reduction = 1 - araxl_area(16).total_kge / ara2_area(16).total_kge
        assert reduction == pytest.approx(0.14, abs=0.02)

    def test_ara2_a2a_grows_superlinearly(self):
        per_lane_8 = ara2_area(8).a2a_units_kge / 8
        per_lane_32 = ara2_area(32).a2a_units_kge / 32
        assert per_lane_32 > 2 * per_lane_8

    def test_araxl_scales_linearly(self):
        assert araxl_area(64).total_kge \
            == pytest.approx(3.8 * araxl_area(16).total_kge, rel=0.02)


class TestAreaVsTable2:
    @pytest.mark.parametrize("lanes", [16, 32, 64])
    def test_rows_within_tolerance(self, lanes):
        b = araxl_area(lanes)
        paper = PAPER_TABLE2[lanes]
        assert clusters_row_kge(b) == pytest.approx(paper["Clusters"],
                                                    rel=0.01)
        assert b.component("glsu") == pytest.approx(paper["GLSU"], rel=0.05)
        assert b.component("ringi") == pytest.approx(paper["RINGI"], rel=0.15)
        assert b.component("reqi") == pytest.approx(paper["REQI"], rel=0.15)
        assert b.total_kge == pytest.approx(paper["TOTAL"], rel=0.01)

    def test_interfaces_are_three_percent(self):
        b = araxl_area(64)
        frac = (b.component("glsu") + b.component("ringi")
                + b.component("reqi")) / b.total_kge
        assert frac == pytest.approx(0.03, abs=0.01)

    def test_doubling_lanes_doubles_area(self):
        for small, big in ((16, 32), (32, 64)):
            ratio = araxl_area(big).total_kge / araxl_area(small).total_kge
            assert 1.85 <= ratio <= 2.05


class TestFrequency:
    def test_paper_corner_points(self):
        assert max_frequency_ghz(Ara2Config(lanes=16)) \
            == pytest.approx(1.08, abs=0.01)
        assert max_frequency_ghz(AraXLConfig(lanes=16)) == 1.40
        assert max_frequency_ghz(AraXLConfig(lanes=32)) == 1.40
        assert max_frequency_ghz(AraXLConfig(lanes=64)) \
            == pytest.approx(1.15, abs=0.02)

    def test_small_ara2_reaches_cluster_frequency(self):
        assert max_frequency_ghz(Ara2Config(lanes=4)) == 1.40

    def test_ara2_monotone_decreasing(self):
        freqs = [max_frequency_ghz(Ara2Config(lanes=n))
                 for n in (4, 8, 16, 32)]
        assert freqs == sorted(freqs, reverse=True)


class TestPowerAndTable3:
    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for config in (Ara2Config(lanes=16), AraXLConfig(lanes=16),
                       AraXLConfig(lanes=32), AraXLConfig(lanes=64)):
            run = build_fmatmul(config, 512, m=16, k=64)
            out[config.name] = (config, run.run(config, verify=False).timing)
        return out

    @pytest.mark.parametrize("machine", ["16L-Ara2", "16L-AraXL",
                                         "32L-AraXL", "64L-AraXL"])
    def test_table3_rows_within_10pct(self, reports, machine):
        config, report = reports[machine]
        pt = ppa_point(config, report)
        paper = PAPER_TABLE3[machine]
        assert pt.gflops == pytest.approx(paper["gflops"], rel=0.10)
        assert pt.gflops_per_watt == pytest.approx(paper["gflops_w"],
                                                   rel=0.10)
        assert pt.gflops_per_mm2 == pytest.approx(paper["gflops_mm2"],
                                                  rel=0.10)

    def test_araxl_beats_ara2_efficiency_by_30pct(self, reports):
        cfg2, rep2 = reports["16L-Ara2"]
        cfgx, repx = reports["16L-AraXL"]
        eff2 = ppa_point(cfg2, rep2).gflops_per_watt
        effx = ppa_point(cfgx, repx).gflops_per_watt
        assert effx / eff2 == pytest.approx(1.30, abs=0.10)

    def test_power_splits_idle_and_active(self, reports):
        config, report = reports["16L-AraXL"]
        est = power_watts(config, report, 1.4)
        assert est.idle_watts > 0 and est.active_watts > 0
        assert est.total_watts == est.idle_watts + est.active_watts

    def test_power_scales_with_frequency(self, reports):
        config, report = reports["16L-AraXL"]
        slow = power_watts(config, report, 0.7).total_watts
        fast = power_watts(config, report, 1.4).total_watts
        assert fast == pytest.approx(2 * slow, rel=1e-6)


class TestUnits:
    def test_kge_to_mm2_matches_table3_density(self):
        # 12641 kGE at ~17.4 GFLOPs/mm2 and 44.3 GFLOPs -> ~2.55 mm2
        assert kge_to_mm2(12641) == pytest.approx(2.55, abs=0.05)
