"""Property tests for the v6 columnar trace packing.

Two families of guarantees:

* **Round-trip** — randomized traces spanning every event kind (plus
  the deliberate edge cases: empty traces, max-``vl``, mixed LMUL,
  scalar-only streams, and events that must take the pickled-fallback
  path) unpack to an event stream with identical contents and
  aggregate counters.
* **Replay identity** — replaying the packed form of a real captured
  trace produces a byte-identical ``TimingReport`` to replaying the
  object form, on every machine in the registry, for both the
  vectorized and the reference replay loops.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.functional.trace import (DynamicTrace, MemAccess, ScalarEvent,
                                    VectorEvent, VsetvlEvent)
from repro.functional.trace_pack import (MAGIC, PackedTrace, pack_trace,
                                         unpack_trace)
from repro.isa.instructions import MemPattern
from repro.kernels import build_fmatmul
from repro.machine.registry import get_machine, list_machines
from repro.params import Ara2Config
from repro.sim.simulator import build_model
from repro.timing.engine import TimingEngine

_I64_MAX = (1 << 63) - 1


class OddballEvent:
    """A foreign event class: must survive via the fallback map."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, OddballEvent) and self.tag == other.tag


@pytest.fixture(scope="module")
def capture():
    cfg = Ara2Config(lanes=4)
    run = build_fmatmul(cfg, 64, m=8, k=16)
    return run.capture(cfg, verify=False)


def _events_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, ScalarEvent):
        return (a.kind, a.addr, a.nbytes) == (b.kind, b.addr, b.nbytes)
    if isinstance(a, VsetvlEvent):
        return (a.vl, a.sew, a.lmul) == (b.vl, b.sew, b.lmul)
    if isinstance(a, VectorEvent):
        return (a.instr.mnemonic == b.instr.mnemonic
                and (a.vl, a.sew, a.lmul, a.slide_amount)
                == (b.vl, b.sew, b.lmul, b.slide_amount)
                and a.mem == b.mem)
    return a == b


def _assert_round_trip(trace, program):
    blob = pack_trace(trace, program)
    assert blob.startswith(MAGIC)
    packed = unpack_trace(blob, program)
    assert len(packed) == len(trace)
    assert packed.scalar_count == trace.scalar_count
    assert packed.vector_count == trace.vector_count
    assert packed.total_flops == trace.total_flops
    for got, want in zip(packed.events, trace.events):
        assert _events_equal(got, want), (got, want)
    return packed


def _random_trace(rng, program, kinds=("scalar", "vsetvl", "vector",
                                       "fallback")):
    """A randomized trace mixing the requested event kinds, with the
    boundary values (max-vl, None addresses, every LMUL and pattern)
    reachable by the draw."""
    instrs = program.instructions
    vec_instrs = [i for i in instrs if i.mnemonic.startswith("v")]
    trace = DynamicTrace()
    events = trace.events
    n = int(rng.integers(0, 60))
    for _ in range(n):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind == "scalar":
            addr = (None, 0, 64, int(rng.integers(0, 1 << 40)),
                    _I64_MAX)[int(rng.integers(0, 5))]
            events.append(ScalarEvent(
                ("alu", "mul", "fp", "load", "store",
                 "branch_taken")[int(rng.integers(0, 6))],
                addr, int(rng.integers(0, 65))))
            trace.scalar_count += 1
        elif kind == "vsetvl":
            vl = (0, 1, int(rng.integers(0, 1 << 16)),
                  _I64_MAX)[int(rng.integers(0, 4))]  # max-vl boundary
            events.append(VsetvlEvent(
                vl, (8, 16, 32, 64)[int(rng.integers(0, 4))],
                (1, 2, 4, 8)[int(rng.integers(0, 4))]))  # mixed LMUL
            trace.scalar_count += 1
        elif kind == "vector":
            instr = vec_instrs[int(rng.integers(0, len(vec_instrs)))]
            mem = None
            if rng.random() < 0.5:
                pattern = (MemPattern.UNIT, MemPattern.STRIDED,
                           MemPattern.INDEXED,
                           MemPattern.MASK)[int(rng.integers(0, 4))]
                mem = MemAccess(base=int(rng.integers(0, 1 << 32)),
                                stride=int(rng.integers(-64, 65)),
                                count=int(rng.integers(0, 1 << 20)),
                                ew_bytes=(1, 2, 4, 8)[
                                    int(rng.integers(0, 4))],
                                pattern=pattern,
                                is_store=bool(rng.integers(0, 2)))
            events.append(VectorEvent(
                instr, int(rng.integers(0, 1 << 20)),
                (8, 16, 32, 64)[int(rng.integers(0, 4))],
                (1, 2, 4, 8)[int(rng.integers(0, 4))], mem,
                int(rng.integers(-8, 9))))
            trace.vector_count += 1
            trace.total_flops += float(rng.integers(0, 1000))
        else:
            events.append(OddballEvent(int(rng.integers(0, 1000))))
    return trace


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_empty_trace(self, capture):
        packed = _assert_round_trip(DynamicTrace(), capture.program)
        assert len(packed) == 0
        assert packed.events == []

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_mixed_streams(self, capture, seed):
        rng = np.random.default_rng(seed)
        trace = _random_trace(rng, capture.program)
        _assert_round_trip(trace, capture.program)

    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_only_streams(self, capture, seed):
        rng = np.random.default_rng(100 + seed)
        trace = _random_trace(rng, capture.program, kinds=("scalar",))
        assert trace.vector_count == 0
        _assert_round_trip(trace, capture.program)

    def test_real_capture_round_trips(self, capture):
        _assert_round_trip(capture.trace, capture.program)

    def test_vector_events_relink_to_program_instructions(self, capture):
        packed = _assert_round_trip(capture.trace, capture.program)
        for got, want in zip(packed.events, capture.trace.events):
            if isinstance(want, VectorEvent):
                assert got.instr is want.instr  # identity, not a copy

    def test_out_of_range_fields_take_the_fallback_path(self, capture):
        trace = DynamicTrace()
        # vl beyond i64, negative address, foreign instruction: none of
        # these fit a column, all must survive the pickled fallback.
        trace.events.append(VsetvlEvent(1 << 64, 8, 1))
        trace.events.append(ScalarEvent("load", -4, 8))
        trace.events.append(OddballEvent("x"))
        trace.scalar_count = 2
        blob = pack_trace(trace, capture.program)
        packed = unpack_trace(blob, capture.program)
        assert isinstance(packed.events[0], VsetvlEvent)
        assert packed.events[0].vl == 1 << 64
        assert packed.events[1].addr == -4
        assert packed.events[2] == OddballEvent("x")

    def test_packed_trace_pickles_by_blob(self, capture):
        packed = unpack_trace(pack_trace(capture.trace, capture.program),
                              capture.program)
        clone = pickle.loads(pickle.dumps(packed))
        assert isinstance(clone, PackedTrace)
        assert bytes(clone.blob) == bytes(packed.blob)
        assert len(clone) == len(packed)
        for got, want in zip(clone.events, packed.events):
            assert _events_equal(got, want)

    def test_malformed_blobs_raise_value_error(self, capture):
        good = pack_trace(capture.trace, capture.program)
        with pytest.raises(ValueError):
            unpack_trace(b"nope" + good[4:], capture.program)
        with pytest.raises(ValueError):
            unpack_trace(good[:20], capture.program)

    def test_to_trace_rebuilds_equal_dynamic_trace(self, capture):
        packed = unpack_trace(pack_trace(capture.trace, capture.program),
                              capture.program)
        rebuilt = packed.to_trace()
        assert isinstance(rebuilt, DynamicTrace)
        assert len(rebuilt) == len(capture.trace)
        assert rebuilt.scalar_count == capture.trace.scalar_count
        assert rebuilt.total_flops == capture.trace.total_flops


# ----------------------------------------------------------------------
# Replay identity: packed vs object form, every registry machine
# ----------------------------------------------------------------------
class TestReplayIdentity:
    @pytest.mark.parametrize("machine", sorted(list_machines()))
    def test_packed_replay_matches_object_replay(self, machine):
        cfg = get_machine(machine)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        captured = run.capture(cfg, verify=False)
        packed = unpack_trace(
            pack_trace(captured.trace, captured.program), captured.program)
        model = build_model(cfg)
        reference = TimingEngine(model).replay_reference(captured.trace)
        fast_obj = TimingEngine(model).replay(captured.trace)
        fast_packed = TimingEngine(model).replay(packed)
        assert fast_obj == reference
        assert fast_packed == reference
