"""Interface models: REQI, GLSU, RINGI, and the machine models."""

import pytest

from repro.params import Ara2Config, AraXLConfig
from repro.uarch import (Ara2Model, AraXLModel, GlsuModel, ReqiModel,
                         RingiModel, build_model)


class TestReqi:
    def test_extra_reg_delays_ack_two_cycles(self):
        base = ReqiModel(extra_regs=0)
        cut = ReqiModel(extra_regs=1)
        assert cut.issue_gap - base.issue_gap == 2

    def test_request_latency_grows_per_reg(self):
        assert ReqiModel(extra_regs=3).request_latency \
            == ReqiModel().request_latency + 3


class TestGlsu:
    def test_four_regs_add_eight_round_trip(self):
        base = GlsuModel(clusters=4, lanes_per_cluster=4)
        cut = GlsuModel(clusters=4, lanes_per_cluster=4, extra_regs=4)
        delta = cut.first_data_latency(12) - base.first_data_latency(12)
        assert delta == 8

    def test_pipeline_grows_with_clusters(self):
        small = GlsuModel(clusters=2, lanes_per_cluster=4)
        big = GlsuModel(clusters=16, lanes_per_cluster=4)
        assert big.pipeline_depth > small.pipeline_depth

    def test_store_latency_is_one_way(self):
        g = GlsuModel(clusters=4, lanes_per_cluster=4)
        assert g.store_latency() < g.first_data_latency(12)


class TestRingi:
    def test_distance_is_min_of_directions(self):
        r = RingiModel(clusters=8)
        assert r.distance(0, 1) == 1
        assert r.distance(0, 7) == 1
        assert r.distance(0, 4) == 4

    def test_slide1_latency_is_one_hop(self):
        r = RingiModel(clusters=8, hop_latency=2)
        assert r.slide_latency(1, 1024) == 2.0

    def test_extra_reg_adds_hop_cycle(self):
        base = RingiModel(clusters=8, hop_latency=2)
        cut = RingiModel(clusters=8, hop_latency=2, extra_regs=1)
        assert cut.slide_latency(1, 1024) == base.slide_latency(1, 1024) + 1

    def test_large_slides_cost_more(self):
        r = RingiModel(clusters=8)
        assert r.slide_latency(600, 1024) > r.slide_latency(1, 1024)

    def test_reduction_tree_hops(self):
        r = RingiModel(clusters=16, hop_latency=2)
        # C-1 total hops plus log2(C) combine steps.
        assert r.reduction_ring_cycles(6.0) == 15 * 2 + 4 * 6

    def test_single_cluster_free(self):
        r = RingiModel(clusters=1)
        assert r.reduction_ring_cycles(6.0) == 0.0
        assert r.slide_latency(1, 64) == 0.0


class TestMachineModels:
    def test_build_model_dispatch(self):
        assert isinstance(build_model(Ara2Config(lanes=8)), Ara2Model)
        assert isinstance(build_model(AraXLConfig(lanes=8)), AraXLModel)
        with pytest.raises(TypeError):
            build_model(object())

    def test_vfu_rate_simd(self):
        m = build_model(Ara2Config(lanes=8))
        assert m.vfu_rate(64) == 8
        assert m.vfu_rate(32) == 16
        assert m.vfu_rate(8) == 64

    def test_araxl_memory_latency_exceeds_ara2(self):
        ara2 = build_model(Ara2Config(lanes=16))
        araxl = build_model(AraXLConfig(lanes=16))
        assert araxl.load_first_data_latency > ara2.load_first_data_latency

    def test_araxl_issue_gap_exceeds_ara2(self):
        assert build_model(AraXLConfig(lanes=16)).issue_gap \
            > build_model(Ara2Config(lanes=16)).issue_gap

    def test_mem_rate_unit_vs_strided(self):
        from repro.isa.instructions import MemPattern

        m = build_model(AraXLConfig(lanes=64))
        unit = m.mem_rate(MemPattern.UNIT, 8, is_store=False)
        strided = m.mem_rate(MemPattern.STRIDED, 8, is_store=False)
        assert unit == 64  # 8 B/lane/cycle over 64 lanes / 8 B
        assert strided < unit

    def test_reduction_tail_monotone_in_clusters(self):
        tails = [build_model(AraXLConfig(lanes=n)).reduction_tail_cycles(64)
                 for n in (8, 16, 32, 64)]
        assert tails == sorted(tails)

    def test_ara2_reduction_tail_uses_lane_tree(self):
        small = build_model(Ara2Config(lanes=2)).reduction_tail_cycles(64)
        big = build_model(Ara2Config(lanes=16)).reduction_tail_cycles(64)
        assert big > small

    def test_simd_reduction_for_narrow_sew(self):
        m = build_model(Ara2Config(lanes=8))
        assert m.simd_reduction_cycles(64) == 0
        assert m.simd_reduction_cycles(16) > 0

    def test_wrong_config_type_rejected(self):
        with pytest.raises(TypeError):
            Ara2Model(AraXLConfig(lanes=8))
        with pytest.raises(TypeError):
            AraXLModel(Ara2Config(lanes=8))
