"""Vector memory instructions: unit/strided/indexed, masks, EEW != SEW."""

import numpy as np
import pytest

from tests.vec_utils import VecEnv

RNG = np.random.default_rng(13)


def _env(vl=16, sew=64, lmul=1):
    return VecEnv(vl, sew=sew, lmul=lmul)


class TestUnitStride:
    def test_load_store_roundtrip(self):
        env = _env()
        data = RNG.uniform(-5, 5, env.vl)
        env.mem.write_array(256, data)
        env.state.x.write(5, 256)
        env.state.x.write(6, 1024)
        env.run("vle64_v", "v8", "x5")
        env.run("vse64_v", "v8", "x6")
        assert np.array_equal(env.mem.read_array(1024, env.vl, np.float64),
                              data)

    def test_event_records_access_shape(self):
        env = _env()
        env.state.x.write(5, 64)
        event = env.run("vle64_v", "v8", "x5")
        assert event.mem is not None
        assert event.mem.base == 64
        assert event.mem.count == env.vl
        assert event.mem.ew_bytes == 8
        assert not event.mem.is_store

    @pytest.mark.parametrize("ew", [8, 16, 32])
    def test_narrow_eew_under_sew64(self, ew):
        # vle<ew> under SEW=64 moves EEW-sized elements (EMUL rescaled).
        env = _env(vl=8)
        dt = np.dtype(f"u{ew // 8}")
        data = RNG.integers(0, 200, 8).astype(dt)
        env.mem.write_array(128, data)
        env.state.x.write(5, 128)
        env.run(f"vle{ew}_v", "v8", "x5")
        assert np.array_equal(env.get_v(8, dtype=dt), data)

    def test_masked_load_preserves_inactive(self):
        env = _env(vl=4)
        env.set_mask(0, [True, False, True, False])
        env.set_v(8, np.array([9.0, 9.0, 9.0, 9.0]))
        env.mem.write_array(0, np.array([1.0, 2.0, 3.0, 4.0]))
        env.state.x.write(5, 0)
        env.run("vle64_v", "v8", "x5", masked=True)
        assert np.array_equal(env.get_v(8), [1.0, 9.0, 3.0, 9.0])

    def test_masked_store_leaves_inactive_memory(self):
        env = _env(vl=4)
        env.set_mask(0, [False, True, False, True])
        env.mem.write_array(0, np.array([1.0, 1.0, 1.0, 1.0]))
        env.set_v(8, np.array([5.0, 6.0, 7.0, 8.0]))
        env.state.x.write(5, 0)
        env.run("vse64_v", "v8", "x5", masked=True)
        assert np.array_equal(env.mem.read_array(0, 4, np.float64),
                              [1.0, 6.0, 1.0, 8.0])


class TestStrided:
    def test_strided_load(self):
        env = _env(vl=4)
        data = np.arange(16, dtype=np.float64)
        env.mem.write_array(0, data)
        env.state.x.write(5, 0)
        env.state.x.write(6, 24)  # every 3rd f64
        env.run("vlse64_v", "v8", "x5", "x6")
        assert np.array_equal(env.get_v(8, count=4), data[::3][:4])

    def test_strided_store(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1.0, 2.0, 3.0]))
        env.state.x.write(5, 0)
        env.state.x.write(6, 16)
        env.run("vsse64_v", "v8", "x5", "x6")
        assert env.mem.load_f64(0) == 1.0
        assert env.mem.load_f64(16) == 2.0
        assert env.mem.load_f64(32) == 3.0

    def test_zero_stride_broadcast(self):
        env = _env(vl=4)
        env.mem.store_f64(8, 7.5)
        env.state.x.write(5, 8)
        env.state.x.write(6, 0)
        env.run("vlse64_v", "v8", "x5", "x6")
        assert np.array_equal(env.get_v(8, count=4), [7.5] * 4)


class TestIndexed:
    def test_gather_load(self):
        env = _env(vl=4)
        data = np.arange(32, dtype=np.float64)
        env.mem.write_array(0, data)
        env.set_v(16, np.array([0, 64, 8, 248], dtype=np.uint64))
        env.state.x.write(5, 0)
        env.run("vluxei64_v", "v8", "x5", "v16")
        assert np.array_equal(env.get_v(8, count=4), [0.0, 8.0, 1.0, 31.0])

    def test_scatter_store(self):
        env = _env(vl=2)
        env.set_v(8, np.array([3.5, 4.5]))
        env.set_v(16, np.array([16, 160], dtype=np.uint64))
        env.state.x.write(5, 0)
        env.run("vsuxei64_v", "v8", "x5", "v16")
        assert env.mem.load_f64(16) == 3.5
        assert env.mem.load_f64(160) == 4.5

    def test_masked_gather(self):
        env = _env(vl=3)
        env.set_mask(0, [True, False, True])
        env.mem.write_array(0, np.array([1.0, 2.0, 3.0]))
        env.set_v(8, np.array([9.0, 9.0, 9.0]))
        env.set_v(16, np.array([0, 8, 16], dtype=np.uint64))
        env.state.x.write(5, 0)
        env.run("vluxei64_v", "v8", "x5", "v16", masked=True)
        assert np.array_equal(env.get_v(8, count=3), [1.0, 9.0, 3.0])


class TestMaskLoads:
    def test_vlm_vsm_roundtrip(self):
        env = _env(vl=19)
        bits = RNG.integers(0, 2, 19).astype(bool)
        env.set_mask(3, bits)
        env.state.x.write(5, 512)
        env.run("vsm_v", "v3", "x5")
        env.run("vlm_v", "v4", "x5")
        assert np.array_equal(env.get_mask(4, count=19), bits)

    def test_vlm_moves_ceil_bytes(self):
        env = _env(vl=19)
        env.state.x.write(5, 0)
        event = env.run("vlm_v", "v3", "x5")
        assert event.mem.count == 3  # ceil(19 / 8) bytes


class TestLmulGroups:
    def test_lmul4_load_spans_groups(self):
        env = _env(vl=64, lmul=4, vlen_bits=1024) if False else \
            VecEnv(64, sew=64, lmul=4, vlen_bits=1024)
        data = RNG.uniform(-1, 1, 64)
        env.mem.write_array(0, data)
        env.state.x.write(5, 0)
        env.run("vle64_v", "v8", "x5")
        assert np.array_equal(env.get_v(8, count=64), data)

    def test_unaligned_group_rejected(self):
        env = VecEnv(32, sew=64, lmul=4, vlen_bits=1024)
        env.state.x.write(5, 0)
        with pytest.raises(Exception):
            env.run("vle64_v", "v6", "x5")  # v6 not 4-aligned
