"""Tier-1 coverage for the ``tools.lint`` invariant checker.

Three layers, mirroring how the suite is meant to be trusted:

* **Framework semantics** — pragma targeting (same line / line above),
  pragma hygiene (RL001), baseline round-trips, the JSON report
  schema, RL000 syntax-error reporting.
* **Per-rule fixtures** — for every checker, at least one fabricated
  tree it must flag and one it must not, written under the same
  repo-relative paths the rule scopes to.
* **The tree itself** — ``python -m tools.lint`` exits 0 on this
  checkout with an empty baseline, and the docs knob table matches
  the ``repro.env`` registry verbatim.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.lint import (  # noqa: E402
    ALL_CHECKERS, load_baseline, run_lint, write_baseline)
from tools.lint.checkers.boundary import (  # noqa: E402
    SubmitPicklableChecker, TaskFieldChecker)
from tools.lint.checkers.determinism import DeterminismChecker  # noqa: E402
from tools.lint.checkers.docs import (  # noqa: E402
    DocLinkChecker, DocstringChecker)
from tools.lint.checkers.envreg import EnvRegistryChecker  # noqa: E402
from tools.lint.checkers.exceptions import (  # noqa: E402
    ExceptionHygieneChecker)
from tools.lint.checkers.slots import SlotsChecker  # noqa: E402


def lint_source(tmp_path, rel, source, checkers):
    """Write ``source`` at ``tmp_path/rel`` and lint that tree."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    result = run_lint(root=tmp_path, checkers=checkers)
    return result.findings


def codes_of(findings):
    """The rule codes present in a findings list."""
    return sorted({f.code for f in findings})


# ----------------------------------------------------------------------
# Determinism (RL101/RL102/RL103)
# ----------------------------------------------------------------------
def test_wall_clock_flagged_in_scope(tmp_path):
    """time.time() on the capture path is RL101."""
    findings = lint_source(
        tmp_path, "src/repro/functional/interp.py", """\
        import time
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL101"]
    assert findings[0].line == 3


def test_wall_clock_allowed_outside_scope(tmp_path):
    """The same read in report/ (render-only) is not a finding."""
    findings = lint_source(
        tmp_path, "src/repro/report/render.py", """\
        import time
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    assert findings == []


def test_perf_counter_allowed_in_scope(tmp_path):
    """Monotonic timing reads are fine — only wall clocks are banned."""
    findings = lint_source(
        tmp_path, "src/repro/timing/engine2.py", """\
        import time
        def measure():
            return time.perf_counter()
        """, [DeterminismChecker()])
    assert findings == []


def test_random_module_flagged(tmp_path):
    """`import random` and `random.*` calls on the capture path."""
    findings = lint_source(
        tmp_path, "src/repro/functional/gen.py", """\
        import random
        def roll():
            return random.randint(0, 7)
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL102"]
    assert len(findings) == 2  # the import and the call


def test_seeded_generator_allowed(tmp_path):
    """numpy Generator seeded from the trace key is the sanctioned way."""
    findings = lint_source(
        tmp_path, "src/repro/functional/gen.py", """\
        import numpy as np
        def roll(seed):
            return np.random.default_rng(seed)
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL102"]  # np.random.* still flagged


def test_set_iteration_flagged(tmp_path):
    """Iterating a set literal on the capture path is RL103."""
    findings = lint_source(
        tmp_path, "src/repro/functional/walk.py", """\
        def visit(keys):
            out = []
            for k in set(keys):
                out.append(k)
            return [x for x in {1, 2, 3}] + out
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL103"]
    assert len(findings) == 2  # the for-loop and the comprehension


def test_sorted_set_iteration_allowed(tmp_path):
    """sorted(set(...)) restores a deterministic order — no finding."""
    findings = lint_source(
        tmp_path, "src/repro/functional/walk.py", """\
        def visit(keys):
            return [k for k in sorted(set(keys))]
        """, [DeterminismChecker()])
    assert findings == []


# ----------------------------------------------------------------------
# Exception hygiene (RL201)
# ----------------------------------------------------------------------
def test_swallowing_broad_except_flagged(tmp_path):
    """A broad except that neither raises nor classifies is RL201."""
    findings = lint_source(
        tmp_path, "src/repro/sim/thing.py", """\
        def load(path):
            try:
                return path.read_bytes()
            except Exception:
                return None
        """, [ExceptionHygieneChecker()])
    assert codes_of(findings) == ["RL201"]


def test_bare_except_flagged(tmp_path):
    """A bare except is broad by definition."""
    findings = lint_source(
        tmp_path, "src/repro/sim/thing.py", """\
        def load(path):
            try:
                return path.read_bytes()
            except:
                return None
        """, [ExceptionHygieneChecker()])
    assert codes_of(findings) == ["RL201"]


def test_classifying_broad_except_allowed(tmp_path):
    """Routing the failure into FaultLog-style accounting satisfies."""
    findings = lint_source(
        tmp_path, "src/repro/sim/thing.py", """\
        def load(self, path):
            try:
                return path.read_bytes()
            except Exception as exc:
                self._note_failure(exc)
                return None
        """, [ExceptionHygieneChecker()])
    assert findings == []


def test_reraising_broad_except_allowed(tmp_path):
    """Wrap-and-reraise keeps the failure visible — no finding."""
    findings = lint_source(
        tmp_path, "src/repro/sim/thing.py", """\
        def load(path):
            try:
                return path.read_bytes()
            except Exception as exc:
                raise RuntimeError(str(path)) from exc
        """, [ExceptionHygieneChecker()])
    assert findings == []


def test_narrow_except_allowed(tmp_path):
    """Catching a specific type is always fine."""
    findings = lint_source(
        tmp_path, "src/repro/sim/thing.py", """\
        def load(path):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                return None
        """, [ExceptionHygieneChecker()])
    assert findings == []


# ----------------------------------------------------------------------
# Process-boundary safety (RL301/RL302)
# ----------------------------------------------------------------------
def test_lambda_submit_flagged(tmp_path):
    """A lambda handed to submit() cannot cross the process boundary."""
    findings = lint_source(
        tmp_path, "src/repro/sim/runner.py", """\
        def run(executor, xs):
            return [executor.submit(lambda v: v + 1, x) for x in xs]
        """, [SubmitPicklableChecker()])
    assert codes_of(findings) == ["RL301"]


def test_local_function_submit_flagged(tmp_path):
    """A function defined inside another function is a closure risk."""
    findings = lint_source(
        tmp_path, "src/repro/sim/runner.py", """\
        def run(executor, xs):
            def bump(v):
                return v + 1
            return [executor.submit(bump, x) for x in xs]
        """, [SubmitPicklableChecker()])
    assert codes_of(findings) == ["RL301"]


def test_module_level_submit_allowed(tmp_path):
    """Module-level worker functions pickle by reference — fine."""
    findings = lint_source(
        tmp_path, "src/repro/sim/runner.py", """\
        def bump(v):
            return v + 1

        def run(executor, xs):
            return [executor.submit(bump, x) for x in xs]
        """, [SubmitPicklableChecker()])
    assert findings == []


def test_task_dataclass_callable_field_flagged(tmp_path):
    """A pool-task field typed as a callable smuggles a closure in."""
    findings = lint_source(
        tmp_path, "src/repro/sim/tasks.py", """\
        from dataclasses import dataclass
        from typing import Callable

        @dataclass(frozen=True)
        class ReplayTask:
            index: int
            build: Callable[[], int]
        """, [TaskFieldChecker()])
    assert codes_of(findings) == ["RL302"]
    assert "build" in findings[0].message


def test_task_dataclass_plain_fields_allowed(tmp_path):
    """Primitives, containers, and allowlisted repo types are fine."""
    findings = lint_source(
        tmp_path, "src/repro/sim/tasks.py", """\
        from dataclasses import dataclass
        from typing import Optional

        @dataclass(frozen=True)
        class ReplayTask:
            index: int
            name: str
            sizes: tuple[int, ...]
            plan: Optional["FaultPlan"]
        """, [TaskFieldChecker()])
    assert findings == []


def test_non_task_dataclass_ignored(tmp_path):
    """Only `*Task` dataclasses are held to the field contract."""
    findings = lint_source(
        tmp_path, "src/repro/sim/tasks.py", """\
        from dataclasses import dataclass
        from typing import Callable

        @dataclass
        class KernelRun:
            build: Callable[[], int]
        """, [TaskFieldChecker()])
    assert findings == []


# ----------------------------------------------------------------------
# Hot-path __slots__ (RL401)
# ----------------------------------------------------------------------
def test_slotless_hot_path_class_flagged(tmp_path):
    """A plain class in a hot-path module must declare __slots__."""
    findings = lint_source(
        tmp_path, "src/repro/functional/trace.py", """\
        class Event:
            def __init__(self, op):
                self.op = op
        """, [SlotsChecker()])
    assert codes_of(findings) == ["RL401"]


def test_explicit_slots_allowed(tmp_path):
    """A class-body __slots__ assignment satisfies the rule."""
    findings = lint_source(
        tmp_path, "src/repro/timing/stream.py", """\
        class Event:
            __slots__ = ("op",)

            def __init__(self, op):
                self.op = op
        """, [SlotsChecker()])
    assert findings == []


def test_dataclass_slots_allowed(tmp_path):
    """@dataclass(slots=True) satisfies the rule."""
    findings = lint_source(
        tmp_path, "src/repro/functional/plan.py", """\
        from dataclasses import dataclass

        @dataclass(frozen=True, slots=True)
        class Step:
            op: str
        """, [SlotsChecker()])
    assert findings == []


# ----------------------------------------------------------------------
# Env registry (RL501)
# ----------------------------------------------------------------------
def test_direct_environ_read_flagged(tmp_path):
    """os.environ outside repro/env.py bypasses the registry."""
    findings = lint_source(
        tmp_path, "src/repro/sim/store2.py", """\
        import os
        def resolve():
            return os.environ.get("REPRO_TRACE_STORE")
        """, [EnvRegistryChecker()])
    assert codes_of(findings) == ["RL501"]


def test_registry_module_itself_exempt(tmp_path):
    """repro/env.py is the one place os.environ is allowed."""
    findings = lint_source(
        tmp_path, "src/repro/env.py", """\
        import os
        def read_env(name):
            return os.environ.get(name)
        """, [EnvRegistryChecker()])
    assert findings == []


def test_read_env_call_allowed(tmp_path):
    """Reading through the registry is the sanctioned path."""
    findings = lint_source(
        tmp_path, "src/repro/sim/store2.py", """\
        from ..env import ENV_STORE_DIR, read_env
        def resolve():
            return read_env(ENV_STORE_DIR)
        """, [EnvRegistryChecker()])
    assert findings == []


# ----------------------------------------------------------------------
# Docs rules (RL601/RL603) on fabricated checkouts
# ----------------------------------------------------------------------
def test_broken_doc_link_flagged(tmp_path, monkeypatch):
    """A relative link to a missing file is RL601."""
    import tools.lint.checkers.docs as docs_mod
    monkeypatch.setattr(docs_mod, "DOC_FILES", ("README.md",))
    (tmp_path / "README.md").write_text(
        "see [the gap](docs/nonexistent.md)\n")
    findings = list(DocLinkChecker().check_repo(tmp_path))
    assert codes_of(findings) == ["RL601"]
    assert "docs/nonexistent.md" in findings[0].message


def test_resolving_doc_link_allowed(tmp_path, monkeypatch):
    """Links that resolve (and external links) are not findings."""
    import tools.lint.checkers.docs as docs_mod
    monkeypatch.setattr(docs_mod, "DOC_FILES", ("README.md",))
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "page.md").write_text("hi\n")
    (tmp_path / "README.md").write_text(
        "see [page](docs/page.md) and [ext](https://example.com)\n")
    assert list(DocLinkChecker().check_repo(tmp_path)) == []


def test_missing_docstring_flagged(tmp_path):
    """A src/repro module without a docstring is RL603."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bare.py").write_text("def shiny():\n    return 1\n")
    findings = list(DocstringChecker().check_repo(tmp_path))
    messages = [f.message for f in findings]
    assert "missing module docstring" in messages
    assert any("shiny" in m for m in messages)


def test_documented_module_allowed(tmp_path):
    """Docstrings everywhere (and private defs) satisfy RL603."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "neat.py").write_text(
        '"""A documented module."""\n'
        'def shiny():\n    """Docstring."""\n    return 1\n'
        'def _hidden():\n    return 2\n')
    assert list(DocstringChecker().check_repo(tmp_path)) == []


# ----------------------------------------------------------------------
# Framework: pragmas, baseline, RL000, JSON schema, exit status
# ----------------------------------------------------------------------
def test_pragma_suppresses_same_line(tmp_path):
    """A trailing pragma suppresses the rule on its own line."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            return time.time()  # repro-lint: disable=RL101  test fixture
        """, [DeterminismChecker()])
    assert findings == []


def test_pragma_suppresses_line_above(tmp_path):
    """A standalone pragma comment covers the next non-comment line."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            # repro-lint: disable=RL101  test fixture
            # an ordinary comment may sit between pragma and code
            return time.time()
        """, [DeterminismChecker()])
    assert findings == []


def test_pragma_does_not_leak_to_other_lines(tmp_path):
    """Suppression is line-scoped, not file-scoped."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            a = time.time()  # repro-lint: disable=RL101  test fixture
            return a + time.time()
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL101"]
    assert findings[0].line == 4


def test_pragma_without_reason_is_rl001(tmp_path):
    """A reasonless pragma is itself a finding and suppresses nothing."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            return time.time()  # repro-lint: disable=RL101
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL001", "RL101"]


def test_pragma_unknown_code_is_rl001(tmp_path):
    """Naming a rule that does not exist is flagged, not ignored."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        x = 1  # repro-lint: disable=BOGUS  because reasons
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL001"]


def test_pragma_in_string_literal_ignored(tmp_path):
    """Pragma syntax inside a string is documentation, not suppression."""
    findings = lint_source(
        tmp_path, "src/repro/functional/t.py", """\
        import time
        DOC = "# repro-lint: disable=RL101  not a real pragma"
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    assert codes_of(findings) == ["RL101"]


def test_syntax_error_is_rl000(tmp_path):
    """An unparseable file in scope reports RL000, not a crash."""
    findings = lint_source(
        tmp_path, "src/repro/sim/broken.py",
        "def oops(:\n", [ExceptionHygieneChecker()])
    assert codes_of(findings) == ["RL000"]


def test_baseline_round_trip(tmp_path):
    """write_baseline -> load_baseline hides exactly those findings."""
    source = """\
        import time
        def stamp():
            return time.time()
        """
    findings = lint_source(tmp_path, "src/repro/functional/t.py",
                           source, [DeterminismChecker()])
    assert len(findings) == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, baseline_file)
    baseline = load_baseline(baseline_file)
    result = run_lint(root=tmp_path, checkers=[DeterminismChecker()],
                      baseline=baseline)
    assert result.findings == []
    assert result.baselined == 1


def test_baseline_survives_line_churn(tmp_path):
    """Baseline keys omit the line number by design."""
    findings = lint_source(tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    baseline = {f.baseline_key for f in findings}
    # Same finding, different line: still grandfathered.
    lint_source(tmp_path, "src/repro/functional/t.py", """\
        import time
        # a new comment shifts everything down
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    result = run_lint(root=tmp_path, checkers=[DeterminismChecker()],
                      baseline=baseline)
    assert result.findings == []


def test_json_report_schema(tmp_path):
    """The machine-readable report shape CI consumes is pinned."""
    lint_source(tmp_path, "src/repro/functional/t.py", """\
        import time
        def stamp():
            return time.time()
        """, [DeterminismChecker()])
    report = run_lint(root=tmp_path,
                      checkers=[DeterminismChecker()]).as_json()
    assert report["version"] == 1
    assert report["files"] == 1
    assert report["counts"]["total"] == 1
    assert report["counts"]["baselined"] == 0
    assert report["counts"]["error"] == 1
    (finding,) = report["findings"]
    assert set(finding) == {"file", "line", "code", "severity",
                            "message"}
    assert finding["code"] == "RL101"
    assert finding["file"] == "src/repro/functional/t.py"
    json.dumps(report)  # must be serializable as-is


def test_cli_exit_nonzero_on_findings(tmp_path):
    """`python -m tools.lint` on a dirty checkout exits 1, prints rows."""
    bad = tmp_path / "src" / "repro" / "functional" / "t.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nNOW = time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "--root", str(tmp_path),
         "--select", "RL1"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 1
    assert "RL101" in proc.stdout


def test_list_rules_names_every_code():
    """--list-rules documents the full suite."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0
    for checker in ALL_CHECKERS:
        assert checker.code in proc.stdout


# ----------------------------------------------------------------------
# The checkout itself
# ----------------------------------------------------------------------
def test_tree_lints_clean():
    """The whole repository passes its own lint, exit status 0."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_baseline_is_empty():
    """No grandfathered findings: every suppression is a reasoned
    inline pragma, not a baseline entry."""
    data = json.loads(
        (REPO_ROOT / "tools" / "lint" / "baseline.json").read_text())
    assert data["entries"] == []


def test_every_pragma_in_src_names_a_real_rule():
    """Cross-check: pragmas under src/ only disable codes the suite
    actually runs (RL001 would catch unknown codes at lint time; this
    pins the committed state)."""
    import re
    known = {code for c in ALL_CHECKERS
             for code in getattr(c, "codes", (c.code,))}
    pragma_re = re.compile(r"repro-lint:\s*disable=([A-Z0-9,]+)")
    for path in (REPO_ROOT / "src").rglob("*.py"):
        for match in pragma_re.finditer(path.read_text()):
            for code in match.group(1).split(","):
                assert code in known, f"{path}: unknown code {code}"


def test_trace_store_knob_table_matches_registry():
    """docs/trace-store.md's knob table is the registry's, verbatim."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.env import knob_table
    finally:
        sys.path.pop(0)
    doc = (REPO_ROOT / "docs" / "trace-store.md").read_text()
    assert knob_table("store") in doc, \
        "regenerate the Knobs table from repro.env.knob_table('store')"


def test_fuzz_knob_table_matches_registry():
    """docs/fuzzing.md's knob table is the registry's, verbatim."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.env import knob_table
    finally:
        sys.path.pop(0)
    doc = (REPO_ROOT / "docs" / "fuzzing.md").read_text()
    assert knob_table("fuzz") in doc, \
        "regenerate the Knobs table from repro.env.knob_table('fuzz')"


def test_registry_rejects_unregistered_reads():
    """read_env raises KeyError for names outside the registry."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.env import ENV_STORE_DIR, read_env
    finally:
        sys.path.pop(0)
    assert read_env(ENV_STORE_DIR, {"REPRO_TRACE_STORE": "/x"}) == "/x"
    assert read_env(ENV_STORE_DIR, {}) is None
    with pytest.raises(KeyError):
        read_env("REPRO_NOT_A_KNOB", {})
