"""Cross-module integration: the paper's headline behaviours end to end."""

import numpy as np
import pytest

from repro import AraXLConfig, Ara2Config, Assembler, Simulator, run_program
from repro.kernels import KERNELS
from repro.memory import DirectMappedCache, InvalidationFilter


class TestSimulatorFacade:
    def test_quickstart_flow(self):
        config = AraXLConfig(lanes=8)
        sim = Simulator(config)
        a = Assembler("axpy")
        n = 64
        sim.mem.write_array(0, np.arange(n, dtype=np.float64))
        sim.mem.write_array(n * 8, np.ones(n))
        a.li("x1", n)
        a.vsetvli("x2", "x1", sew=64, lmul=1)
        a.li("x5", 0)
        a.li("x6", n * 8)
        a.li("x7", 2 * n * 8)
        a.vle64_v("v1", "x5")
        a.vle64_v("v2", "x6")
        a.vfmacc_vf("v2", "f1", "v1")
        a.vse64_v("v2", "x7")
        a.halt()
        sim.state.f.write(1, 2.0)
        result = sim.run(a.build())
        got = sim.mem.read_array(2 * n * 8, n, np.float64)
        assert np.allclose(got, 2.0 * np.arange(n) + 1.0)
        assert result.cycles > 0
        assert result.dp_flops == 2 * n

    def test_functional_only_mode(self):
        config = Ara2Config(lanes=4)
        sim = Simulator(config)
        a = Assembler()
        a.li("x1", 1)
        a.halt()
        result = sim.run(a.build(), functional_only=True)
        assert result.cycles == 0.0

    def test_run_program_helper(self):
        a = Assembler()
        a.li("x1", 7)
        a.halt()
        result = run_program(Ara2Config(lanes=4), a.build())
        assert result.state.x.read(1) == 7


class TestPaperHeadlines:
    """The numbers the abstract and Section IV call out, at reduced size."""

    def test_fmatmul_99pct_utilization_on_64_lanes(self):
        config = AraXLConfig(lanes=64)
        run = KERNELS["fmatmul"](config, 512, m=16, k=64)
        result = run.run(config, verify=False)
        assert run.utilization(result) >= 0.97

    def test_fconv2d_97pct_utilization(self):
        config = AraXLConfig(lanes=64)
        run = KERNELS["fconv2d"](config, 512, rows=32)
        result = run.run(config, verify=False)
        assert run.utilization(result) >= 0.95

    def test_linear_weak_scaling_16_to_32(self):
        perfs = {}
        for lanes in (16, 32):
            config = AraXLConfig(lanes=lanes)
            run = KERNELS["fmatmul"](config, 512, m=16, k=64)
            perfs[lanes] = run.run(config, verify=False).flops_per_cycle
        assert perfs[32] / perfs[16] == pytest.approx(2.0, abs=0.1)

    def test_fdotproduct_degraded_scaling(self):
        perfs = {}
        for lanes in (8, 64):
            config = AraXLConfig(lanes=lanes)
            run = KERNELS["fdotproduct"](config, 512)
            perfs[lanes] = run.run(config, verify=False).flops_per_cycle
        scaling = perfs[64] / perfs[8]
        assert 5.0 < scaling < 7.5  # paper: 6.1x vs 8x ideal

    def test_long_vectors_recover_dotproduct(self):
        from repro.kernels import build_fdotproduct_strips

        config = AraXLConfig(lanes=64)
        short = KERNELS["fdotproduct"](config, 512)
        long = build_fdotproduct_strips(config, 1024, strips=16)
        u_short = short.utilization(short.run(config, verify=False))
        u_long = long.utilization(long.run(config, verify=False))
        assert u_long > u_short + 0.2  # Section IV-B: 7.6x at 16384 B/lane

    def test_araxl_worse_than_ara2_at_medium_vectors(self):
        # Section IV-B: the new interfaces increase setup time, visible
        # in the 64 B/lane regime.
        ara2 = Ara2Config(lanes=8)
        araxl = AraXLConfig(lanes=8)
        r2 = KERNELS["exp"](ara2, 64)
        rx = KERNELS["exp"](araxl, 64)
        u2 = r2.utilization(r2.run(ara2, verify=False))
        ux = rx.utilization(rx.run(araxl, verify=False))
        assert ux <= u2

    def test_interface_cuts_cost_under_2pct_at_512(self):
        import dataclasses

        base_cfg = AraXLConfig(lanes=32)
        for knob in ({"glsu_extra_regs": 4}, {"reqi_extra_regs": 1},
                     {"ringi_extra_regs": 1}):
            cut_cfg = dataclasses.replace(base_cfg, **knob)
            base_run = KERNELS["jacobi2d"](base_cfg, 512, rows=32)
            cut_run = KERNELS["jacobi2d"](cut_cfg, 512, rows=32)
            u_base = base_run.utilization(base_run.run(base_cfg, verify=False))
            u_cut = cut_run.utilization(cut_run.run(cut_cfg, verify=False))
            assert u_base - u_cut < 0.02, knob


class TestCoherencePath:
    def test_vector_store_then_scalar_load_sees_data(self):
        """The Fig 2 invalidation-filter scenario, functionally."""
        config = AraXLConfig(lanes=8)
        sim = Simulator(config)
        a = Assembler()
        a.li("x1", 16)
        a.vsetvli("x2", "x1", sew=64, lmul=1)
        a.li("x5", 0)
        a.vmv_v_i("v1", 5)
        a.vse64_v("v1", "x5")
        a.ld("x6", "x5", 0)
        a.halt()
        sim.run(a.build())
        assert sim.state.x.read(6) == 5

    def test_filter_invalidates_on_vector_store(self):
        dcache = DirectMappedCache(4096, 64)
        filt = InvalidationFilter(dcache)
        dcache.access(256)
        filt.note_scalar_fill(256)
        assert filt.on_vector_store(256, 128) >= 1
        assert not dcache.access(256)


class TestDeterminism:
    def test_same_run_same_cycles(self):
        config = AraXLConfig(lanes=16)
        runs = []
        for _ in range(2):
            kr = KERNELS["softmax"](config, 128)
            runs.append(kr.run(config, verify=True).cycles)
        assert runs[0] == runs[1]
