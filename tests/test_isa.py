"""ISA layer: vtype semantics, the assembler DSL, program container."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError, IsaError
from repro.isa import Assembler, SPEC_TABLE, spec_for
from repro.isa.instructions import ExecUnit, FORMAT_ROLES
from repro.isa.registers import parse_reg, x, f, v
from repro.isa.vtype import LMUL, SEW, VType, vsetvl_result


class TestVType:
    @given(st.sampled_from([8, 16, 32, 64]), st.sampled_from([1, 2, 4, 8]),
           st.booleans(), st.booleans())
    def test_encode_decode_roundtrip(self, sew, lmul, ta, ma):
        vt = VType(sew=SEW(sew), lmul=LMUL(lmul), tail_agnostic=ta,
                   mask_agnostic=ma)
        assert VType.decode(vt.encode()) == vt

    def test_vill_roundtrip(self):
        assert VType.decode(VType(vill=True).encode()).vill

    def test_vlmax(self):
        vt = VType(sew=SEW.E64, lmul=LMUL.M4)
        assert vt.vlmax(16384) == 1024

    def test_vill_vlmax_is_zero(self):
        assert VType(vill=True).vlmax(16384) == 0

    def test_register_group_alignment(self):
        vt = VType(sew=SEW.E64, lmul=LMUL.M4)
        assert vt.register_group(8) == (8, 9, 10, 11)
        with pytest.raises(Exception):
            vt.register_group(6)

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.sampled_from([8, 16, 32, 64]), st.sampled_from([1, 2, 4, 8]))
    def test_vsetvl_never_exceeds_vlmax(self, avl, sew, lmul):
        vt = VType(sew=SEW(sew), lmul=LMUL(lmul))
        vl = vsetvl_result(avl, vt, 8192)
        assert 0 <= vl <= vt.vlmax(8192)
        if avl <= vt.vlmax(8192):
            assert vl == avl

    def test_vsetvl_negative_avl_rejected(self):
        with pytest.raises(IsaError):
            vsetvl_result(-1, VType(), 8192)

    def test_unsupported_sew_lmul(self):
        with pytest.raises(IsaError):
            SEW.from_bits(128)
        with pytest.raises(IsaError):
            LMUL.from_int(3)


class TestRegisters:
    def test_parse_textual_names(self):
        assert parse_reg("x5") == x(5)
        assert parse_reg("f31") == f(31)
        assert parse_reg("v0") == v(0)

    def test_out_of_range(self):
        with pytest.raises(IsaError):
            x(32)
        with pytest.raises(IsaError):
            parse_reg("v99")

    def test_non_register(self):
        with pytest.raises(IsaError):
            parse_reg(17)


class TestSpecTable:
    def test_every_spec_has_known_format(self):
        for spec in SPEC_TABLE.values():
            assert spec.fmt in FORMAT_ROLES, spec.mnemonic

    def test_fma_flop_accounting(self):
        assert spec_for("vfmacc_vf").flops == 2.0
        assert spec_for("vfadd_vv").flops == 1.0
        assert spec_for("vadd_vv").flops == 0.0

    def test_unit_assignment(self):
        assert spec_for("vle64_v").unit is ExecUnit.VLSU
        assert spec_for("vfslide1down_vf").unit is ExecUnit.SLDU
        assert spec_for("vmand_mm").unit is ExecUnit.MASKU
        assert spec_for("vfmul_vv").unit is ExecUnit.VMFPU
        assert spec_for("vsll_vi").unit is ExecUnit.VALU

    def test_structural_flags(self):
        assert spec_for("vfredusum_vs").is_reduction
        assert spec_for("vslide1up_vx").slide1
        assert spec_for("vfwmacc_vv").widens
        assert spec_for("vnsrl_wx").narrows
        assert spec_for("vmfeq_vv").mask_producer
        assert spec_for("vcpop_m").scalar_result

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            spec_for("vbogus_vv")


class TestAssembler:
    def test_builds_program_with_labels(self):
        a = Assembler("t")
        a.li("x1", 4)
        a.label("loop")
        a.addi("x1", "x1", -1)
        a.bnez("x1", "loop")
        a.halt()
        prog = a.build()
        assert len(prog) == 4
        assert prog.target_index("loop") == 1

    def test_undefined_label_rejected_at_build(self):
        a = Assembler()
        a.bnez("x1", "nowhere")
        with pytest.raises(AssemblerError):
            a.build()

    def test_duplicate_label_rejected(self):
        a = Assembler()
        a.label("x")
        with pytest.raises(AssemblerError):
            a.label("x")

    def test_operand_kind_checked(self):
        a = Assembler()
        with pytest.raises(IsaError):
            a.vfadd_vv("x1", "v2", "v3")  # dest must be a vreg
        with pytest.raises(IsaError):
            a.add("x1", "x2", "f3")

    def test_operand_count_checked(self):
        a = Assembler()
        with pytest.raises(AssemblerError):
            a.vadd_vv("v1", "v2")

    def test_masked_flag(self):
        a = Assembler()
        instr = a.vadd_vv("v4", "v8", "v12", masked=True)
        assert instr.masked

    def test_masked_cannot_clobber_v0(self):
        a = Assembler()
        with pytest.raises(AssemblerError):
            a.vadd_vv("v0", "v8", "v12", masked=True)

    def test_scalar_cannot_be_masked(self):
        a = Assembler()
        with pytest.raises(AssemblerError):
            a.add("x1", "x2", "x3", masked=True)

    def test_unknown_mnemonic_is_attribute_error(self):
        a = Assembler()
        with pytest.raises(AttributeError):
            a.vnosuch_vv("v0", "v1", "v2")

    def test_vsetvli_keywords(self):
        a = Assembler()
        instr = a.vsetvli("x1", "x2", sew=32, lmul=2)
        assert instr.op("sew") == SEW.E32
        assert instr.op("lmul") == LMUL.M2

    def test_immediate_must_be_int(self):
        a = Assembler()
        with pytest.raises(AssemblerError):
            a.li("x1", 1.5)

    def test_listing_renders(self):
        a = Assembler()
        a.label("start")
        a.li("x1", 1)
        a.halt()
        listing = a.build().listing()
        assert "start:" in listing and "li" in listing

    def test_static_vector_count(self):
        a = Assembler()
        a.li("x1", 1)
        a.vsetvli("x2", "x1", sew=64, lmul=1)
        a.vadd_vv("v1", "v2", "v3")
        a.halt()
        assert a.build().static_vector_instructions == 1
