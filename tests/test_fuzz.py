"""The seeded RVV program fuzzer and its differential property harness.

The per-seed property test is parameterized by the ``--fuzz-seeds`` /
``$REPRO_FUZZ_SEEDS`` knob (see ``conftest.py``); the seed is part of
the test id, so a red run names its reproducer directly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigError
from repro.fuzz import (FEATURES, ProgramGen, PropertyFailure, check_case,
                        check_seed, parse_features, shrink_case)
from repro.fuzz.gen import REGIONS, canonical_features, case_from_chunks
from repro.fuzz.kernel import build_fuzz, generate_case, kernel_for_case
from repro.fuzz.properties import DEFAULT_MACHINES, default_configs
from repro.fuzz.rng import FuzzRng
from repro.isa import Assembler
from repro.kernels import zoo_builder
from repro.machine import get_machine
from repro.sim import (CaptureTask, SimPool, TraceCache, run_pipeline,
                       trace_key)

_SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


@pytest.fixture(scope="module")
def machine_pair():
    return default_configs()


# ----------------------------------------------------------------------
# The tentpole: four differential properties per generated program.
# ----------------------------------------------------------------------
class TestProperties:
    def test_seed_holds_all_properties(self, fuzz_seed, machine_pair):
        stats = check_seed(fuzz_seed, size=40, configs=machine_pair)
        assert stats["seed"] == fuzz_seed
        assert stats["instructions"] > 0
        # Equal VLEN means the same trace: event counts must agree.
        counts = set(stats["events"].values())
        assert len(counts) == 1

    def test_feature_subsets_hold(self, machine_pair):
        for features in ("arith,scalar,vsetvl", "fp,mask,vsetvl",
                         "mem_unit,mem_strided,mem_indexed,vsetvl"):
            check_seed(3, size=20, features=features, configs=machine_pair)


class TestGenerator:
    def test_bit_reproducible_from_seed(self):
        a = ProgramGen(7, size=35).generate()
        b = ProgramGen(7, size=35).generate()
        assert a.program.fingerprint == b.program.fingerprint
        assert a.chunks == b.chunks

    def test_distinct_seeds_distinct_programs(self):
        fingerprints = {ProgramGen(s, size=25).generate().program.fingerprint
                        for s in range(16)}
        assert len(fingerprints) == 16

    def test_rng_streams_independent(self):
        ops = FuzzRng(5, "ops")
        ops2 = FuzzRng(5, "ops")
        data = FuzzRng(5, "data")
        first = [ops.u64() for _ in range(8)]
        assert first == [ops2.u64() for _ in range(8)]
        assert first != [data.u64() for _ in range(8)]

    def test_parse_features(self):
        assert parse_features("all") == frozenset(FEATURES)
        assert parse_features("arith, fp") == frozenset({"arith", "fp"})
        assert canonical_features("fp,arith") == "arith,fp"
        with pytest.raises(ValueError):
            parse_features("arith,warp_drive")
        with pytest.raises(ValueError):
            parse_features("")


# ----------------------------------------------------------------------
# Satellite: trace-key sensitivity and cross-process stability.
# ----------------------------------------------------------------------
def _key_program(masked: bool = False, lmul: int = 1):
    asm = Assembler("keysens")
    asm.li("x1", 8)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.vmseq_vi("v0", "v8", 0)
    asm.vadd_vv("v8", "v8", "v8", masked=masked)
    asm.halt()
    return asm.build()


class TestTraceKey:
    def test_mask_state_changes_key(self):
        plain = trace_key(_key_program(masked=False), 8192, "s")
        masked = trace_key(_key_program(masked=True), 8192, "s")
        assert plain != masked

    def test_lmul_changes_key(self):
        one = trace_key(_key_program(lmul=1), 8192, "s")
        two = trace_key(_key_program(lmul=2), 8192, "s")
        assert one != two

    def test_equal_programs_equal_keys(self):
        assert trace_key(_key_program(), 8192, "s") \
            == trace_key(_key_program(), 8192, "s")

    def test_key_insensitive_to_machine_spec(self, machine_pair):
        case = generate_case(11, size=20)
        keys = {kernel_for_case(case, config).trace_key(config)
                for config in machine_pair}
        assert len(keys) == 1

    def test_key_stable_across_interpreter_restarts(self):
        script = (
            "from repro.fuzz.kernel import generate_case, kernel_for_case\n"
            "from repro.machine import get_machine\n"
            "config = get_machine('8L-Ara2')\n"
            "kernel = kernel_for_case(generate_case(13, size=20), config)\n"
            "print(kernel.trace_key(config))\n")
        keys = set()
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": _SRC_DIR, "PYTHONHASHSEED": "random"})
            keys.add(out.stdout.strip())
        assert len(keys) == 1
        config = get_machine("8L-Ara2")
        kernel = kernel_for_case(generate_case(13, size=20), config)
        assert str(kernel.trace_key(config)) == next(iter(keys))


# ----------------------------------------------------------------------
# Generated programs ride the unchanged capture pipeline.
# ----------------------------------------------------------------------
class TestPipelineEntry:
    def test_zoo_resolves_fuzz(self):
        assert zoo_builder("fuzz") is not None
        with pytest.raises(ConfigError):
            zoo_builder("fuzzz")

    def test_capture_task_equals_direct_run(self, machine_pair):
        config = machine_pair[0]
        kwargs = {"seed": 2, "size": 20, "features": "all"}
        pool = SimPool(workers=1, cache=TraceCache())
        try:
            task = CaptureTask.for_kernel("fuzz", config, 64, kwargs,
                                          verify=True)
            reports = run_pipeline([task], [(config, 0)], pool)
        finally:
            pool.shutdown()
        kernel = build_fuzz(config, 64, **kwargs)
        direct = kernel.run(config, verify=True)
        assert reports[0] == direct.timing

    def test_memoized_skeleton_shared(self):
        config = get_machine("8L-Ara2")
        build = zoo_builder("fuzz")
        a = build(config, 64, seed=4, size=20)
        b = build(config, 64, seed=4, size=20)
        assert a is b  # the kernel build memo serves the same KernelRun
        # And the underlying program skeleton memo is shared even across
        # the unmemoized builder.
        assert build_fuzz(config, 64, seed=4, size=20).program \
            is a.program


# ----------------------------------------------------------------------
# Satellite: forced failure demonstrates the minimizing shrink loop.
# ----------------------------------------------------------------------
class TestShrink:
    def test_forced_failure_shrinks_to_minimal_program(self):
        case = generate_case(1, size=40)
        target = next(ops[-1][0] for kind, ops in case.chunks
                      if kind == "op")

        def predicate(candidate):
            present = any(op[0] == target for _, ops in candidate.chunks
                          for op in ops)
            return f"still contains {target}" if present else None

        result = shrink_case(case, predicate)
        assert result.failure
        assert len(result.minimized.chunks) < len(case.chunks)
        # pre + (cfg?) + the guilty op + epi is the floor.
        assert len(result.minimized.chunks) <= 4
        report = result.report()
        assert "minimal reproducer for seed 1" in report
        assert target in report

    def test_shrunk_variant_still_executes(self, machine_pair):
        case = generate_case(6, size=30)
        middle = [c for c in case.chunks if c[0] in ("cfg", "op")]
        variant = case_from_chunks(
            case, [case.chunks[0]] + middle[:3] + [case.chunks[-1]])
        check_case(variant, configs=machine_pair)

    def test_predicate_must_fail_on_original(self):
        case = generate_case(0, size=10)
        with pytest.raises(ValueError):
            shrink_case(case, lambda c: None)


# ----------------------------------------------------------------------
# CLI entry point.
# ----------------------------------------------------------------------
class TestCli:
    def test_eval_fuzz_runs(self, capsys):
        from repro.eval.__main__ import main

        assert main(["fuzz", "--seeds", "2", "--fuzz-size", "15"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 2 seeds x 2 machines" in out
        assert "all 2 seeds hold" in out

    def test_eval_fuzz_honours_machine_flag(self, capsys):
        from repro.eval.__main__ import main

        code = main(["fuzz", "--seeds", "1", "--fuzz-size", "10",
                     "--machine", "8L-Ara2", "--machine", "8L-AraXL"])
        assert code == 0
        assert "8L-AraXL" in capsys.readouterr().out

    def test_default_machines_registered(self):
        for name in DEFAULT_MACHINES:
            assert get_machine(name) is not None


# ----------------------------------------------------------------------
# Regression: the masked-store bug the fuzzer found.
# ----------------------------------------------------------------------
class TestMaskedStoreRegression:
    def test_masked_store_with_no_active_elements(self, machine_pair):
        from repro.sim import Simulator

        asm = Assembler("empty_masked_store")
        asm.li("x1", 8)
        asm.vsetvli("x2", "x1", sew=64, lmul=1)
        asm.vmsne_vi("v0", "v8", 0)     # v8 is all zero -> empty mask
        asm.li("x3", REGIONS["S"][0])
        asm.li("x4", 16)
        asm.vsse64_v("v9", "x3", "x4", masked=True)
        asm.vid_v("v10")
        asm.vsll_vi("v10", "v10", 3)
        asm.vsuxei64_v("v9", "x3", "v10", masked=True)
        asm.halt()
        program = asm.build()
        for config in machine_pair:
            Simulator(config).run(program)  # must not raise
