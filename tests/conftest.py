"""Shared fixtures: small machine configurations for fast tests."""

from __future__ import annotations

import pytest

from repro.params import Ara2Config, AraXLConfig


@pytest.fixture
def ara2_small() -> Ara2Config:
    return Ara2Config(lanes=4)


@pytest.fixture
def araxl_small() -> AraXLConfig:
    return AraXLConfig(lanes=8)


@pytest.fixture
def araxl_big() -> AraXLConfig:
    return AraXLConfig(lanes=64)
