"""Shared fixtures: small machine configs + the fuzz seed-count knob."""

from __future__ import annotations

import pytest

from repro.env import ENV_FUZZ_SEEDS, read_env
from repro.params import Ara2Config, AraXLConfig

#: Tier-1 default: small, so the property tests stay fast; CI's
#: fuzz-smoke job and local soak runs raise it via --fuzz-seeds or
#: $REPRO_FUZZ_SEEDS.
DEFAULT_FUZZ_SEEDS = 8


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--fuzz-seeds", type=int, default=None, metavar="N",
        help="seed count for the fuzz property tests "
             f"(default: $REPRO_FUZZ_SEEDS, else {DEFAULT_FUZZ_SEEDS})")


def fuzz_seed_count(config) -> int:
    """Resolve the seed count: CLI flag -> env knob -> default."""
    from_cli = config.getoption("--fuzz-seeds")
    if from_cli is not None:
        return max(1, int(from_cli))
    from_env = read_env(ENV_FUZZ_SEEDS)
    if from_env:
        return max(1, int(from_env))
    return DEFAULT_FUZZ_SEEDS


def pytest_generate_tests(metafunc) -> None:
    # Tests taking a ``fuzz_seed`` argument run once per seed; the seed
    # value is baked into the test id, so a failure names its seed.
    if "fuzz_seed" in metafunc.fixturenames:
        seeds = range(fuzz_seed_count(metafunc.config))
        metafunc.parametrize("fuzz_seed", seeds,
                             ids=[f"seed{s}" for s in seeds])


@pytest.fixture
def ara2_small() -> Ara2Config:
    return Ara2Config(lanes=4)


@pytest.fixture
def araxl_small() -> AraXLConfig:
    return AraXLConfig(lanes=8)


@pytest.fixture
def araxl_big() -> AraXLConfig:
    return AraXLConfig(lanes=64)
