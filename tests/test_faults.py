"""Deterministic fault injection: chaos sweeps + every recovery path.

The chaos harness re-runs the five-sweep byte-identity suite from
``test_capture_parallel`` under a seeded :class:`~repro.sim.faults
.FaultPlan` injecting worker crashes, hangs, corrupted envelope
payloads and ``ENOSPC`` all at once — the rendered output must still be
byte-identical to a clean serial run, with the recoveries showing up in
the pool's :class:`~repro.sim.faults.FaultLog` instead of the results.
The unit tests below then pin each rung of the recovery ladder on its
own: timeout-reassign, retry + executor rebuild, poison-job quarantine,
checksum purge-on-read (and on GC), ``ENOSPC`` memory-only degradation
with its one-shot warning, transient-I/O retry, and the whole-pool
serial degradation latch.
"""

from __future__ import annotations

import warnings

import pytest

from repro.params import Ara2Config, AraXLConfig
from repro.sim import (CapturePool, CaptureTask, SimPool, TraceCache,
                       TraceStore, run_pipeline)
from repro.sim.faults import (ENV_FAULT_PLAN, FaultLog, FaultPlan,
                              JobTimeout)
from repro.sim.trace_cache import disk_path

from test_capture_parallel import SWEEPS

# One plan stresses every injector at once: ≥10% of job attempts crash
# or hang, ≥10% of disk writes are corrupted or refused.  ``hang_s``
# comfortably exceeds the harness ``job_timeout`` so an injected hang
# is always seen as a hang, never as a slow success.
CHAOS_SPEC = ("seed=11,crash=0.15,hang=0.1,corrupt=0.2,enospc=0.1,"
              "io=0.1,hang_s=1.5")
CHAOS_JOB_TIMEOUT = 0.5

#: FaultLog counters aggregated across the parametrized chaos sweeps,
#: so the suite-level test below can assert which paths fired overall.
_CHAOS_TOTALS: dict[str, dict] = {}


class TestChaosSweeps:
    """All five sweeps, byte-identical under combined fault load."""

    @pytest.mark.parametrize("name", sorted(SWEEPS))
    def test_sweep_byte_identical_under_chaos(self, name, tmp_path,
                                              monkeypatch):
        sweep = SWEEPS[name]
        clean = sweep(TraceStore(disk_dir=tmp_path / "clean"), 1, 1)

        monkeypatch.setenv(ENV_FAULT_PLAN, CHAOS_SPEC)
        store = TraceStore(disk_dir=tmp_path / "chaos")
        pool = SimPool(workers=2, capture_workers=2, cache=store,
                       job_timeout=CHAOS_JOB_TIMEOUT)
        chaotic = sweep(store, 2, 2, sim_pool=pool)

        assert chaotic == clean
        log = pool.fault_log.as_dict()
        log["corrupt_purged"] = store.corrupt_purged
        log["io_retries"] = store.io_retries
        _CHAOS_TOTALS[name] = log
        assert pool.fault_log.recovered_total() > 0, \
            f"{name}: the chaos plan injected nothing recoverable"

    def test_recovery_paths_covered_across_chaos_sweeps(self):
        """Aggregated over the five sweeps, the big recovery rungs all
        fired at least once (each is also pinned alone below)."""
        if len(_CHAOS_TOTALS) < len(SWEEPS):
            pytest.skip("needs the full parametrized chaos run first")
        total = FaultLog()
        for log in _CHAOS_TOTALS.values():
            for field in ("worker_crashes", "timeouts", "retries",
                          "pool_rebuilds", "fallbacks"):
                setattr(total, field, getattr(total, field) + log[field])
        assert total.worker_crashes > 0
        assert total.timeouts > 0
        assert total.retries > 0
        assert total.pool_rebuilds > 0
        assert total.fallbacks > 0


# ----------------------------------------------------------------------
# A tiny two-capture / four-replay pipeline for the pool unit tests.
# ----------------------------------------------------------------------
CFG_ARA2 = Ara2Config(lanes=8)
CFG_ARAXL = AraXLConfig(lanes=8)


def _tiny_pipeline(pool):
    captures = [CaptureTask.for_kernel("fmatmul", CFG_ARA2, 64,
                                       {"m": 8, "k": 16}),
                CaptureTask.for_kernel("fdotproduct", CFG_ARA2, 64, {})]
    replays = [(CFG_ARA2, 0), (CFG_ARAXL, 0),
               (CFG_ARA2, 1), (CFG_ARAXL, 1)]
    return run_pipeline(captures, replays, pool)


@pytest.fixture(scope="module")
def tiny_serial():
    """Clean serial reference results for :func:`_tiny_pipeline`."""
    return _tiny_pipeline(SimPool(workers=1, cache=TraceCache()))


class TestPoolRecoveryLadder:
    def test_hung_worker_times_out_and_job_is_reassigned(self, tmp_path,
                                                         tiny_serial):
        """Every first pooled attempt hangs well past ``job_timeout``:
        the futures are abandoned (counted as timeouts), the jobs
        reassigned, and the pipeline still matches serial."""
        plan = FaultPlan(seed=3, hang_rate=1.0, hang_attempts=1,
                         hang_seconds=3.0)
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path),
                       fault_plan=plan, job_timeout=0.3)
        assert _tiny_pipeline(pool) == tiny_serial
        assert pool.fault_log.timeouts >= 1
        assert pool.fault_log.retries + pool.fault_log.fallbacks >= 1

    def test_crashed_worker_rebuilds_pool_and_retry_succeeds(
            self, tmp_path, tiny_serial):
        """A worker crash breaks the whole executor; the pool retires
        it, rebuilds, and the once-retried jobs succeed (the crash only
        fires on each job's first attempt)."""
        plan = FaultPlan(seed=5, crash_rate=1.0, crash_attempts=1)
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path),
                       fault_plan=plan, max_rebuilds=10)
        assert _tiny_pipeline(pool) == tiny_serial
        assert pool.fault_log.worker_crashes >= 1
        assert pool.fault_log.pool_rebuilds >= 1
        assert pool.fault_log.retries >= 1
        assert pool.fault_log.error_types  # classified, not just counted

    def test_poison_job_is_quarantined_in_process(self, tmp_path,
                                                  tiny_serial):
        """A job that kills its worker on *every* attempt gets exactly
        one pooled retry, then runs in the parent with its key flagged."""
        plan = FaultPlan(seed=5, crash_rate=1.0)  # no attempt cap
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path),
                       fault_plan=plan, max_rebuilds=50)
        assert _tiny_pipeline(pool) == tiny_serial
        assert pool.fault_log.quarantined >= 1
        assert pool.fault_log.quarantined_keys
        assert pool.fault_log.fallbacks >= 1

    def test_rebuild_budget_exhaustion_degrades_to_serial(self, tmp_path,
                                                          tiny_serial):
        """With no rebuilds allowed, the first break latches the pool
        serial-only — the sweep completes in-process, counted once."""
        plan = FaultPlan(seed=5, crash_rate=1.0)
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path),
                       fault_plan=plan, max_rebuilds=0)
        assert _tiny_pipeline(pool) == tiny_serial
        assert pool.fault_log.serial_degradations == 1
        assert pool.fault_log.pool_rebuilds == 0
        assert not pool._pool_usable()

    def test_job_timeout_validation(self):
        with pytest.raises(ValueError):
            SimPool(job_timeout=0)
        with pytest.raises(ValueError):
            SimPool(job_timeout=-1.5)


# ----------------------------------------------------------------------
# Store-tier integrity: checksum, ENOSPC, transient I/O.
# ----------------------------------------------------------------------
def _capture_one(store, k=16):
    """Capture one fmatmul trace into ``store``; returns its key."""
    cfg = Ara2Config(lanes=4)
    task = CaptureTask.for_kernel("fmatmul", cfg, 64, {"m": 8, "k": k})
    CapturePool(workers=1, cache=store).capture_batch([task])
    return task.key()


class TestStoreIntegrity:
    def test_checksum_mismatch_is_purged_on_read(self, tmp_path):
        """A corrupted payload fails its CRC on the next disk read: the
        entry is purged and counted, and the caller sees a plain miss
        (so the pipeline recaptures instead of crashing)."""
        writer = TraceStore(disk_dir=tmp_path,
                            fault_plan=FaultPlan(seed=2, corrupt_rate=1.0))
        key = _capture_one(writer)
        path = disk_path(tmp_path, key)
        assert path.exists()

        reader = TraceStore(disk_dir=tmp_path)
        assert reader.probe(key) is False  # CRC checked without decode
        assert reader.get(key) is None
        assert reader.corrupt_purged == 1
        assert reader.stats["corrupt_purged"] == 1
        assert not path.exists()

    def test_gc_purges_checksum_failures(self, tmp_path):
        writer = TraceStore(disk_dir=tmp_path,
                            fault_plan=FaultPlan(seed=2, corrupt_rate=1.0))
        _capture_one(writer)
        store = TraceStore(disk_dir=tmp_path)
        assert any(row["corrupt"] for row in store.manifest())
        assert store.store_stats["corrupt_entries"] == 1
        summary = store.gc()
        assert summary["purged_corrupt"] == 1
        assert store.corrupt_purged == 1
        assert store.gc()["purged_corrupt"] == 0  # gone for good

    def test_enospc_degrades_to_memory_only_with_one_warning(self,
                                                             tmp_path):
        store = TraceStore(disk_dir=tmp_path,
                           fault_plan=FaultPlan(seed=1, enospc_rate=1.0))
        with pytest.warns(RuntimeWarning, match="memory-only"):
            key = _capture_one(store, k=16)
        assert store.memory_only
        assert store.stats["memory_only"] is True
        assert store.get(key) is not None  # the LRU still serves it
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the warning is one-shot
            key2 = _capture_one(store, k=32)
        assert store.get(key2) is not None
        assert not list(tmp_path.glob("*.pkl"))  # nothing hit the disk

    def test_transient_io_error_is_retried_and_succeeds(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path,
                           fault_plan=FaultPlan(seed=1, io_error_rate=1.0,
                                                io_attempts=1))
        key = _capture_one(store)
        assert store.io_retries == 1
        assert store.put_errors == 0
        assert not store.memory_only
        assert TraceStore(disk_dir=tmp_path).probe(key)  # landed intact

    def test_persistent_io_error_abandons_the_entry(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path,
                           fault_plan=FaultPlan(seed=1, io_error_rate=1.0))
        key = _capture_one(store)
        assert store.put_errors == 1
        assert store.get(key) is not None  # memory half still holds it
        assert not list(tmp_path.glob("*.pkl"))


# ----------------------------------------------------------------------
# FaultPlan / FaultLog mechanics.
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec("seed=7,crash=0.25,hang=0.1,"
                                   "corrupt=0.5,enospc=0.05,io=0.1,"
                                   "hang_s=0.2,crash_n=2")
        assert plan.seed == 7
        assert plan.crash_rate == 0.25
        assert plan.hang_seconds == 0.2
        assert plan.crash_attempts == 2
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("seed=1,frobnicate=0.5")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_FAULT_PLAN, "seed=9,crash=0.5")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=9, crash_rate=0.5)

    def test_rolls_are_deterministic_and_uniform_range(self):
        plan = FaultPlan(seed=42)
        first = plan.roll("crash", "token", 0)
        assert plan.roll("crash", "token", 0) == first
        assert 0.0 <= first < 1.0
        assert plan.roll("crash", "token", 1) != first
        assert plan.roll("hang", "token", 0) != first
        assert FaultPlan(seed=43).roll("crash", "token", 0) != first

    def test_attempt_cap_spares_retries(self):
        plan = FaultPlan(seed=1, crash_rate=1.0, crash_attempts=1)
        assert plan.should_crash("job", 0)
        assert not plan.should_crash("job", 1)

    def test_corruption_changes_bytes_deterministically(self):
        plan = FaultPlan(seed=1, corrupt_rate=1.0)
        payload = b"0123456789"
        mangled = plan.corrupted("t", 0, payload)
        assert mangled != payload
        assert len(mangled) == len(payload)
        assert plan.corrupted("t", 0, payload) == mangled
        clean = FaultPlan(seed=1).corrupted("t", 0, payload)
        assert clean == payload

    def test_fault_log_totals(self):
        log = FaultLog()
        assert log.recovered_total() == 0
        log.retries, log.timeouts, log.fallbacks = 2, 1, 3
        log.note_error(JobTimeout("late"))
        log.note_error(RuntimeError("boom"))
        log.note_error(RuntimeError("boom again"))
        assert log.recovered_total() == 6
        assert log.error_types == {"JobTimeout": 1, "RuntimeError": 2}
        as_dict = log.as_dict()
        assert as_dict["retries"] == 2
        assert as_dict["error_types"] == log.error_types
