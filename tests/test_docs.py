"""Documentation sanity under tier-1: the docs lint must stay green.

Runs the same checks as ``tools/check_docs.py`` (the CI docs job):
README/docs links resolve, the documented ``python -m repro.eval``
command lines parse with the real argument parser, and every module
under ``src/repro`` carries docstrings.  Keeping these in tier-1 means
a broken doc example fails the same command a contributor already runs.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


linter = _load_linter()


def test_doc_files_exist():
    """README.md and both docs/ pages are present."""
    for doc in linter.iter_doc_files(REPO_ROOT):
        assert doc.is_file(), f"missing documentation file: {doc}"


def test_links_resolve():
    """Every relative markdown link points at a real file."""
    assert linter.check_links(REPO_ROOT) == []


def test_cli_examples_parse():
    """Documented CLI invocations run (parse) as written."""
    examples = linter.iter_cli_examples(REPO_ROOT)
    assert examples, "docs must contain at least one CLI example"
    assert linter.check_cli_examples(REPO_ROOT) == []


def test_readme_documents_every_cli_flag():
    """Each eval CLI option appears somewhere in the README."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.eval.__main__ import build_parser
    finally:
        sys.path.pop(0)
    readme = (REPO_ROOT / "README.md").read_text()
    for action in build_parser()._actions:
        for option in action.option_strings:
            if option in ("-h", "--help"):
                continue
            assert option in readme, f"README does not mention {option}"


def test_module_docstrings_present():
    """Every repro module and public top-level def has a docstring."""
    assert linter.check_docstrings(REPO_ROOT) == []
