"""Documentation sanity under tier-1: the docs lint must stay green.

Runs the docs rules of the unified lint suite (RL601 links, RL602 CLI
examples, RL603 docstrings — ``tools/lint/checkers/docs.py``), the
same checks CI's lint job runs.  Keeping these in tier-1 means a
broken doc example fails the same command a contributor already runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.lint import run_lint  # noqa: E402
from tools.lint.checkers.docs import (  # noqa: E402
    DOC_FILES, iter_cli_examples)


def _docs_findings(codes):
    result = run_lint(root=REPO_ROOT, select=list(codes))
    return [f.format() for f in result.findings]


def test_doc_files_exist():
    """README.md and every docs/ page in DOC_FILES is present."""
    for name in DOC_FILES:
        assert (REPO_ROOT / name).is_file(), \
            f"missing documentation file: {name}"


def test_links_resolve():
    """Every relative markdown link points at a real file (RL601)."""
    assert _docs_findings(["RL601"]) == []


def test_cli_examples_parse():
    """Documented CLI invocations run (parse) as written (RL602)."""
    assert iter_cli_examples(REPO_ROOT), \
        "docs must contain at least one CLI example"
    assert _docs_findings(["RL602"]) == []


def test_readme_documents_every_cli_flag():
    """Each eval CLI option appears somewhere in the README."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.eval.__main__ import build_parser
    finally:
        sys.path.pop(0)
    readme = (REPO_ROOT / "README.md").read_text()
    for action in build_parser()._actions:
        for option in action.option_strings:
            if option in ("-h", "--help"):
                continue
            assert option in readme, f"README does not mention {option}"


def test_module_docstrings_present():
    """Every repro module and public top-level def has one (RL603)."""
    assert _docs_findings(["RL603"]) == []
