"""Functional memory: typed access, strided/gather paths, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.functional.memory import FunctionalMemory


@pytest.fixture
def mem():
    return FunctionalMemory(1 << 16)


class TestTypedAccess:
    def test_array_roundtrip(self, mem):
        data = np.arange(100, dtype=np.float64)
        mem.write_array(128, data)
        assert np.array_equal(mem.read_array(128, 100, np.float64), data)

    @given(st.integers(min_value=-2**63, max_value=2**63 - 1))
    @settings(max_examples=50)
    def test_int_roundtrip(self, value):
        mem = FunctionalMemory(64)
        mem.store_int(0, value, 8)
        assert mem.load_int(0, 8, signed=True) == value

    def test_f64_roundtrip(self, mem):
        mem.store_f64(8, 3.25)
        assert mem.load_f64(8) == 3.25

    def test_f32_roundtrip(self, mem):
        mem.store_f32(4, -1.5)
        assert mem.load_f32(4) == -1.5

    def test_little_endian(self, mem):
        mem.store_int(0, 0x0102030405060708, 8)
        assert mem.read_bytes(0, 1)[0] == 0x08


class TestBounds:
    def test_read_past_end(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.read_bytes(mem.size - 4, 8)

    def test_negative_address(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.read_bytes(-1, 4)

    def test_strided_bounds_checked(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.read_strided(mem.size - 16, 4, 8, np.float64)

    def test_zero_size_memory_rejected(self):
        with pytest.raises(MemoryAccessError):
            FunctionalMemory(0)


class TestStrided:
    def test_read_strided_matches_manual(self, mem):
        data = np.arange(64, dtype=np.float64)
        mem.write_array(0, data)
        got = mem.read_strided(0, 8, 24, np.float64)  # every 3rd element
        assert np.array_equal(got, data[::3][:8])

    def test_negative_stride(self, mem):
        data = np.arange(16, dtype=np.float64)
        mem.write_array(0, data)
        got = mem.read_strided(15 * 8, 16, -8, np.float64)
        assert np.array_equal(got, data[::-1])

    def test_write_strided(self, mem):
        mem.write_strided(0, np.array([1.0, 2.0, 3.0]), 16)
        assert mem.load_f64(0) == 1.0
        assert mem.load_f64(16) == 2.0
        assert mem.load_f64(32) == 3.0

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=8, max_value=64).map(lambda s: s // 8 * 8))
    @settings(max_examples=30)
    def test_strided_roundtrip(self, count, stride):
        mem = FunctionalMemory(1 << 14)
        values = np.arange(count, dtype=np.float64)
        mem.write_strided(0, values, stride)
        assert np.array_equal(mem.read_strided(0, count, stride, np.float64),
                              values)


class TestGatherScatter:
    def test_gather(self, mem):
        data = np.arange(32, dtype=np.float64)
        mem.write_array(0, data)
        offsets = np.array([0, 64, 8, 240])
        got = mem.read_gather(0, offsets, np.float64)
        assert np.array_equal(got, [0.0, 8.0, 1.0, 30.0])

    def test_scatter(self, mem):
        mem.write_scatter(0, np.array([0, 80]), np.array([5.0, 7.0]))
        assert mem.load_f64(0) == 5.0
        assert mem.load_f64(80) == 7.0

    def test_empty_gather(self, mem):
        got = mem.read_gather(0, np.array([], dtype=np.int64), np.float64)
        assert got.size == 0


class TestAllocator:
    def test_alignment(self, mem):
        a = mem.alloc(10, align=64)
        b = mem.alloc(10, align=64)
        assert a % 64 == 0 and b % 64 == 0 and b >= a + 10

    def test_out_of_memory(self):
        small = FunctionalMemory(128)
        with pytest.raises(MemoryAccessError):
            small.alloc(256)

    def test_reset(self, mem):
        first = mem.alloc(100)
        mem.reset_allocator()
        assert mem.alloc(100) == first
