"""Configuration objects: validation, derived quantities, the VLEN law."""

import pytest

from repro.errors import ConfigError
from repro.params import (Ara2Config, AraXLConfig, MemoryConfig,
                          RVV_MAX_VLEN_BITS, ScalarCoreConfig,
                          paper_configurations)


class TestVlenLaw:
    def test_16_lane_matches_ara2_vlen(self):
        assert Ara2Config(lanes=16).vlen_bits == 16 * 1024

    def test_64_lane_reaches_rvv_maximum(self):
        assert AraXLConfig(lanes=64).vlen_bits == RVV_MAX_VLEN_BITS

    def test_128_lanes_would_exceed_rvv_limit(self):
        with pytest.raises(ConfigError):
            AraXLConfig(lanes=128)

    @pytest.mark.parametrize("lanes", [2, 4, 8, 16, 32, 64])
    def test_vlmax_dp(self, lanes):
        cfg = AraXLConfig(lanes=lanes) if lanes >= 4 else Ara2Config(lanes=lanes)
        assert cfg.vlmax(64, 1) == 16 * lanes
        assert cfg.vlmax(64, 8) == 128 * lanes

    def test_vlmax_scales_inverse_with_sew(self):
        cfg = Ara2Config(lanes=8)
        assert cfg.vlmax(32) == 2 * cfg.vlmax(64)
        assert cfg.vlmax(8) == 8 * cfg.vlmax(64)

    def test_vlmax_rejects_bad_sew_and_lmul(self):
        cfg = Ara2Config(lanes=8)
        with pytest.raises(ConfigError):
            cfg.vlmax(24)
        with pytest.raises(ConfigError):
            cfg.vlmax(64, 3)


class TestBytesPerLane:
    @pytest.mark.parametrize("bpl,expected_lmul", [(64, 1), (128, 1),
                                                   (256, 2), (512, 4)])
    def test_paper_sweep_lmuls(self, bpl, expected_lmul):
        cfg = AraXLConfig(lanes=64)
        vl = cfg.vl_for_bytes_per_lane(bpl)
        assert cfg.lmul_for_vl(vl) == expected_lmul

    def test_roundtrip(self):
        cfg = AraXLConfig(lanes=16)
        vl = cfg.vl_for_bytes_per_lane(256)
        assert cfg.bytes_per_lane(vl) == 256

    def test_rejects_fractional_elements(self):
        with pytest.raises(ConfigError):
            Ara2Config(lanes=2).vl_for_bytes_per_lane(3)

    def test_vl_too_large_for_any_lmul(self):
        cfg = Ara2Config(lanes=2)
        with pytest.raises(ConfigError):
            cfg.lmul_for_vl(cfg.vlmax(64, 8) + 1)


class TestClusters:
    def test_cluster_count(self):
        assert AraXLConfig(lanes=64).clusters == 16
        assert AraXLConfig(lanes=16).clusters == 4

    def test_sub_cluster_config_is_single_cluster(self):
        cfg = AraXLConfig(lanes=4)
        assert cfg.clusters == 1
        assert cfg.lanes_per_cluster == 4

    def test_non_multiple_of_cluster_rejected(self):
        with pytest.raises(ConfigError):
            AraXLConfig(lanes=12)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            Ara2Config(lanes=6)


class TestLatencyKnobs:
    def test_glsu_extra_regs_deepen_pipeline(self):
        base = AraXLConfig(lanes=16)
        cut = AraXLConfig(lanes=16, glsu_extra_regs=4)
        assert cut.glsu_pipeline_stages == base.glsu_pipeline_stages + 4

    def test_reqi_extra_reg_delays_ack_by_two(self):
        base = AraXLConfig(lanes=16)
        cut = AraXLConfig(lanes=16, reqi_extra_regs=1)
        delta = (cut.reqi_issue_latency + cut.reqi_ack_latency) \
            - (base.reqi_issue_latency + base.reqi_ack_latency)
        assert delta == 2

    def test_ringi_extra_reg_adds_hop_cycle(self):
        base = AraXLConfig(lanes=16)
        cut = AraXLConfig(lanes=16, ringi_extra_regs=1)
        assert cut.ring_hop_cycles == base.ring_hop_cycles + 1

    def test_negative_regs_rejected(self):
        with pytest.raises(ConfigError):
            AraXLConfig(lanes=16, glsu_extra_regs=-1)


class TestSubConfigs:
    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(size_bytes=0)
        with pytest.raises(ConfigError):
            MemoryConfig(read_bytes_per_cycle_per_lane=0)

    def test_scalar_validation(self):
        with pytest.raises(ConfigError):
            ScalarCoreConfig(alu_latency=0)
        with pytest.raises(ConfigError):
            ScalarCoreConfig(dcache_bytes=1000, dcache_line_bytes=64)

    def test_bandwidth_matches_fdotproduct_bound(self):
        # 8 B/cycle/lane read bandwidth is what makes Table I's
        # fdotproduct bound (lanes DP-FLOP/cycle) reachable.
        cfg = AraXLConfig(lanes=64)
        elems_per_cycle = cfg.mem_read_bytes_per_cycle / 8
        assert elems_per_cycle / 2 * 2 == cfg.lanes


def test_paper_configurations_inventory():
    configs = paper_configurations()
    assert {"8L-Ara2", "16L-Ara2", "8L-AraXL", "16L-AraXL", "32L-AraXL",
            "64L-AraXL"} <= set(configs)
    assert configs["64L-AraXL"].vlen_bits == RVV_MAX_VLEN_BITS
