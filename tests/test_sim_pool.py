"""SimPool: one budget, tagged jobs, adaptive chunking, phase timing.

Pins the tentpole invariants of the shared capture/replay pool:

* **Byte-identity** — every sweep renders identically through any
  ``SimPool`` sizing (the five-sweep serial-vs-pooled harness lives in
  ``test_capture_parallel``; here the pool is passed explicitly so its
  stats can be asserted too).
* **Oversubscription cap** — one pipeline builds exactly one executor,
  sized by the single ``workers=`` budget, and both job kinds run on
  it; ``capture_workers`` clamps to the budget.
* **Adaptive chunking** — replay submissions split by live queue depth
  (pure-function determinism), and results stay in replay order under
  any schedule.
* **PipelineStats** — per-phase points/seconds aggregate correctly,
  per worker, pooled or in-process.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.eval.fig6_scaling import render_fig6, run_fig6
from repro.params import Ara2Config, AraXLConfig
from repro.sim import SimPool, TraceCache, TraceStore
from repro.sim.parallel import PARENT_WORKER, PipelineStats
import repro.sim.parallel as parallel_mod

from test_capture_parallel import SWEEPS


def _small_fig6(pool):
    return render_fig6(run_fig6(
        kernels=("fmatmul", "fdotproduct"), bytes_per_lane=(64,),
        machines=[Ara2Config(lanes=8), AraXLConfig(lanes=8),
                  AraXLConfig(lanes=16)],
        scale="reduced", sim_pool=pool))


# ----------------------------------------------------------------------
# Construction and knob semantics
# ----------------------------------------------------------------------
class TestSimPoolKnobs:
    def test_defaults_and_validation(self):
        assert SimPool().workers == 1
        assert SimPool(workers=None).workers >= 1
        with pytest.raises(ValueError):
            SimPool(workers=0)
        with pytest.raises(ValueError):
            SimPool(workers=2, capture_workers=0)

    def test_capture_split_clamps_to_budget(self):
        """The soft split can never promise more slots than exist."""
        assert SimPool(workers=2, capture_workers=5).capture_workers == 2
        assert SimPool(workers=4, capture_workers=2).capture_workers == 2
        assert SimPool(workers=3).capture_workers <= 3  # autodetect clamp
        assert SimPool(workers=1, capture_workers=8).capture_workers == 1


# ----------------------------------------------------------------------
# One executor, sized by the budget, serving both tags
# ----------------------------------------------------------------------
class _RecordingExecutor:
    """Wraps the real executor, recording sizing and submission tags."""

    instances: list["_RecordingExecutor"] = []

    def __init__(self, max_workers=None, **kwargs):
        self.max_workers = max_workers
        self.tags: list[str] = []
        self._real = ProcessPoolExecutor(max_workers=max_workers, **kwargs)
        _RecordingExecutor.instances.append(self)

    def submit(self, fn, *args, **kwargs):
        self.tags.append(args[0] if args else "?")
        return self._real.submit(fn, *args, **kwargs)

    def shutdown(self, **kwargs):
        self._real.shutdown(**kwargs)


class TestSingleSharedExecutor:
    def test_one_executor_caps_total_processes(self, tmp_path, monkeypatch):
        """A cold pooled pipeline builds exactly ONE executor, sized by
        the workers budget, and runs capture AND replay jobs on it —
        the old two-pool design held capture_workers + workers
        processes during the overlap window."""
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor",
                            _RecordingExecutor)
        _RecordingExecutor.instances = []
        pool = SimPool(workers=2, capture_workers=5,
                       cache=TraceStore(disk_dir=tmp_path))
        serial = _small_fig6(SimPool(workers=1, cache=TraceCache()))
        pooled = _small_fig6(pool)
        assert pooled == serial
        assert len(_RecordingExecutor.instances) == 1
        recorder = _RecordingExecutor.instances[0]
        assert recorder.max_workers == 2  # the single budget, not 2 + 5
        assert "capture" in recorder.tags
        assert "replay" in recorder.tags

    def test_workers_one_never_builds_an_executor(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("workers=1 must stay in-process"))
        pool = SimPool(workers=1, capture_workers=4,
                       cache=TraceStore(disk_dir=tmp_path))
        _small_fig6(pool)


# ----------------------------------------------------------------------
# Adaptive replay chunking
# ----------------------------------------------------------------------
class TestAdaptiveChunks:
    def test_payload_submissions_never_split(self):
        pool = SimPool(workers=4)
        assert pool._adaptive_chunks(8, on_disk=False, queue_depth=0) == 1

    def test_busy_pool_gets_one_job(self):
        """Queueing extra chunks behind a full pool buys nothing."""
        pool = SimPool(workers=4)
        assert pool._adaptive_chunks(8, on_disk=True, queue_depth=4) == 1
        assert pool._adaptive_chunks(8, on_disk=True, queue_depth=9) == 1

    def test_idle_pool_fills_its_slots(self):
        pool = SimPool(workers=4)
        assert pool._adaptive_chunks(8, on_disk=True, queue_depth=0) == 4
        assert pool._adaptive_chunks(8, on_disk=True, queue_depth=3) == 1
        assert pool._adaptive_chunks(8, on_disk=True, queue_depth=2) == 2

    def test_never_more_chunks_than_configs(self):
        pool = SimPool(workers=8)
        assert pool._adaptive_chunks(3, on_disk=True, queue_depth=0) == 3
        assert pool._adaptive_chunks(1, on_disk=True, queue_depth=0) == 1

    def test_deterministic_pure_function(self):
        pool = SimPool(workers=4)
        grid = [(n, d) for n in (1, 2, 5, 9) for d in (0, 1, 3, 4, 7)]
        first = [pool._adaptive_chunks(n, True, d) for n, d in grid]
        second = [pool._adaptive_chunks(n, True, d) for n, d in grid]
        assert first == second


# ----------------------------------------------------------------------
# Byte-identity with explicitly supplied pools, all five sweeps
# ----------------------------------------------------------------------
class TestSweepIdentityAcrossPoolSizings:
    @pytest.mark.parametrize("name", sorted(SWEEPS))
    def test_sweep_identical_for_any_sizing(self, name, tmp_path):
        """Serial, replay-only fan-out, and full shared-pool schedules
        render the same bytes (results order is replay order, not
        completion order)."""
        sweep = SWEEPS[name]
        serial = sweep(TraceStore(disk_dir=tmp_path / "serial"), 1, 1)
        replay_only = sweep(TraceStore(disk_dir=tmp_path / "r"), 3, 1)
        assert replay_only == serial
        shared = sweep(TraceStore(disk_dir=tmp_path / "s"), 2, 2)
        assert shared == serial


# ----------------------------------------------------------------------
# PipelineStats accounting
# ----------------------------------------------------------------------
class TestPipelineStats:
    def _counts(self, pool):
        return (pool.pipeline_stats.capture_points,
                pool.pipeline_stats.replay_points)

    def test_serial_pipeline_counts_points(self):
        pool = SimPool(workers=1, cache=TraceCache())
        _small_fig6(pool)
        # 2 kernels x 1 size: 2 distinct VLEN groups (8L-Ara2/8L-AraXL
        # share one), 2 captures per kernel... = 4 captures, 6 replays.
        assert self._counts(pool) == (4, 6)
        assert pool.pipeline_stats.capture_seconds > 0.0
        assert pool.pipeline_stats.replay_seconds > 0.0
        assert set(pool.pipeline_stats.per_worker) == {PARENT_WORKER}

    def test_pooled_pipeline_counts_match_serial(self, tmp_path):
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path))
        _small_fig6(pool)
        assert self._counts(pool) == (4, 6)

    def test_per_worker_breakdown_sums_to_totals(self, tmp_path):
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path))
        _small_fig6(pool)
        ps = pool.pipeline_stats
        for tag in ("capture", "replay"):
            assert sum(w[f"{tag}_points"]
                       for w in ps.per_worker.values()) \
                == getattr(ps, f"{tag}_points")
            assert sum(w[f"{tag}_seconds"]
                       for w in ps.per_worker.values()) \
                == pytest.approx(getattr(ps, f"{tag}_seconds"))

    def test_warm_pipeline_serves_captures_in_parent(self, tmp_path):
        store_dir = tmp_path / "warm"
        _small_fig6(SimPool(workers=1, cache=TraceStore(disk_dir=store_dir)))
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=store_dir))
        _small_fig6(pool)
        ps = pool.pipeline_stats
        # Warm keys never reach the workers' capture path.
        parent = ps.per_worker[PARENT_WORKER]
        assert parent["capture_points"] == ps.capture_points == 4

    def test_seconds_per_point(self):
        stats = PipelineStats()
        assert stats.seconds_per_point("capture") == 0.0
        stats.note("capture", 0, 2, 1.0)
        stats.note("replay", 7, 4, 2.0)
        assert stats.seconds_per_point("capture") == pytest.approx(0.5)
        assert stats.seconds_per_point("replay") == pytest.approx(0.5)
        assert stats.per_worker[7]["replay_points"] == 4

    def test_batch_facades_time_their_phase(self, tmp_path):
        from repro.sim import CapturePool, CaptureTask, ReplayPool

        cfg = Ara2Config(lanes=4)
        task = CaptureTask.for_kernel("fmatmul", cfg, 64,
                                      {"m": 8, "k": 16})
        cap = CapturePool(workers=1, cache=TraceCache())
        [captured] = cap.capture_batch([task])
        assert cap.pipeline_stats.capture_points == 1
        rep = ReplayPool(workers=1)
        rep.replay_batch([(cfg, captured)] * 3)
        assert rep.pipeline_stats.replay_points == 3
        assert rep.pipeline_stats.replay_seconds > 0.0


# ----------------------------------------------------------------------
# Degradation: the shared pool must finish the sweep, never fail it
# ----------------------------------------------------------------------
class TestSharedPoolDegradation:
    def test_dead_workers_degrade_both_phases(self, tmp_path, monkeypatch):
        """With every pooled job unrunnable (unpicklable entry point ->
        all futures raise), captures AND replays fall back in-process
        and the rendered sweep is still byte-identical to serial —
        before the shared pool, a worker death could only break one
        phase; now it must break neither."""
        serial = _small_fig6(SimPool(workers=1, cache=TraceCache()))
        monkeypatch.setattr(parallel_mod, "_run_job",
                            lambda *a: (_ for _ in ()).throw(RuntimeError))
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path))
        assert _small_fig6(pool) == serial
        assert pool.fallbacks > 0
        # Accounting stays points-served, not attempts: 4 distinct
        # operating points, 6 replays, whatever the degradation path.
        assert pool.pipeline_stats.capture_points == 4
        assert pool.pipeline_stats.replay_points == 6

    def test_gc_evicted_adoption_counts_points_once(self, tmp_path,
                                                    monkeypatch):
        """A worker capture whose entry the GC eats before adoption is
        re-captured locally — extra seconds, but the operating point is
        only counted once (bench assertions rely on points == points)."""
        monkeypatch.setattr(TraceStore, "ingest_remote",
                            lambda self, key, payload=None: None)
        pool = SimPool(workers=2, capture_workers=2,
                       cache=TraceStore(disk_dir=tmp_path))
        _small_fig6(pool)
        assert pool.fallbacks == 4
        assert pool.pipeline_stats.capture_points == 4

    def test_duplicate_key_captures_collapse(self, tmp_path):
        """Two capture tasks resolving to one trace key run ONE
        functional capture; the shared result serves both plans."""
        from repro.sim import CaptureTask, run_pipeline

        cfg_a, cfg_b = Ara2Config(lanes=8), AraXLConfig(lanes=8)
        # Same VLEN, same program, same setup: equal trace keys.
        captures = [CaptureTask.for_kernel("fmatmul", cfg_a, 64,
                                           {"m": 8, "k": 16}),
                    CaptureTask.for_kernel("fmatmul", cfg_b, 64,
                                           {"m": 8, "k": 16})]
        assert captures[0].key() == captures[1].key()
        replays = [(cfg_a, 0), (cfg_b, 1)]
        store = TraceStore(disk_dir=tmp_path)
        pool = SimPool(workers=2, capture_workers=2, cache=store)
        reports = run_pipeline(captures, replays, pool)
        assert all(r is not None for r in reports)
        assert reports[0] != reports[1]  # different timing models
        stats = store.stats
        assert stats["misses"] + stats["remote_puts"] == 1  # one capture
        assert pool.pipeline_stats.capture_points == 1
