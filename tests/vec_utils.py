"""Helpers for driving the functional vector engine in unit tests."""

from __future__ import annotations

import numpy as np

from repro.functional.memory import FunctionalMemory
from repro.functional.state import ArchState
from repro.functional.vector import VectorUnit
from repro.isa import Assembler
from repro.isa.vtype import LMUL, SEW, VType


class VecEnv:
    """A vector unit with directly pokeable state (no program needed)."""

    def __init__(self, vl: int, sew: int = 64, lmul: int = 1,
                 vlen_bits: int = 4096, mem_bytes: int = 1 << 16) -> None:
        self.state = ArchState(vlen_bits)
        self.mem = FunctionalMemory(mem_bytes)
        self.state.vtype = VType(sew=SEW(sew), lmul=LMUL(lmul))
        self.state.vl = vl
        self.vl = vl
        self.sew = sew
        self.lmul = lmul
        self.unit = VectorUnit(self.state, self.mem)
        self.asm = Assembler("test")

    # ------------------------------------------------------------------
    def set_v(self, reg: int, values: np.ndarray, emul: int | None = None):
        values = np.asarray(values)
        self.state.v.write_elems(reg, values,
                                 emul=self.lmul if emul is None else emul)

    def get_v(self, reg: int, count: int | None = None,
              dtype=np.float64, emul: int | None = None) -> np.ndarray:
        return self.state.v.read_elems(
            reg, self.vl if count is None else count, np.dtype(dtype),
            self.lmul if emul is None else emul)

    def set_mask(self, reg: int, bits) -> None:
        self.state.v.write_mask(reg, np.asarray(bits, dtype=bool))

    def get_mask(self, reg: int, count: int | None = None) -> np.ndarray:
        return self.state.v.read_mask(reg, self.vl if count is None else count)

    def run(self, mnemonic: str, *operands, **kwargs):
        """Assemble one instruction and execute it."""
        instr = getattr(self.asm, mnemonic)(*operands, **kwargs)
        return self.unit.execute(instr)

    def rand_f64(self, rng, lo=-100.0, hi=100.0) -> np.ndarray:
        return rng.uniform(lo, hi, size=self.vl)

    def rand_int(self, rng, dtype) -> np.ndarray:
        info = np.iinfo(dtype)
        return rng.integers(info.min, info.max, size=self.vl,
                            dtype=dtype, endpoint=True)
