"""Timing core: streams, resources, scoreboard, engine behaviours."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimingError
from repro.params import Ara2Config, AraXLConfig
from repro.timing.resources import Resource
from repro.timing.scoreboard import Scoreboard
from repro.timing.stream import Stream, consume

rates = st.floats(min_value=0.25, max_value=64.0)
counts = st.integers(min_value=1, max_value=10_000)


class TestStream:
    def test_basic_times(self):
        s = Stream(t_first=10.0, rate=2.0, n=8)
        assert s.avail(0) == 10.0
        assert s.t_last == 10.0 + 7 / 2
        assert s.t_end == 10.0 + 4

    def test_instant(self):
        s = Stream.instant(5.0, 100)
        assert s.avail(99) == 5.0

    def test_bad_index(self):
        with pytest.raises(TimingError):
            Stream(0, 1, 4).avail(4)

    def test_negative_count_rejected(self):
        with pytest.raises(TimingError):
            Stream(0, 1, -1)


class TestConsume:
    @given(st.floats(min_value=0, max_value=1e5), rates, counts)
    @settings(max_examples=60, deadline=None)
    def test_unsourced_duration(self, start, rate, n):
        end, result = consume(start, rate, n)
        assert end == pytest.approx(start + n / rate)
        assert result.n == n
        assert result.t_first >= start

    @given(rates, rates, counts)
    @settings(max_examples=60, deadline=None)
    def test_chained_not_faster_than_producer(self, prod_rate, cons_rate, n):
        producer = Stream(t_first=0.0, rate=prod_rate, n=n)
        end, result = consume(0.0, cons_rate, n, sources=(producer,))
        # Can't finish before the producer's last element exists.
        assert end >= producer.t_last - 1e-9
        # Nor faster than its own throughput allows (FP tolerance).
        assert end >= n / cons_rate - 1e-6 * n

    def test_latency_shifts_output_not_occupancy(self):
        end_a, out_a = consume(0.0, 1.0, 10, latency=0.0)
        end_b, out_b = consume(0.0, 1.0, 10, latency=7.0)
        assert end_a == end_b
        assert out_b.t_first == pytest.approx(out_a.t_first + 7.0)

    def test_fast_producer_no_stall(self):
        producer = Stream.instant(0.0, 100)
        end, _ = consume(0.0, 4.0, 100, sources=(producer,))
        assert end == pytest.approx(25.0)

    def test_empty_op(self):
        end, result = consume(3.0, 1.0, 0)
        assert end == 3.0 and result.n == 0


class TestResource:
    def test_in_order_start(self):
        r = Resource("u", queue_depth=2)
        start = r.start(0.0)
        r.retire(start, 10.0, busy=10.0)
        assert r.start(5.0) == 10.0

    def test_queue_backpressure(self):
        r = Resource("u", queue_depth=2)
        r.retire(0.0, 10.0, busy=10.0)
        r.retire(10.0, 20.0, busy=10.0)
        # Two in flight at t=5: a third must wait for the first to drain.
        assert r.admit(5.0) == 10.0
        # At t=12 the first drained.
        assert r.admit(12.0) == 12.0

    def test_busy_accounting(self):
        r = Resource("u")
        r.retire(0.0, 8.0, busy=6.0)
        assert r.utilization(16.0) == pytest.approx(6.0 / 16.0)

    def test_retire_validates_order(self):
        r = Resource("u")
        with pytest.raises(TimingError):
            r.retire(10.0, 5.0, busy=1.0)


class TestScoreboard:
    def test_raw_chaining_stream(self):
        sb = Scoreboard()
        sb.record_write(8, 1, Stream(t_first=100.0, rate=2.0, n=50))
        src = sb.source_stream(8, 1, 50)
        assert src.t_first == 100.0
        assert src.t_last == pytest.approx(100.0 + 49 / 2)

    def test_waw_bound(self):
        sb = Scoreboard()
        sb.record_write(8, 2, Stream(t_first=10.0, rate=1.0, n=10))
        assert sb.waw_war_bound(8, 1) == pytest.approx(20.0)
        assert sb.waw_war_bound(9, 1) == pytest.approx(20.0)
        assert sb.waw_war_bound(10, 1) == 0.0

    def test_war_bound_from_reader(self):
        sb = Scoreboard()
        sb.record_read(4, 1, 55.0)
        assert sb.waw_war_bound(4, 1) == 55.0

    def test_group_slowest_member_wins(self):
        sb = Scoreboard()
        sb.record_write(8, 1, Stream(t_first=10.0, rate=1.0, n=4))
        sb.record_write(9, 1, Stream(t_first=50.0, rate=1.0, n=4))
        src = sb.source_stream(8, 2, 8)
        assert src.t_first == 50.0

    def test_never_written_register_is_instant(self):
        sb = Scoreboard()
        src = sb.source_stream(20, 1, 16)
        assert src.t_first == 0.0
        assert math.isinf(src.rate)


def _trace(build):
    from repro.functional import Executor
    from repro.isa import Assembler

    a = Assembler()
    ex = Executor(8192)
    build(a, ex)
    a.halt()
    return ex.run(a.build()).trace


def _cycles(config, build):
    from repro.timing.engine import TimingEngine
    from repro.uarch import build_model

    return TimingEngine(build_model(config)).replay(_trace(build))


class TestEngineBehaviours:
    def _simple_kernel(self, n_ops=4):
        def build(a, ex):
            a.li("x1", 128)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.li("x5", 0)
            a.vle64_v("v1", "x5")
            for i in range(n_ops):
                a.vfadd_vv("v2", "v1", "v1")
        return build

    def test_load_latency_hurts_araxl_more(self):
        ara2 = _cycles(Ara2Config(lanes=8), self._simple_kernel())
        araxl = _cycles(AraXLConfig(lanes=8), self._simple_kernel())
        assert araxl.cycles > ara2.cycles

    def test_glsu_regs_add_round_trip(self):
        base = _cycles(AraXLConfig(lanes=8), self._simple_kernel(0))
        cut = _cycles(AraXLConfig(lanes=8, glsu_extra_regs=4),
                      self._simple_kernel(0))
        assert cut.cycles - base.cycles == pytest.approx(8.0)

    def test_reqi_regs_slow_issue(self):
        def many_vector_ops(a, ex):
            a.li("x1", 16)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            for _ in range(20):
                a.vfadd_vv("v2", "v1", "v1")
        base = _cycles(AraXLConfig(lanes=8), many_vector_ops)
        cut = _cycles(AraXLConfig(lanes=8, reqi_extra_regs=1),
                      many_vector_ops)
        assert cut.cycles > base.cycles

    def test_reduction_tail_grows_with_clusters(self):
        def red(a, ex):
            a.li("x1", 16)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.vfredusum_vs("v2", "v1", "v3")
        small = _cycles(AraXLConfig(lanes=8), red)
        big = _cycles(AraXLConfig(lanes=64), red)
        assert big.cycles > small.cycles

    def test_ringi_regs_slow_slides(self):
        def slide(a, ex):
            a.li("x1", 256)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.vfslide1down_vf("v2", "v1", "f1")
            a.vfadd_vv("v3", "v2", "v2")
        base = _cycles(AraXLConfig(lanes=16), slide)
        cut = _cycles(AraXLConfig(lanes=16, ringi_extra_regs=2), slide)
        assert cut.cycles > base.cycles

    def test_scalar_result_sync(self):
        def sync(a, ex):
            a.li("x1", 64)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.vfmv_f_s("f1", "v1")
            for _ in range(10):
                a.addi("x3", "x3", 1)
        rep = _cycles(AraXLConfig(lanes=8), sync)
        # The 10 scalar adds happen after the vector->scalar round trip.
        assert rep.cycles >= 10

    def test_busy_never_exceeds_cycles(self):
        rep = _cycles(AraXLConfig(lanes=8), self._simple_kernel(8))
        for unit, busy in rep.unit_busy.items():
            assert busy <= rep.cycles + 1e-9, unit

    def test_report_summary_renders(self):
        rep = _cycles(Ara2Config(lanes=4), self._simple_kernel())
        text = rep.summary()
        assert "cycles" in text and "vmfpu" in text
