"""Lazy golden data: planning never pays for arrays, capture does.

Pins the skeleton split from the pool-unification PR: building a
``KernelRun`` (what every sweep planner does for trace keys and peak
bounds) touches only the program-skeleton memo, while golden input /
reference arrays are built on first ``setup``/``check`` use and then
memoized process-wide under a byte budget.
"""

from __future__ import annotations

import pytest

from repro.kernels import KERNELS, build_fmatmul
import repro.kernels.common as common
from repro.params import Ara2Config, AraXLConfig
from repro.sim import CaptureTask, Simulator, TraceCache

_REDUCED_KW = {"fmatmul": {"m": 16, "k": 64},
               "fconv2d": {"rows": 32}, "jacobi2d": {"rows": 32}}


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test counts builds from a cold memo."""
    common.reset_skeleton_caches()
    yield
    common.reset_skeleton_caches()


class TestPlanningIsGoldenFree:
    def test_planning_never_materializes_golden_arrays(self):
        """Build every kernel at several operating points, take trace
        keys, peak bounds and setup ids — the whole planning surface —
        and assert not one golden array was built."""
        before = common.golden_builds()
        for config in (Ara2Config(lanes=8), AraXLConfig(lanes=16)):
            for bpl in (64, 128):
                for name, builder in KERNELS.items():
                    kw = _REDUCED_KW.get(name, {})
                    run = builder(config, bpl, **kw)
                    run.trace_key(config)
                    assert run.max_flops_per_cycle > 0
                    assert run.setup_id
                    assert run.program.fingerprint
        assert common.golden_builds() == before

    def test_capture_task_specs_and_keys_stay_golden_free(self):
        """CapturePool planning (CaptureTask.build / .key) is program-
        only too — workers, not the parent, pay for arrays."""
        before = common.golden_builds()
        cfg = AraXLConfig(lanes=8)
        keys = set()
        for name in KERNELS:
            task = CaptureTask.for_kernel(name, cfg, 64,
                                          _REDUCED_KW.get(name))
            task.build()
            keys.add(task.key())
        assert len(keys) == len(KERNELS)
        assert common.golden_builds() == before


class TestGoldenMaterialization:
    def test_setup_builds_once_then_memoizes(self):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        before = common.golden_builds()
        sim = Simulator(cfg)
        run.setup(sim)
        assert common.golden_builds() == before + 1
        # A second run of the same problem reuses the memoized arrays.
        rebuilt = build_fmatmul(cfg, 64, m=8, k=16)
        rebuilt.setup(Simulator(cfg))
        assert common.golden_builds() == before + 1

    def test_check_uses_the_same_entry_as_setup(self):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        before = common.golden_builds()
        result = run.run(cfg, verify=True)  # setup + execute + check
        assert result.timing.cycles > 0
        assert common.golden_builds() == before + 1  # one build total

    def test_verified_capture_still_checks_correctly(self):
        """The lazy path feeds the golden check the same arrays: a
        verified capture passes, and its trace replays identically."""
        cfg = Ara2Config(lanes=4)
        cache = TraceCache()
        run = build_fmatmul(cfg, 64, m=8, k=16)
        captured = run.capture(cfg, cache=cache, verify=True)
        assert captured.extra["verified"]

    def test_unverified_sweep_never_builds_reference_output(self):
        """verify=False captures still build inputs (setup needs them)
        but exactly once per problem, not per operating point."""
        cfg_small, cfg_big = Ara2Config(lanes=4), Ara2Config(lanes=8)
        before = common.golden_builds()
        for cfg in (cfg_small, cfg_big):
            run = build_fmatmul(cfg, 64, m=8, k=16)
            run.capture(cfg, verify=False)
        # Different VLEN -> different vl -> two problems, two builds.
        assert common.golden_builds() == before + 2


class TestProgramSkeletonSharing:
    def test_equal_problems_share_one_program(self):
        """Fig 6's (8L, 128 B/lane) and (16L, 64 B/lane) solve the same
        (vl, LMUL) problem: one assembled program object serves both
        (their trace keys still differ — VLEN is part of the key).
        Uses the raw builders: the registry's per-operating-point memo
        above would otherwise serve entries predating this test's cache
        reset."""
        raw_build = build_fmatmul.__wrapped__
        a = raw_build(Ara2Config(lanes=8), 128, m=8, k=16)
        b = raw_build(Ara2Config(lanes=16), 64, m=8, k=16)
        assert a.problem["vl"] == b.problem["vl"]
        assert a.program is b.program
        assert a.trace_key(Ara2Config(lanes=8)) \
            != b.trace_key(Ara2Config(lanes=16))

    def test_reset_clears_both_memos(self):
        # Bypass the registry's per-operating-point KernelRun memo: this
        # test is about the two skeleton layers underneath it.
        raw_build = build_fmatmul.__wrapped__
        cfg = Ara2Config(lanes=4)
        first = raw_build(cfg, 64, m=8, k=16)
        first.setup(Simulator(cfg))
        built = common.golden_builds()
        common.reset_skeleton_caches()
        again = raw_build(cfg, 64, m=8, k=16)
        assert again.program is not first.program  # cold program memo
        again.setup(Simulator(cfg))
        assert common.golden_builds() == built + 1  # cold golden memo
