"""Shared trace store: GC lifecycle, stats bugfixes, cross-sweep sharing."""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import warnings

import pytest

from repro.eval.fig6_scaling import run_fig6
from repro.eval.fig7_latency import render_fig7, run_fig7
from repro.eval.runner import (EXPERIMENTS, SIMULATION_EXPERIMENTS,
                               STATIC_EXPERIMENTS, run_experiment)
from repro.eval.table1_kernels import render_table1, run_table1
from repro.kernels import build_fmatmul
from repro.params import Ara2Config, AraXLConfig
from repro.sim import TraceCache, TraceStore, attach_store
from repro.sim.trace_cache import disk_path
from repro.sim.trace_store import (ENV_STORE_BYTES, ENV_STORE_DIR,
                                   resolve_store_bytes, resolve_store_dir)


def _capture_entry(store, k=16, lanes=4):
    """Capture one distinct fmatmul trace into ``store``; returns its key."""
    cfg = Ara2Config(lanes=lanes)
    run = build_fmatmul(cfg, 64, m=8, k=k)
    run.capture(cfg, cache=store, verify=False)
    return run.trace_key(cfg)


def _entry_file(store, key):
    return disk_path(store.disk_dir, key)


def _set_age(path, age_s):
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


# ----------------------------------------------------------------------
# GC policy
# ----------------------------------------------------------------------
class TestStoreGc:
    def test_size_cap_evicts_oldest_mtime_first(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        keys = [_capture_entry(store, k=k) for k in (16, 32, 48)]
        paths = [_entry_file(store, key) for key in keys]
        for path, age in zip(paths, (300, 200, 100)):  # [0] is oldest
            _set_age(path, age)

        budget = paths[1].stat().st_size + paths[2].stat().st_size
        summary = store.gc(max_bytes=budget)
        assert summary["evicted"] == 1
        assert not paths[0].exists()  # oldest went first
        assert paths[1].exists() and paths[2].exists()
        assert summary["bytes_after"] <= budget
        assert summary["entries"] == 2

    def test_disk_hit_freshens_mtime_so_gc_is_lru(self, tmp_path):
        writer = TraceStore(disk_dir=tmp_path)
        key_a = _capture_entry(writer, k=16)
        key_b = _capture_entry(writer, k=32)
        path_a, path_b = (_entry_file(writer, k) for k in (key_a, key_b))
        _set_age(path_a, 500)  # A written long ago...
        _set_age(path_b, 100)

        reader = TraceStore(disk_dir=tmp_path)
        assert reader.get(key_a) is not None  # ...but used just now

        reader.gc(max_bytes=path_a.stat().st_size)
        assert path_a.exists(), "recently-used entry must survive"
        assert not path_b.exists(), "least-recently-used entry evicted"

    def test_stale_envelope_files_are_purged(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        good = _entry_file(store, key)

        wrong_format = tmp_path / "trace_aaaa.pkl"
        with good.open("rb") as fh:
            envelope = pickle.load(fh)
        envelope["format"] = -1
        wrong_format.write_bytes(pickle.dumps(envelope))
        bare = tmp_path / "trace_bbbb.pkl"
        bare.write_bytes(pickle.dumps({"not": "an envelope"}))
        corrupt = tmp_path / "trace_cccc.pkl"
        corrupt.write_bytes(b"definitely not a pickle")

        summary = store.gc()
        assert summary["purged_stale"] == 3
        assert good.exists()
        assert not wrong_format.exists()
        assert not bare.exists() and not corrupt.exists()

    def test_orphaned_tmp_files_are_reaped(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        _capture_entry(store)
        crashed = tmp_path / "trace_dead.pkl.123.tmp"
        crashed.write_bytes(b"half-written")
        _set_age(crashed, 2 * store.tmp_max_age_s)
        in_flight = tmp_path / "trace_live.pkl.456.tmp"
        in_flight.write_bytes(b"being written right now")

        summary = store.gc()
        assert summary["reaped_tmp"] == 1
        assert not crashed.exists()
        assert in_flight.exists(), "a live writer's tempfile must survive"

    def test_tmp_reaping_follows_the_injected_clock(self, tmp_path):
        """GC judges tempfile age by the store's own clock, never the
        wall clock.  A store on an injected clock stamps its tempfiles
        with that clock, so to a wall-clock GC (the old bug) every
        in-flight write of a faked-time test looks ancient and gets
        reaped out from under its writer."""
        fake = [1_000_000.0]  # decades behind time.time()
        store = TraceStore(disk_dir=tmp_path, clock=lambda: fake[0])
        _capture_entry(store)
        in_flight = tmp_path / "trace_live.pkl.42.tmp"
        in_flight.write_bytes(b"being written right now")
        os.utime(in_flight, (fake[0], fake[0]))  # stamped "now" (fake)

        assert store.gc()["reaped_tmp"] == 0
        assert in_flight.exists(), \
            "a tempfile stamped 'now' by the store's clock is not an orphan"

        fake[0] += 2 * store.tmp_max_age_s
        assert store.gc()["reaped_tmp"] == 1
        assert not in_flight.exists()

    def test_gc_on_missing_dir_is_a_noop(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path / "never_created")
        summary = store.gc()
        assert summary == {"reaped_tmp": 0, "purged_stale": 0,
                           "purged_corrupt": 0, "evicted": 0,
                           "reaped_sidecars": 0, "entries": 0,
                           "bytes_before": 0, "bytes_after": 0}

    def test_manifest_and_store_stats(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path, max_bytes=12345)
        _capture_entry(store, k=16)
        _capture_entry(store, k=32)
        manifest = store.manifest()
        assert len(manifest) == 2
        assert all(row["bytes"] > 0 and row["age_s"] >= 0.0
                   for row in manifest)
        stats = store.store_stats
        assert stats["disk_entries"] == 2
        assert stats["disk_bytes"] == sum(r["bytes"] for r in manifest)
        assert stats["max_bytes"] == 12345
        assert stats["dir"] == str(tmp_path)
        assert stats["misses"] == 2  # the two captures


def _hammer_store_puts(disk_dir: str, iterations: int) -> None:
    """Writer process: repeatedly re-put one entry while the parent GCs."""
    store = TraceStore(disk_dir=disk_dir)
    cfg = Ara2Config(lanes=4)
    run = build_fmatmul(cfg, 64, m=8, k=16)
    captured = run.capture(cfg, verify=False)
    key = run.trace_key(cfg)
    for _ in range(iterations):
        store.put(key, captured)


class TestGcConcurrency:
    def test_gc_races_writer_without_corruption(self, tmp_path):
        """An aggressive GC (budget 0: evict everything it sees) racing a
        writer must never corrupt the store or crash either side."""
        proc = multiprocessing.Process(target=_hammer_store_puts,
                                       args=(str(tmp_path), 40))
        proc.start()
        gcs = 0
        store = TraceStore(disk_dir=tmp_path)
        while proc.is_alive():
            store.gc(max_bytes=0)
            gcs += 1
        proc.join(timeout=120)
        assert proc.exitcode == 0
        assert gcs > 0
        # Whatever survived the race, the store still works end to end.
        key = _capture_entry(store)
        fresh = TraceStore(disk_dir=tmp_path)
        assert fresh.get(key) is not None
        assert fresh.stats["disk_hits"] == 1


# ----------------------------------------------------------------------
# Store resolution (env vars, attach semantics)
# ----------------------------------------------------------------------
class TestStoreResolution:
    def test_dir_priority_explicit_env_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_STORE_DIR, raising=False)
        # The suite default is anchored to the checkout, never the cwd.
        assert resolve_store_dir().is_absolute()
        assert resolve_store_dir().name == "trace_cache"
        assert resolve_store_dir(default=tmp_path / "d") == tmp_path / "d"
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "env"))
        assert resolve_store_dir(default=tmp_path / "d") == tmp_path / "env"
        assert resolve_store_dir(tmp_path / "x") == tmp_path / "x"

    def test_bytes_priority(self, monkeypatch):
        monkeypatch.delenv(ENV_STORE_BYTES, raising=False)
        assert resolve_store_bytes() == 256 * 1024 * 1024
        monkeypatch.setenv(ENV_STORE_BYTES, "1024")
        assert resolve_store_bytes() == 1024
        assert resolve_store_bytes(7) == 7

    def test_attach_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_STORE_DIR, raising=False)
        cache = TraceCache()
        assert attach_store(cache) is cache
        store = attach_store(tmp_path / "s")
        assert isinstance(store, TraceStore)
        assert store.disk_dir == tmp_path / "s"
        assert attach_store(None) is None
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "envstore"))
        via_env = attach_store(None)
        assert isinstance(via_env, TraceStore)
        assert via_env.disk_dir == tmp_path / "envstore"


# ----------------------------------------------------------------------
# TraceCache._last_lookup staleness bugfixes
# ----------------------------------------------------------------------
class TestDemoteLastHitStaleness:
    def _cache_with_entry(self, tmp_path=None):
        cache = TraceCache(disk_dir=tmp_path)
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        captured = run.capture(cfg, verify=False)
        key = run.trace_key(cfg)
        cache.put(key, captured)
        return cache, key, captured

    def test_demote_after_put_is_a_noop(self):
        cache, key, captured = self._cache_with_entry()
        assert cache.get(key) is not None  # memory hit
        cache.put(key, captured)  # intervening put clears lookup context
        before = dict(cache.stats)
        cache.demote_last_hit()
        assert dict(cache.stats) == before

    def test_demote_after_clear_is_a_noop(self):
        cache, key, _ = self._cache_with_entry()
        assert cache.get(key) is not None
        cache.clear()
        before = dict(cache.stats)
        cache.demote_last_hit()
        assert dict(cache.stats) == before

    def test_demote_twice_cannot_go_negative(self):
        cache, key, _ = self._cache_with_entry()
        assert cache.get(key) is not None
        cache.demote_last_hit()
        cache.demote_last_hit()  # second call must not stack
        stats = cache.stats
        assert stats["hits"] == 0 and stats["misses"] == 1
        assert stats["hits"] >= 0 and stats["disk_hits"] >= 0

    def test_demote_disk_hit_after_put_is_a_noop(self, tmp_path):
        writer, key, captured = self._cache_with_entry(tmp_path)
        reader = TraceCache(disk_dir=tmp_path)
        assert reader.get(key) is not None  # disk hit
        reader.put(key, captured)
        before = dict(reader.stats)
        reader.demote_last_hit()
        assert dict(reader.stats) == before
        assert reader.stats["disk_hits"] == 1

    def test_demote_still_works_right_after_get(self):
        cache, key, _ = self._cache_with_entry()
        assert cache.get(key) is not None
        cache.demote_last_hit()
        stats = cache.stats
        assert stats["hits"] == 0 and stats["misses"] == 1


# ----------------------------------------------------------------------
# Cross-sweep sharing and byte-identity
# ----------------------------------------------------------------------
class TestSharedStoreAcrossSweeps:
    _FIG7_KW = dict(kernels=("fmatmul",), bytes_per_lane=(64,), lanes=8,
                    scale="reduced")

    def test_two_sweeps_share_one_store(self, tmp_path):
        """A fig6 capture is a disk hit for a fig7 run over the same
        operating point — the whole point of the shared store."""
        store1 = TraceStore(disk_dir=tmp_path)
        run_fig6(kernels=("fmatmul",), bytes_per_lane=(64,),
                 machines=[Ara2Config(lanes=8)], scale="reduced",
                 trace_cache=store1)
        assert store1.stats["misses"] == 1  # fig6 paid the capture

        store2 = TraceStore(disk_dir=tmp_path)  # fresh attach, same disk
        points = run_fig7(**self._FIG7_KW, trace_cache=store2)
        assert store2.stats["misses"] == 0
        assert store2.stats["disk_hits"] >= 1  # served from fig6's capture
        private = run_fig7(**self._FIG7_KW)
        assert render_fig7(points) == render_fig7(private)

    def test_output_identical_cold_warm_and_gcd(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        cold = run_fig7(**self._FIG7_KW, trace_cache=store)
        warm = run_fig7(**self._FIG7_KW,
                        trace_cache=TraceStore(disk_dir=tmp_path))
        store.gc(max_bytes=0)  # evict everything mid-run
        assert store.manifest() == []
        gcd = run_fig7(**self._FIG7_KW,
                       trace_cache=TraceStore(disk_dir=tmp_path))
        assert render_fig7(cold) == render_fig7(warm) == render_fig7(gcd)

    def test_table1_reads_and_warms_the_store(self, tmp_path):
        cfg = AraXLConfig(lanes=8)
        kw = dict(config=cfg, bytes_per_lane=64, scale="reduced")
        store = TraceStore(disk_dir=tmp_path)
        first = run_table1(**kw, trace_cache=store)
        assert store.stats["misses"] > 0  # cold: capture phase ran
        assert len(store.manifest()) == store.stats["misses"]  # warmed disk

        again = TraceStore(disk_dir=tmp_path)
        second = run_table1(**kw, trace_cache=again)
        assert again.stats["misses"] == 0
        assert again.stats["disk_hits"] == store.stats["misses"]
        assert second == first


class TestTable1Workers:
    def test_parallel_matches_serial(self):
        kw = dict(config=AraXLConfig(lanes=8), bytes_per_lane=64,
                  scale="reduced")
        serial = run_table1(**kw, workers=1)
        parallel = run_table1(**kw, workers=2)
        assert parallel == serial
        assert render_table1(parallel) == render_table1(serial)


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_static_and_simulation_partition_the_registry(self):
        assert SIMULATION_EXPERIMENTS | STATIC_EXPERIMENTS == set(EXPERIMENTS)
        assert not SIMULATION_EXPERIMENTS & STATIC_EXPERIMENTS

    @pytest.mark.parametrize("name", sorted(STATIC_EXPERIMENTS))
    def test_static_experiments_ignore_all_args(self, name, tmp_path):
        plain = run_experiment(name)
        decorated = run_experiment(name, scale="reduced", workers=3,
                                   trace_store=tmp_path / "ignored")
        assert decorated == plain
        assert not (tmp_path / "ignored").exists()  # store never touched

    def test_run_experiment_threads_workers_and_store(self, tmp_path):
        store_dir = tmp_path / "store"
        kw = dict(scale="reduced", trace_store=store_dir)
        cold = run_experiment("table1", workers=2, **kw)
        assert any(store_dir.glob("trace_*.pkl"))  # experiment warmed it
        warm = run_experiment("table1", workers=1, **kw)
        assert warm == cold

    def test_run_experiment_attaches_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "envstore"))
        out = run_experiment("table1", scale="reduced")
        assert any((tmp_path / "envstore").glob("trace_*.pkl"))
        monkeypatch.delenv(ENV_STORE_DIR)
        assert out == run_experiment("table1", scale="reduced")


# ----------------------------------------------------------------------
# hits_served: the persisted per-entry popularity counter
# ----------------------------------------------------------------------
class TestHitsServed:
    def _envelope(self, path):
        with path.open("rb") as fh:
            return pickle.load(fh)

    def _hits(self, path):
        """Persisted serve count: envelope base + ``.hits`` sidecar."""
        from repro.sim.trace_cache import sidecar_path
        from repro.sim.trace_store import _read_hits

        return (self._envelope(path)["hits_served"]
                + _read_hits(sidecar_path(path)))

    def test_fresh_entry_starts_at_zero(self, tmp_path):
        from repro.sim.trace_cache import sidecar_path

        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        assert self._hits(path) == 0
        assert not sidecar_path(path).exists()  # no serves, no sidecar
        assert store.manifest()[0]["hits_served"] == 0

    def test_disk_hit_bumps_and_persists(self, tmp_path):
        writer = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(writer)
        path = _entry_file(writer, key)

        reader = TraceStore(disk_dir=tmp_path)  # cold memory, warm disk
        assert reader.get(key) is not None  # disk hit -> bump
        assert self._hits(path) == 1
        assert reader.get(key) is not None  # memory hit -> no bump
        assert self._hits(path) == 1
        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        assert self._hits(path) == 2

    def test_bump_freshens_mtime_for_lru(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        _set_age(path, 1000)
        aged = path.stat().st_mtime
        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        assert path.stat().st_mtime > aged  # utime freshens, no rewrite

    def test_payload_survives_bumps(self, tmp_path):
        from repro.sim import replay_trace

        store = TraceStore(disk_dir=tmp_path)
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        run.capture(cfg, cache=store, verify=False)
        key = run.trace_key(cfg)
        for _ in range(3):
            entry = TraceStore(disk_dir=tmp_path).get(key)
            assert entry is not None
        assert replay_trace(cfg, entry).timing \
            == run.run(cfg, verify=False).timing

    def test_envelope_counter_field_is_the_base(self, tmp_path):
        """An envelope carrying a non-zero ``hits_served`` (e.g. a file a
        foreign revision wrote) adds to the sidecar's count."""
        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        envelope = self._envelope(path)
        envelope["hits_served"] = 5
        path.write_bytes(pickle.dumps(envelope))

        assert store.manifest()[0]["hits_served"] == 5
        reader = TraceStore(disk_dir=tmp_path)
        assert reader.get(key) is not None
        assert self._hits(path) == 6
        assert reader.manifest()[0]["hits_served"] == 6

    def test_recapture_resets_counter(self, tmp_path):
        from repro.sim.trace_cache import sidecar_path

        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        assert self._hits(path) == 1
        # A put (recapture) rewrites the payload and unlinks the
        # sidecar: new life, zero hits.
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        store.put(key, run.capture(cfg, verify=False))
        assert self._hits(path) == 0
        assert not sidecar_path(path).exists()

    def test_ingest_remote_counts_as_a_serve(self, tmp_path):
        """Adopting a worker's disk-routed capture is a disk serve too."""
        writer = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(writer)
        path = _entry_file(writer, key)
        reader = TraceStore(disk_dir=tmp_path)
        assert reader.ingest_remote(key) is not None
        assert self._hits(path) == 1

    def test_plain_cache_never_bumps(self, tmp_path):
        """Transient TraceCache readers (pool workers) leave it alone."""
        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        assert TraceCache(disk_dir=tmp_path).get(key) is not None
        assert self._hits(path) == 0

    def test_store_stats_totals_hits_served(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        key_a = _capture_entry(store, k=16)
        key_b = _capture_entry(store, k=32)
        for _ in range(2):
            assert TraceStore(disk_dir=tmp_path).get(key_a) is not None
        assert TraceStore(disk_dir=tmp_path).get(key_b) is not None
        stats = store.store_stats
        assert stats["hits_served"] == 3
        by_file = {row["file"]: row["hits_served"]
                   for row in store.manifest()}
        assert sorted(by_file.values()) == [1, 2]

    def test_gc_still_validates_bumped_entries(self, tmp_path):
        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        summary = store.gc()
        assert summary["purged_stale"] == 0
        assert summary["entries"] == 1

    def test_gc_reaps_orphaned_sidecars(self, tmp_path):
        from repro.sim.trace_cache import sidecar_path

        store = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(store)
        path = _entry_file(store, key)
        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        live_side = sidecar_path(path)
        assert live_side.exists()
        orphan = tmp_path / "trace_gone.pkl.hits"
        orphan.write_bytes(b"7")

        summary = store.gc()
        assert summary["reaped_sidecars"] == 1
        assert not orphan.exists()
        assert live_side.exists(), "a live entry keeps its sidecar"

    def test_eviction_takes_the_sidecar_along(self, tmp_path):
        from repro.sim.trace_cache import sidecar_path

        store = TraceStore(disk_dir=tmp_path)
        key_a = _capture_entry(store, k=16)
        key_b = _capture_entry(store, k=32)
        path_a, path_b = (_entry_file(store, k) for k in (key_a, key_b))
        assert TraceStore(disk_dir=tmp_path).get(key_a) is not None
        _set_age(path_a, 500)  # bumped, then aged: first out

        store.gc(max_bytes=path_b.stat().st_size)
        assert not path_a.exists()
        assert not sidecar_path(path_a).exists()


# ----------------------------------------------------------------------
# Warm-serve write cost: the sidecar keeps a disk hit O(counter bytes)
# ----------------------------------------------------------------------
class TestWarmServeWriteCost:
    def test_warm_serve_writes_only_counter_bytes(self, tmp_path):
        from repro.sim.trace_cache import sidecar_path

        writer = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(writer)
        path = _entry_file(writer, key)
        entry_bytes = path.read_bytes()

        reader = TraceStore(disk_dir=tmp_path)
        assert reader.get(key) is not None  # warm disk hit
        written = reader.last_serve_write_bytes
        assert written > 0
        assert written == sidecar_path(path).stat().st_size
        # The acceptance bound: a warm hit writes strictly fewer bytes
        # than the entry's payload — and in fact only a tiny counter.
        assert written < path.stat().st_size
        assert written <= 20
        assert path.read_bytes() == entry_bytes, \
            "a warm serve must not rewrite the envelope"
        assert reader.serve_write_bytes == written

        assert TraceStore(disk_dir=tmp_path).get(key) is not None
        assert path.read_bytes() == entry_bytes

    def test_enospc_on_serve_demotes_to_memory_only(self, tmp_path):
        """The sidecar write classifies failures like put(): ENOSPC
        demotes the store (one warning), it is never silently swallowed."""
        from repro.sim.faults import FaultPlan
        from repro.sim.trace_cache import sidecar_path

        writer = TraceStore(disk_dir=tmp_path)
        key_a = _capture_entry(writer, k=16)
        key_b = _capture_entry(writer, k=32)

        reader = TraceStore(disk_dir=tmp_path,
                            fault_plan=FaultPlan(seed=3, enospc_rate=1.0))
        with pytest.warns(RuntimeWarning, match="memory-only"):
            assert reader.get(key_a) is not None  # trace still served
        assert reader.memory_only
        assert reader.serve_write_bytes == 0
        # Once demoted, later serves skip the disk write entirely (and
        # warn no second time); no sidecar ever lands.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reader.get(key_b) is not None
        assert not sidecar_path(_entry_file(reader, key_a)).exists()
        assert not sidecar_path(_entry_file(reader, key_b)).exists()

    def test_transient_io_error_on_serve_is_counted_not_fatal(self, tmp_path):
        from repro.sim.faults import FaultPlan

        writer = TraceStore(disk_dir=tmp_path)
        key = _capture_entry(writer)
        reader = TraceStore(disk_dir=tmp_path,
                            fault_plan=FaultPlan(seed=3, io_error_rate=1.0))
        assert reader.get(key) is not None  # serve survives the fault
        assert reader.serve_note_errors == 1
        assert not reader.memory_only
