"""Parallel capture pipeline: byte-identity harness + failure paths.

The harness proves the tentpole invariant: for **every** sweep the suite
runs (Fig 6, Fig 7, Table I, Table III, the ablations), the rendered
output is byte-identical whether the capture/replay pipeline runs
serially in-process or as tagged jobs on a shared
:class:`~repro.sim.parallel.SimPool`, and whether the shared trace
store is cold or pre-warmed by a previous run.  The failure tests pin
the degraded modes: a dead capture worker, a store key raced by two
pools in separate processes, and the store's GC evicting an entry while
a capture of it is in flight.  (:class:`~repro.sim.parallel.CapturePool`
here is the batch facade over a private SimPool — the unit tests below
double as coverage for that surface.)
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import zlib

import pytest

from repro.eval.ablations import run_knob_sweep
from repro.eval.fig6_scaling import render_fig6, run_fig6
from repro.eval.fig7_latency import render_fig7, run_fig7
from repro.eval.table1_kernels import render_table1, run_table1
from repro.eval.table3_ppa import render_table3, run_table3
from repro.kernels import build_fmatmul
from repro.params import Ara2Config, AraXLConfig
from repro.report import render_table
from repro.sim import (CapturePool, CaptureTask, TraceCache, TraceStore,
                       replay_trace)
from repro.sim.trace_cache import (DISK_FORMAT_VERSION, _disk_payload,
                                   _payload_schema, disk_path)
import repro.sim.parallel as parallel_mod


# ----------------------------------------------------------------------
# The five-sweep byte-identity harness.  Each entry runs one sweep at a
# small reduced operating point and returns its *rendered* output.
# ----------------------------------------------------------------------
def _fig6(cache, workers, capture_workers, **kw):
    return render_fig6(run_fig6(
        kernels=("fmatmul", "fdotproduct"), bytes_per_lane=(64,),
        machines=[Ara2Config(lanes=8), AraXLConfig(lanes=8),
                  AraXLConfig(lanes=16)],
        scale="reduced", trace_cache=cache, workers=workers,
        capture_workers=capture_workers, **kw))


def _fig7(cache, workers, capture_workers, **kw):
    return render_fig7(run_fig7(
        kernels=("fmatmul", "softmax"), bytes_per_lane=(64, 128), lanes=8,
        scale="reduced", trace_cache=cache, workers=workers,
        capture_workers=capture_workers, **kw))


def _table1(cache, workers, capture_workers, **kw):
    return render_table1(run_table1(
        config=AraXLConfig(lanes=8), bytes_per_lane=64, scale="reduced",
        trace_cache=cache, workers=workers,
        capture_workers=capture_workers, **kw))


def _table3(cache, workers, capture_workers, **kw):
    return render_table3(run_table3(
        configs=[Ara2Config(lanes=8), AraXLConfig(lanes=8),
                 AraXLConfig(lanes=16)],
        scale="reduced", trace_cache=cache, workers=workers,
        capture_workers=capture_workers, **kw))


def _ablations(cache, workers, capture_workers, **kw):
    hops = (1, 4)
    configs = [AraXLConfig(lanes=8, ring_hop_latency=h) for h in hops]
    rows = run_knob_sweep(configs,
                          [("fdotproduct", 64, {}),
                           ("fmatmul", 64, {"m": 8, "k": 16})],
                          trace_cache=cache, workers=workers,
                          capture_workers=capture_workers, **kw)
    return render_table(
        ("hop cycles", "fdotproduct util", "fmatmul util"),
        [(hop, f"{u[0] * 100:.3f}%", f"{u[1] * 100:.3f}%")
         for hop, u in zip(hops, rows)],
        title="Ablation — RINGI hop latency (harness point)")


SWEEPS = {"fig6": _fig6, "fig7": _fig7, "table1": _table1,
          "table3": _table3, "ablations": _ablations}


class TestByteIdentityHarness:
    """Serial vs parallel capture, cold vs pre-warmed store — all sweeps."""

    @pytest.mark.parametrize("name", sorted(SWEEPS))
    def test_sweep_byte_identical(self, name, tmp_path):
        sweep = SWEEPS[name]
        serial = sweep(TraceStore(disk_dir=tmp_path / "serial"), 1, 1)
        # Cold store, captures fanned over a pool, replays pooled too.
        cold_parallel = sweep(TraceStore(disk_dir=tmp_path / "par"), 2, 3)
        assert cold_parallel == serial
        # Pre-warmed store: every point is a disk hit, same bytes out.
        warm_parallel = sweep(TraceStore(disk_dir=tmp_path / "par"), 2, 3)
        assert warm_parallel == serial
        # Parallel capture without any disk store at all (payloads ship
        # back over the pipe instead of landing as envelopes).
        memory_only = sweep(TraceCache(), 1, 2)
        assert memory_only == serial


# ----------------------------------------------------------------------
# CapturePool unit behaviour
# ----------------------------------------------------------------------
def _task(lanes=4, k=16, verify=False):
    return CaptureTask.for_kernel("fmatmul", Ara2Config(lanes=lanes), 64,
                                  {"m": 8, "k": k}, verify=verify)


def _direct_timing(task):
    run = task.build()
    return run.run(task.config, verify=False).timing


class TestCapturePool:
    def test_workers_one_never_spawns_processes(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("workers=1 must not build a pool"))
        tasks = [_task(lanes=4), _task(lanes=8)]
        captured = CapturePool(workers=1).capture_batch(tasks)
        for task, cap in zip(tasks, captured):
            assert replay_trace(task.config, cap).timing \
                == _direct_timing(task)

    def test_single_task_stays_in_process(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("one task must capture in-process"))
        [cap] = CapturePool(workers=4).capture_batch([_task()])
        assert cap is not None

    def test_batch_dedupes_by_trace_key(self, tmp_path):
        """Tasks sharing a key run one functional capture, not three."""
        store = TraceStore(disk_dir=tmp_path)
        tasks = [_task(k=16), _task(k=16), _task(k=32)]
        pool = CapturePool(workers=2, cache=store)
        captured = pool.capture_batch(tasks)
        assert captured[0] is captured[1]
        assert captured[2] is not captured[0]
        assert store.stats["remote_puts"] + store.stats["misses"] == 2

    def test_cached_keys_served_in_process(self, tmp_path):
        """A pre-warmed store serves the pool without any worker."""
        store = TraceStore(disk_dir=tmp_path)
        task = _task()
        task.build().capture(task.config, cache=store, verify=False)
        fresh = TraceStore(disk_dir=tmp_path)
        pool = CapturePool(workers=2, cache=fresh)
        [cap] = pool.capture_batch([task])
        assert replay_trace(task.config, cap).timing == _direct_timing(task)
        assert fresh.stats["disk_hits"] == 1
        assert fresh.stats["remote_puts"] == 0

    def test_autodetect_and_validation(self):
        assert CapturePool().workers == 1  # explicit default stays serial
        assert CapturePool(workers=None).workers >= 1
        with pytest.raises(ValueError):
            CapturePool(workers=0)

    def test_empty_batch(self):
        assert CapturePool(workers=2).capture_batch([]) == []

    def test_dead_worker_falls_back_in_process(self, tmp_path, monkeypatch):
        """A worker whose job never returns a result degrades to an
        in-process capture instead of failing the sweep.  The job is
        made unrunnable by patching the tagged worker entry point to
        something the executor cannot ship, so its future raises
        regardless of the multiprocessing start method."""
        monkeypatch.setattr(parallel_mod, "_run_job",
                            lambda *a: (_ for _ in ()).throw(RuntimeError))
        store = TraceStore(disk_dir=tmp_path)
        tasks = [_task(lanes=4), _task(lanes=8)]
        pool = CapturePool(workers=2, cache=store)
        captured = pool.capture_batch(tasks)
        assert pool.fallbacks == 2
        assert store.stats["misses"] == 2  # in-process captures
        assert store.stats["remote_puts"] == 0
        for task, cap in zip(tasks, captured):
            assert replay_trace(task.config, cap).timing \
                == _direct_timing(task)

    def test_gc_evicting_fresh_entry_falls_back(self, tmp_path, monkeypatch):
        """Deterministic GC-mid-capture: the worker's entry vanishes
        before the parent adopts it (ingest returns None)."""
        store = TraceStore(disk_dir=tmp_path)
        monkeypatch.setattr(TraceStore, "ingest_remote",
                            lambda self, key, payload=None: None)
        pool = CapturePool(workers=2, cache=store)
        tasks = [_task(lanes=4), _task(lanes=8)]
        captured = pool.capture_batch(tasks)
        assert pool.fallbacks == 2
        for task, cap in zip(tasks, captured):
            assert replay_trace(task.config, cap).timing \
                == _direct_timing(task)

    def test_gc_racing_live_captures(self, tmp_path):
        """An aggressive GC (budget 0) hammering the store while a
        CapturePool captures into it: whatever the interleaving, every
        point comes back correct (fallbacks absorb lost entries)."""
        store = TraceStore(disk_dir=tmp_path)
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                store.gc(max_bytes=0)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            tasks = [_task(lanes=4, k=k) for k in (16, 32, 48)]
            captured = CapturePool(workers=2, cache=store) \
                .capture_batch(tasks)
        finally:
            stop.set()
            thread.join()
        for task, cap in zip(tasks, captured):
            assert replay_trace(task.config, cap).timing \
                == _direct_timing(task)


# ----------------------------------------------------------------------
# Two CapturePool processes racing on the same store keys
# ----------------------------------------------------------------------
def _pool_capture_proc(disk_dir: str) -> None:
    """Worker process: run a CapturePool over the same keys as its twin."""
    store = TraceStore(disk_dir=disk_dir)
    tasks = [CaptureTask.for_kernel("fmatmul", Ara2Config(lanes=4), 64,
                                    {"m": 8, "k": k}) for k in (16, 32)]
    captured = CapturePool(workers=2, cache=store).capture_batch(tasks)
    assert all(cap is not None for cap in captured)


class TestConcurrentCapturePools:
    def test_two_pools_racing_one_store(self, tmp_path):
        """Both pools capture the same keys; the store ends with one
        whole envelope per key and no torn or orphaned files."""
        procs = [multiprocessing.Process(target=_pool_capture_proc,
                                         args=(str(tmp_path),))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        files = sorted(tmp_path.glob("trace_*.pkl"))
        assert len(files) == 2  # one winner per key, no duplicates
        assert not list(tmp_path.glob("*.tmp"))
        for path in files:
            with path.open("rb") as fh:
                envelope = pickle.load(fh)  # must always unpickle whole
            assert envelope["format"] == DISK_FORMAT_VERSION
        # And the winner is a usable, correct trace.
        task = CaptureTask.for_kernel("fmatmul", Ara2Config(lanes=4), 64,
                                      {"m": 8, "k": 16})
        entry = TraceStore(disk_dir=tmp_path).get(task.key())
        assert entry is not None
        assert replay_trace(task.config, entry).timing \
            == _direct_timing(task)


# ----------------------------------------------------------------------
# remote_puts accounting
# ----------------------------------------------------------------------
class TestRemotePuts:
    def _entry(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        writer = TraceCache(disk_dir=tmp_path)
        captured = run.capture(cfg, cache=writer, verify=False)
        return run.trace_key(cfg), captured

    def test_ingest_from_disk_counts_remote_put_only(self, tmp_path):
        key, _ = self._entry(tmp_path)
        reader = TraceCache(disk_dir=tmp_path)
        adopted = reader.ingest_remote(key)
        assert adopted is not None
        stats = reader.stats
        assert stats["remote_puts"] == 1
        assert (stats["hits"], stats["disk_hits"], stats["misses"]) \
            == (0, 0, 0)
        assert stats["lookups"] == 0  # adoption is not a lookup
        assert reader.get(key) is adopted  # now a memory hit
        assert reader.stats["hits"] == 1

    def test_ingest_with_shipped_payload(self, tmp_path):
        key, captured = self._entry(tmp_path)
        memory_only = TraceCache()
        adopted = memory_only.ingest_remote(key, _disk_payload(captured))
        assert adopted is not None
        assert memory_only.stats["remote_puts"] == 1
        assert memory_only.get(key) is adopted

    def test_ingest_missing_entry_returns_none(self, tmp_path):
        cache = TraceCache(disk_dir=tmp_path / "empty")
        assert cache.ingest_remote(("nope", 1, "x")) is None
        assert cache.stats["remote_puts"] == 0

    def test_demote_after_ingest_is_a_noop(self, tmp_path):
        key, _ = self._entry(tmp_path)
        reader = TraceCache(disk_dir=tmp_path)
        assert reader.get(key) is not None  # disk hit
        assert reader.ingest_remote(key) is not None
        before = dict(reader.stats)
        reader.demote_last_hit()  # ingest cleared the lookup context
        assert dict(reader.stats) == before


# ----------------------------------------------------------------------
# Envelope v4: zlib-compressed payloads
# ----------------------------------------------------------------------
class TestCompressedEnvelope:
    def _capture(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        cache = TraceCache(disk_dir=tmp_path)
        captured = run.capture(cfg, cache=cache, verify=False)
        return cfg, run, captured, run.trace_key(cfg)

    def test_round_trip_and_compression_ratio(self, tmp_path):
        from repro.functional.trace_pack import MAGIC

        cfg, run, captured, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        with path.open("rb") as fh:
            envelope = pickle.load(fh)
        # v6 payload: pruned fields with the trace as a columnar blob —
        # both smaller than the object pickle and cheaper to rehydrate.
        inner = pickle.loads(zlib.decompress(envelope["payload"]))
        assert isinstance(inner, dict)
        assert inner["trace_blob"].startswith(MAGIC)
        raw = pickle.dumps(_disk_payload(captured),
                           protocol=pickle.HIGHEST_PROTOCOL)
        assert len(envelope["payload"]) < len(raw) / 2  # really compressed
        # A fresh cache rehydrates the entry and replays bit-identically.
        entry = TraceCache(disk_dir=tmp_path).get(key)
        assert entry is not None
        assert replay_trace(cfg, entry).timing \
            == run.run(cfg, verify=False).timing

    def test_v3_uncompressed_envelope_is_a_miss(self, tmp_path):
        """A pre-compression (v3) file reads as a plain stale miss."""
        _, _, captured, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        v3 = {"format": 3, "schema": _payload_schema(),
              "payload": pickle.dumps(_disk_payload(captured),
                                      protocol=pickle.HIGHEST_PROTOCOL)}
        path.write_bytes(pickle.dumps(v3))
        stale = TraceCache(disk_dir=tmp_path)
        assert key not in stale
        assert stale.get(key) is None
        assert stale.stats["misses"] == 1

    def test_gc_purges_v3_entries(self, tmp_path):
        _, _, captured, key = self._capture(tmp_path)
        store = TraceStore(disk_dir=tmp_path)
        v3 = tmp_path / "trace_aaaa.pkl"
        v3.write_bytes(pickle.dumps(
            {"format": 3, "schema": _payload_schema(),
             "payload": pickle.dumps(_disk_payload(captured))}))
        summary = store.gc()
        assert summary["purged_stale"] == 1
        assert not v3.exists()
        assert disk_path(tmp_path, key).exists()  # the v4 entry survives

    def test_corrupt_compressed_payload_is_a_miss(self, tmp_path):
        """Valid tags around bytes zlib rejects: a miss, not a crash."""
        _, _, _, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        bad = {"format": DISK_FORMAT_VERSION, "schema": _payload_schema(),
               "payload": b"definitely not zlib"}
        path.write_bytes(pickle.dumps(bad))
        cache = TraceCache(disk_dir=tmp_path)
        # Membership mirrors get(): an entry whose payload cannot
        # rehydrate must not claim to exist.
        assert key not in cache
        assert cache.get(key) is None
        assert cache.stats["misses"] == 1
