"""Memory-system substrate: AXI bursts, banked L2, invalidation filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.memory import (AxiPort, BankedL2, DirectMappedCache,
                          InvalidationFilter, split_into_bursts)
from repro.memory.axi import BOUNDARY_BYTES, MAX_BEATS_PER_BURST


class TestBurstSplitting:
    @given(st.integers(min_value=0, max_value=2**20),
           st.integers(min_value=0, max_value=64 * 1024),
           st.sampled_from([8, 16, 32, 64, 128]))
    @settings(max_examples=80, deadline=None)
    def test_bursts_are_legal_and_cover(self, addr, nbytes, beat):
        bursts = split_into_bursts(addr, nbytes, beat)
        for b in bursts:
            assert b.beats <= MAX_BEATS_PER_BURST
            assert b.addr // BOUNDARY_BYTES == (b.end - 1) // BOUNDARY_BYTES \
                or b.end % BOUNDARY_BYTES == 0
        if nbytes:
            assert bursts[0].addr <= addr
            assert bursts[-1].end >= addr + nbytes
        # bursts are contiguous and ordered
        for a, b in zip(bursts, bursts[1:]):
            assert b.addr == a.end

    def test_zero_bytes(self):
        assert split_into_bursts(100, 0, 64) == []

    def test_crossing_4k(self):
        bursts = split_into_bursts(BOUNDARY_BYTES - 64, 128, 64)
        assert len(bursts) == 2

    def test_bad_beat_width(self):
        with pytest.raises(MemoryAccessError):
            split_into_bursts(0, 64, 24)


class TestAxiPort:
    def test_latency_and_bandwidth(self):
        port = AxiPort(beat_bytes=64, latency=10)
        first, last = port.issue(0.0, 0, 64 * 16)
        assert first == 11
        assert last == 10 + 16
        assert port.beats_total == 16

    def test_back_to_back_serialize(self):
        port = AxiPort(beat_bytes=64, latency=10)
        port.issue(0.0, 0, 64 * 8)
        first2, _ = port.issue(0.0, 4096, 64)
        assert first2 == 8 + 11  # waits for the first transfer's beats

    def test_effective_bandwidth(self):
        port = AxiPort(beat_bytes=64, latency=0)
        assert port.effective_bandwidth(640, 10) == 64.0


class TestBankedL2:
    def test_consecutive_lines_spread_banks(self):
        l2 = BankedL2(banks=8, line_bytes=64)
        banks = {l2.bank_of(i * 64) for i in range(8)}
        assert banks == set(range(8))

    def test_unit_stride_full_bandwidth(self):
        l2 = BankedL2(banks=8)
        assert l2.conflict_factor(8) == 1.0

    def test_bank_stride_conflicts(self):
        l2 = BankedL2(banks=8, line_bytes=64)
        assert l2.conflict_factor(8 * 64) == 1.0 / 8

    def test_half_bank_stride(self):
        l2 = BankedL2(banks=8, line_bytes=64)
        assert l2.conflict_factor(4 * 64) == pytest.approx(0.25)

    def test_power_of_two_banks_required(self):
        with pytest.raises(Exception):
            BankedL2(banks=6)

    def test_sustained_bandwidth(self):
        l2 = BankedL2(banks=4, bytes_per_cycle_per_bank=32)
        assert l2.peak_bytes_per_cycle == 128
        assert l2.sustained_bandwidth(4 * 64) == 32


class TestInvalidationFilter:
    def _setup(self):
        dcache = DirectMappedCache(1024, 64)
        return dcache, InvalidationFilter(dcache)

    def test_vector_store_invalidates_cached_line(self):
        dcache, filt = self._setup()
        dcache.access(128)
        filt.note_scalar_fill(128)
        filt.on_vector_store(128, 8)
        assert not dcache.access(128)  # line was invalidated -> miss

    def test_unseen_line_not_probed(self):
        dcache, filt = self._setup()
        forwarded = filt.on_vector_store(4096, 64)
        assert forwarded == 0

    def test_conservative_never_misses_real_hit(self):
        # Every line the D$ holds must be probed when written by vector.
        dcache, filt = self._setup()
        for addr in range(0, 1024, 64):
            dcache.access(addr)
            filt.note_scalar_fill(addr)
        for addr in range(0, 1024, 64):
            assert filt.on_vector_store(addr, 8) >= 1

    def test_multi_line_store(self):
        dcache, filt = self._setup()
        for addr in (0, 64, 128):
            dcache.access(addr)
            filt.note_scalar_fill(addr)
        assert filt.on_vector_store(0, 192) == 3


class TestDirectMappedCache:
    def test_hit_after_fill(self):
        c = DirectMappedCache(1024, 64)
        assert not c.access(0)
        assert c.access(0)
        assert c.hits == 1 and c.misses == 1

    def test_conflict_eviction(self):
        c = DirectMappedCache(128, 64)  # 2 lines
        c.access(0)
        c.access(128)  # same index as 0
        assert not c.access(0)
