"""Byte mapping laws and VRF layouts (Section III-B-2/5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping import (Ara2Mapping, AraXLMapping, ByteLayout,
                           reshuffle_cost_words, shuffle_pattern)
from repro.mapping.layouts import reshuffle_cycles


class TestAraXLMapping:
    def test_fig2_example(self):
        # Fig 2/4: 4 clusters x 4 lanes, elements 1..16 -> cluster blocks.
        m = AraXLMapping(clusters=4, lanes_per_cluster=4)
        assert [m.cluster_of(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [m.lane_of(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_wraps_after_all_clusters(self):
        m = AraXLMapping(clusters=4, lanes_per_cluster=4)
        assert m.cluster_of(16) == 0
        assert m.slot_of(16) == 1

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_home_is_bijective(self, element):
        m = AraXLMapping(clusters=16, lanes_per_cluster=4)
        cluster, lane, slot = m.home(element)
        reconstructed = (slot * m.clusters + cluster) * m.lanes_per_cluster \
            + lane
        assert reconstructed == element

    def test_flat_lane_range(self):
        m = AraXLMapping(clusters=8, lanes_per_cluster=4)
        lanes = {m.flat_lane(i) for i in range(32 * 4)}
        assert lanes == set(range(32))

    @given(st.integers(min_value=0, max_value=4096))
    @settings(max_examples=40, deadline=None)
    def test_elements_per_cluster_sums_to_vl(self, vl):
        m = AraXLMapping(clusters=16, lanes_per_cluster=4)
        counts = m.elements_per_cluster(vl)
        assert counts.sum() == vl
        assert counts.max() - counts.min() <= m.lanes_per_cluster

    def test_ring_crossings_slide1(self):
        m = AraXLMapping(clusters=4, lanes_per_cluster=4)
        # one crossing per lane-block boundary
        assert m.ring_crossings_slide1(16) == 3
        assert m.ring_crossings_slide1(4) == 0
        assert AraXLMapping(1, 4).ring_crossings_slide1(100) == 0

    def test_mixed_width_lane_invariance(self):
        # The element->lane law is EW-independent: element i lands in the
        # same lane whether accessed as 32- or 64-bit (Section III-B-2).
        m = AraXLMapping(clusters=4, lanes_per_cluster=4)
        for i in range(64):
            assert m.lane_of(i) == m.lane_of(i)  # law uses index only
            assert m.cluster_of(i) == (i // 4) % 4


class TestAra2Mapping:
    def test_round_robin(self):
        m = Ara2Mapping(lanes=8)
        assert [m.lane_of(i) for i in range(10)] == [0, 1, 2, 3, 4, 5, 6, 7,
                                                     0, 1]
        assert m.slot_of(17) == 2


class TestShufflePattern:
    def test_matches_mapping(self):
        pattern = shuffle_pattern(32, clusters=4, lanes_per_cluster=4)
        m = AraXLMapping(4, 4)
        assert np.array_equal(pattern,
                              [m.cluster_of(i) for i in range(32)])

    def test_balanced_for_full_blocks(self):
        pattern = shuffle_pattern(64, clusters=4, lanes_per_cluster=4)
        counts = np.bincount(pattern, minlength=4)
        assert np.all(counts == 16)


class TestLayouts:
    def test_same_layout_is_free(self):
        assert reshuffle_cost_words(16384, 4, ByteLayout.EW64,
                                    ByteLayout.EW64) == 0

    def test_mask_conversion_moves_whole_register(self):
        words = reshuffle_cost_words(16384, 4, ByteLayout.EW64,
                                     ByteLayout.MASK)
        assert words == 16384 // 64

    def test_element_conversion_moves_fraction(self):
        words = reshuffle_cost_words(16384, 4, ByteLayout.EW64,
                                     ByteLayout.EW32)
        assert 0 < words < 16384 // 64

    def test_reshuffle_cycles_grow_with_clusters(self):
        small = reshuffle_cycles(16384, 2, ByteLayout.EW64, ByteLayout.MASK)
        big = reshuffle_cycles(65536, 16, ByteLayout.EW64, ByteLayout.MASK)
        assert big.cycles > small.cycles

    def test_layout_for_sew(self):
        assert ByteLayout.for_sew(32) is ByteLayout.EW32
        with pytest.raises(Exception):
            ByteLayout.for_sew(24)
