"""Floorplan substrate: geometry sanity, wire estimates, congestion."""

import itertools

import pytest

from repro.params import AraXLConfig
from repro.physdesign import (build_floorplan, congestion_score, hpwl,
                              ring_wirelength)
from repro.physdesign.wirelength import reqi_wirelength


@pytest.mark.parametrize("lanes", [8, 16, 32, 64])
class TestGeometry:
    def test_no_block_overlaps(self, lanes):
        fp = build_floorplan(AraXLConfig(lanes=lanes))
        for a, b in itertools.combinations(fp.blocks, 2):
            assert not a.overlaps(b), (a.name, b.name)

    def test_blocks_inside_die(self, lanes):
        fp = build_floorplan(AraXLConfig(lanes=lanes))
        eps = 1e-9
        for b in fp.blocks:
            assert b.x >= -eps and b.y >= -eps
            assert b.x + b.w <= fp.die_w + eps
            assert b.y + b.h <= fp.die_h + eps

    def test_cluster_count(self, lanes):
        fp = build_floorplan(AraXLConfig(lanes=lanes))
        assert len(fp.clusters()) == lanes // 4

    def test_utilization_physical(self, lanes):
        fp = build_floorplan(AraXLConfig(lanes=lanes))
        assert 0.3 < fp.utilization <= 1.0 + 1e-9


class TestWirelength:
    def test_hpwl_of_single_block_is_zero(self):
        fp = build_floorplan(AraXLConfig(lanes=16))
        assert hpwl([fp.blocks[0]]) == 0.0

    def test_ring_grows_with_clusters(self):
        lengths = [ring_wirelength(build_floorplan(AraXLConfig(lanes=n)))
                   for n in (16, 32, 64)]
        assert lengths == sorted(lengths)
        assert all(length > 0 for length in lengths)

    def test_reqi_touches_all_clusters(self):
        fp = build_floorplan(AraXLConfig(lanes=32))
        assert reqi_wirelength(fp) > ring_wirelength(fp) / 8


class TestCongestion:
    def test_32_lane_is_clean(self):
        assert congestion_score(
            build_floorplan(AraXLConfig(lanes=32))) <= 1.0

    def test_64_lane_is_hotspot(self):
        assert congestion_score(
            build_floorplan(AraXLConfig(lanes=64))) > 1.0

    def test_monotone_in_clusters(self):
        scores = [congestion_score(build_floorplan(AraXLConfig(lanes=n)))
                  for n in (8, 16, 32, 64)]
        assert scores == sorted(scores)


class TestRendering:
    def test_ascii_art_contains_all_blocks(self):
        fp = build_floorplan(AraXLConfig(lanes=16))
        art = fp.ascii_art()
        assert "cva6" in art.lower() or "C" in art
        assert "floorplan" in art

    def test_block_lookup(self):
        fp = build_floorplan(AraXLConfig(lanes=16))
        assert fp.block("cva6").area > 0
        with pytest.raises(Exception):
            fp.block("nonexistent")
