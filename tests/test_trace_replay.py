"""Trace-once / replay-many pipeline: reuse, cache keying, spy counts."""

from __future__ import annotations

import dataclasses

import pytest

from repro.eval.fig7_latency import run_fig7
from repro.functional.executor import Executor
from repro.kernels import KERNELS, build_fmatmul
from repro.params import Ara2Config, AraXLConfig
from repro.sim import Simulator, TraceCache, replay_trace
from repro.errors import ConfigError


class TestReplayEqualsFreshRun:
    """Replaying one captured trace must be bit-identical to end-to-end."""

    @pytest.mark.parametrize("kernel", ("fmatmul", "fdotproduct", "jacobi2d"))
    def test_cross_machine_same_vlen(self, kernel):
        # Ara2-8L and AraXL-8L share VLEN=8192: one capture serves both.
        ara2 = Ara2Config(lanes=8)
        araxl = AraXLConfig(lanes=8)
        kw = {"m": 8, "k": 16} if kernel == "fmatmul" else (
            {"rows": 8} if kernel == "jacobi2d" else {})
        run = KERNELS[kernel](ara2, 64, **kw)

        captured = run.capture(ara2, verify=True)
        replay_ara2 = run.run(ara2, trace=captured).timing
        replay_araxl = run.run(araxl, trace=captured).timing

        fresh_ara2 = run.run(ara2, verify=False).timing
        fresh_araxl = run.run(araxl, verify=False).timing
        assert replay_ara2 == fresh_ara2
        assert replay_araxl == fresh_araxl
        # Different interconnects must still time differently.
        assert replay_ara2.machine != replay_araxl.machine

    def test_timing_knobs_share_one_trace(self):
        base = AraXLConfig(lanes=8)
        run = build_fmatmul(base, 128, m=8, k=16)
        captured = run.capture(base, verify=False)
        for knob in ({"glsu_extra_regs": 4}, {"reqi_extra_regs": 1},
                     {"ringi_extra_regs": 1}):
            cut = dataclasses.replace(base, **knob)
            assert run.run(cut, trace=captured).timing == \
                run.run(cut, verify=False).timing

    def test_vlen_mismatch_rejected(self):
        small = Ara2Config(lanes=4)
        run = build_fmatmul(small, 64, m=8, k=16)
        captured = run.capture(small, verify=False)
        with pytest.raises(ConfigError):
            replay_trace(Ara2Config(lanes=8), captured)


class TestTraceCacheKeying:
    def test_hit_same_point_miss_other_vlen_and_setup(self):
        cache = TraceCache()
        ara2 = Ara2Config(lanes=8)
        araxl = AraXLConfig(lanes=8)
        run = build_fmatmul(ara2, 64, m=8, k=16)

        run.capture(ara2, cache=cache, verify=False)
        assert cache.stats["misses"] == 1 and cache.stats["hits"] == 0

        # Same program + same VLEN (different interconnect): hit.
        run2 = build_fmatmul(araxl, 64, m=8, k=16)
        assert run2.trace_key(araxl) == run.trace_key(ara2)
        run2.capture(araxl, cache=cache, verify=False)
        assert cache.stats["hits"] == 1

        # Different VLEN: miss (key includes vlen_bits and fingerprint).
        big = Ara2Config(lanes=16)
        run_big = build_fmatmul(big, 64, m=8, k=16)
        assert run_big.trace_key(big) != run.trace_key(ara2)
        run_big.capture(big, cache=cache, verify=False)
        assert cache.stats["misses"] == 2

        # Different setup (problem size): miss even at equal VLEN.
        run_other = build_fmatmul(ara2, 64, m=8, k=32)
        assert run_other.trace_key(ara2) != run.trace_key(ara2)
        run_other.capture(ara2, cache=cache, verify=False)
        assert cache.stats["misses"] == 3

    def test_lru_eviction(self):
        cache = TraceCache(capacity=1)
        cfg = Ara2Config(lanes=4)
        a = build_fmatmul(cfg, 64, m=8, k=16)
        b = build_fmatmul(cfg, 64, m=8, k=32)
        a.capture(cfg, cache=cache, verify=False)
        b.capture(cfg, cache=cache, verify=False)  # evicts a
        assert len(cache) == 1
        a.capture(cfg, cache=cache, verify=False)
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 3

    def test_disk_layer_roundtrip(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        cache = TraceCache(disk_dir=tmp_path)
        captured = run.capture(cfg, cache=cache, verify=False)
        fresh_report = run.run(cfg, trace=captured).timing

        # New process simulation: empty memory cache, same disk dir.
        cold = TraceCache(disk_dir=tmp_path)
        from_disk = cold.get(run.trace_key(cfg))
        assert from_disk is not None
        assert cold.stats["disk_hits"] == 1
        assert run.run(cfg, trace=from_disk).timing == fresh_report

    def test_check_runs_once_per_captured_trace(self):
        cache = TraceCache()
        cfg = Ara2Config(lanes=8)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        checks = []
        orig_check = run.check
        run = dataclasses.replace(
            run, check=lambda sim: checks.append(1) or orig_check(sim))
        run.capture(cfg, cache=cache, verify=True)
        run.capture(cfg, cache=cache, verify=True)  # cache hit: no check
        run.run(AraXLConfig(lanes=8), verify=True, cache=cache)  # hit too
        assert checks == [1]


class TestFunctionalExecutionCounts:
    """The sweeps must execute functionally once per operating point."""

    @pytest.fixture
    def exec_counter(self, monkeypatch):
        calls = []
        orig = Executor.run

        def counting_run(self, program, *args, **kwargs):
            calls.append(program.name)
            return orig(self, program, *args, **kwargs)

        monkeypatch.setattr(Executor, "run", counting_run)
        return calls

    def test_fig7_one_functional_run_per_kernel_size(self, exec_counter):
        kernels = ("fmatmul", "fdotproduct", "softmax")
        sizes = (64, 128)
        points = run_fig7(kernels=kernels, bytes_per_lane=sizes,
                          lanes=16, scale="reduced")
        # 3 interfaces x |kernels| x |sizes| points...
        assert len(points) == 3 * len(kernels) * len(sizes)
        # ...but exactly ONE functional execution per (kernel, size).
        assert len(exec_counter) == len(kernels) * len(sizes)

    def test_fig7_warm_cache_runs_zero_functional(self, exec_counter):
        cache = TraceCache()
        kw = dict(kernels=("fmatmul",), bytes_per_lane=(64,), lanes=16,
                  scale="reduced", trace_cache=cache)
        cold = run_fig7(**kw)
        assert len(exec_counter) == 1
        warm = run_fig7(**kw)
        assert len(exec_counter) == 1  # no new functional runs
        assert [(p.interface, p.drop) for p in cold] == \
            [(p.interface, p.drop) for p in warm]
