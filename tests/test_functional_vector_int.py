"""Integer vector semantics vs NumPy goldens (element-exact)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.vec_utils import VecEnv

RNG = np.random.default_rng(7)


def _env(vl=31, sew=64, lmul=1):
    return VecEnv(vl, sew=sew, lmul=lmul)


class TestBinops:
    @pytest.mark.parametrize("sew", [8, 16, 32, 64])
    def test_vadd_wraps(self, sew):
        env = _env(sew=sew)
        dt = np.dtype(f"u{sew // 8}")
        a = env.rand_int(RNG, dt)
        b = env.rand_int(RNG, dt)
        env.set_v(8, a)
        env.set_v(16, b)
        env.run("vadd_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=dt), a + b)

    def test_vsub_operand_order(self):
        env = _env(vl=4)
        env.set_v(8, np.array([10, 10, 10, 10], dtype=np.uint64))
        env.set_v(16, np.array([1, 2, 3, 4], dtype=np.uint64))
        env.run("vsub_vv", "v24", "v8", "v16")  # vd = vs2 - vs1
        assert np.array_equal(env.get_v(24, dtype=np.uint64), [9, 8, 7, 6])

    def test_vrsub_vx(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1, 2, 3], dtype=np.uint64))
        env.state.x.write(5, 10)
        env.run("vrsub_vx", "v24", "v8", "x5")  # rs1 - vs2
        assert np.array_equal(env.get_v(24, dtype=np.uint64), [9, 8, 7])

    def test_vmin_signed_vmax(self):
        env = _env(vl=3)
        env.set_v(8, np.array([-5, 0, 5], dtype=np.int64))
        env.set_v(16, np.array([1, -1, 7], dtype=np.int64))
        env.run("vmin_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [-5, -1, 5])
        env.run("vmaxu_vv", "v28", "v8", "v16")
        # unsigned view: -5 and -1 are huge
        a = np.array([-5, 0, 5], dtype=np.int64).view(np.uint64)
        b = np.array([1, -1, 7], dtype=np.int64).view(np.uint64)
        assert np.array_equal(env.get_v(28, dtype=np.uint64), np.maximum(a, b))

    @pytest.mark.parametrize("mn,func", [
        ("vand_vv", np.bitwise_and), ("vor_vv", np.bitwise_or),
        ("vxor_vv", np.bitwise_xor), ("vmul_vv", np.multiply)])
    def test_bitwise_and_mul(self, mn, func):
        env = _env()
        a = env.rand_int(RNG, np.uint64)
        b = env.rand_int(RNG, np.uint64)
        env.set_v(8, a)
        env.set_v(16, b)
        env.run(mn, "v24", "v8", "v16")
        with np.errstate(over="ignore"):
            assert np.array_equal(env.get_v(24, dtype=np.uint64), func(a, b))


class TestShifts:
    def test_vsll_masks_shift_amount(self):
        env = _env(vl=2, sew=32)
        env.set_v(8, np.array([1, 1], dtype=np.uint32))
        env.set_v(16, np.array([33, 4], dtype=np.uint32))  # 33 & 31 = 1
        env.run("vsll_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.uint32), [2, 16])

    def test_vsra_arithmetic(self):
        env = _env(vl=2)
        env.set_v(8, np.array([-8, 8], dtype=np.int64))
        env.run("vsra_vi", "v24", "v8", 1)
        assert np.array_equal(env.get_v(24, dtype=np.int64), [-4, 4])

    def test_vsrl_logical(self):
        env = _env(vl=1)
        env.set_v(8, np.array([-8], dtype=np.int64))
        env.run("vsrl_vi", "v24", "v8", 1)
        got = env.get_v(24, dtype=np.uint64)[0]
        assert got == np.uint64(2 ** 64 - 8) >> np.uint64(1)


class TestDivRem:
    def test_division_by_zero_gives_minus_one(self):
        env = _env(vl=2)
        env.set_v(8, np.array([7, -7], dtype=np.int64))
        env.set_v(16, np.array([0, 0], dtype=np.int64))
        env.run("vdiv_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [-1, -1])

    def test_overflow_returns_dividend(self):
        env = _env(vl=1)
        env.set_v(8, np.array([np.iinfo(np.int64).min], dtype=np.int64))
        env.set_v(16, np.array([-1], dtype=np.int64))
        env.run("vdiv_vv", "v24", "v8", "v16")
        assert env.get_v(24, dtype=np.int64)[0] == np.iinfo(np.int64).min

    def test_truncating_division(self):
        env = _env(vl=2)
        env.set_v(8, np.array([-7, 7], dtype=np.int64))
        env.set_v(16, np.array([2, -2], dtype=np.int64))
        env.run("vdiv_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [-3, -3])

    def test_rem_sign_follows_dividend(self):
        env = _env(vl=2)
        env.set_v(8, np.array([-7, 7], dtype=np.int64))
        env.set_v(16, np.array([2, -2], dtype=np.int64))
        env.run("vrem_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [-1, 1])

    def test_rem_by_zero_returns_dividend(self):
        env = _env(vl=1)
        env.set_v(8, np.array([42], dtype=np.int64))
        env.set_v(16, np.array([0], dtype=np.int64))
        env.run("vrem_vv", "v24", "v8", "v16")
        assert env.get_v(24, dtype=np.int64)[0] == 42


class TestFmaAndMoves:
    def test_vmacc(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1, 2, 3], dtype=np.uint64))   # vs1
        env.set_v(16, np.array([10, 10, 10], dtype=np.uint64))  # vs2
        env.set_v(24, np.array([5, 5, 5], dtype=np.uint64))   # vd
        env.run("vmacc_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.uint64), [15, 25, 35])

    def test_vmv_v_x_splat(self):
        env = _env(vl=5)
        env.state.x.write(3, -1)
        env.run("vmv_v_x", "v8", "x3")
        assert np.array_equal(env.get_v(8, dtype=np.int64), [-1] * 5)

    def test_vmv_s_x_and_x_s(self):
        env = _env(vl=4)
        env.state.x.write(3, 99)
        env.run("vmv_s_x", "v8", "x3")
        env.run("vmv_x_s", "x4", "v8")
        assert env.state.x.read(4) == 99

    def test_vid(self):
        env = _env(vl=6)
        env.run("vid_v", "v8")
        assert np.array_equal(env.get_v(8, dtype=np.uint64), np.arange(6))


class TestComparesAndMerge:
    def test_vmslt_writes_mask(self):
        env = _env(vl=4)
        env.set_v(8, np.array([-1, 5, 3, 0], dtype=np.int64))
        env.set_v(16, np.array([0, 0, 4, 0], dtype=np.int64))
        env.run("vmslt_vv", "v2", "v8", "v16")  # vs2 < vs1
        assert np.array_equal(env.get_mask(2), [True, False, True, False])

    def test_masked_compare_preserves_inactive_bits(self):
        env = _env(vl=4)
        env.set_mask(0, [True, False, True, False])
        env.set_mask(2, [True, True, True, True])
        env.set_v(8, np.zeros(4, dtype=np.int64))
        env.set_v(16, np.ones(4, dtype=np.int64))
        env.run("vmslt_vv", "v2", "v16", "v8", masked=True)  # 1 < 0: false
        assert np.array_equal(env.get_mask(2), [False, True, False, True])

    def test_vmerge(self):
        env = _env(vl=4)
        env.set_mask(0, [True, False, True, False])
        env.set_v(8, np.array([1, 2, 3, 4], dtype=np.uint64))   # vs2 (false)
        env.set_v(16, np.array([9, 9, 9, 9], dtype=np.uint64))  # vs1 (true)
        env.run("vmerge_vvm", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.uint64), [9, 2, 9, 4])


class TestWideningNarrowing:
    def test_vwmul(self):
        env = _env(vl=3, sew=32)
        a = np.array([-100000, 3, 65536], dtype=np.int32)
        b = np.array([100000, -3, 65536], dtype=np.int32)
        env.set_v(8, a)
        env.set_v(16, b)
        env.run("vwmul_vv", "v24", "v8", "v16")
        got = env.get_v(24, dtype=np.int64, emul=2)
        assert np.array_equal(got, a.astype(np.int64) * b.astype(np.int64))

    def test_vwadd(self):
        env = _env(vl=2, sew=32)
        a = np.array([2**31 - 1, -2**31], dtype=np.int32)
        env.set_v(8, a)
        env.set_v(16, a)
        env.run("vwadd_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.int64, emul=2),
                              2 * a.astype(np.int64))

    def test_vnsrl(self):
        env = _env(vl=2, sew=32)
        wide = np.array([0x1_0000_0002, 0xFF_0000_0000], dtype=np.uint64)
        env.set_v(8, wide, emul=2)
        env.run("vnsrl_wi", "v24", "v8", 32)
        assert np.array_equal(env.get_v(24, dtype=np.uint32),
                              [1, 0xFF])


class TestMaskedWrites:
    def test_mask_undisturbed_policy(self):
        env = _env(vl=4)
        env.set_mask(0, [True, False, False, True])
        env.set_v(8, np.array([1, 2, 3, 4], dtype=np.uint64))
        env.set_v(16, np.array([10, 10, 10, 10], dtype=np.uint64))
        env.set_v(24, np.array([7, 7, 7, 7], dtype=np.uint64))
        env.run("vadd_vv", "v24", "v8", "v16", masked=True)
        assert np.array_equal(env.get_v(24, dtype=np.uint64), [11, 7, 7, 14])

    def test_tail_undisturbed(self):
        env = _env(vl=4)
        full = np.arange(8, dtype=np.uint64)
        env.set_v(24, full)  # fill beyond vl
        env.set_v(8, np.zeros(4, dtype=np.uint64))
        env.set_v(16, np.ones(4, dtype=np.uint64))
        env.run("vadd_vv", "v24", "v8", "v16")
        got = env.state.v.read_elems(24, 8, np.dtype(np.uint64), 1)
        assert np.array_equal(got[4:], full[4:])


@given(st.integers(min_value=1, max_value=64),
       st.sampled_from(["vadd_vv", "vand_vv", "vxor_vv", "vmul_vv"]))
@settings(max_examples=40, deadline=None)
def test_binop_property_random_vl(vl, mnemonic):
    env = VecEnv(vl)
    rng = np.random.default_rng(vl)
    a = env.rand_int(rng, np.uint64)
    b = env.rand_int(rng, np.uint64)
    env.set_v(8, a)
    env.set_v(16, b)
    env.run(mnemonic, "v24", "v8", "v16")
    func = {"vadd_vv": np.add, "vand_vv": np.bitwise_and,
            "vxor_vv": np.bitwise_xor, "vmul_vv": np.multiply}[mnemonic]
    with np.errstate(over="ignore"):
        expected = func(a, b)
    assert np.array_equal(env.get_v(24, dtype=np.uint64), expected)
