"""ReplayPool fan-out and TraceCache concurrency hardening."""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.eval.fig6_scaling import render_fig6, run_fig6
from repro.eval.fig7_latency import render_fig7, run_fig7
from repro.eval.table3_ppa import render_table3, run_table3
from repro.kernels import build_fmatmul
from repro.params import Ara2Config, AraXLConfig
from repro.sim import ReplayPool, TraceCache, replay_trace
from repro.sim.trace_cache import DISK_FORMAT_VERSION, disk_path
import repro.sim.parallel as parallel_mod


def _fmatmul_capture(config, cache=None, **kw):
    kw.setdefault("m", 8)
    kw.setdefault("k", 16)
    run = build_fmatmul(config, 64, **kw)
    captured = run.capture(config, cache=cache, verify=False)
    return run, captured


class TestReplayPool:
    def test_results_in_task_order_across_workers(self):
        """Interleaved tasks over two VLEN groups come back in task order."""
        small, big = Ara2Config(lanes=4), Ara2Config(lanes=8)
        _, cap_small = _fmatmul_capture(small)
        _, cap_big = _fmatmul_capture(big)
        tasks = [(big, cap_big), (small, cap_small),
                 (big, cap_big), (small, cap_small)]
        serial = [replay_trace(cfg, cap).timing for cfg, cap in tasks]
        pooled = ReplayPool(workers=2).replay_batch(tasks)
        assert pooled == serial

    def test_workers_one_never_spawns_processes(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("workers=1 must not build a process pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        cfg = Ara2Config(lanes=4)
        _, captured = _fmatmul_capture(cfg)
        reports = ReplayPool(workers=1).replay_batch([(cfg, captured)] * 3)
        assert len(reports) == 3 and len(set(map(id, reports))) == 3
        assert reports[0] == replay_trace(cfg, captured).timing

    def test_single_task_stays_in_process(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("one task must replay in-process"))
        cfg = Ara2Config(lanes=4)
        _, captured = _fmatmul_capture(cfg)
        reports = ReplayPool(workers=8).replay_batch([(cfg, captured)])
        assert reports == [replay_trace(cfg, captured).timing]

    def test_single_group_chunks_across_workers(self):
        """A one-kernel many-config batch still fans out (and stays
        ordered): the lone trace group is split into per-worker chunks."""
        cfg = Ara2Config(lanes=4)
        other = AraXLConfig(lanes=4)  # same VLEN, different interconnect
        _, captured = _fmatmul_capture(cfg)
        tasks = [(cfg, captured), (other, captured)] * 2
        pool = ReplayPool(workers=2)
        jobs = parallel_mod._batch_jobs(
            parallel_mod._group_tasks(parallel_mod._normalize_tasks(tasks)),
            workers=2)
        assert len(jobs) == 2  # one group chunked into two jobs
        assert [i for job in jobs for i in job.indices] == [0, 1, 2, 3]
        reports = pool.replay_batch(tasks)
        assert reports == [replay_trace(c, captured).timing
                           for c, _ in tasks]
        assert reports[0] != reports[1]

    def test_autodetect_and_validation(self):
        assert ReplayPool().workers >= 1
        assert parallel_mod.autodetect_workers() >= 1
        with pytest.raises(ValueError):
            ReplayPool(workers=0)

    def test_empty_batch(self):
        assert ReplayPool(workers=2).replay_batch([]) == []

    def test_disk_backed_workers_rehydrate_and_report_stats(self, tmp_path):
        """Keys on disk ship no payload; worker stats aggregate per pid."""
        cache = TraceCache(disk_dir=tmp_path)
        small, big = Ara2Config(lanes=4), Ara2Config(lanes=8)
        _, cap_small = _fmatmul_capture(small, cache=cache)
        run_big, cap_big = _fmatmul_capture(big, cache=cache)
        tasks = [(small, cap_small, build_fmatmul(small, 64, m=8, k=16)
                  .trace_key(small)),
                 (big, cap_big, run_big.trace_key(big))]
        pool = ReplayPool(workers=2, disk_dir=tmp_path)
        reports = pool.replay_batch(tasks)
        assert reports == [replay_trace(cfg, cap).timing
                           for cfg, cap, _ in tasks]
        stats = pool.stats
        assert stats["workers"] >= 1
        assert stats["disk_hits"] == 2  # both groups rehydrated from disk
        assert sum(s["disk_hits"] for s in stats["per_worker"].values()) == 2

    def test_missing_disk_entry_falls_back_to_payload(self, tmp_path):
        """A key absent from disk_dir still replays (payload resend)."""
        small, big = Ara2Config(lanes=4), Ara2Config(lanes=8)
        run_s, cap_small = _fmatmul_capture(small)
        run_b, cap_big = _fmatmul_capture(big)
        # disk_dir is empty: the parent sends payloads directly.
        tasks = [(small, cap_small, run_s.trace_key(small)),
                 (big, cap_big, run_b.trace_key(big))]
        pool = ReplayPool(workers=2, disk_dir=tmp_path / "empty")
        assert pool.replay_batch(tasks) == \
            [replay_trace(cfg, cap).timing for cfg, cap, _ in tasks]

    def test_stale_disk_entry_triggers_payload_resend(self, tmp_path):
        """A file that exists but fails to load hits the retry path."""
        small, big = Ara2Config(lanes=4), Ara2Config(lanes=8)
        run_s, cap_small = _fmatmul_capture(small)
        run_b, cap_big = _fmatmul_capture(big)
        key_s, key_b = run_s.trace_key(small), run_b.trace_key(big)
        for key in (key_s, key_b):
            path = disk_path(tmp_path, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"not a pickle")
        tasks = [(small, cap_small, key_s), (big, cap_big, key_b)]
        pool = ReplayPool(workers=2, disk_dir=tmp_path)
        assert pool.replay_batch(tasks) == \
            [replay_trace(cfg, cap).timing for cfg, cap, _ in tasks]


class TestParallelSweepsByteIdentical:
    """Fan-out must not change a single byte of any rendered experiment."""

    def test_fig6_parallel_matches_serial(self):
        kw = dict(kernels=("fmatmul", "fdotproduct"), bytes_per_lane=(64,),
                  machines=[Ara2Config(lanes=8), AraXLConfig(lanes=8),
                            AraXLConfig(lanes=16)],
                  scale="reduced")
        serial = run_fig6(**kw, workers=1)
        parallel = run_fig6(**kw, workers=3)
        assert render_fig6(parallel) == render_fig6(serial)
        assert parallel == serial

    def test_fig7_parallel_matches_serial(self):
        kw = dict(kernels=("fmatmul", "softmax"), bytes_per_lane=(64, 128),
                  lanes=8, scale="reduced")
        serial = run_fig7(**kw, workers=1)
        parallel = run_fig7(**kw, workers=4)
        assert render_fig7(parallel) == render_fig7(serial)
        assert parallel == serial

    def test_table3_parallel_matches_serial(self):
        kw = dict(configs=[Ara2Config(lanes=8), AraXLConfig(lanes=8),
                           AraXLConfig(lanes=16)],
                  scale="reduced")
        serial = run_table3(**kw, workers=1)
        parallel = run_table3(**kw, workers=2)
        assert render_table3(parallel) == render_table3(serial)

    def test_fig6_baseline_position_is_irrelevant(self):
        """Machines listed before 8L-Ara2 still get a real scaling factor."""
        kw = dict(kernels=("fmatmul",), bytes_per_lane=(64,),
                  scale="reduced")
        first = run_fig6(machines=[Ara2Config(lanes=8),
                                   AraXLConfig(lanes=16)], **kw)
        last = run_fig6(machines=[AraXLConfig(lanes=16),
                                  Ara2Config(lanes=8)], **kw)
        by_machine_first = {p.machine: p.scaling_vs_8l_ara2 for p in first}
        by_machine_last = {p.machine: p.scaling_vs_8l_ara2 for p in last}
        assert by_machine_first == by_machine_last
        assert by_machine_last["16L-AraXL"] > 0.0


# ----------------------------------------------------------------------
# Concurrent disk-cache hardening
# ----------------------------------------------------------------------
def _hammer_disk_cache(disk_dir: str, iterations: int) -> None:
    """Worker: repeatedly rewrite and reread the same keys in one dir."""
    cache = TraceCache(disk_dir=disk_dir)
    cfg = Ara2Config(lanes=4)
    run = build_fmatmul(cfg, 64, m=8, k=16)
    captured = run.capture(cfg, verify=False)
    key = run.trace_key(cfg)
    for _ in range(iterations):
        cache.put(key, captured)
        entry = TraceCache(disk_dir=disk_dir).get(key)  # bypass memory LRU
        assert entry is not None  # never a torn read


class TestDiskCacheConcurrency:
    def test_concurrent_writers_never_corrupt(self, tmp_path):
        """Two processes hammering one disk_dir leave only whole files."""
        procs = [multiprocessing.Process(target=_hammer_disk_cache,
                                         args=(str(tmp_path), 30))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        files = list(tmp_path.glob("trace_*.pkl"))
        assert files, "writers produced no cache files"
        assert not list(tmp_path.glob("*.tmp")), "orphaned temp files"
        for path in files:
            with path.open("rb") as fh:
                envelope = pickle.load(fh)  # must always unpickle whole
            assert envelope["format"] == DISK_FORMAT_VERSION
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        reader = TraceCache(disk_dir=tmp_path)
        entry = reader.get(run.trace_key(cfg))
        assert entry is not None
        assert replay_trace(cfg, entry).timing == \
            run.run(cfg, verify=False).timing


class TestDiskFormatVersioning:
    def _capture(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        cache = TraceCache(disk_dir=tmp_path)
        captured = run.capture(cfg, cache=cache, verify=False)
        return cfg, run, captured, run.trace_key(cfg)

    def test_version_mismatch_is_a_miss_then_overwritten(self, tmp_path):
        cfg, run, captured, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        with path.open("rb") as fh:
            envelope = pickle.load(fh)
        envelope["format"] = DISK_FORMAT_VERSION - 1
        with path.open("wb") as fh:
            pickle.dump(envelope, fh)

        stale = TraceCache(disk_dir=tmp_path)
        assert key not in stale  # membership validates the envelope too
        assert stale.get(key) is None
        assert stale.stats["misses"] == 1 and stale.stats["disk_hits"] == 0
        # The recapture path (put) overwrites the stale file in place.
        stale.put(key, captured)
        assert TraceCache(disk_dir=tmp_path).get(key) is not None

    def test_schema_drift_is_a_miss(self, tmp_path):
        _, _, _, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        with path.open("rb") as fh:
            envelope = pickle.load(fh)
        envelope["schema"] = envelope["schema"] + ("new_field",)
        with path.open("wb") as fh:
            pickle.dump(envelope, fh)
        assert TraceCache(disk_dir=tmp_path).get(key) is None

    def test_pre_envelope_bare_pickle_is_a_miss(self, tmp_path):
        cfg, run, captured, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        from repro.sim.trace_cache import _disk_payload
        with path.open("wb") as fh:  # old v1 format: bare ExecResult
            pickle.dump(_disk_payload(captured), fh)
        assert TraceCache(disk_dir=tmp_path).get(key) is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        _, _, _, key = self._capture(tmp_path)
        path = disk_path(tmp_path, key)
        path.write_bytes(path.read_bytes()[:50])
        cache = TraceCache(disk_dir=tmp_path)
        assert key not in cache
        assert cache.get(key) is None
        assert cache.stats["misses"] == 1


class TestCacheMembershipAndStats:
    def test_contains_consults_disk_without_counting(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        writer = TraceCache(disk_dir=tmp_path)
        run.capture(cfg, cache=writer, verify=False)
        key = run.trace_key(cfg)

        fresh = TraceCache(disk_dir=tmp_path)  # empty memory, warm disk
        assert key in fresh
        assert fresh.stats["lookups"] == 0  # membership is not a lookup
        memory_only = TraceCache()
        assert key not in memory_only

    def test_disk_hits_split_from_memory_hits(self, tmp_path):
        cfg = Ara2Config(lanes=4)
        run = build_fmatmul(cfg, 64, m=8, k=16)
        writer = TraceCache(disk_dir=tmp_path)
        run.capture(cfg, cache=writer, verify=False)
        key = run.trace_key(cfg)

        cache = TraceCache(disk_dir=tmp_path)
        assert cache.get(key) is not None  # disk rehydration
        assert cache.get(key) is not None  # now a memory hit
        stats = cache.stats
        assert stats["disk_hits"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 0 and stats["lookups"] == 2
        assert stats["hit_rate"] == pytest.approx(0.5)  # in-memory rate
