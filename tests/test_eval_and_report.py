"""Experiment drivers (reduced scale) and report rendering."""

import pytest

from repro.eval import (PAPER_FIG7_CLAIMS, run_experiment, run_fig6, run_fig7,
                        run_fig8, run_fig9, run_table1, run_table2,
                        run_table3)
from repro.eval.fig6_scaling import render_fig6
from repro.eval.fig7_latency import max_drop, render_fig7
from repro.eval.fig8_floorplan import render_fig8
from repro.eval.fig9_area import render_fig9
from repro.eval.survey import araxl_is_frontier, render_survey
from repro.eval.table1_kernels import render_table1
from repro.eval.table2_area import render_table2
from repro.eval.table3_ppa import render_table3
from repro.params import Ara2Config, AraXLConfig
from repro.report import bar_chart, line_points, render_table


class TestSurvey:
    def test_frontier_claim(self):
        assert araxl_is_frontier()

    def test_render(self):
        text = render_survey()
        assert "64L-AraXL" in text and "65536" in text


class TestFig6Reduced:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig6(kernels=("fmatmul", "fdotproduct"),
                        bytes_per_lane=(64, 512),
                        machines=[Ara2Config(lanes=8), AraXLConfig(lanes=32)],
                        scale="reduced")

    def test_weak_scaling_factor(self, points):
        pt = next(p for p in points if p.kernel == "fmatmul"
                  and p.machine == "32L-AraXL" and p.bytes_per_lane == 512)
        assert pt.scaling_vs_8l_ara2 == pytest.approx(4.0, abs=0.25)

    def test_reductions_scale_worse(self, points):
        fm = next(p for p in points if p.kernel == "fmatmul"
                  and p.machine == "32L-AraXL" and p.bytes_per_lane == 512)
        fd = next(p for p in points if p.kernel == "fdotproduct"
                  and p.machine == "32L-AraXL" and p.bytes_per_lane == 512)
        assert fd.scaling_vs_8l_ara2 < fm.scaling_vs_8l_ara2

    def test_medium_vectors_underutilize(self, points):
        short = next(p for p in points if p.kernel == "fmatmul"
                     and p.machine == "32L-AraXL" and p.bytes_per_lane == 64)
        long = next(p for p in points if p.kernel == "fmatmul"
                    and p.machine == "32L-AraXL" and p.bytes_per_lane == 512)
        assert short.utilization < long.utilization

    def test_render(self, points):
        text = render_fig6(points)
        assert "fmatmul" in text and "B/lane" in text


class TestFig7Reduced:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig7(kernels=("fmatmul", "jacobi2d"),
                        bytes_per_lane=(128, 512), lanes=16,
                        scale="reduced")

    def test_drops_are_small_for_long_vectors(self, points):
        for interface in ("glsu", "reqi", "ringi"):
            drop = max_drop(points, interface, min_bytes_per_lane=512)
            assert drop <= PAPER_FIG7_CLAIMS["long_vector_drop_bound"] + 0.02

    def test_drops_nonnegative_mostly(self, points):
        # Adding latency can only hurt (tiny numerical jitter tolerated).
        for p in points:
            assert p.drop >= -0.005, (p.interface, p.kernel)

    def test_render(self, points):
        text = render_fig7(points)
        assert "GLSU" in text and "max drop" in text


class TestStaticExperiments:
    def test_fig8(self):
        result = run_fig8(lanes=16)
        assert result.clusters == 4
        assert "floorplan" in render_fig8(result)

    def test_fig9(self):
        result = run_fig9()
        assert result.a2a_reduction == pytest.approx(0.58, abs=0.03)
        assert "Fig 9" in render_fig9(result)

    def test_table2(self):
        rows = run_table2()
        assert [r.lanes for r in rows] == [16, 32, 64]
        assert all(r.interface_fraction < 0.05 for r in rows)
        assert "Table II" in render_table2(rows)

    def test_runner_registry(self):
        text = run_experiment("fig9")
        assert "Fig 9" in text
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1Reduced:
    def test_measured_close_to_bound(self):
        rows = run_table1(config=AraXLConfig(lanes=16), scale="reduced")
        by_name = {r.kernel: r for r in rows}
        assert by_name["fmatmul"].achieved_fraction > 0.9
        assert by_name["fmatmul"].model_factor == 2.0
        assert by_name["exp"].model_factor == pytest.approx(28 / 21)
        assert "Table I" in render_table1(rows)


class TestTable3Reduced:
    def test_rows_and_render(self):
        points = run_table3(configs=[Ara2Config(lanes=16),
                                     AraXLConfig(lanes=16)],
                            scale="reduced")
        assert points[1].gflops > points[0].gflops
        text = render_table3(points)
        assert "Vitruvius" in text and "GFLOPs/W" in text


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), (10, 0.125)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_bar_chart(self):
        text = bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        assert "#" in text and "yy" in text

    def test_bar_chart_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["x"], [1.0, 2.0])

    def test_line_points(self):
        text = line_points([1, 2], [3.0, 4.0], "B/lane", "util")
        assert "B/lane" in text
