"""Floating-point vector semantics: binops, FMA family, conversions."""

import numpy as np
import pytest

from tests.vec_utils import VecEnv

RNG = np.random.default_rng(11)


def _env(vl=17, sew=64, lmul=1):
    return VecEnv(vl, sew=sew, lmul=lmul)


class TestBinops:
    @pytest.mark.parametrize("mn,func", [
        ("vfadd_vv", np.add), ("vfsub_vv", np.subtract),
        ("vfmul_vv", np.multiply), ("vfmin_vv", np.fmin),
        ("vfmax_vv", np.fmax)])
    def test_vv_forms(self, mn, func):
        env = _env()
        a = env.rand_f64(RNG)
        b = env.rand_f64(RNG)
        env.set_v(8, a)
        env.set_v(16, b)
        env.run(mn, "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24), func(a, b))

    def test_vfdiv_ieee(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1.0, 0.0, -1.0]))
        env.set_v(16, np.array([0.0, 0.0, 0.0]))
        env.run("vfdiv_vv", "v24", "v8", "v16")
        got = env.get_v(24)
        assert got[0] == np.inf and np.isnan(got[1]) and got[2] == -np.inf

    def test_vf_form_broadcasts_scalar(self):
        env = _env()
        a = env.rand_f64(RNG)
        env.set_v(8, a)
        env.state.f.write(2, 2.5)
        env.run("vfadd_vf", "v24", "v8", "f2")
        assert np.array_equal(env.get_v(24), a + 2.5)

    def test_vfrsub_vf(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1.0, 2.0, 3.0]))
        env.state.f.write(2, 10.0)
        env.run("vfrsub_vf", "v24", "v8", "f2")
        assert np.array_equal(env.get_v(24), [9.0, 8.0, 7.0])

    def test_vfrdiv_vf(self):
        env = _env(vl=2)
        env.set_v(8, np.array([2.0, 4.0]))
        env.state.f.write(2, 8.0)
        env.run("vfrdiv_vf", "v24", "v8", "f2")
        assert np.array_equal(env.get_v(24), [4.0, 2.0])

    def test_fmin_returns_non_nan(self):
        env = _env(vl=2)
        env.set_v(8, np.array([np.nan, 1.0]))
        env.set_v(16, np.array([3.0, np.nan]))
        env.run("vfmin_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24), [3.0, 1.0])

    def test_float32_sew(self):
        env = _env(vl=5, sew=32)
        a = RNG.uniform(-10, 10, 5).astype(np.float32)
        env.set_v(8, a)
        env.set_v(16, a)
        env.run("vfmul_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.float32), a * a)


class TestSignInjection:
    def test_vfsgnj_copies_sign(self):
        env = _env(vl=2)
        env.set_v(8, np.array([3.0, -3.0]))
        env.set_v(16, np.array([-1.0, 1.0]))
        env.run("vfsgnj_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24), [-3.0, 3.0])

    def test_vfsgnjx_xors_signs(self):
        env = _env(vl=4)
        env.set_v(8, np.array([3.0, -3.0, 3.0, -3.0]))
        env.set_v(16, np.array([1.0, 1.0, -1.0, -1.0]))
        env.run("vfsgnjx_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24), [3.0, -3.0, -3.0, 3.0])

    def test_sgnjn_negative_zero(self):
        env = _env(vl=1)
        env.set_v(8, np.array([5.0]))
        env.set_v(16, np.array([0.0]))
        env.run("vfsgnjn_vv", "v24", "v8", "v16")
        assert np.signbit(env.get_v(24)[0])


class TestFmaFamily:
    def _prep(self, env):
        a = env.rand_f64(RNG)   # vs1
        b = env.rand_f64(RNG)   # vs2
        c = env.rand_f64(RNG)   # vd
        env.set_v(8, a)
        env.set_v(16, b)
        env.set_v(24, c)
        return a, b, c

    @pytest.mark.parametrize("mn,expr", [
        ("vfmacc_vv", lambda a, b, c: a * b + c),
        ("vfnmacc_vv", lambda a, b, c: -(a * b) - c),
        ("vfmsac_vv", lambda a, b, c: a * b - c),
        ("vfnmsac_vv", lambda a, b, c: -(a * b) + c),
        ("vfmadd_vv", lambda a, b, c: a * c + b),
        ("vfmsub_vv", lambda a, b, c: a * c - b),
        ("vfnmadd_vv", lambda a, b, c: -(a * c) - b),
        ("vfnmsub_vv", lambda a, b, c: -(a * c) + b),
    ])
    def test_vv_semantics(self, mn, expr):
        env = _env()
        a, b, c = self._prep(env)
        env.run(mn, "v24", "v8", "v16")
        assert np.allclose(env.get_v(24), expr(a, b, c), rtol=0, atol=0)

    def test_vfmacc_vf(self):
        env = _env()
        b = env.rand_f64(RNG)
        c = env.rand_f64(RNG)
        env.set_v(16, b)
        env.set_v(24, c)
        env.state.f.write(1, 1.5)
        env.run("vfmacc_vf", "v24", "f1", "v16")
        assert np.array_equal(env.get_v(24), 1.5 * b + c)


class TestUnaryAndConversions:
    def test_vfsqrt(self):
        env = _env(vl=3)
        env.set_v(8, np.array([4.0, 9.0, -1.0]))
        env.run("vfsqrt_v", "v24", "v8")
        got = env.get_v(24)
        assert got[0] == 2.0 and got[1] == 3.0 and np.isnan(got[2])

    def test_vfabs_vfneg(self):
        env = _env(vl=2)
        env.set_v(8, np.array([-2.0, 2.0]))
        env.run("vfabs_v", "v16", "v8")
        env.run("vfneg_v", "v24", "v8")
        assert np.array_equal(env.get_v(16), [2.0, 2.0])
        assert np.array_equal(env.get_v(24), [2.0, -2.0])

    def test_vfcvt_round_to_nearest_even(self):
        env = _env(vl=4)
        env.set_v(8, np.array([0.5, 1.5, 2.5, -0.5]))
        env.run("vfcvt_x_f_v", "v24", "v8")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [0, 2, 2, 0])

    def test_vfcvt_rtz_truncates(self):
        env = _env(vl=2)
        env.set_v(8, np.array([1.9, -1.9]))
        env.run("vfcvt_rtz_x_f_v", "v24", "v8")
        assert np.array_equal(env.get_v(24, dtype=np.int64), [1, -1])

    def test_vfcvt_f_x(self):
        env = _env(vl=2)
        env.set_v(8, np.array([-3, 7], dtype=np.int64))
        env.run("vfcvt_f_x_v", "v24", "v8")
        assert np.array_equal(env.get_v(24), [-3.0, 7.0])

    def test_widening_cvt(self):
        env = _env(vl=3, sew=32)
        env.set_v(8, np.array([1.5, -2.5, 0.0], dtype=np.float32))
        env.run("vfwcvt_f_f_v", "v24", "v8")
        assert np.array_equal(env.get_v(24, dtype=np.float64, emul=2),
                              [1.5, -2.5, 0.0])

    def test_narrowing_cvt(self):
        env = _env(vl=2, sew=32)
        env.set_v(8, np.array([1.25, -8.0], dtype=np.float64), emul=2)
        env.run("vfncvt_f_f_w", "v24", "v8")
        assert np.array_equal(env.get_v(24, dtype=np.float32), [1.25, -8.0])


class TestWideningFp:
    def test_vfwmul(self):
        env = _env(vl=3, sew=32)
        a = np.array([1e20, 2.0, -3.0], dtype=np.float32)
        env.set_v(8, a)
        env.set_v(16, a)
        env.run("vfwmul_vv", "v24", "v8", "v16")
        got = env.get_v(24, dtype=np.float64, emul=2)
        assert np.array_equal(got, a.astype(np.float64) ** 2)

    def test_vfwmacc(self):
        env = _env(vl=2, sew=32)
        env.set_v(8, np.array([2.0, 3.0], dtype=np.float32))
        env.set_v(16, np.array([4.0, 5.0], dtype=np.float32))
        env.set_v(24, np.array([1.0, 1.0], dtype=np.float64), emul=2)
        env.run("vfwmacc_vv", "v24", "v8", "v16")
        assert np.array_equal(env.get_v(24, dtype=np.float64, emul=2),
                              [9.0, 16.0])


class TestFpCompares:
    def test_vmflt(self):
        env = _env(vl=3)
        env.set_v(8, np.array([1.0, 2.0, np.nan]))
        env.set_v(16, np.array([2.0, 1.0, 1.0]))
        env.run("vmflt_vv", "v2", "v8", "v16")
        assert np.array_equal(env.get_mask(2), [True, False, False])

    def test_vmfge_vf(self):
        env = _env(vl=3)
        env.set_v(8, np.array([0.5, 1.5, 2.5]))
        env.state.f.write(3, 1.5)
        env.run("vmfge_vf", "v2", "v8", "f3")
        assert np.array_equal(env.get_mask(2), [False, True, True])


class TestMoves:
    def test_vfmv_v_f(self):
        env = _env(vl=4)
        env.state.f.write(1, 6.5)
        env.run("vfmv_v_f", "v8", "f1")
        assert np.array_equal(env.get_v(8), [6.5] * 4)

    def test_vfmv_s_f_and_f_s(self):
        env = _env(vl=4)
        env.state.f.write(1, -3.25)
        env.run("vfmv_s_f", "v8", "f1")
        env.run("vfmv_f_s", "f2", "v8")
        assert env.state.f.read(2) == -3.25

    def test_vfmerge(self):
        env = _env(vl=3)
        env.set_mask(0, [True, False, True])
        env.set_v(8, np.array([1.0, 2.0, 3.0]))
        env.state.f.write(1, 9.0)
        env.run("vfmerge_vfm", "v24", "v8", "f1")
        assert np.array_equal(env.get_v(24), [9.0, 2.0, 9.0])
