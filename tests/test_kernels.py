"""Kernel correctness and structure across machines and sizes.

Every kernel run here executes functionally and is checked against its
NumPy golden model — these are the end-to-end proofs that the RVV
implementation computes the right numbers.
"""

import numpy as np
import pytest

from repro.kernels import KERNELS, build_fdotproduct_strips, run_kernel
from repro.kernels.expk import EXP_FLOPS, EXP_FPU_OPS
from repro.kernels.softmax import SOFTMAX_FLOPS, SOFTMAX_FPU_OPS
from repro.params import Ara2Config, AraXLConfig

SMALL_KW = {
    "fmatmul": {"m": 8, "k": 16},
    "fconv2d": {"rows": 4},
    "jacobi2d": {"rows": 4},
}

MACHINES = [Ara2Config(lanes=4), AraXLConfig(lanes=8), AraXLConfig(lanes=16)]


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("config", MACHINES, ids=lambda c: c.name)
def test_kernel_functionally_correct(kernel, config):
    _, result = run_kernel(KERNELS[kernel], config, 128, verify=True,
                           **SMALL_KW.get(kernel, {}))
    assert result.cycles > 0


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("bpl", [64, 128, 256, 512])
def test_kernel_correct_across_sizes(kernel, bpl):
    config = AraXLConfig(lanes=8)
    _, result = run_kernel(KERNELS[kernel], config, bpl, verify=True,
                           **SMALL_KW.get(kernel, {}))
    assert result.cycles > 0


class TestFlopAccounting:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_trace_flops_match_analytic(self, kernel):
        config = AraXLConfig(lanes=8)
        run, result = run_kernel(KERNELS[kernel], config, 128, verify=False,
                                 **SMALL_KW.get(kernel, {}))
        measured = result.functional.trace.total_flops
        # Reductions and FMA accumulations may add O(1) per strip.
        assert measured == pytest.approx(run.dp_flops, rel=0.02)

    def test_exp_ratio_is_table1(self):
        assert EXP_FLOPS / EXP_FPU_OPS == pytest.approx(28 / 21)

    def test_softmax_ratio_is_table1(self):
        assert SOFTMAX_FLOPS / SOFTMAX_FPU_OPS == pytest.approx(32 / 25)

    def test_exp_fpu_op_count_matches_trace(self):
        # 21 VMFPU ops per element-strip, from the trace itself.
        from repro.isa.instructions import ExecUnit

        config = AraXLConfig(lanes=8)
        run, result = run_kernel(KERNELS["exp"], config, 128, verify=False)
        fpu_ops = sum(1 for e in result.functional.trace.vector_events()
                      if e.spec.unit is ExecUnit.VMFPU)
        assert fpu_ops == EXP_FPU_OPS


class TestUtilization:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_bounded_by_one(self, kernel):
        config = AraXLConfig(lanes=8)
        run, result = run_kernel(KERNELS[kernel], config, 512, verify=False,
                                 **SMALL_KW.get(kernel, {}))
        assert 0.0 < run.utilization(result) <= 1.0

    def test_longer_vectors_raise_utilization(self):
        config = AraXLConfig(lanes=16)
        run64, res64 = run_kernel(KERNELS["exp"], config, 64, verify=False)
        run512, res512 = run_kernel(KERNELS["exp"], config, 512, verify=False)
        assert run512.utilization(res512) > run64.utilization(res64)


class TestDotProductStrips:
    def test_functional(self):
        config = AraXLConfig(lanes=8)
        kr = build_fdotproduct_strips(config, 128, strips=4)
        kr.run(config, verify=True)

    def test_amortizes_reduction(self):
        config = AraXLConfig(lanes=64)
        single = KERNELS["fdotproduct"](config, 512)
        res_s = single.run(config, verify=False)
        strips = build_fdotproduct_strips(config, 1024, strips=16)
        res_m = strips.run(config, verify=False)
        assert strips.utilization(res_m) > single.utilization(res_s)


class TestProblemValidation:
    def test_fmatmul_row_block(self):
        with pytest.raises(ValueError):
            KERNELS["fmatmul"](AraXLConfig(lanes=8), 128, m=6)

    def test_fmatmul_even_k(self):
        with pytest.raises(ValueError):
            KERNELS["fmatmul"](AraXLConfig(lanes=8), 128, m=8, k=15)

    def test_fconv2d_even_rows(self):
        with pytest.raises(ValueError):
            KERNELS["fconv2d"](AraXLConfig(lanes=8), 128, rows=5)

    def test_problem_metadata(self):
        run = KERNELS["fmatmul"](AraXLConfig(lanes=16), 256, m=8, k=16)
        assert run.problem["lmul"] == 2
        assert run.problem["n"] == run.problem["vl"]


class TestGoldenSensitivity:
    def test_check_detects_corruption(self):
        from repro.sim import Simulator

        config = AraXLConfig(lanes=8)
        kr = KERNELS["fdotproduct"](config, 64)
        sim = Simulator(config)
        kr.setup(sim)
        sim.run(kr.program)
        # Corrupt the result and expect the check to fire.
        base = [v for k, v in kr.problem.items() if k == "n"]
        result_addr = 2 * base[0] * 8
        sim.mem.store_f64(-(-result_addr // 64) * 64, 1e9)
        with pytest.raises(AssertionError):
            kr.check(sim)
