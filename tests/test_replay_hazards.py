"""Scoreboard hazard edges and replay-plan memo isolation.

The fuzzer drives these paths statistically; this module pins them
deterministically — full 32-register pressure, WAW/WAR orderings, and
the :class:`~repro.timing.replay_plan.ReplayPlan` per-machine memo tier
staying isolated across machine specs.
"""

from __future__ import annotations

import dataclasses

from repro.isa import Assembler
from repro.machine import get_machine
from repro.params import AraXLConfig
from repro.sim import Simulator
from repro.timing.engine import TimingEngine
from repro.uarch import build_model


def _capture(program, config):
    sim = Simulator(config)
    return sim.capture(program).trace


def _cycles(program, config) -> float:
    return TimingEngine(build_model(config)).replay(
        _capture(program, config)).cycles


# ----------------------------------------------------------------------
# FlatScoreboard hazard edges.
# ----------------------------------------------------------------------
class TestScoreboardHazards:
    def test_all_32_registers_live(self, ara2_small):
        """Every register in flight: fast path must equal the reference."""
        asm = Assembler("pressure32")
        asm.li("x1", 64)
        asm.vsetvli("x2", "x1", sew=64, lmul=8)
        for base in ("v0", "v8", "v16", "v24"):
            asm.vid_v(base)
        for base in ("v0", "v8", "v16", "v24"):
            asm.vadd_vv(base, base, base)        # WAW on every group
        for base, single in (("v0", "v4"), ("v8", "v5"),
                             ("v16", "v6"), ("v24", "v7")):
            asm.vredsum_vs(single, base, single)  # WAR pressure (v4-v7
        asm.vmv_v_i("v0", 1)                      # live inside groups)
        asm.halt()
        trace = _capture(asm.build(), ara2_small)
        engine = TimingEngine(build_model(ara2_small))
        assert engine.replay(trace) == engine.replay_reference(trace)

    def test_waw_serializes_same_register(self, ara2_small):
        def program(dest: str):
            asm = Assembler(f"waw_{dest}")
            asm.li("x1", 64)
            asm.vsetvli("x2", "x1", sew=64, lmul=1)
            asm.li("x3", 0)
            asm.vle64_v("v8", "x3")          # slow producer writing v8
            asm.vadd_vv(dest, "v16", "v16")  # WAW when dest == v8
            asm.halt()
            return asm.build()

        waw = _cycles(program("v8"), ara2_small)
        independent = _cycles(program("v10"), ara2_small)
        assert waw >= independent

    def test_war_orders_write_after_read(self, ara2_small):
        def program(dest: str):
            asm = Assembler(f"war_{dest}")
            asm.li("x1", 64)
            asm.vsetvli("x2", "x1", sew=64, lmul=1)
            asm.vfdiv_vv("v16", "v8", "v8")  # slow reader of v8
            asm.li("x3", 0)
            asm.vle64_v(dest, "x3")          # WAR when dest == v8
            asm.halt()
            return asm.build()

        war = _cycles(program("v8"), ara2_small)
        independent = _cycles(program("v10"), ara2_small)
        assert war >= independent

    def test_group_overlap_hazard_identity(self, ara2_small, araxl_small):
        """LMUL groups overlapping singles: fast path == reference."""
        asm = Assembler("group_overlap")
        asm.li("x1", 32)
        asm.vsetvli("x2", "x1", sew=64, lmul=4)
        asm.vid_v("v8")                      # writes v8..v11
        asm.vsetvli("x2", "x1", sew=64, lmul=1)
        asm.vadd_vv("v9", "v9", "v9")        # single inside the group
        asm.vsetvli("x2", "x1", sew=64, lmul=4)
        asm.vadd_vv("v8", "v8", "v8")        # group over the dirty single
        asm.halt()
        for config in (ara2_small, araxl_small):
            trace = _capture(asm.build(), config)
            engine = TimingEngine(build_model(config))
            assert engine.replay(trace) == engine.replay_reference(trace)


# ----------------------------------------------------------------------
# ReplayPlan per-machine memo tier.
# ----------------------------------------------------------------------
def _hazard_program():
    asm = Assembler("memo_probe")
    asm.li("x1", 64)
    asm.vsetvli("x2", "x1", sew=64, lmul=2)
    asm.li("x3", 0)
    asm.vle64_v("v8", "x3")
    asm.vfmacc_vv("v10", "v8", "v8")
    asm.vredsum_vs("v4", "v10", "v4")
    asm.halt()
    return asm.build()


class TestReplayPlanMemo:
    def test_memo_isolated_across_machines(self):
        ara2 = get_machine("8L-Ara2")
        araxl = get_machine("8L-AraXL")
        trace = _capture(_hazard_program(), ara2)  # same VLEN on both
        first = TimingEngine(build_model(ara2)).replay(trace)
        other = TimingEngine(build_model(araxl)).replay(trace)
        again = TimingEngine(build_model(ara2)).replay(trace)
        assert first == again            # memo hit, not invalidated...
        assert first != other            # ...and not cross-contaminated

    def test_memo_invalidated_by_spec_change(self):
        base = AraXLConfig(lanes=8)
        slow = dataclasses.replace(base, ring_hop_latency=8)
        trace = _capture(_hazard_program(), base)
        fast_report = TimingEngine(build_model(base)).replay(trace)
        slow_report = TimingEngine(build_model(slow)).replay(trace)
        # Same family and lane count, pure timing-knob change: the memo
        # must key on the spec, not the machine name.
        assert slow_report.cycles > fast_report.cycles
        assert TimingEngine(build_model(base)).replay(trace) == fast_report

    def test_memoized_report_is_a_defensive_copy(self):
        config = get_machine("8L-Ara2")
        trace = _capture(_hazard_program(), config)
        engine = TimingEngine(build_model(config))
        first = engine.replay(trace)
        pristine = dict(first.unit_busy)
        first.unit_busy.clear()          # caller mutates their copy
        second = engine.replay(trace)
        assert second.unit_busy == pristine
