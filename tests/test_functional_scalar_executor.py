"""Scalar semantics and the interpreter loop (loops, vsetvli, traces)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError, IllegalInstructionError
from repro.functional import Executor
from repro.functional.trace import ScalarEvent, VectorEvent, VsetvlEvent
from repro.isa import Assembler

I64 = st.integers(min_value=-2**63, max_value=2**63 - 1)


def run(build, vlen=2048):
    a = Assembler("t")
    ex = Executor(vlen)
    build(a, ex)
    a.halt()
    result = ex.run(a.build())
    return ex, result


class TestScalarAlu:
    @given(I64, I64)
    @settings(max_examples=40, deadline=None)
    def test_add_wraps(self, lhs, rhs):
        def build(a, ex):
            ex.state.x.write(1, lhs)
            ex.state.x.write(2, rhs)
            a.add("x3", "x1", "x2")
        ex, _ = run(build)
        total = (lhs + rhs) & (2**64 - 1)
        expected = total - 2**64 if total >= 2**63 else total
        assert ex.state.x.read(3) == expected

    @given(I64, I64)
    @settings(max_examples=40, deadline=None)
    def test_div_matches_riscv(self, lhs, rhs):
        def build(a, ex):
            ex.state.x.write(1, lhs)
            ex.state.x.write(2, rhs)
            a.div("x3", "x1", "x2")
            a.rem("x4", "x1", "x2")
        ex, _ = run(build)
        if rhs == 0:
            assert ex.state.x.read(3) == -1
            assert ex.state.x.read(4) == lhs
        elif lhs == -2**63 and rhs == -1:
            assert ex.state.x.read(3) == lhs
            assert ex.state.x.read(4) == 0
        else:
            q = abs(lhs) // abs(rhs) * (1 if (lhs < 0) == (rhs < 0) else -1)
            assert ex.state.x.read(3) == q
            assert ex.state.x.read(4) == lhs - q * rhs

    def test_x0_is_hardwired_zero(self):
        def build(a, ex):
            a.li("x0", 42)
            a.addi("x1", "x0", 7)
        ex, _ = run(build)
        assert ex.state.x.read(0) == 0
        assert ex.state.x.read(1) == 7

    def test_slt_and_sltu(self):
        def build(a, ex):
            ex.state.x.write(1, -1)
            ex.state.x.write(2, 1)
            a.slt("x3", "x1", "x2")
            a.sltu("x4", "x1", "x2")  # -1 unsigned is huge
        ex, _ = run(build)
        assert ex.state.x.read(3) == 1
        assert ex.state.x.read(4) == 0


class TestScalarFp:
    def test_fmadd(self):
        def build(a, ex):
            ex.state.f.write(1, 2.0)
            ex.state.f.write(2, 3.0)
            ex.state.f.write(3, 4.0)
            a.fmadd_d("f4", "f1", "f2", "f3")
        ex, _ = run(build)
        assert ex.state.f.read(4) == 10.0

    def test_fdiv_by_zero(self):
        def build(a, ex):
            ex.state.f.write(1, 1.0)
            ex.state.f.write(2, 0.0)
            a.fdiv_d("f3", "f1", "f2")
        ex, _ = run(build)
        assert ex.state.f.read(3) == np.inf

    def test_fmv_bit_roundtrip(self):
        def build(a, ex):
            ex.state.f.write(1, -0.0)
            a.fmv_x_d("x1", "f1")
            a.fmv_d_x("f2", "x1")
        ex, _ = run(build)
        assert np.signbit(ex.state.f.read(2))

    def test_fcvt(self):
        def build(a, ex):
            ex.state.x.write(1, -9)
            a.fcvt_d_l("f1", "x1")
            a.fcvt_l_d("x2", "f1")
        ex, _ = run(build)
        assert ex.state.f.read(1) == -9.0
        assert ex.state.x.read(2) == -9

    def test_compares(self):
        def build(a, ex):
            ex.state.f.write(1, 1.0)
            ex.state.f.write(2, 2.0)
            a.flt_d("x1", "f1", "f2")
            a.fle_d("x2", "f2", "f1")
            a.feq_d("x3", "f1", "f1")
        ex, _ = run(build)
        assert (ex.state.x.read(1), ex.state.x.read(2),
                ex.state.x.read(3)) == (1, 0, 1)


class TestControlFlow:
    def test_countdown_loop(self):
        def build(a, ex):
            a.li("x1", 10)
            a.li("x2", 0)
            a.label("loop")
            a.addi("x2", "x2", 3)
            a.addi("x1", "x1", -1)
            a.bnez("x1", "loop")
        ex, _ = run(build)
        assert ex.state.x.read(2) == 30

    def test_forward_jump(self):
        def build(a, ex):
            a.li("x1", 1)
            a.j("skip")
            a.li("x1", 99)
            a.label("skip")
        ex, _ = run(build)
        assert ex.state.x.read(1) == 1

    def test_runaway_loop_guarded(self):
        a = Assembler()
        a.label("forever")
        a.j("forever")
        ex = Executor(2048)
        with pytest.raises(ExecutionError):
            ex.run(a.build(), max_instructions=1000)

    def test_branch_comparisons(self):
        def build(a, ex):
            ex.state.x.write(1, -5)
            ex.state.x.write(2, 5)
            a.li("x3", 0)
            a.blt("x1", "x2", "took")
            a.li("x3", 99)
            a.label("took")
        ex, _ = run(build)
        assert ex.state.x.read(3) == 0


class TestVsetvli:
    def test_clamps_to_vlmax(self):
        def build(a, ex):
            a.li("x1", 10 ** 6)
            a.vsetvli("x2", "x1", sew=64, lmul=2)
        ex, _ = run(build, vlen=2048)
        assert ex.state.vl == 2048 * 2 // 64
        assert ex.state.x.read(2) == ex.state.vl

    def test_rs1_x0_rd_nonzero_requests_vlmax(self):
        def build(a, ex):
            a.vsetvli("x2", "x0", sew=32, lmul=1)
        ex, _ = run(build, vlen=2048)
        assert ex.state.vl == 64

    def test_rs1_x0_rd_x0_keeps_vl(self):
        def build(a, ex):
            a.li("x1", 8)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.vsetvli("x0", "x0", sew=64, lmul=2)
        ex, _ = run(build, vlen=2048)
        assert ex.state.vl == 8

    def test_vector_before_vsetvli_is_illegal(self):
        a = Assembler()
        a.vadd_vv("v1", "v2", "v3")
        a.halt()
        with pytest.raises(IllegalInstructionError):
            Executor(2048).run(a.build())


class TestTrace:
    def test_event_kinds_and_counts(self):
        def build(a, ex):
            a.li("x1", 4)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.li("x5", 0)
            a.vle64_v("v1", "x5")
            a.vfadd_vv("v2", "v1", "v1")
        ex, result = run(build)
        trace = result.trace
        kinds = [type(e).__name__ for e in trace]
        assert kinds.count("VsetvlEvent") == 1
        assert kinds.count("VectorEvent") == 2
        assert trace.vector_count == 2
        assert trace.scalar_count == 3  # li x1, li x5, vsetvli

    def test_flops_accumulate(self):
        def build(a, ex):
            a.li("x1", 8)
            a.vsetvli("x2", "x1", sew=64, lmul=1)
            a.vfmacc_vv("v3", "v1", "v2")
        _, result = run(build)
        assert result.trace.total_flops == 16  # 8 elements * 2 flops

    def test_retired_counts_halt(self):
        def build(a, ex):
            a.li("x1", 1)
        _, result = run(build)
        assert result.retired == 2  # li + halt
        assert result.halted
