"""Machine specs: round-trip, validation, fingerprints, registry, CLI.

The spec layer's contract (docs/machine-models.md): every shipped
configuration round-trips losslessly through ``to_spec``/``from_spec``,
invalid specs fail with actionable messages, fingerprints depend only on
timing-relevant content, and a machine defined purely as YAML runs the
same sweeps byte-identically while *reusing* builtin captures (spec
identity never leaks into capture keys).
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.machine import (FAMILIES, SPEC_FIELDS, MachineSpec, SpecError,
                           from_spec, get_machine, list_machines,
                           machine_fingerprint, spec_field_rows, to_spec)
from repro.params import Ara2Config, AraXLConfig, paper_configurations


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(paper_configurations()))
    def test_paper_configuration_round_trips(self, name):
        config = paper_configurations()[name]
        spec = to_spec(config)
        assert spec.name == name
        assert from_spec(spec) == config

    def test_fig7_cut_configs_round_trip(self):
        base = AraXLConfig(lanes=64)
        for knob in ("glsu_extra_regs", "reqi_extra_regs",
                     "ringi_extra_regs"):
            cut = dataclasses.replace(base, **{knob: 1})
            assert from_spec(to_spec(cut)) == cut

    def test_labelled_config_round_trips_with_name(self):
        config = Ara2Config(lanes=4, label="my-ara2")
        spec = to_spec(config)
        assert spec.name == "my-ara2"
        assert from_spec(spec) == config

    def test_to_dict_is_fully_defaulted(self):
        spec = MachineSpec.from_dict({"family": "araxl", "lanes": 8})
        data = spec.to_dict()
        assert data["pipeline"]["fpu_latency"] == 5
        assert data["interconnect"]["ring_hop_latency"] == 2
        assert data["memory"]["l2_latency_cycles"] == 12
        assert data["name"] == "8L-AraXL"

    def test_from_spec_accepts_raw_dict(self):
        config = from_spec({"family": "ara2", "lanes": 8})
        assert config == Ara2Config(lanes=8)

    def test_to_spec_rejects_non_spec_family(self):
        from repro.params import SystemConfig
        with pytest.raises(SpecError, match="family 'generic'"):
            to_spec(SystemConfig(lanes=8))


class TestValidation:
    def test_missing_family(self):
        with pytest.raises(SpecError, match="missing required field "
                                            "'family'"):
            MachineSpec.from_dict({"lanes": 8})

    def test_missing_lanes(self):
        with pytest.raises(SpecError, match="missing required field "
                                            "'lanes'"):
            MachineSpec.from_dict({"family": "araxl"})

    def test_unknown_family_lists_choices(self):
        with pytest.raises(SpecError, match="ara2, araxl"):
            MachineSpec.from_dict({"family": "ara3", "lanes": 8})

    def test_unknown_key_suggests_close_match(self):
        with pytest.raises(SpecError, match="did you mean 'pipeline'"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "pipline": {}})

    def test_unknown_field_inside_section(self):
        with pytest.raises(SpecError, match="did you mean 'fpu_latency'"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "pipeline": {"fpu_latencyy": 4}})

    def test_family_mismatched_interconnect_field(self):
        with pytest.raises(SpecError, match="araxl-only"):
            MachineSpec.from_dict({"family": "ara2", "lanes": 8,
                                   "interconnect": {"ring_hop_latency": 3}})
        with pytest.raises(SpecError, match="ara2-only"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "interconnect": {"strided_addrgens": 2}})

    def test_out_of_range_value_names_the_bound(self):
        with pytest.raises(SpecError, match="out of range.*>= 1"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "pipeline": {"fpu_latency": 0}})

    def test_wrong_type_rejected(self):
        with pytest.raises(SpecError, match="expects int"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "pipeline": {"fpu_latency": "fast"}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecError, match="expects int"):
            MachineSpec.from_dict({"family": "araxl", "lanes": 8,
                                   "pipeline": {"fpu_latency": True}})

    def test_int_coerces_to_float_fields(self):
        spec = MachineSpec.from_dict(
            {"family": "ara2", "lanes": 8,
             "interconnect": {"issue_gap_cycles": 2}})
        assert spec.to_dict()["interconnect"]["issue_gap_cycles"] == 2.0
        assert from_spec(spec).issue_gap_cycles == 2.0

    def test_config_level_validation_still_applies(self):
        # The spec schema checks per-field ranges; cross-field laws
        # (power-of-two lanes, VLEN cap) stay in the config classes.
        with pytest.raises(ConfigError):
            from_spec({"family": "ara2", "lanes": 3})

    def test_spec_error_is_a_config_error(self):
        assert issubclass(SpecError, ConfigError)


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        a = MachineSpec.from_dict({"family": "araxl", "lanes": 32})
        b = MachineSpec.from_dict({"lanes": 32, "family": "araxl"})
        assert a.fingerprint == b.fingerprint

    def test_name_is_excluded(self):
        plain = MachineSpec.from_dict({"family": "araxl", "lanes": 32})
        named = MachineSpec.from_dict({"family": "araxl", "lanes": 32,
                                       "name": "my-lab-machine"})
        assert plain.fingerprint == named.fingerprint

    def test_timing_fields_are_included(self):
        base = MachineSpec.from_dict({"family": "araxl", "lanes": 32})
        slow = MachineSpec.from_dict({"family": "araxl", "lanes": 32,
                                      "interconnect":
                                          {"ring_hop_latency": 4}})
        assert base.fingerprint != slow.fingerprint

    def test_machine_fingerprint_matches_spec(self):
        config = AraXLConfig(lanes=32)
        assert machine_fingerprint(config) == to_spec(config).fingerprint

    def test_label_only_variants_share_a_fingerprint(self):
        a = AraXLConfig(lanes=32)
        b = AraXLConfig(lanes=32, label="same machine, other name")
        assert machine_fingerprint(a) == machine_fingerprint(b)

    def test_all_shipped_machines_distinct(self):
        prints = [machine_fingerprint(c)
                  for c in paper_configurations().values()]
        assert len(set(prints)) == len(prints)


class TestRegistry:
    def test_registry_matches_paper_configurations(self):
        registry = list_machines()
        paper = paper_configurations()
        assert list(registry) == list(paper)
        for name, spec in registry.items():
            assert spec.to_config() == paper[name]

    def test_get_machine_by_name(self):
        assert get_machine("64L-AraXL") == AraXLConfig(lanes=64)

    def test_get_machine_by_path(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text("family: ara2\nlanes: 8\n")
        assert get_machine(str(path)) == Ara2Config(lanes=8)

    def test_get_machine_unknown_name_lists_registry(self):
        with pytest.raises(SpecError, match="64L-AraXL"):
            get_machine("128L-MegaXL")

    def test_yaml_comments_and_overrides(self, tmp_path):
        path = tmp_path / "toy.yaml"
        path.write_text("# a toy\nname: toy\nfamily: araxl\nlanes: 8\n"
                        "memory:\n  l2_latency_cycles: 20  # slow L2\n")
        config = get_machine(str(path))
        assert config.name == "toy"
        assert config.memory.l2_latency_cycles == 20

    def test_invalid_yaml_field_names_the_file(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("family: araxl\nlanes: 8\nmemory:\n  sz: 1\n")
        with pytest.raises(SpecError, match="bad.yaml"):
            get_machine(str(path))

    def test_schema_covers_both_families(self):
        for family in FAMILIES:
            rows = spec_field_rows(family)
            assert any(f.section == "interconnect" for f in rows)
        assert spec_field_rows() == list(SPEC_FIELDS)


class TestMiniYamlFallback:
    def test_fallback_agrees_with_pyyaml(self):
        from repro.machine.spec import _parse_mini_yaml, parse_spec_yaml
        text = ("# hdr\nname: toy-4L\nfamily: araxl\nlanes: 4  # total\n"
                "memory:\n  l2_latency_cycles: 20\n"
                "interconnect:\n  ring_hop_latency: 3\n"
                "  ring_reduction_op_overhead: 1.5\n")
        assert _parse_mini_yaml(text, "<t>") == parse_spec_yaml(text)

    def test_fallback_rejects_garbage_with_line_number(self):
        from repro.machine.spec import _parse_mini_yaml
        with pytest.raises(SpecError, match="<t>:2"):
            _parse_mini_yaml("family: ara2\nnot a mapping line\n", "<t>")


class TestSweepIntegration:
    def test_fig6_builtin_vs_registry_byte_identical(self):
        from repro.eval.fig6_scaling import render_fig6, run_fig6
        default = render_fig6(run_fig6(kernels=("fdotproduct",),
                                       bytes_per_lane=(64, 128),
                                       scale="reduced"))
        via_registry = render_fig6(run_fig6(
            kernels=("fdotproduct",), bytes_per_lane=(64, 128),
            scale="reduced",
            machines=[get_machine(n) for n in
                      ("8L-Ara2", "16L-Ara2", "8L-AraXL", "16L-AraXL",
                       "32L-AraXL", "64L-AraXL")]))
        assert via_registry == default

    def test_replay_dedup_by_fingerprint(self):
        # Two configs differing only in display label are one timing
        # identity: the pipeline runs their shared replay once.
        from repro.eval.ablations import run_knob_sweep
        from repro.sim import SimPool, TraceCache
        base = AraXLConfig(lanes=8)
        alias = AraXLConfig(lanes=8, label="alias-8L")
        pool = SimPool(workers=1, cache=TraceCache())
        rows = run_knob_sweep([base, alias],
                              [("fdotproduct", 64, {})], sim_pool=pool)
        assert rows[0] == rows[1]
        assert pool.pipeline_stats.replay_points == 1
        assert pool.pipeline_stats.capture_points == 1

    def test_yaml_machine_reuses_builtin_capture(self, tmp_path):
        # A pure-YAML machine with the same VLEN as a builtin replays
        # the builtin's stored capture: zero new captures executed.
        from repro.eval.table1_kernels import run_table1
        from repro.sim.trace_store import TraceStore
        path = tmp_path / "toy.yaml"
        path.write_text("name: toy-64L\nfamily: araxl\nlanes: 64\n"
                        "interconnect:\n  ring_hop_latency: 4\n")
        store_dir = tmp_path / "store"

        warm = TraceStore(disk_dir=store_dir)
        run_table1(config=AraXLConfig(lanes=64), scale="reduced",
                   trace_cache=warm)
        captured = warm.misses
        assert captured > 0

        toy = get_machine(str(path))
        cold = TraceStore(disk_dir=store_dir)
        rows = run_table1(config=toy, scale="reduced", trace_cache=cold)
        assert cold.misses == 0, "YAML machine must reuse stored captures"
        assert len(rows) > 0

    def test_fig7_rejects_non_araxl_base(self):
        from repro.eval.fig7_latency import run_fig7
        with pytest.raises(ConfigError, match="not 'araxl'"):
            run_fig7(base_config=Ara2Config(lanes=8))


class TestDocTable:
    def test_doc_table_matches_schema(self):
        # docs/machine-models.md documents exactly the schema's fields,
        # with matching types, defaults and family restrictions.
        from pathlib import Path
        from repro.machine.spec import REQUIRED
        doc = Path(__file__).resolve().parents[1] / "docs" \
            / "machine-models.md"
        rows = {}
        for line in doc.read_text().splitlines():
            if line.startswith("| `") and not line.startswith("| field"):
                cells = [c.strip() for c in line.strip("|").split("|")]
                rows[cells[0].strip("`")] = cells[1:4]
        assert set(rows) == {f.path for f in SPEC_FIELDS}
        for field in SPEC_FIELDS:
            kind, default, families = rows[field.path]
            assert kind == field.kind.__name__, field.path
            expected = "required" if field.default is REQUIRED \
                else repr(field.default)
            assert default == expected, field.path
            expected_fam = "/".join(field.families) if field.families \
                else "both"
            assert families == expected_fam, field.path


class TestCli:
    def test_list_machines_exits_zero(self, capsys):
        from repro.eval.__main__ import main
        assert main(["--list-machines"]) == 0
        out = capsys.readouterr().out
        for name in paper_configurations():
            assert name in out

    def test_machine_flag_matches_default_output(self, capsys):
        from repro.eval.__main__ import main
        assert main(["table1", "--scale", "reduced"]) == 0
        default = capsys.readouterr().out
        assert main(["table1", "--scale", "reduced",
                     "--machine", "64L-AraXL"]) == 0
        assert capsys.readouterr().out == default

    def test_no_experiments_is_an_error(self):
        from repro.eval.__main__ import main
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_unknown_experiment_is_an_error(self):
        from repro.eval.__main__ import main
        with pytest.raises(SystemExit) as exc:
            main(["fig66"])
        assert exc.value.code == 2

    def test_unknown_machine_is_an_error(self):
        from repro.eval.__main__ import main
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--machine", "no-such-machine"])
        assert exc.value.code == 2
