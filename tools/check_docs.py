#!/usr/bin/env python3
"""Documentation lint: links resolve, CLI examples parse, docstrings exist.

Three checks, no third-party dependencies (CI runs this as its docs
job; ``tests/test_docs.py`` runs the same functions under tier-1):

1. **Link sanity** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file or directory that exists in the
   checkout (external ``http(s)://`` links and ``#fragment`` anchors
   are skipped).
2. **CLI examples run as written** — every ``python -m repro.eval ...``
   line inside a fenced code block is parsed with the *real* argument
   parser (``repro.eval.__main__.build_parser``), so a renamed flag or
   experiment id breaks the lint, not the reader.
3. **Docstring lint** — every module under ``src/repro`` (and every
   public class/function def at module top level) carries a docstring.

Exit status is the number of problems found.
"""

from __future__ import annotations

import ast
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files the link/CLI checks cover.
DOC_FILES = ("README.md", "docs/architecture.md", "docs/machine-models.md",
             "docs/trace-store.md", "docs/robustness.md")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def iter_doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files under lint (missing ones are themselves errors)."""
    return [root / name for name in DOC_FILES]


def check_links(root: Path = REPO_ROOT) -> list[str]:
    """Relative markdown links must resolve inside the checkout."""
    problems = []
    for doc in iter_doc_files(root):
        if not doc.is_file():
            problems.append(f"{doc.relative_to(root)}: file missing")
            continue
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path)
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(root)}: broken link -> {target}")
    return problems


def iter_cli_examples(root: Path = REPO_ROOT) -> list[tuple[str, str]]:
    """Every ``python -m repro.eval`` line in a fenced doc code block."""
    examples = []
    for doc in iter_doc_files(root):
        if not doc.is_file():
            continue
        for block in _FENCE_RE.findall(doc.read_text()):
            for line in block.splitlines():
                line = line.strip()
                if "python -m repro.eval" in line:
                    examples.append((str(doc.relative_to(root)), line))
    return examples


def parse_cli_example(line: str) -> None:
    """Parse one documented CLI line with the real parser; raise on error."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.eval.__main__ import build_parser
    finally:
        sys.path.pop(0)
    tokens = shlex.split(line)
    # Strip leading VAR=value assignments (e.g. PYTHONPATH=src) and the
    # interpreter invocation itself.
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens.pop(0)
    assert tokens[:3] == ["python", "-m", "repro.eval"], \
        f"not a repro.eval invocation: {line!r}"
    build_parser().parse_args(tokens[3:])  # SystemExit(2) on bad args


def check_cli_examples(root: Path = REPO_ROOT) -> list[str]:
    """The doc's CLI examples must run (parse) as written."""
    problems = []
    examples = iter_cli_examples(root)
    if not examples:
        problems.append("no `python -m repro.eval` examples found in docs")
    for doc, line in examples:
        try:
            parse_cli_example(line)
        except SystemExit:
            problems.append(f"{doc}: CLI example does not parse: {line}")
        except AssertionError as exc:
            problems.append(f"{doc}: {exc}")
    return problems


def check_docstrings(root: Path = REPO_ROOT) -> list[str]:
    """Every repro module and public top-level def carries a docstring."""
    problems = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root)
        tree = ast.parse(path.read_text(), filename=str(rel))
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}: missing module docstring")
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) \
                    and not node.name.startswith("_") \
                    and ast.get_docstring(node) is None:
                problems.append(
                    f"{rel}:{node.lineno}: public {node.name!r} "
                    f"missing docstring")
    return problems


def main() -> int:
    """Run all checks; print problems; exit 1 if any were found.

    (Not ``len(problems)``: POSIX exit codes wrap modulo 256, so a
    count could alias to 0 and green-light a broken docs tree.)
    """
    problems = check_links() + check_cli_examples() + check_docstrings()
    for problem in problems:
        print(f"[docs-lint] {problem}")
    if not problems:
        print("[docs-lint] OK: links resolve, CLI examples parse, "
              "docstrings present")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
