#!/usr/bin/env python3
"""Historical docs-lint entry point — now a shim over ``tools.lint``.

The link, CLI-example, and docstring checks this script used to
implement live in ``tools/lint/checkers/docs.py`` as rules
RL601–RL603 of the unified lint suite.  Running this script is
equivalent to ``python -m tools.lint --select RL6``; it stays only so
the documented/CI command keeps working.  See
``docs/static-analysis.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.lint.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["--select", "RL6"]))
