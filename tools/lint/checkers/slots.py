"""Hot-path ``__slots__`` (RL401): replay-loop classes stay slotted.

The replay hot loops build millions of trace-event, plan, and stream
instances per sweep; a ``__dict__`` per instance costs both allocation
time and cache locality (PR 1's interpreter overhaul measured it).  The
modules listed in ``scope`` ARE the hot path, so every class they
define must declare ``__slots__`` — either an explicit class-body
assignment or ``@dataclass(slots=True)``.  A class that genuinely needs
``__dict__`` (``VectorEvent`` caches per-instance decode results there)
says so with a pragma.
"""

from __future__ import annotations

import ast

from ..core import Checker, FileContext, dotted_name


class SlotsChecker(Checker):
    """Classes in hot-path modules must declare ``__slots__``."""

    code = "RL401"
    codes = ("RL401",)
    name = "hot-path-slots"
    description = ("trace-event/plan/stream classes on the replay hot "
                   "path must declare __slots__")
    scope = ("src/repro/functional/trace.py",
             "src/repro/functional/plan.py",
             "src/repro/timing/stream.py")

    def check(self, ctx: FileContext):
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) \
                    and not _declares_slots(node):
                yield self.finding(
                    ctx, node.lineno,
                    f"hot-path class `{node.name}` has no __slots__; "
                    f"declare them (or @dataclass(slots=True)), or "
                    f"pragma with the reason it needs __dict__")


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else \
            [stmt.target] if isinstance(stmt, ast.AnnAssign) else []
        for target in targets:
            if isinstance(target, ast.Name) \
                    and target.id == "__slots__":
                return True
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call) \
                and (dotted_name(deco.func) or "").endswith("dataclass"):
            for kw in deco.keywords:
                if kw.arg == "slots" \
                        and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is True:
                    return True
    return False
