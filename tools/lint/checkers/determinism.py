"""Determinism rules (RL101–RL103): the byte-identical-render invariant.

The whole pipeline's correctness story is that a capture replays
byte-identically anywhere: trace keys are content hashes, renders are
pinned against serial baselines, and the trace store dedups across
hosts.  All of that dies silently if the code feeding fingerprints or
rendered output consults wall-clock time (RL101), unseeded randomness
(RL102), or iterates a ``set`` whose order is salted per interpreter
run (RL103).

Scope: ``functional/`` and ``timing/`` (everything they compute lands
in a trace or a rendered table), ``isa/`` (program fingerprints), and
the capture/replay path of ``sim/`` (``simulator``, ``trace_cache``,
``trace_store``).  Orchestration (``sim/parallel.py``) is *not* in
scope: its ``time.perf_counter`` feeds ``PipelineStats`` telemetry,
never a render.  The injected-clock default in ``trace_cache._now``
carries the one sanctioned pragma.
"""

from __future__ import annotations

import ast

from ..core import Checker, FileContext, dotted_name

#: Dotted-call suffixes that read the wall clock.
WALL_CLOCK = ("time.time", "time.time_ns", "time.localtime",
              "time.ctime", "datetime.now", "datetime.utcnow",
              "datetime.today", "date.today")


class DeterminismChecker(Checker):
    """Forbid nondeterminism sources on the capture/replay hot path."""

    code = "RL101"
    codes = ("RL101", "RL102", "RL103")
    name = "determinism"
    description = ("no wall-clock reads, unseeded randomness, or "
                   "unordered set iteration where fingerprints and "
                   "rendered output are computed")
    scope = ("src/repro/functional/", "src/repro/timing/",
             "src/repro/isa/", "src/repro/fuzz/",
             "src/repro/sim/simulator.py",
             "src/repro/sim/trace_cache.py",
             "src/repro/sim/trace_store.py")

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.For):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(ctx, gen.iter)

    # -- RL101 / RL102: calls ------------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if any(dotted == s or dotted.endswith("." + s)
               for s in WALL_CLOCK):
            yield self.finding(
                ctx, node.lineno,
                f"wall-clock read `{dotted}` on the deterministic "
                f"path; inject a clock or derive time from the trace",
                code="RL101")
        if dotted.startswith("random.") or ".random." in dotted:
            yield self.finding(
                ctx, node.lineno,
                f"randomness `{dotted}` on the deterministic path; "
                f"use a seeded Generator threaded from the caller",
                code="RL102")

    def _check_import(self, ctx: FileContext, node: ast.AST):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module or ""]
        for name in names:
            if name == "random" or name.endswith(".random"):
                yield self.finding(
                    ctx, node.lineno,
                    f"import of `{name}` on the deterministic path; "
                    f"use a seeded Generator threaded from the caller",
                    code="RL102")

    # -- RL103: set iteration ------------------------------------------
    def _check_iter(self, ctx: FileContext, iter_node: ast.AST):
        unordered = isinstance(iter_node, ast.Set)
        if isinstance(iter_node, ast.Call):
            dotted = dotted_name(iter_node.func)
            unordered = dotted in ("set", "frozenset")
        if unordered:
            yield self.finding(
                ctx, iter_node.lineno,
                "iteration over a set: order is hash-salted per "
                "interpreter run; wrap in sorted(...) or use a "
                "list/tuple/dict",
                code="RL103")
