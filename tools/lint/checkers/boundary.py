"""Process-boundary safety (RL301–RL302): only picklables cross pools.

Everything submitted to a ``SimPool``/``ProcessPoolExecutor`` is
pickled into the worker: a lambda or a locally-defined function raises
``PicklingError`` only at runtime — and only on the pooled path, which
a ``workers=1`` test run never exercises.  The same applies to the
fields of task dataclasses shipped as submit arguments: ``CaptureTask``
exists precisely because ``KernelRun`` holds closures, so a field type
that smuggles a callable back in defeats the design.

* RL301 — a ``*.submit(...)`` argument must not be a lambda or a
  function defined inside an enclosing function (a closure candidate).
* RL302 — a ``@dataclass`` named ``*Task`` in ``sim/`` declares only
  fields whose annotations build from a picklable allowlist.
"""

from __future__ import annotations

import ast

from ..core import Checker, FileContext, dotted_name

#: Type names a pool-task dataclass field may be annotated with.
PICKLABLE_TYPES = {
    "int", "str", "float", "bool", "bytes", "complex", "None",
    "tuple", "list", "dict", "set", "frozenset",
    "Tuple", "List", "Dict", "Set", "FrozenSet",
    "Optional", "Union", "Sequence", "Mapping", "Path",
    # Repo types that are plain data and pickle by design:
    "SystemConfig", "TraceKey", "FaultPlan", "MachineSpec",
}


def _nested_function_names(tree: ast.AST) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()

    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if self.depth:
                nested.add(node.name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef

    _Visitor().visit(tree)
    return nested


class SubmitPicklableChecker(Checker):
    """No lambdas/closures as executor ``submit`` arguments."""

    code = "RL301"
    codes = ("RL301",)
    name = "submit-picklable"
    description = ("values passed to executor submit() must not be "
                   "lambdas or locally-defined functions")
    scope = ("src/",)

    def check(self, ctx: FileContext):
        nested = _nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"):
                continue
            args = list(node.args) \
                + [kw.value for kw in node.keywords]
            for arg in args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        ctx, arg.lineno,
                        "lambda submitted across the process boundary "
                        "cannot pickle; use a module-level function")
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    yield self.finding(
                        ctx, arg.lineno,
                        f"locally-defined function `{arg.id}` submitted "
                        f"across the process boundary cannot pickle; "
                        f"hoist it to module level")


class TaskFieldChecker(Checker):
    """Pool-task dataclasses declare only picklable field types."""

    code = "RL302"
    codes = ("RL302",)
    name = "task-fields"
    description = ("@dataclass *Task classes in sim/ may declare only "
                   "picklable field types")
    scope = ("src/repro/sim/",)

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name.endswith("Task") \
                    and _is_dataclass(node):
                yield from self._check_fields(ctx, node)

    def _check_fields(self, ctx: FileContext, cls: ast.ClassDef):
        for stmt in cls.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            bad = _unpicklable_leaves(stmt.annotation)
            if bad:
                yield self.finding(
                    ctx, stmt.lineno,
                    f"field `{stmt.target.id}` of pool task "
                    f"`{cls.name}` has non-picklable-by-contract type "
                    f"`{'/'.join(sorted(bad))}`; task specs must ship "
                    f"plain data across the process boundary")


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target) or ""
        if name.split(".")[-1] == "dataclass":
            return True
    return False


def _unpicklable_leaves(annotation: ast.AST) -> set[str]:
    """Leaf type names in ``annotation`` outside the allowlist."""
    bad: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            if node.attr not in PICKLABLE_TYPES:
                bad.add(node.attr)
            return  # the chain is one leaf; don't re-flag its prefix
        if isinstance(node, ast.Name):
            if node.id not in PICKLABLE_TYPES:
                bad.add(node.id)
            return
        if isinstance(node, ast.Constant):
            # Forward-reference strings name one type; None/... are
            # subscript punctuation (Optional[...] / tuple[int, ...]).
            if isinstance(node.value, str) \
                    and node.value not in PICKLABLE_TYPES:
                bad.add(node.value)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(annotation)
    return bad
