"""Env-var registry (RL501): all environment reads go through repro.env.

``repro.env`` is the single source of truth for every ``REPRO_*`` knob:
its registry validates names at read time and generates the docs knob
table.  A direct ``os.environ`` / ``os.getenv`` read anywhere else in
``src/`` bypasses both — the knob works but is undocumented and
unvalidated — so the rule is structural: outside the registry module,
no environment access at all.
"""

from __future__ import annotations

import ast

from ..core import Checker, FileContext, dotted_name


class EnvRegistryChecker(Checker):
    """No ``os.environ``/``os.getenv`` outside ``repro/env.py``."""

    code = "RL501"
    codes = ("RL501",)
    name = "env-registry"
    description = ("environment reads in src/ must go through the "
                   "repro.env registry (read_env)")
    scope = ("src/",)
    exclude = ("src/repro/env.py",)

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted in ("os.environ", "os.getenv", "os.putenv",
                          "os.environb"):
                yield self.finding(
                    ctx, node.lineno,
                    f"direct `{dotted}` access; read knobs through "
                    f"repro.env.read_env so the registry and the "
                    f"generated docs table stay complete")
