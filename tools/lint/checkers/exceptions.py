"""Exception hygiene (RL201): broad handlers must account for failure.

PR 6's fault-injection work showed how a broad ``except Exception:``
hides real bugs: a swallowed worker crash looks exactly like a cache
miss until the render diverges.  The pipeline's contract is
*classification, never silence* — every broad handler either re-raises,
classifies the failure into ``FaultLog``-style accounting
(``_note_failure`` / ``note_error``), or carries a pragma whose reason
explains why breadth is the design (e.g. unpickling foreign bytes can
raise nearly any type, and a miss is the recovery).
"""

from __future__ import annotations

import ast

from ..core import Checker, FileContext

#: A call to any of these (by name or attribute) counts as classifying
#: the failure into structured fault accounting.
CLASSIFIERS = ("note_failure", "note_error", "classify_fault")

#: Exception names considered "broad" when caught.
BROAD = {"Exception", "BaseException"}


def _caught_broad(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch bare / ``Exception`` / ``BaseException``?"""
    node = handler.type
    if node is None:
        return True  # bare except
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else \
            t.id if isinstance(t, ast.Name) else None
        if name in BROAD:
            return True
    return False


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """Handler re-raises or classifies into fault accounting."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else \
                func.id if isinstance(func, ast.Name) else ""
            if any(c in name for c in CLASSIFIERS):
                return True
    return False


class ExceptionHygieneChecker(Checker):
    """Broad ``except`` must re-raise, classify, or carry a pragma."""

    code = "RL201"
    codes = ("RL201",)
    name = "exception-hygiene"
    description = ("bare/broad except in src/ must re-raise, classify "
                   "into FaultLog-style accounting, or carry a "
                   "reasoned pragma")
    scope = ("src/",)

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _caught_broad(node) and not _accounts_for_failure(node):
                what = "bare except" if node.type is None \
                    else "broad except"
                yield self.finding(
                    ctx, node.lineno,
                    f"{what} swallows failures: narrow the exception "
                    f"type, re-raise, classify via "
                    f"{'/'.join(CLASSIFIERS[:2])}, or pragma with a "
                    f"reason")
