"""Checker registry: every rule the lint suite runs, in code order.

Adding a checker (full recipe in ``docs/static-analysis.md``): write a
:class:`~tools.lint.core.Checker` (one file at a time) or
:class:`~tools.lint.core.RepoChecker` (whole checkout) subclass in a
module here, give it a stable unused ``RL`` code, append an instance to
:data:`ALL_CHECKERS`, add positive + negative fixture tests to
``tests/test_lint.py``, and document the code in the rule table.
"""

from .boundary import SubmitPicklableChecker, TaskFieldChecker
from .determinism import DeterminismChecker
from .docs import CliExampleChecker, DocLinkChecker, DocstringChecker
from .envreg import EnvRegistryChecker
from .exceptions import ExceptionHygieneChecker
from .slots import SlotsChecker

#: The suite, in rule-code order.
ALL_CHECKERS = (
    DeterminismChecker(),
    ExceptionHygieneChecker(),
    SubmitPicklableChecker(),
    TaskFieldChecker(),
    SlotsChecker(),
    EnvRegistryChecker(),
    DocLinkChecker(),
    CliExampleChecker(),
    DocstringChecker(),
)

__all__ = ["ALL_CHECKERS"]
