"""Docs rules (RL601–RL603): the checks absorbed from check_docs.py.

Repo-level, like their predecessor: RL601 verifies every relative
markdown link in the documented pages resolves inside the checkout,
RL602 parses every documented ``python -m repro.eval`` line with the
*real* argument parser (a renamed flag breaks the lint, not the
reader), and RL603 requires docstrings on every ``src/repro`` module
and public top-level def.  ``tools/check_docs.py`` survives as a thin
shim over these so the historical entry point keeps working.
"""

from __future__ import annotations

import ast
import re
import shlex
import sys
from pathlib import Path

from ..core import RepoChecker

#: Markdown files the link/CLI checks cover.
DOC_FILES = ("README.md", "docs/architecture.md", "docs/machine-models.md",
             "docs/trace-store.md", "docs/robustness.md",
             "docs/static-analysis.md", "docs/fuzzing.md")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _line_of(doc_text: str, needle: str) -> int:
    """1-based line of the first occurrence of ``needle`` (1 if absent)."""
    for idx, line in enumerate(doc_text.splitlines(), start=1):
        if needle in line:
            return idx
    return 1


class DocLinkChecker(RepoChecker):
    """Relative markdown links must resolve inside the checkout."""

    code = "RL601"
    codes = ("RL601",)
    name = "doc-links"
    description = "relative links in README/docs must resolve"

    def check_repo(self, root: Path):
        for name in DOC_FILES:
            doc = root / name
            if not doc.is_file():
                yield self.finding_at(name, 1, "documentation file missing")
                continue
            text = doc.read_text()
            for target in _LINK_RE.findall(text):
                if target.startswith(("http://", "https://", "#",
                                      "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if path and not (doc.parent / path).exists():
                    yield self.finding_at(name, _line_of(text, target),
                                          f"broken link -> {target}")


class CliExampleChecker(RepoChecker):
    """Documented CLI invocations must parse with the real parser."""

    code = "RL602"
    codes = ("RL602",)
    name = "doc-cli-examples"
    description = ("every documented `python -m repro.eval` line must "
                   "parse with the real argument parser")

    def check_repo(self, root: Path):
        examples = iter_cli_examples(root)
        if not examples:
            yield self.finding_at(
                DOC_FILES[0], 1,
                "no `python -m repro.eval` examples found in docs")
        for doc, line_no, line in examples:
            try:
                parse_cli_example(root, line)
            except SystemExit:
                yield self.finding_at(
                    doc, line_no, f"CLI example does not parse: {line}")
            except AssertionError as exc:
                yield self.finding_at(doc, line_no, str(exc))


def iter_cli_examples(root: Path) -> list[tuple[str, int, str]]:
    """Every ``python -m repro.eval`` line in a fenced doc code block."""
    examples = []
    for name in DOC_FILES:
        doc = root / name
        if not doc.is_file():
            continue
        text = doc.read_text()
        for block in _FENCE_RE.findall(text):
            for line in block.splitlines():
                line = line.strip()
                if "python -m repro.eval" in line:
                    examples.append((name, _line_of(text, line), line))
    return examples


def parse_cli_example(root: Path, line: str) -> None:
    """Parse one documented CLI line with the real parser; raise on error."""
    sys.path.insert(0, str(root / "src"))
    try:
        from repro.eval.__main__ import build_parser
    finally:
        sys.path.pop(0)
    tokens = shlex.split(line)
    # Strip leading VAR=value assignments (e.g. PYTHONPATH=src) and the
    # interpreter invocation itself.
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens.pop(0)
    assert tokens[:3] == ["python", "-m", "repro.eval"], \
        f"not a repro.eval invocation: {line!r}"
    build_parser().parse_args(tokens[3:])  # SystemExit(2) on bad args


class DocstringChecker(RepoChecker):
    """Modules and public top-level defs carry docstrings."""

    code = "RL603"
    codes = ("RL603",)
    name = "docstrings"
    description = ("every src/repro module and public top-level def "
                   "must carry a docstring")

    def check_repo(self, root: Path):
        for path in sorted((root / "src" / "repro").rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            try:
                tree = ast.parse(path.read_text(), filename=rel)
            except SyntaxError:
                continue  # RL000 reports unparseable files
            if ast.get_docstring(tree) is None:
                yield self.finding_at(rel, 1, "missing module docstring")
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)) \
                        and not node.name.startswith("_") \
                        and ast.get_docstring(node) is None:
                    yield self.finding_at(
                        rel, node.lineno,
                        f"public `{node.name}` missing docstring")
