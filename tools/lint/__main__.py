"""CLI for the lint suite: ``python -m tools.lint [paths...]``.

Exit status is 0 when the tree is clean (outside the committed
baseline) and 1 when live findings remain, so CI and tier-1 tests can
gate on it directly.  ``--format json`` emits the machine-readable
report whose schema ``tests/test_lint.py`` pins.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .checkers import ALL_CHECKERS
from .core import (REPO_ROOT, load_baseline, run_lint, write_baseline)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m tools.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Repo-native static analysis: determinism, "
                    "exception hygiene, process-boundary safety, "
                    "hot-path __slots__, env registry, docs.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: whole checkout; "
             "explicit paths skip repo-level docs rules)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of grandfathered findings "
             "(default: tools/lint/baseline.json)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0")
    parser.add_argument(
        "--select", metavar="PREFIX", action="append", default=None,
        help="run only rules whose code matches PREFIX (repeatable), "
             "e.g. --select RL6 for the docs rules")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="lint a checkout rooted at DIR instead of this one "
             "(used by fixture tests)")
    return parser


def _list_rules() -> None:
    for checker in ALL_CHECKERS:
        codes = "/".join(getattr(checker, "codes", (checker.code,)))
        print(f"{codes:7} {checker.name:18} {checker.description}")


def main(argv: list | None = None) -> int:
    """Run the lint; return the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0

    baseline = load_baseline(args.baseline)
    root = REPO_ROOT if args.root is None else Path(args.root)
    result = run_lint(root=root, paths=args.paths or None,
                      select=args.select,
                      baseline=set() if args.write_baseline else baseline)

    if args.write_baseline:
        path = write_baseline(result.findings, args.baseline)
        print(f"wrote {len(result.findings)} entries to {path}")
        return 0

    if args.format == "json":
        print(json.dumps(result.as_json(), indent=2))
    else:
        for finding in result.findings:
            print(finding.format())
        tail = f"{len(result.findings)} finding(s) in " \
               f"{result.files} file(s)"
        if result.baselined:
            tail += f" ({result.baselined} baselined)"
        print(tail if result.findings else f"clean: {tail}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
