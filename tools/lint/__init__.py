"""repro.lint: the repo's AST-based invariant checker.

One entry point — ``python -m tools.lint`` — machine-checks the
invariants the test suite cannot exhaustively pin:

* **Determinism** (RL101–RL103): no wall-clock reads, unseeded
  randomness, or unordered set iteration in the code that feeds trace
  fingerprints and rendered sweep output.
* **Exception hygiene** (RL201): a bare or broad ``except`` in ``src/``
  must re-raise, classify the failure into ``FaultLog``-style
  accounting, or carry a reasoned suppression pragma.
* **Process-boundary safety** (RL301–RL302): nothing unpicklable —
  lambdas, closures, locally-defined functions — crosses an executor
  ``submit``, and pool task dataclasses declare only picklable fields.
* **Hot-path ``__slots__``** (RL401): trace-event and plan classes on
  the replay hot path declare ``__slots__``.
* **Env-var registry** (RL501): every environment read goes through
  :mod:`repro.env`, the registry the docs knob table is generated from.
* **Docs** (RL601–RL603): markdown links resolve, documented CLI lines
  parse with the real parser, docstrings exist (absorbed from the old
  ``tools/check_docs.py``).

Findings carry ``file:line``, a stable rule code, severity, and a
message; inline pragmas (``# repro-lint: disable=RL201  reason``) and a
committed baseline file grandfather what cannot be fixed.  The full
rule table and workflow live in ``docs/static-analysis.md``.
"""

from .core import (Finding, LintResult, load_baseline, run_lint,
                   write_baseline)
from .checkers import ALL_CHECKERS

__all__ = ["Finding", "LintResult", "ALL_CHECKERS", "run_lint",
           "load_baseline", "write_baseline"]
