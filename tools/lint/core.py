"""Framework core: findings, pragmas, baseline, file walk, orchestration.

The shape every checker plugs into:

* A :class:`Finding` is one problem at ``file:line`` with a stable rule
  ``code`` (``RL101``), a severity, and a message.  Its
  :attr:`~Finding.baseline_key` deliberately omits the line number so a
  baselined finding survives unrelated line churn in the same file.
* A :class:`FileContext` wraps one Python source file: lazily-parsed
  AST, source lines, and the file's suppression pragmas.
* :func:`run_lint` walks the tree, runs every applicable checker, drops
  findings suppressed by a pragma or grandfathered by the baseline, and
  returns a :class:`LintResult`.

Suppression pragmas
-------------------
``# repro-lint: disable=RL201  reason text`` suppresses the named
rule(s) on the pragma's own line (trailing comment) or — for a
standalone comment line — on the next line that is not itself a
comment, so a pragma may sit above the code it excuses together with
ordinary explanatory comments.  A pragma **must** carry a reason; one
without a reason (or naming an unknown rule) is itself a finding
(``RL001``), so suppressions stay auditable.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

#: The repository checkout this lint run is anchored to.
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Directories never walked for Python sources.
SKIP_DIRS = {".git", "__pycache__", "out", ".claude", ".github",
             "node_modules", ".pytest_cache"}

#: Default committed baseline location (may be absent or empty).
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s\s*(.*))?$")

_CODE_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One lint problem: location, stable rule code, severity, message."""

    file: str          #: Repo-relative posix path.
    line: int          #: 1-based line number.
    code: str          #: Stable rule code, e.g. ``RL101``.
    message: str       #: Human-readable description.
    severity: str = "error"   #: ``error`` | ``warning``.

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.file}::{self.code}::{self.message}"

    def format(self) -> str:
        """Render as ``file:line: CODE message`` (the text output row)."""
        return f"{self.file}:{self.line}: {self.code} " \
               f"[{self.severity}] {self.message}"

    def as_dict(self) -> dict:
        """JSON-output row (the schema ``tests/test_lint.py`` pins)."""
        return {"file": self.file, "line": self.line, "code": self.code,
                "severity": self.severity, "message": self.message}


def _sort_key(finding: Finding) -> tuple:
    return (finding.file, finding.line, finding.code, finding.message)


class FileContext:
    """One Python source file under lint: text, AST, pragmas."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        try:
            self.rel = path.relative_to(root).as_posix()
        except ValueError:
            # Out-of-root path: keep it absolute; scoped checkers
            # (whose prefixes are repo-relative) simply won't match.
            self.rel = path.as_posix()
        self.text = path.read_text()
        self.lines = self.text.splitlines()
        self._tree: Optional[ast.AST] = None
        self._syntax_error: Optional[SyntaxError] = None
        #: line number -> set of rule codes disabled on that line.
        self._suppress: dict[int, set[str]] = {}
        #: Pragma-hygiene findings (RL001) discovered while parsing.
        self.pragma_findings: list[Finding] = []
        self._scan_pragmas()

    # -- AST -----------------------------------------------------------
    @property
    def tree(self) -> Optional[ast.AST]:
        """Parsed module, or ``None`` when the file does not parse
        (the runner reports ``RL000`` for that)."""
        if self._tree is None and self._syntax_error is None:
            try:
                self._tree = ast.parse(self.text, filename=self.rel)
            except SyntaxError as exc:
                self._syntax_error = exc
        return self._tree

    @property
    def syntax_error(self) -> Optional[SyntaxError]:
        """The parse failure, if any (populated by reading :attr:`tree`)."""
        return self._syntax_error

    # -- pragmas -------------------------------------------------------
    def _comments(self) -> list[tuple[int, str]]:
        """Real ``(line, text)`` comment tokens — never string literals
        that merely *mention* the pragma syntax (docs, tests)."""
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.text).readline)
            return [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return []  # unparseable file: RL000 reports it, no pragmas

    def _scan_pragmas(self) -> None:
        for idx, comment in self._comments():
            match = _PRAGMA_RE.search(comment)
            if match is None:
                if "repro-lint" in comment and "disable" in comment:
                    self.pragma_findings.append(Finding(
                        file=self.rel, line=idx, code="RL001",
                        message="unparseable repro-lint pragma"))
                continue
            codes = [c.strip() for c in match.group(1).split(",")
                     if c.strip()]
            reason = (match.group(2) or "").strip()
            bad = [c for c in codes if not _CODE_RE.match(c)]
            if not codes or bad:
                self.pragma_findings.append(Finding(
                    file=self.rel, line=idx, code="RL001",
                    message=f"pragma names invalid rule code(s): "
                            f"{', '.join(bad) or '(none)'}"))
                continue
            if not reason:
                self.pragma_findings.append(Finding(
                    file=self.rel, line=idx, code="RL001",
                    message=f"pragma disabling {', '.join(codes)} "
                            f"carries no reason"))
                continue
            self._suppress.setdefault(self._target_line(idx),
                                      set()).update(codes)

    def _target_line(self, pragma_line: int) -> int:
        """Line a pragma applies to: its own when it trails code, else
        the next line that is not a comment-only line."""
        before = self.lines[pragma_line - 1].split("#", 1)[0]
        if before.strip():
            return pragma_line
        line = pragma_line + 1
        while line <= len(self.lines) \
                and self.lines[line - 1].lstrip().startswith("#"):
            line += 1
        return line

    def suppressed(self, line: int, code: str) -> bool:
        """Is rule ``code`` pragma-disabled at ``line``?"""
        return code in self._suppress.get(line, ())


class Checker:
    """Base class: one rule family over single Python files.

    ``scope`` is a tuple of repo-relative path prefixes the checker
    applies to (empty = every Python file); ``exclude`` prefixes are
    carved back out (e.g. the env-registry module itself).
    """

    code: str = "RL000"
    name: str = "base"
    description: str = ""
    severity: str = "error"
    scope: tuple = ()
    exclude: tuple = ()

    def applies_to(self, rel: str) -> bool:
        """Does this checker cover repo-relative path ``rel``?"""
        if any(rel.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(rel.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one parsed file (``ctx.tree`` is valid)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, message: str,
                code: Optional[str] = None) -> Finding:
        """Build one finding anchored in ``ctx``."""
        return Finding(file=ctx.rel, line=line, code=code or self.code,
                       message=message, severity=self.severity)


class RepoChecker(Checker):
    """Base class: rules over the whole checkout (docs, registries).

    Repo-level checkers run only on full-tree lints (no explicit path
    arguments), since their subject is the repository, not a file list.
    """

    def check_repo(self, root: Path) -> Iterable[Finding]:
        """Yield findings for the checkout rooted at ``root``."""
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finding_at(self, rel: str, line: int, message: str) -> Finding:
        """Build one finding at a repo-relative location (no context)."""
        return Finding(file=rel, line=line, code=self.code,
                       message=message, severity=self.severity)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list          #: Live findings, sorted by file/line/code.
    baselined: int = 0      #: Findings hidden by the baseline file.
    files: int = 0          #: Python files examined.

    @property
    def ok(self) -> bool:
        """True when nothing (outside the baseline) was found."""
        return not self.findings

    def as_json(self) -> dict:
        """The machine-readable report (schema pinned by tests)."""
        severities: dict[str, int] = {}
        for f in self.findings:
            severities[f.severity] = severities.get(f.severity, 0) + 1
        return {"version": 1,
                "files": self.files,
                "counts": {"total": len(self.findings),
                           "baselined": self.baselined, **severities},
                "findings": [f.as_dict() for f in self.findings]}


# ----------------------------------------------------------------------
# Baseline: grandfathered findings, committed next to the tool.
# ----------------------------------------------------------------------
def load_baseline(path: Optional[Path] = None) -> set:
    """Baseline keys from ``path`` (default committed file; absent = empty)."""
    path = DEFAULT_BASELINE if path is None else Path(path)
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("entries", []))


def write_baseline(findings: Iterable[Finding],
                   path: Optional[Path] = None) -> Path:
    """Write the grandfather file for the given findings; returns path."""
    path = DEFAULT_BASELINE if path is None else Path(path)
    entries = sorted({f.baseline_key for f in findings})
    path.write_text(json.dumps({"version": 1, "entries": entries},
                               indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# File discovery and the run loop.
# ----------------------------------------------------------------------
def iter_python_files(root: Path,
                      paths: Optional[list] = None) -> list[Path]:
    """Python files under lint, sorted; ``paths`` restricts the walk."""
    targets = [root] if not paths else [Path(p) for p in paths]
    files: set[Path] = set()
    for target in targets:
        if not target.is_absolute():
            target = root / target
        if target.is_file() and target.suffix == ".py":
            files.add(target.resolve())
            continue
        for path in target.rglob("*.py"):
            if not SKIP_DIRS.intersection(path.parts):
                files.add(path.resolve())
    return sorted(files)


def _selected(checker: Checker, select: Optional[list]) -> bool:
    if not select:
        return True
    codes = getattr(checker, "codes", (checker.code,))
    return any(code.startswith(prefix)
               for prefix in select for code in codes)


def run_lint(root: Optional[Path] = None,
             paths: Optional[list] = None,
             select: Optional[list] = None,
             baseline: Optional[set] = None,
             checkers: Optional[list] = None) -> LintResult:
    """Run the suite: walk, check, suppress, baseline, sort.

    ``paths`` (when given) restricts the walk and skips repo-level
    checkers; ``select`` keeps only rule codes matching the given
    prefixes (e.g. ``["RL6"]`` = docs rules only); ``baseline`` is a
    set of grandfathered :attr:`Finding.baseline_key` strings.
    """
    from .checkers import ALL_CHECKERS

    root = REPO_ROOT if root is None else Path(root)
    active = [c for c in (ALL_CHECKERS if checkers is None else checkers)
              if _selected(c, select)]
    file_checkers = [c for c in active if not isinstance(c, RepoChecker)]
    repo_checkers = [c for c in active if isinstance(c, RepoChecker)]

    findings: list[Finding] = []
    files = iter_python_files(root, paths)
    for path in files:
        ctx = FileContext(root, path)
        raw: list[Finding] = list(ctx.pragma_findings)
        applicable = [c for c in file_checkers if c.applies_to(ctx.rel)]
        if applicable and ctx.tree is None:
            err = ctx.syntax_error
            raw.append(Finding(file=ctx.rel, line=err.lineno or 1,
                               code="RL000",
                               message=f"file does not parse: {err.msg}"))
        elif applicable:
            for checker in applicable:
                raw.extend(checker.check(ctx))
        findings.extend(f for f in raw
                        if not ctx.suppressed(f.line, f.code))

    if not paths:
        for checker in repo_checkers:
            findings.extend(checker.check_repo(root))

    baseline = baseline or set()
    live = [f for f in findings if f.baseline_key not in baseline]
    baselined = len(findings) - len(live)
    return LintResult(findings=sorted(live, key=_sort_key),
                      baselined=baselined, files=len(files))


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``.

    Shared by several checkers that match calls and attribute reads
    against dotted-path deny lists.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
