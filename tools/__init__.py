"""Repo tooling: makes ``python -m tools.lint`` runnable from a checkout."""
