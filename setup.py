"""Setup shim for environments whose pip lacks the wheel package.

``pip install -e .`` works where wheel is available; this shim additionally
allows ``python setup.py develop`` in fully offline environments.
"""

from setuptools import setup

setup()
