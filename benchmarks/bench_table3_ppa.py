"""Table III — PPA comparison (fmatmul @ 512 B/lane operating point)."""

import pytest

from repro.eval.table3_ppa import PAPER_TABLE3, render_table3, run_table3

from conftest import save_output


def test_table3_ppa(benchmark, trace_store, workers, capture_workers):
    points = benchmark.pedantic(run_table3,
                                kwargs={"scale": "reduced",
                                        "trace_cache": trace_store,
                                        "workers": workers,
                                        "capture_workers": capture_workers},
                                rounds=1, iterations=1)
    save_output("table3_ppa", render_table3(points))
    by_machine = {p.machine: p for p in points}
    for machine, paper in PAPER_TABLE3.items():
        if machine not in by_machine:
            continue  # Vitruvius+ is a static reference row
        pt = by_machine[machine]
        assert pt.freq_ghz == pytest.approx(paper["freq"], rel=0.02)
        assert pt.gflops == pytest.approx(paper["gflops"], rel=0.10)
        assert pt.gflops_per_watt == pytest.approx(paper["gflops_w"],
                                                   rel=0.10)
        assert pt.gflops_per_mm2 == pytest.approx(paper["gflops_mm2"],
                                                  rel=0.10)
    # Headline: 64L AraXL reaches ~146 GFLOPs at ~40 GFLOPs/W.
    big = by_machine["64L-AraXL"]
    assert big.gflops == pytest.approx(146.0, rel=0.05)
