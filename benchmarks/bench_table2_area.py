"""Table II — AraXL area scaling 16/32/64 lanes."""

import pytest

from repro.eval.table2_area import PAPER_TABLE2, render_table2, run_table2

from conftest import save_output


def test_table2_scaling(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_output("table2_area", render_table2(rows))
    by_lanes = {r.lanes: r for r in rows}
    for lanes, paper in PAPER_TABLE2.items():
        assert by_lanes[lanes].total_kge == pytest.approx(paper["TOTAL"],
                                                          rel=0.01)
    # Near-perfect 2x steps and ~3% interface overhead.
    assert by_lanes[64].total_kge / by_lanes[32].total_kge \
        == pytest.approx(2.0, abs=0.1)
    assert by_lanes[64].interface_fraction == pytest.approx(0.033, abs=0.01)
