"""Ablations on AraXL's design choices (beyond the paper's figures).

Three sweeps that probe the design decisions Section III motivates:

* ring hop latency — how slow may the RINGI be before slides/reductions
  suffer (the paper picks pipelined hops over low latency);
* GLSU pipeline depth — the latency-for-scalability trade of Fig 3;
* unit queue depth — how much decoupling the sequencer needs to hide
  the longer AraXL issue path.

Every sweep varies pure timing knobs at a fixed lane count, so each
kernel's trace is captured exactly once and the per-knob timing
replays fan out as each trace lands — both phases on one shared
:class:`~repro.sim.parallel.SimPool` whose process budget comes from
``--workers`` (captures hold at most ``--capture-workers`` of it);
results are byte-identical to a serial sweep regardless.  The sweep
driver itself lives in :mod:`repro.eval.ablations` so the parallel
byte-identity harness covers it alongside the paper sweeps.
"""

import dataclasses

from repro.eval.ablations import run_knob_sweep
from repro.params import AraXLConfig
from repro.report import render_table

from conftest import save_output


def test_ablation_ring_hop_latency(benchmark, trace_store, workers,
                                   capture_workers):
    hops = (1, 2, 4, 8)

    def sweep():
        configs = [AraXLConfig(lanes=32, ring_hop_latency=h) for h in hops]
        utils = run_knob_sweep(configs, [("fconv2d", 512, {"rows": 32}),
                                         ("fdotproduct", 512, {})],
                               trace_cache=trace_store, workers=workers,
                               capture_workers=capture_workers)
        return [(hop, f"{u[0] * 100:.1f}%", f"{u[1] * 100:.1f}%")
                for hop, u in zip(hops, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_ring_hop", render_table(
        ("hop cycles", "fconv2d util", "fdotproduct util"), rows,
        title="Ablation — RINGI hop latency (32L AraXL, 512 B/lane)"))
    # Slides tolerate slow hops (long vectors hide them); reductions do
    # pay, which is why the paper amortizes them over the intra-lane phase.
    first, last = float(rows[0][1][:-1]), float(rows[-1][1][:-1])
    assert first - last < 5.0


def test_ablation_glsu_depth(benchmark, trace_store, workers,
                             capture_workers):
    extras = (0, 4, 8, 16)

    def sweep():
        configs = [AraXLConfig(lanes=32, glsu_extra_regs=e) for e in extras]
        utils = run_knob_sweep(configs, [("fmatmul", 512, {"m": 16, "k": 64}),
                                         ("fdotproduct", 512, {})],
                               trace_cache=trace_store, workers=workers,
                               capture_workers=capture_workers)
        return [(extra, f"{u[0] * 100:.1f}%", f"{u[1] * 100:.1f}%")
                for extra, u in zip(extras, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_glsu_depth", render_table(
        ("extra regs", "fmatmul util", "fdotproduct util"), rows,
        title="Ablation — GLSU pipeline depth (32L AraXL, 512 B/lane)"))
    # Compute-bound work shrugs off even 16 extra stages.
    assert float(rows[-1][1][:-1]) > 95.0


def test_ablation_queue_depth(benchmark, trace_store, workers,
                              capture_workers):
    depths = (1, 2, 4, 8)

    def sweep():
        configs = [dataclasses.replace(AraXLConfig(lanes=32),
                                       unit_queue_depth=d) for d in depths]
        utils = run_knob_sweep(configs,
                               [("fmatmul", 128, {"m": 16, "k": 64})],
                               trace_cache=trace_store, workers=workers,
                               capture_workers=capture_workers)
        return [(depth, f"{u[0] * 100:.1f}%")
                for depth, u in zip(depths, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_queue_depth", render_table(
        ("queue depth", "fmatmul util @128 B/lane"), rows,
        title="Ablation — sequencer queue depth (32L AraXL)"))
    # Deeper queues monotonically help (or saturate) at medium vectors.
    utils = [float(r[1][:-1]) for r in rows]
    assert utils == sorted(utils)


def test_ablation_ring_hop_zoo_kernels(benchmark, trace_store, workers,
                                       capture_workers):
    # The zoo's permute-bound kernels (scan: log-depth slides; sort:
    # rgather + mask algebra per compare-exchange) are the workloads a
    # slow ring actually hurts — the curated six barely touch the SLDU.
    hops = (1, 2, 4, 8)

    def sweep():
        configs = [AraXLConfig(lanes=8, ring_hop_latency=h) for h in hops]
        utils = run_knob_sweep(configs, [("scan", 256, {}), ("sort", 256, {})],
                               trace_cache=trace_store, workers=workers,
                               capture_workers=capture_workers)
        return [(hop, f"{u[0] * 100:.1f}%", f"{u[1] * 100:.1f}%")
                for hop, u in zip(hops, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_ring_hop_zoo", render_table(
        ("hop cycles", "scan util", "sort util"), rows,
        title="Ablation — RINGI hop latency on zoo kernels (8L AraXL, "
              "256 B/lane)"))
    # Slide/gather-bound work never speeds up as hops get slower.
    scan_utils = [float(r[1][:-1]) for r in rows]
    assert scan_utils == sorted(scan_utils, reverse=True)
