"""Ablations on AraXL's design choices (beyond the paper's figures).

Three sweeps that probe the design decisions Section III motivates:

* ring hop latency — how slow may the RINGI be before slides/reductions
  suffer (the paper picks pipelined hops over low latency);
* GLSU pipeline depth — the latency-for-scalability trade of Fig 3;
* unit queue depth — how much decoupling the sequencer needs to hide
  the longer AraXL issue path.
"""

import dataclasses

import pytest

from repro.kernels import KERNELS
from repro.params import AraXLConfig
from repro.report import render_table
from repro.sim import TraceCache

from conftest import save_output


def _util(config, kernel, bpl, cache=None, **kw):
    """Utilization at one operating point.

    All ablation sweeps vary pure timing knobs at a fixed lane count, so
    passing a :class:`TraceCache` captures each kernel's trace once and
    replays it per knob value.
    """
    run = KERNELS[kernel](config, bpl, **kw)
    return run.utilization(run.run(config, verify=False, cache=cache))


def test_ablation_ring_hop_latency(benchmark):
    def sweep():
        cache = TraceCache()
        rows = []
        for hop in (1, 2, 4, 8):
            cfg = AraXLConfig(lanes=32, ring_hop_latency=hop)
            rows.append((hop,
                         f"{_util(cfg, 'fconv2d', 512, cache=cache, rows=32) * 100:.1f}%",
                         f"{_util(cfg, 'fdotproduct', 512, cache=cache) * 100:.1f}%"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_ring_hop", render_table(
        ("hop cycles", "fconv2d util", "fdotproduct util"), rows,
        title="Ablation — RINGI hop latency (32L AraXL, 512 B/lane)"))
    # Slides tolerate slow hops (long vectors hide them); reductions do
    # pay, which is why the paper amortizes them over the intra-lane phase.
    first, last = float(rows[0][1][:-1]), float(rows[-1][1][:-1])
    assert first - last < 5.0


def test_ablation_glsu_depth(benchmark):
    def sweep():
        cache = TraceCache()
        rows = []
        for extra in (0, 4, 8, 16):
            cfg = AraXLConfig(lanes=32, glsu_extra_regs=extra)
            rows.append((extra,
                         f"{_util(cfg, 'fmatmul', 512, cache=cache, m=16, k=64) * 100:.1f}%",
                         f"{_util(cfg, 'fdotproduct', 512, cache=cache) * 100:.1f}%"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_glsu_depth", render_table(
        ("extra regs", "fmatmul util", "fdotproduct util"), rows,
        title="Ablation — GLSU pipeline depth (32L AraXL, 512 B/lane)"))
    # Compute-bound work shrugs off even 16 extra stages.
    assert float(rows[-1][1][:-1]) > 95.0


def test_ablation_queue_depth(benchmark):
    def sweep():
        cache = TraceCache()
        rows = []
        for depth in (1, 2, 4, 8):
            cfg = dataclasses.replace(AraXLConfig(lanes=32),
                                      unit_queue_depth=depth)
            rows.append((depth,
                         f"{_util(cfg, 'fmatmul', 128, cache=cache, m=16, k=64) * 100:.1f}%"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_queue_depth", render_table(
        ("queue depth", "fmatmul util @128 B/lane"), rows,
        title="Ablation — sequencer queue depth (32L AraXL)"))
    # Deeper queues monotonically help (or saturate) at medium vectors.
    utils = [float(r[1][:-1]) for r in rows]
    assert utils == sorted(utils)
