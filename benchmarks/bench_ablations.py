"""Ablations on AraXL's design choices (beyond the paper's figures).

Three sweeps that probe the design decisions Section III motivates:

* ring hop latency — how slow may the RINGI be before slides/reductions
  suffer (the paper picks pipelined hops over low latency);
* GLSU pipeline depth — the latency-for-scalability trade of Fig 3;
* unit queue depth — how much decoupling the sequencer needs to hide
  the longer AraXL issue path.

Every sweep varies pure timing knobs at a fixed lane count, so each
kernel's trace is captured exactly once and the per-knob timing replays
fan out over a :class:`~repro.sim.parallel.ReplayPool` (sized to the
host; replay results are byte-identical to a serial sweep regardless).
"""

import dataclasses

from repro.kernels import KERNELS
from repro.params import AraXLConfig
from repro.report import render_table
from repro.sim import ReplayPool, TraceCache

from conftest import save_output


def _knob_utils(configs, kernel_specs, workers=None, cache=None):
    """Utilization matrix for timing-knob `configs` x `kernel_specs`.

    ``kernel_specs`` is ``[(kernel_name, bytes_per_lane, problem_kwargs)]``.
    Capture phase: one functional execution per kernel (the knobs do not
    change VLEN, so every config replays the same trace), served from
    ``cache`` — the suite's shared store — when another sweep already
    captured that point.  Replay phase: one pooled batch over the full
    configs x kernels cross-product.
    Returns ``rows[config_index][spec_index] -> utilization``.
    """
    cache = cache if cache is not None else TraceCache()
    runs, tasks = [], []
    for name, bpl, kw in kernel_specs:
        run = KERNELS[name](configs[0], bpl, **kw)
        captured = run.capture(configs[0], cache=cache, verify=False)
        key = run.trace_key(configs[0])
        runs.append(run)
        tasks.extend((config, captured, key) for config in configs)
    reports = ReplayPool(workers=workers,
                         disk_dir=cache.disk_dir).replay_batch(tasks)
    per_spec = len(configs)
    rows = [[None] * len(kernel_specs) for _ in configs]
    for spec_i, run in enumerate(runs):
        group = reports[spec_i * per_spec:(spec_i + 1) * per_spec]
        for cfg_i, report in enumerate(group):
            rows[cfg_i][spec_i] = report.fpu_utilization(
                run.max_flops_per_cycle)
    return rows


def test_ablation_ring_hop_latency(benchmark, trace_store):
    hops = (1, 2, 4, 8)

    def sweep():
        configs = [AraXLConfig(lanes=32, ring_hop_latency=h) for h in hops]
        utils = _knob_utils(configs, [("fconv2d", 512, {"rows": 32}),
                                      ("fdotproduct", 512, {})],
                            cache=trace_store)
        return [(hop, f"{u[0] * 100:.1f}%", f"{u[1] * 100:.1f}%")
                for hop, u in zip(hops, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_ring_hop", render_table(
        ("hop cycles", "fconv2d util", "fdotproduct util"), rows,
        title="Ablation — RINGI hop latency (32L AraXL, 512 B/lane)"))
    # Slides tolerate slow hops (long vectors hide them); reductions do
    # pay, which is why the paper amortizes them over the intra-lane phase.
    first, last = float(rows[0][1][:-1]), float(rows[-1][1][:-1])
    assert first - last < 5.0


def test_ablation_glsu_depth(benchmark, trace_store):
    extras = (0, 4, 8, 16)

    def sweep():
        configs = [AraXLConfig(lanes=32, glsu_extra_regs=e) for e in extras]
        utils = _knob_utils(configs, [("fmatmul", 512, {"m": 16, "k": 64}),
                                      ("fdotproduct", 512, {})],
                            cache=trace_store)
        return [(extra, f"{u[0] * 100:.1f}%", f"{u[1] * 100:.1f}%")
                for extra, u in zip(extras, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_glsu_depth", render_table(
        ("extra regs", "fmatmul util", "fdotproduct util"), rows,
        title="Ablation — GLSU pipeline depth (32L AraXL, 512 B/lane)"))
    # Compute-bound work shrugs off even 16 extra stages.
    assert float(rows[-1][1][:-1]) > 95.0


def test_ablation_queue_depth(benchmark, trace_store):
    depths = (1, 2, 4, 8)

    def sweep():
        configs = [dataclasses.replace(AraXLConfig(lanes=32),
                                       unit_queue_depth=d) for d in depths]
        utils = _knob_utils(configs, [("fmatmul", 128, {"m": 16, "k": 64})],
                            cache=trace_store)
        return [(depth, f"{u[0] * 100:.1f}%")
                for depth, u in zip(depths, utils)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_queue_depth", render_table(
        ("queue depth", "fmatmul util @128 B/lane"), rows,
        title="Ablation — sequencer queue depth (32L AraXL)"))
    # Deeper queues monotonically help (or saturate) at medium vectors.
    utils = [float(r[1][:-1]) for r in rows]
    assert utils == sorted(utils)
