"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via pytest-benchmark
and prints the rendered comparison table (run with ``-s`` to see it, or
read ``benchmarks/out/*.txt`` afterwards).  Simulation experiments are
executed with ``benchmark.pedantic(rounds=1)`` — the quantity of interest
is the experiment's *output*, not the host's wall-clock jitter.

All simulation benchmarks attach to **one shared disk trace store** (the
session-scoped :func:`trace_store` fixture): identical ``(program, VLEN,
setup)`` operating points revisited across ``bench_fig6/7``,
``bench_table1/3``, the ablations and ``bench_trace_reuse`` are captured
once and served from disk ever after — including across suite runs and
concurrent (``pytest-xdist``-style) workers, since the store's writes
are atomic.  The store directory resolves from ``--trace-store``, then
``$REPRO_TRACE_STORE``, then ``benchmarks/out/trace_cache``; its GC
(size cap, stale purge, orphan reaping) runs once at session start.

The sweeps run on a shared :class:`~repro.sim.parallel.SimPool` whose
total process budget comes from ``--workers`` (default: autodetect) and
whose capture phase holds at most ``--capture-workers`` of that budget
while replays are pending.  Rendered outputs are byte-identical
whatever the store's state or the pool sizing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.trace_store import TraceStore, resolve_store_dir

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-store", action="store", default=None, metavar="DIR",
        help="shared trace-store directory for the benchmark suite "
             "(default: $REPRO_TRACE_STORE, else benchmarks/out/trace_cache)")
    parser.addoption(
        "--workers", action="store", default="auto", metavar="N|auto",
        help="total worker-process budget of the shared capture/replay "
             "pool the simulation benchmarks run on (default 'auto': the "
             "host's schedulable CPUs; rendered outputs are byte-identical "
             "for any value)")
    parser.addoption(
        "--capture-workers", action="store", default=1, type=int, metavar="N",
        help="soft share of the --workers budget the capture phase may "
             "hold while replays are pending (default 1: captures stay "
             "in-process; clamped to the budget; rendered outputs are "
             "byte-identical for any value)")


@pytest.fixture(scope="session")
def workers(request) -> int | None:
    """The shared pool's process budget ('auto' -> None = autodetect)."""
    raw = request.config.getoption("--workers")
    return None if raw == "auto" else max(1, int(raw))


@pytest.fixture(scope="session")
def capture_workers(request) -> int:
    """Capture-phase soft split every simulation benchmark threads through."""
    return max(1, int(request.config.getoption("--capture-workers")))


@pytest.fixture(scope="session")
def trace_store(request) -> TraceStore:
    """The suite-wide shared disk trace store, GC'd once per session."""
    explicit = request.config.getoption("--trace-store")
    # resolve_store_dir's default is the checkout-anchored
    # benchmarks/out/trace_cache — exactly this suite's out/ dir.
    store = TraceStore(disk_dir=resolve_store_dir(explicit))
    store.gc()  # reap crashed-writer orphans, purge stale, enforce budget
    return store


def save_output(name: str, text: str) -> None:
    """Persist a rendered experiment next to the benchmarks."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/out/{name}.txt]")
