"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via pytest-benchmark
and prints the rendered comparison table (run with ``-s`` to see it, or
read ``benchmarks/out/*.txt`` afterwards).  Simulation experiments are
executed with ``benchmark.pedantic(rounds=1)`` — the quantity of interest
is the experiment's *output*, not the host's wall-clock jitter.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_output(name: str, text: str) -> None:
    """Persist a rendered experiment next to the benchmarks."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/out/{name}.txt]")
