"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via pytest-benchmark
and prints the rendered comparison table (run with ``-s`` to see it, or
read ``benchmarks/out/*.txt`` afterwards).  Simulation experiments are
executed with ``benchmark.pedantic(rounds=1)`` — the quantity of interest
is the experiment's *output*, not the host's wall-clock jitter.

All simulation benchmarks attach to **one shared disk trace store** (the
session-scoped :func:`trace_store` fixture): identical ``(program, VLEN,
setup)`` operating points revisited across ``bench_fig6/7``,
``bench_table1/3``, the ablations and ``bench_trace_reuse`` are captured
once and served from disk ever after — including across suite runs and
concurrent (``pytest-xdist``-style) workers, since the store's writes
are atomic.  The store directory resolves from ``--trace-store``, then
``$REPRO_TRACE_STORE``, then ``benchmarks/out/trace_cache``; its GC
(size cap, stale purge, orphan reaping) runs once at session start.
Rendered outputs are byte-identical whatever the store's state.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.trace_store import TraceStore, resolve_store_dir

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-store", action="store", default=None, metavar="DIR",
        help="shared trace-store directory for the benchmark suite "
             "(default: $REPRO_TRACE_STORE, else benchmarks/out/trace_cache)")
    parser.addoption(
        "--capture-workers", action="store", default=1, type=int, metavar="N",
        help="capture-phase fan-out for the simulation benchmarks "
             "(default 1: in-process; rendered outputs are byte-identical "
             "for any value)")


@pytest.fixture(scope="session")
def capture_workers(request) -> int:
    """Capture-phase fan-out every simulation benchmark threads through."""
    return max(1, int(request.config.getoption("--capture-workers")))


@pytest.fixture(scope="session")
def trace_store(request) -> TraceStore:
    """The suite-wide shared disk trace store, GC'd once per session."""
    explicit = request.config.getoption("--trace-store")
    # resolve_store_dir's default is the checkout-anchored
    # benchmarks/out/trace_cache — exactly this suite's out/ dir.
    store = TraceStore(disk_dir=resolve_store_dir(explicit))
    store.gc()  # reap crashed-writer orphans, purge stale, enforce budget
    return store


def save_output(name: str, text: str) -> None:
    """Persist a rendered experiment next to the benchmarks."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/out/{name}.txt]")
