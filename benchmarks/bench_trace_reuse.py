"""Trace-cache effectiveness: cold vs warm sweeps, disk layer, parallel replay.

Runs the Fig 7 interface-cut sweep (the heaviest replay consumer: four
timing configurations per operating point) several times:

* **cold** — fresh memory cache: every (kernel, B/lane) point pays one
  functional capture;
* **warm** — same cache: every capture is an in-memory hit, only timing
  replays run.  This round is the one ``benchmark.pedantic`` measures,
  and ``warm_s`` is read back from the benchmark's own stats so the
  reported wall-clock is exactly the measured round;
* **warm, parallel** — same warm cache, replay phase fanned out over a
  4-worker :class:`~repro.sim.parallel.ReplayPool`.  Must be
  point-identical to the serial sweep; on a multi-core host this row
  records the fan-out speedup (on a single-CPU host it records the
  pool overhead instead);
* **disk cold / disk warm** — a disk-backed cache written by one run and
  rehydrated by a fresh cache instance, recording the disk layer's
  write-through cost and its ``disk_hits`` accounting.

The warm/cold ratio bounds what any further sweep over the same operating
points costs, and the hit-rate column verifies the cache keying actually
fires across the sweep.
"""

import time

from repro.eval.fig7_latency import run_fig7
from repro.report import render_table
from repro.sim import TraceCache

from conftest import save_output

_KERNELS = ("fmatmul", "fconv2d", "fdotproduct", "softmax")
_SIZES = (64, 128, 256)
_POINTS = len(_KERNELS) * len(_SIZES)
_PARALLEL_WORKERS = 4


def _point_key(points):
    return [(p.kernel, p.bytes_per_lane, p.interface, p.drop) for p in points]


def test_trace_reuse_cold_vs_warm(benchmark, tmp_path):
    cache = TraceCache()

    def sweep(trace_cache=cache, workers=1):
        return run_fig7(kernels=_KERNELS, bytes_per_lane=_SIZES,
                        lanes=32, scale="reduced", trace_cache=trace_cache,
                        workers=workers)

    t0 = time.perf_counter()
    cold_points = sweep()
    cold_s = time.perf_counter() - t0
    cold_stats = dict(cache.stats)

    # The pedantic round IS the warm measurement: read its wall-clock
    # back from the benchmark stats instead of timing a separate sweep.
    warm_points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    warm_s = benchmark.stats.stats.total
    warm_stats = dict(cache.stats)

    t0 = time.perf_counter()
    par_points = sweep(workers=_PARALLEL_WORKERS)
    par_s = time.perf_counter() - t0

    disk_dir = tmp_path / "trace_cache"
    disk_cold = TraceCache(disk_dir=disk_dir)
    t0 = time.perf_counter()
    sweep(trace_cache=disk_cold)
    disk_cold_s = time.perf_counter() - t0

    disk_warm = TraceCache(disk_dir=disk_dir)  # fresh memory, shared disk
    t0 = time.perf_counter()
    disk_points = sweep(trace_cache=disk_warm)
    disk_warm_s = time.perf_counter() - t0

    def row(label, seconds, stats, prev=None):
        prev = prev or {"misses": 0, "hits": 0, "disk_hits": 0}
        hits = stats["hits"] - prev["hits"]
        disk_hits = stats["disk_hits"] - prev["disk_hits"]
        lookups = hits + disk_hits + stats["misses"] - prev["misses"]
        rate = hits / lookups if lookups else 0.0
        return (label, f"{seconds * 1000:.0f} ms",
                stats["misses"] - prev["misses"], hits, disk_hits,
                f"{rate * 100:.0f}%")

    rows = [
        row("cold (capture + replay)", cold_s, cold_stats),
        row("warm (replay only)", warm_s, warm_stats, prev=cold_stats),
        row(f"warm, parallel ({_PARALLEL_WORKERS} workers)", par_s,
            dict(cache.stats), prev=warm_stats),
        row("disk cold (capture + write-through)", disk_cold_s,
            dict(disk_cold.stats)),
        row("disk warm (rehydrate + replay)", disk_warm_s,
            dict(disk_warm.stats)),
        ("speedup (warm vs cold)", f"{cold_s / warm_s:.2f}x",
         "-", "-", "-", "-"),
        ("speedup (parallel vs warm)", f"{warm_s / par_s:.2f}x",
         "-", "-", "-", "-"),
    ]
    save_output("trace_reuse", render_table(
        ("sweep", "wall-clock", "captures", "mem hits", "disk hits",
         "mem hit rate"),
        rows,
        title="Trace reuse — Fig 7 sweep "
              f"({len(_KERNELS)} kernels x {len(_SIZES)} B/lane, 32L)"))

    # Results must not depend on whether the trace was captured, reused,
    # rehydrated from disk, or replayed in worker processes.
    assert _point_key(cold_points) == _point_key(warm_points)
    assert _point_key(cold_points) == _point_key(par_points)
    assert _point_key(cold_points) == _point_key(disk_points)
    # Cold pays exactly one capture per operating point; warm pays none
    # (pure in-memory hits); the disk-warm sweep rehydrates every point
    # from disk without a single functional re-execution.
    assert cold_stats["misses"] == _POINTS
    assert warm_stats["misses"] == cold_stats["misses"]
    assert warm_stats["hits"] - cold_stats["hits"] == _POINTS
    dw = disk_warm.stats
    assert (dw["misses"], dw["hits"], dw["disk_hits"]) == (0, 0, _POINTS)
    # A warm sweep must be measurably faster than the cold one.
    assert warm_s < cold_s
