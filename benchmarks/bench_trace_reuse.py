"""Trace-cache effectiveness: cold vs warm sweep wall-clock + hit rate.

Runs the Fig 7 interface-cut sweep (the heaviest replay consumer: four
timing configurations per operating point) twice against one shared
:class:`~repro.sim.trace_cache.TraceCache`:

* **cold** — every (kernel, B/lane) point pays one functional capture;
* **warm** — every capture is a cache hit, only timing replays run.

The warm/cold ratio bounds what any further sweep over the same operating
points costs, and the hit-rate column verifies the cache keying actually
fires across the sweep.
"""

import time

from repro.eval.fig7_latency import run_fig7
from repro.report import render_table
from repro.sim import TraceCache

from conftest import save_output

_KERNELS = ("fmatmul", "fconv2d", "fdotproduct", "softmax")
_SIZES = (64, 128, 256)


def test_trace_reuse_cold_vs_warm(benchmark):
    cache = TraceCache()

    def sweep():
        return run_fig7(kernels=_KERNELS, bytes_per_lane=_SIZES,
                        lanes=32, scale="reduced", trace_cache=cache)

    t0 = time.perf_counter()
    cold_points = sweep()
    cold_s = time.perf_counter() - t0
    cold_stats = dict(cache.stats)

    warm_points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t0 = time.perf_counter()
    sweep()
    warm_s = time.perf_counter() - t0
    warm_stats = dict(cache.stats)

    rows = [
        ("cold (capture + replay)", f"{cold_s * 1000:.0f} ms",
         cold_stats["misses"], cold_stats["hits"],
         f"{cold_stats['hit_rate'] * 100:.0f}%"),
        ("warm (replay only)", f"{warm_s * 1000:.0f} ms",
         warm_stats["misses"] - cold_stats["misses"],
         warm_stats["hits"] - cold_stats["hits"],
         "100%"),
        ("speedup", f"{cold_s / warm_s:.2f}x", "-", "-", "-"),
    ]
    save_output("trace_reuse", render_table(
        ("sweep", "wall-clock", "captures", "cache hits", "hit rate"),
        rows,
        title="Trace reuse — Fig 7 sweep, cold vs warm "
              f"({len(_KERNELS)} kernels x {len(_SIZES)} B/lane, 32L)"))

    # Results must not depend on whether the trace was captured or reused.
    assert [(p.kernel, p.bytes_per_lane, p.interface, p.drop)
            for p in cold_points] == \
        [(p.kernel, p.bytes_per_lane, p.interface, p.drop)
         for p in warm_points]
    # Cold pays exactly one capture per operating point; warm pays none.
    assert cold_stats["misses"] == len(_KERNELS) * len(_SIZES)
    assert warm_stats["misses"] == cold_stats["misses"]
    # A warm sweep must be measurably faster than the cold one.
    assert warm_s < cold_s
