"""Trace-cache effectiveness: cold vs warm sweeps, disk layer, shared pool.

Runs the Fig 7 interface-cut sweep (the heaviest replay consumer: four
timing configurations per operating point) several times, each on its
own :class:`~repro.sim.parallel.SimPool` so the pool's
:class:`~repro.sim.parallel.PipelineStats` yield **per-phase wall-clock
columns** (capture seconds and replay seconds, summed over workers) —
pipeline efficiency, not just hit counts:

* **cold** — fresh memory cache: every (kernel, B/lane) point pays one
  functional capture;
* **warm** — same cache: every capture is an in-memory hit, only timing
  replays run.  This round is the one ``benchmark.pedantic`` measures,
  and ``warm_s`` is read back from the benchmark's own stats so the
  reported wall-clock is exactly the measured round;
* **warm, parallel** — same warm cache, replay jobs fanned out over a
  pool budget of ``min(4, cpu_count)`` workers (clamped so a small CI
  host measures fan-out, not oversubscription; the row label records
  the effective count);
* **cold, parallel capture** — a fresh shared store, both phases on one
  shared pool of the same clamped budget with the capture phase allowed
  to fill it (``capture_workers`` = budget) and replays streaming in
  behind.  Worker captures land in the parent store as ``remote
  puts``, keeping them distinguishable from warm hits served by
  earlier sweeps;
* **disk cold / disk warm** — a disk-backed cache written by one run and
  rehydrated by a fresh cache instance, recording the disk layer's
  write-through cost and its ``disk_hits`` accounting;
* **shared store** — the suite-wide store every other benchmark attaches
  to: operating points another bench (or a previous suite run) already
  captured are served from disk, and this sweep's captures warm the
  store for the rest of the suite.  The store's manifest summary
  (entries, bytes, entry ages, lifetime hits served) is appended to the
  table;
* **two machine specs, one capture** — two *distinct* machine specs
  (the registry's 32L-AraXL and a slow-ring variant with a different
  spec fingerprint) replay operating points the cold sweep already
  captured: machine identity never leaks into the capture key, so the
  warm cache serves both machines with **zero** new captures.

The warm/cold ratio bounds what any further sweep over the same operating
points costs, and the hit-rate column verifies the cache keying actually
fires across the sweep.  ``replay pts/s`` divides each sweep's replay
cross-product by its wall-clock — the headline throughput of the
vectorized (plan-compiled) replay path — and the store summary's
``packed entry bytes (mean)`` tracks the size of the v6 columnar disk
envelope.  The trailing ``fallbacks`` / ``retries`` /
``quarantined`` columns surface each pool's
:class:`~repro.sim.faults.FaultLog` recovery counters — asserted zero
here, so a benchmark run silently limping through recoveries (and
timing the limp) fails instead of publishing skewed numbers.
"""

import time

from repro.eval.ablations import run_knob_sweep
from repro.eval.fig7_latency import run_fig7
from repro.machine import from_spec, get_machine, machine_fingerprint
from repro.report import render_table
from repro.sim import SimPool, TraceCache, TraceStore, autodetect_workers

from conftest import save_output

_KERNELS = ("fmatmul", "fconv2d", "fdotproduct", "softmax")
_SIZES = (64, 128, 256)
_POINTS = len(_KERNELS) * len(_SIZES)
#: Replays per operating point: the baseline plus three interface cuts.
_CONFIGS_PER_POINT = 4
#: Pool budget, clamped to the *schedulable* CPUs (affinity/cgroup
#: aware): on a <=2-CPU CI box a fixed 4 would measure oversubscription
#: rather than parallel speedup.
_PARALLEL_WORKERS = min(4, autodetect_workers())


def _point_key(points):
    return [(p.kernel, p.bytes_per_lane, p.interface, p.drop) for p in points]


def test_trace_reuse_cold_vs_warm(benchmark, tmp_path, trace_store):
    cache = TraceCache()

    def sweep(trace_cache=cache, workers=1, capture_workers=1):
        """One Fig 7 run on a fresh SimPool; returns (points, pool)."""
        pool = SimPool(workers=workers, capture_workers=capture_workers,
                       cache=trace_cache)
        points = run_fig7(kernels=_KERNELS, bytes_per_lane=_SIZES,
                          lanes=32, scale="reduced", sim_pool=pool)
        return points, pool

    t0 = time.perf_counter()
    cold_points, cold_pool = sweep()
    cold_s = time.perf_counter() - t0
    cold_stats = dict(cache.stats)

    # The pedantic round IS the warm measurement: read its wall-clock
    # back from the benchmark stats instead of timing a separate sweep.
    warm_points, warm_pool = benchmark.pedantic(sweep, rounds=1,
                                                iterations=1)
    warm_s = benchmark.stats.stats.total
    warm_stats = dict(cache.stats)

    t0 = time.perf_counter()
    par_points, par_pool = sweep(workers=_PARALLEL_WORKERS)
    par_s = time.perf_counter() - t0
    par_stats = dict(cache.stats)

    # Cold again, but with the capture phase allowed to fill the shared
    # pool: a fresh store directory so every point is a genuine (worker)
    # capture.
    cap_store = TraceStore(disk_dir=tmp_path / "capture_store")
    t0 = time.perf_counter()
    cap_points, cap_pool = sweep(trace_cache=cap_store,
                                 workers=_PARALLEL_WORKERS,
                                 capture_workers=_PARALLEL_WORKERS)
    cap_s = time.perf_counter() - t0

    disk_dir = tmp_path / "trace_cache"
    disk_cold = TraceCache(disk_dir=disk_dir)
    t0 = time.perf_counter()
    _, disk_cold_pool = sweep(trace_cache=disk_cold)
    disk_cold_s = time.perf_counter() - t0

    disk_warm = TraceCache(disk_dir=disk_dir)  # fresh memory, shared disk
    t0 = time.perf_counter()
    disk_points, disk_warm_pool = sweep(trace_cache=disk_warm)
    disk_warm_s = time.perf_counter() - t0

    # The suite-wide store: reads captures other benchmarks (or earlier
    # suite runs) left behind, and warms it for whatever runs next.
    store_before = dict(trace_store.stats)
    t0 = time.perf_counter()
    store_points, store_pool = sweep(trace_cache=trace_store)
    store_s = time.perf_counter() - t0
    store_after = dict(trace_store.stats)

    # Two distinct machine *specs* — the registry's 32L-AraXL and a
    # slow-ring variant (different spec fingerprint) — replaying points
    # the cold sweep already captured on the warm in-memory cache.
    spec_machines = [
        get_machine("32L-AraXL"),
        from_spec({"family": "araxl", "lanes": 32,
                   "name": "32L-AraXL-slow-ring",
                   "interconnect": {"ring_hop_latency": 4}}),
    ]
    spec_kernels = [("fmatmul", 128, {"m": 16, "k": 64}),
                    ("fdotproduct", 256, {})]
    specs_before = dict(cache.stats)
    spec_pool = SimPool(workers=1, cache=cache)
    t0 = time.perf_counter()
    spec_rows = run_knob_sweep(spec_machines, spec_kernels,
                               sim_pool=spec_pool)
    spec_s = time.perf_counter() - t0

    def row(label, seconds, stats, pool, prev=None):
        prev = prev or {"misses": 0, "hits": 0, "disk_hits": 0,
                        "remote_puts": 0}
        hits = stats["hits"] - prev["hits"]
        disk_hits = stats["disk_hits"] - prev["disk_hits"]
        remote = stats.get("remote_puts", 0) - prev.get("remote_puts", 0)
        lookups = hits + disk_hits + stats["misses"] - prev["misses"]
        rate = hits / lookups if lookups else 0.0
        ps = pool.pipeline_stats
        faults = ps.faults
        return (label, f"{seconds * 1000:.0f} ms",
                f"{ps.capture_seconds * 1000:.0f} ms",
                f"{ps.replay_seconds * 1000:.0f} ms",
                f"{ps.replay_points / seconds:.0f}/s",
                stats["misses"] - prev["misses"], remote, hits, disk_hits,
                f"{rate * 100:.0f}%",
                faults.fallbacks, faults.retries, faults.quarantined)

    rows = [
        row("cold (capture + replay)", cold_s, cold_stats, cold_pool),
        row("warm (replay only)", warm_s, warm_stats, warm_pool,
            prev=cold_stats),
        row(f"warm, parallel ({_PARALLEL_WORKERS} workers)", par_s,
            par_stats, par_pool, prev=warm_stats),
        row(f"cold, parallel capture ({_PARALLEL_WORKERS} workers)", cap_s,
            dict(cap_store.stats), cap_pool),
        row("disk cold (capture + write-through)", disk_cold_s,
            dict(disk_cold.stats), disk_cold_pool),
        row("disk warm (rehydrate + replay)", disk_warm_s,
            dict(disk_warm.stats), disk_warm_pool),
        row("shared store (suite-wide)", store_s, store_after, store_pool,
            prev=store_before),
        row("two machine specs, one capture", spec_s, dict(cache.stats),
            spec_pool, prev=specs_before),
        ("speedup (warm vs cold)", f"{cold_s / warm_s:.2f}x",
         "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-"),
        (f"speedup (parallel x{_PARALLEL_WORKERS} vs warm)",
         f"{warm_s / par_s:.2f}x", "-", "-", "-", "-", "-", "-", "-",
         "-", "-", "-", "-"),
    ]
    table = render_table(
        ("sweep", "wall-clock", "capture work", "replay work",
         "replay pts/s", "captures", "remote puts", "mem hits",
         "disk hits", "mem hit rate", "fallbacks", "retries",
         "quarantined"),
        rows,
        title="Trace reuse — Fig 7 sweep "
              f"({len(_KERNELS)} kernels x {len(_SIZES)} B/lane, 32L)")

    ss = trace_store.store_stats
    mean_entry = (ss["disk_bytes"] / ss["disk_entries"]
                  if ss["disk_entries"] else 0.0)
    summary = render_table(
        ("entries", "bytes", "packed entry bytes (mean)", "oldest age",
         "newest age", "mem hits", "disk hits", "captures", "remote puts",
         "hits served"),
        [(ss["disk_entries"], ss["disk_bytes"], f"{mean_entry:.0f}",
          f"{ss['oldest_age_s']:.0f} s", f"{ss['newest_age_s']:.0f} s",
          ss["hits"], ss["disk_hits"], ss["misses"], ss["remote_puts"],
          ss["hits_served"])],
        title=f"Shared trace store — {ss['dir']} "
              f"(budget {ss['max_bytes'] // (1024 * 1024)} MiB)")
    save_output("trace_reuse", table + "\n\n" + summary)

    # Results must not depend on whether the trace was captured, reused,
    # rehydrated from disk, shared with other benches, or run through a
    # pooled schedule.
    assert _point_key(cold_points) == _point_key(warm_points)
    assert _point_key(cold_points) == _point_key(par_points)
    assert _point_key(cold_points) == _point_key(cap_points)
    assert _point_key(cold_points) == _point_key(disk_points)
    assert _point_key(cold_points) == _point_key(store_points)
    # Cold pays exactly one capture per operating point; warm pays none
    # (pure in-memory hits); the disk-warm sweep rehydrates every point
    # from disk without a single functional re-execution.
    assert cold_stats["misses"] == _POINTS
    assert warm_stats["misses"] == cold_stats["misses"]
    assert warm_stats["hits"] - cold_stats["hits"] == _POINTS
    dw = disk_warm.stats
    assert (dw["misses"], dw["hits"], dw["disk_hits"]) == (0, 0, _POINTS)
    # The parallel-capture sweep pays every point exactly once, split
    # between worker captures (remote puts) and any in-process
    # fallbacks (misses); a serial host (clamp = 1 worker) degenerates
    # to misses == _POINTS.
    cs = cap_store.stats
    assert cs["misses"] + cs["remote_puts"] == _POINTS
    if _PARALLEL_WORKERS > 1:
        assert cs["remote_puts"] > 0
    # Every shared-store lookup is served (memory, disk, or a capture
    # that warms the store for the next bench) — never lost.
    served = [store_after[k] - store_before[k]
              for k in ("hits", "disk_hits", "misses")]
    assert sum(served) == _POINTS
    # Per-phase accounting: every pool saw every operating point once in
    # its capture phase and the full interface cross-product in replay.
    for pool in (cold_pool, warm_pool, par_pool, cap_pool, disk_cold_pool,
                 disk_warm_pool, store_pool):
        assert pool.pipeline_stats.capture_points == _POINTS
        assert pool.pipeline_stats.replay_points \
            == _POINTS * _CONFIGS_PER_POINT
        # The fault columns are recovery counters: with no fault plan
        # active, every one of them must be zero in every sweep.
        faults = pool.pipeline_stats.faults
        assert faults.recovered_total() == 0
        assert faults.worker_crashes == 0 and faults.job_errors == 0
    # Two distinct machine-spec identities shared every capture: zero
    # new functional executions, one warm hit per kernel spec, and the
    # full machines x kernels replay cross-product (the fingerprints
    # differ, so the replay dedup must NOT conflate the two machines —
    # the slow-ring variant really produces different numbers).
    specs_after = dict(cache.stats)
    assert machine_fingerprint(spec_machines[0]) \
        != machine_fingerprint(spec_machines[1])
    assert specs_after["misses"] == specs_before["misses"]
    assert specs_after["hits"] - specs_before["hits"] == len(spec_kernels)
    assert spec_pool.pipeline_stats.replay_points \
        == len(spec_kernels) * len(spec_machines)
    assert spec_rows[0] != spec_rows[1]
    # The cold sweep's capture phase does real functional work; the warm
    # sweep's capture phase only serves cache hits.
    assert cold_pool.pipeline_stats.capture_seconds > 0.0
    assert warm_pool.pipeline_stats.replay_seconds > 0.0
    # A warm sweep must be measurably faster than the cold one.
    assert warm_s < cold_s
