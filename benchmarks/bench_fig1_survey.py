"""Fig 1 — regenerate the vector-processor survey scatter data."""

from repro.eval.survey import araxl_is_frontier, render_survey

from conftest import save_output


def test_fig1_survey(benchmark):
    text = benchmark.pedantic(render_survey, rounds=1, iterations=1)
    assert araxl_is_frontier()
    save_output("fig1_survey", text)
