"""Table I — kernel peak bounds: paper law vs model law vs measured."""

import pytest

from repro.eval.table1_kernels import PAPER_TABLE1, render_table1, run_table1

from conftest import save_output


def test_table1_bounds(benchmark, trace_store, workers, capture_workers):
    rows = benchmark.pedantic(run_table1,
                              kwargs={"scale": "reduced",
                                      "trace_cache": trace_store,
                                      "workers": workers,
                                      "capture_workers": capture_workers},
                              rounds=1, iterations=1)
    save_output("table1_kernels", render_table1(rows))
    by_name = {r.kernel: r for r in rows}
    # The model implements the paper's laws exactly.
    for kernel, ref in PAPER_TABLE1.items():
        assert by_name[kernel].model_factor == pytest.approx(
            float(ref["max_perf_factor"])), kernel
    # Measured peaks approach the bounds for the compute kernels.
    assert by_name["fmatmul"].achieved_fraction > 0.95
    assert by_name["fconv2d"].achieved_fraction > 0.90
    assert by_name["jacobi2d"].achieved_fraction > 0.90
