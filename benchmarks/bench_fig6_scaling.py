"""Fig 6 — weak-scaling performance + FPU utilization, all six kernels.

The heavyweight experiment of the paper: 6 kernels x 6 machines x 4
vector lengths.  Problem sizes use the Table I shapes with the
non-vectorized dimensions reduced (same per-point behaviour, minutes
instead of tens of minutes); acceptance checks assert the paper's
headline shapes.
"""

import pytest

from repro.eval.fig6_scaling import render_fig6, run_fig6

from conftest import save_output


@pytest.fixture(scope="module")
def fig6_points(trace_store, workers, capture_workers):
    return run_fig6(scale="reduced", trace_cache=trace_store,
                    workers=workers, capture_workers=capture_workers)


def test_fig6_full_sweep(benchmark, fig6_points):
    points = fig6_points
    text = benchmark.pedantic(lambda: render_fig6(points), rounds=1,
                              iterations=1)
    save_output("fig6_scaling", text)

    def pt(kernel, machine, bpl):
        return next(p for p in points if p.kernel == kernel
                    and p.machine == machine and p.bytes_per_lane == bpl)

    # Linear scaling for the compute-bound kernels at 512 B/lane.
    for kernel in ("fmatmul", "fconv2d", "jacobi2d", "exp"):
        assert pt(kernel, "64L-AraXL", 512).scaling_vs_8l_ara2 \
            == pytest.approx(8.0, abs=0.5), kernel
    # High utilization on the FMA kernels (paper: 99% / 97%).
    assert pt("fmatmul", "64L-AraXL", 512).utilization > 0.95
    assert pt("fconv2d", "64L-AraXL", 512).utilization > 0.90
    # Reductions scale worse (paper: 6.1x and 7.3x).
    assert 5.5 < pt("fdotproduct", "64L-AraXL", 512).scaling_vs_8l_ara2 < 7.2
    assert 7.0 < pt("softmax", "64L-AraXL", 512).scaling_vs_8l_ara2 < 8.0
    # Medium-vector regime underutilizes everywhere.
    for kernel in ("fmatmul", "exp"):
        assert pt(kernel, "64L-AraXL", 64).utilization \
            < pt(kernel, "64L-AraXL", 512).utilization


def test_fig6_fmatmul_paper_size(benchmark, trace_store, workers,
                                 capture_workers):
    """One full-size (Table I) fmatmul point as a timing reference."""
    points = benchmark.pedantic(
        lambda: run_fig6(kernels=("fmatmul",), bytes_per_lane=(512,),
                         scale="paper", trace_cache=trace_store,
                         workers=workers,
                         capture_workers=capture_workers),
        rounds=1, iterations=1)
    pt = next(p for p in points if p.machine == "64L-AraXL")
    assert pt.utilization > 0.99  # the abstract's ">99% FPU utilization"
