"""Fig 7 — latency tolerance of GLSU / REQI / RINGI register cuts."""

import pytest

from repro.eval.fig7_latency import (PAPER_FIG7_CLAIMS, max_drop, render_fig7,
                                     run_fig7)

from conftest import save_output


@pytest.fixture(scope="module")
def fig7_points(trace_store, workers, capture_workers):
    return run_fig7(scale="reduced", lanes=64, trace_cache=trace_store,
                    workers=workers, capture_workers=capture_workers)


def test_fig7_all_interfaces(benchmark, fig7_points):
    points = fig7_points
    text = benchmark.pedantic(lambda: render_fig7(points), rounds=1,
                              iterations=1)
    save_output("fig7_latency", text)

    # Long-vector regime: every interface costs < ~2% (Section IV-C).
    bound = PAPER_FIG7_CLAIMS["long_vector_drop_bound"]
    for interface in ("glsu", "reqi", "ringi"):
        drop = max_drop(points, interface, min_bytes_per_lane=512)
        assert drop <= bound + 0.02, interface

    # GLSU stays tolerable at medium vectors (paper: 1.5% max in the long
    # regime; our reduced problem sizes amortize less at 128 B/lane, so
    # the memory-bound kernels show a somewhat larger transient there).
    assert max_drop(points, "glsu", min_bytes_per_lane=128) < 0.10
    assert max_drop(points, "glsu", min_bytes_per_lane=256) < 0.04
    # REQI is the most visible cut at 128 B/lane (paper: up to 5.3%).
    assert max_drop(points, "reqi") < 0.12
    # RINGI barely registers (paper: max 1.4%).
    assert max_drop(points, "ringi", min_bytes_per_lane=128) < 0.05
