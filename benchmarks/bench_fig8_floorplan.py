"""Fig 8 — the 16-lane AraXL floorplan (plus the 64-lane hotspot)."""

import pytest

from repro.eval.fig8_floorplan import render_fig8, run_fig8

from conftest import save_output


def test_fig8_16_lane_floorplan(benchmark):
    result = benchmark.pedantic(run_fig8, kwargs={"lanes": 16}, rounds=1,
                                iterations=1)
    save_output("fig8_floorplan", render_fig8(result))
    assert result.clusters == 4
    assert result.congestion <= 1.0
    assert result.freq_ghz == pytest.approx(1.40, abs=0.01)


def test_fig8_64_lane_congestion(benchmark):
    result = benchmark.pedantic(run_fig8, kwargs={"lanes": 64}, rounds=1,
                                iterations=1)
    save_output("fig8_floorplan_64L", render_fig8(result))
    assert result.congestion > 1.0  # Section IV-D's routing hotspot
    assert result.freq_ghz == pytest.approx(1.15, abs=0.02)
