"""Fig 9 — 16-lane area breakdown, AraXL vs Ara2."""

import pytest

from repro.eval.fig9_area import PAPER_FIG9, render_fig9, run_fig9

from conftest import save_output


def test_fig9_area_breakdown(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_output("fig9_area", render_fig9(result))
    assert result.a2a_reduction == pytest.approx(
        PAPER_FIG9["a2a_reduction"], abs=0.03)
    assert result.total_reduction == pytest.approx(
        PAPER_FIG9["total_reduction"], abs=0.02)
