#!/usr/bin/env python3
"""Writing your own long-vector kernel against the public API.

Computes the exponential-normalizer of a long vector — z = exp(clamp(x))
and sum(z) — reusing the library's exp pipeline building block, with a
handful of poisoned (+inf) inputs to show the clamping path, on a
32-lane AraXL.  Demonstrates: the assembler DSL, reusing kernel building
blocks (:func:`emit_exp_body`), reductions, and a NumPy cross-check.
"""

import numpy as np

from repro import Assembler, AraXLConfig, Simulator
from repro.kernels.expk import EXP_CONSTS, emit_exp_body, emit_exp_consts


def main() -> None:
    config = AraXLConfig(lanes=32)
    sim = Simulator(config)
    n = config.vlmax(64, lmul=1)  # one full register of DP elements
    rng = np.random.default_rng(1)
    x = rng.uniform(-6.0, 6.0, n)
    x[::97] = np.inf  # poisoned entries; the exp clamp must absorb them

    x_addr = 0
    z_addr = n * 8
    consts_addr = 2 * n * 8
    sum_addr = consts_addr + len(EXP_CONSTS) * 8
    sim.mem.write_array(x_addr, x)
    sim.mem.write_array(consts_addr, np.array(EXP_CONSTS))

    asm = Assembler("exp_normalizer")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=1)
    emit_exp_consts(asm, consts_addr)
    asm.li("x21", 1023)  # exponent bias for the scale construction
    asm.li("x5", x_addr)
    asm.li("x6", z_addr)
    asm.li("x7", sum_addr)
    asm.vle64_v("v0", "x5")
    # The exp body clamps its input (vfmin/vfmax), so the +inf entries
    # saturate to exp(clamp_hi) instead of producing NaNs downstream.
    result = emit_exp_body(asm, lmul=1)
    asm.vse64_v(result, "x6")
    asm.vmv_s_x("v29", "x0")                  # zero seed
    asm.vfredusum_vs("v28", result, "v29")    # sum of all exponentials
    asm.vfmv_f_s("f1", "v28")
    asm.fsd("f1", "x7", 0)
    asm.halt()

    run = sim.run(asm.build())
    z = sim.mem.read_array(z_addr, n, np.float64)
    total = sim.mem.load_f64(sum_addr)

    golden = np.exp(np.clip(x, EXP_CONSTS[1], EXP_CONSTS[0]))
    finite = np.isfinite(x)
    assert np.allclose(z[finite], golden[finite], rtol=1e-5)
    assert np.isclose(total, z.sum(), rtol=1e-9)

    print(f"n = {n} elements on {config.name}")
    print(f"cycles          : {run.cycles:.0f}")
    print(f"DP-FLOP/cycle   : {run.flops_per_cycle:.1f}")
    print(f"exp sum         : {total:.6e}")
    print("functional check: OK (clamped exp matches NumPy)")


if __name__ == "__main__":
    main()
