#!/usr/bin/env python3
"""A machine defined purely as data: load a YAML spec, run a kernel.

Loads ``examples/custom_machine.yaml`` (a toy 4-lane single-cluster
AraXL with a slow L2) through the :mod:`repro.machine` spec layer, runs
``fmatmul`` on it through the same capture/replay pipeline as the paper
sweeps, and shows the capture being *shared* with a builtin machine:
the toy spec and the builtin 4L-Ara2 have the same VLEN, so the second
machine replays the first machine's trace without a new capture.

Run from the repository root::

    PYTHONPATH=src python examples/custom_machine.py
"""

from pathlib import Path

from repro.machine import get_machine, to_spec
from repro.params import Ara2Config
from repro.eval.ablations import run_knob_sweep
from repro.sim import SimPool, TraceCache

SPEC_PATH = Path(__file__).resolve().parent / "custom_machine.yaml"


def main() -> None:
    toy = get_machine(str(SPEC_PATH))
    builtin = Ara2Config(lanes=4)
    spec = to_spec(toy)
    print(f"loaded {spec!r}")
    print(f"  VLEN = {toy.vlen_bits} bit "
          f"(same as builtin {builtin.name}: {builtin.vlen_bits} bit)")

    # One shared pool: the kernel is captured once (the capture key is
    # machine-independent) and replayed on both machines.
    pool = SimPool(workers=1, cache=TraceCache())
    rows = run_knob_sweep([toy, builtin],
                          [("fmatmul", 128, {"m": 16, "k": 64})],
                          sim_pool=pool)
    stats = pool.pipeline_stats
    print(f"  captures executed: {stats.capture_points} "
          f"(shared by {stats.replay_points} replays)")
    for config, row in zip((toy, builtin), rows):
        print(f"  {config.name:12s} fmatmul utilization: {row[0] * 100:.1f}%")
    assert stats.capture_points == 1, "expected one shared capture"


if __name__ == "__main__":
    main()
