#!/usr/bin/env python3
"""Quickstart: write a vector program, run it on AraXL, read the numbers.

Builds a DAXPY (y = a*x + y) over 2048 double-precision elements, runs it
functionally + cycle-level on a 16-lane AraXL, verifies the result, and
prints the timing report.
"""

import numpy as np

from repro import Assembler, AraXLConfig, Simulator


def main() -> None:
    config = AraXLConfig(lanes=16)
    sim = Simulator(config)

    n = 2048
    x_addr, y_addr = 0, n * 8
    x = np.linspace(-1.0, 1.0, n)
    y = np.ones(n)
    sim.mem.write_array(x_addr, x)
    sim.mem.write_array(y_addr, y)
    sim.state.f.write(1, 3.0)  # a = 3.0

    asm = Assembler("daxpy")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=8)  # VLMAX(64,8) = 2048 on 16 lanes
    asm.li("x5", x_addr)
    asm.li("x6", y_addr)
    asm.vle64_v("v8", "x5")           # v8 <- x
    asm.vle64_v("v16", "x6")          # v16 <- y
    asm.vfmacc_vf("v16", "f1", "v8")  # y += a * x
    asm.vse64_v("v16", "x6")
    asm.halt()

    result = sim.run(asm.build())

    got = sim.mem.read_array(y_addr, n, np.float64)
    assert np.allclose(got, 3.0 * x + 1.0), "DAXPY result mismatch"

    print(f"machine        : {config.name} (VLEN = {config.vlen_bits} bit)")
    print(f"cycles         : {result.cycles:.0f}")
    print(f"DP-FLOP        : {result.dp_flops:.0f}")
    print(f"DP-FLOP/cycle  : {result.flops_per_cycle:.2f} "
          f"(peak {config.peak_dp_flops_per_cycle})")
    print()
    print(result.timing.summary())


if __name__ == "__main__":
    main()
