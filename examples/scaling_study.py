#!/usr/bin/env python3
"""Weak-scaling study: reproduce the Fig 6 story for one kernel.

Runs the chosen kernel (default fmatmul) across all paper machine
configurations and vector lengths, printing the scaling bars and
utilization lines that make up one Fig 6 panel.

Usage:  python examples/scaling_study.py [kernel]
"""

import sys

from repro.eval.fig6_scaling import run_fig6, render_fig6
from repro.kernels import KERNELS
from repro.report import bar_chart


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "fmatmul"
    if kernel not in KERNELS:
        raise SystemExit(f"unknown kernel {kernel!r}; pick from "
                         f"{sorted(KERNELS)}")

    print(f"Running the Fig 6 sweep for {kernel} (reduced problem sizes)...")
    points = run_fig6(kernels=(kernel,), scale="reduced")
    print()
    print(render_fig6(points))
    print()

    # The bar view of the 512 B/lane column.
    at_512 = [p for p in points if p.bytes_per_lane == 512]
    print(bar_chart([p.machine for p in at_512],
                    [p.scaling_vs_8l_ara2 for p in at_512],
                    title=f"{kernel} @ 512 B/lane — performance vs 8L-Ara2",
                    unit="x"))


if __name__ == "__main__":
    main()
