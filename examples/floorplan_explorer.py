#!/usr/bin/env python3
"""Explore AraXL floorplans and the congestion-frequency trade-off.

Renders the Fig 8-style floorplan for each configuration and shows how
strait congestion grows until it costs the 64-lane design its frequency
(Section IV-D), alongside the Table II area scaling.

Usage:  python examples/floorplan_explorer.py [lanes ...]
"""

import sys

from repro.eval.fig8_floorplan import render_fig8, run_fig8
from repro.ppa import araxl_area
from repro.report import render_table


def main() -> None:
    lane_counts = [int(v) for v in sys.argv[1:]] or [16, 32, 64]
    rows = []
    for lanes in lane_counts:
        result = run_fig8(lanes=lanes)
        print(render_fig8(result))
        print()
        area = araxl_area(lanes)
        rows.append((f"{lanes}L", f"{area.total_kge:,.0f}",
                     f"{area.total_mm2:.2f}",
                     f"{result.congestion:.2f}",
                     f"{result.freq_ghz:.2f}"))
    print(render_table(
        ("config", "area [kGE]", "area [mm2]", "congestion", "fmax [GHz]"),
        rows, title="Scaling summary (congestion > 1 costs frequency)"))


if __name__ == "__main__":
    main()
