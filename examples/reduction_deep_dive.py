#!/usr/bin/env python3
"""Why reductions scale worst — and how long vectors fix them.

Walks through the four reduction phases (intra-lane, inter-lane,
inter-cluster ring tree, SIMD) for growing machines, then shows the
Section IV-B remedy: strip-mining a 16384 B/lane dot product so the
config-dependent tree amortizes (paper: 6.1x -> 7.6x on 64 lanes).
"""

from repro.kernels import KERNELS, build_fdotproduct_strips
from repro.params import Ara2Config, AraXLConfig
from repro.report import render_table
from repro.uarch import build_model


def main() -> None:
    rows = []
    for lanes in (8, 16, 32, 64):
        cfg = AraXLConfig(lanes=lanes)
        model = build_model(cfg)
        rows.append((cfg.name, cfg.clusters,
                     f"{model.reduction_tail_cycles(64):.0f}"))
    print(render_table(
        ("machine", "clusters", "reduction tail [cycles]"), rows,
        title="Configuration-dependent reduction tail (inter-lane + ring "
              "tree + writeback)"))
    print()

    base_cfg = Ara2Config(lanes=8)
    base = KERNELS["fdotproduct"](base_cfg, 512)
    base_perf = base.run(base_cfg, verify=False).flops_per_cycle

    cfg = AraXLConfig(lanes=64)
    short = KERNELS["fdotproduct"](cfg, 512)
    short_res = short.run(cfg, verify=False)

    long_base = build_fdotproduct_strips(base_cfg, 1024, strips=16)
    long_base_perf = long_base.run(base_cfg, verify=False).flops_per_cycle
    long = build_fdotproduct_strips(cfg, 1024, strips=16)
    long_res = long.run(cfg, verify=False)

    print("fdotproduct on 64L AraXL (scaling vs 8L Ara2 at equal B/lane):")
    print(f"  512 B/lane, one strip      : "
          f"{short_res.flops_per_cycle / base_perf:.2f}x  "
          f"(util {short.utilization(short_res) * 100:.0f}%)   paper: 6.1x")
    print(f"  16384 B/lane, 16 strips    : "
          f"{long_res.flops_per_cycle / long_base_perf:.2f}x  "
          f"(util {long.utilization(long_res) * 100:.0f}%)   paper: 7.6x")
    print()
    print("The tree costs the same cycles regardless of vector length, so")
    print("longer vectors amortize it — the core bet of the AraXL design.")


if __name__ == "__main__":
    main()
