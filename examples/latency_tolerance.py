#!/usr/bin/env python3
"""Latency tolerance (Fig 7): how much do interface register cuts cost?

Adds the Fig 5 register cuts (GLSU +4, REQI +1, RINGI +1) one at a time
on a 64-lane AraXL and reports the FPU-utilization drop per kernel and
vector length — the experiment behind the paper's claim that long
vectors make the physically friendly (deeper) interconnects free.
"""

from repro.eval.fig7_latency import max_drop, render_fig7, run_fig7


def main() -> None:
    print("Running Fig 7 register-cut sweeps on 64L-AraXL "
          "(reduced problem sizes)...\n")
    points = run_fig7(scale="reduced", lanes=64)
    print(render_fig7(points))
    print()
    for interface, paper in (("glsu", "1.5%"), ("reqi", "5.3%"),
                             ("ringi", "1.4%")):
        drop = max_drop(points, interface, min_bytes_per_lane=512)
        print(f"{interface.upper():6s} max drop @512 B/lane: "
              f"{drop * 100:4.1f}%   (paper's annotated max: {paper})")


if __name__ == "__main__":
    main()
