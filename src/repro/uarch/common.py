"""Shared machine-model interface consumed by the timing engine.

A :class:`MachineModel` answers "how fast / how late" questions for one
machine instance.  Both microarchitectures share the lane datapath (one
64-bit FPU+ALU per lane) — they differ in the interconnects, which is
precisely the paper's point — so the common rates live here and the
subclasses override the interface-dependent quantities.

Every quantity a model returns is read from a named field of the
machine's configuration (equivalently, of its declarative
:class:`~repro.machine.MachineSpec`): this module contains *laws*
(how fields combine), never latency constants of its own.
"""

from __future__ import annotations

import math

from ..isa.instructions import MemPattern
from ..params import SystemConfig


class MachineModel:
    """Base class; see :class:`Ara2Model` and :class:`AraXLModel`."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.config.name

    @property
    def lanes(self) -> int:
        return self.config.lanes

    # ------------------------------------------------------------------
    # Lane datapath (shared)
    # ------------------------------------------------------------------
    def vfu_rate(self, sew: int) -> float:
        """Elements/cycle across all lanes (one lane-width word per lane
        per cycle, SIMD-packed below the lane width)."""
        return self.lanes * (self.config.lane_width_bits / sew)

    def sldu_rate(self, sew: int) -> float:
        """Local slide shuffle throughput (one lane word/lane/cycle)."""
        return self.lanes * (self.config.lane_width_bits / sew)

    def masku_bit_rate(self) -> float:
        """Mask-layout operations process this many mask bits per cycle."""
        return self.lanes * float(self.config.lane_width_bits)

    @property
    def fpu_latency(self) -> int:
        return self.config.fpu_latency

    @property
    def valu_latency(self) -> int:
        return self.config.valu_latency

    @property
    def sldu_latency(self) -> int:
        """Local shuffle pipeline depth of the slide unit."""
        return self.config.sldu_latency

    @property
    def masku_latency(self) -> int:
        return self.config.masku_latency

    @property
    def dispatch_latency(self) -> int:
        return self.config.dispatch_latency

    @property
    def unit_queue_depth(self) -> int:
        return self.config.unit_queue_depth

    @property
    def vsetvli_cycles(self) -> int:
        """CVA6-visible cost of reconfiguring the vector unit."""
        return self.config.vsetvli_cycles

    # ------------------------------------------------------------------
    # Memory rates (bandwidths shared; latencies are interface-specific)
    # ------------------------------------------------------------------
    def mem_rate(self, pattern: MemPattern, ew_bytes: int,
                 is_store: bool) -> float:
        """Elements/cycle sustainable for a given access pattern."""
        if pattern in (MemPattern.UNIT, MemPattern.MASK):
            bw = (self.config.mem_write_bytes_per_cycle if is_store
                  else self.config.mem_read_bytes_per_cycle)
            return bw / ew_bytes
        if pattern is MemPattern.STRIDED:
            return self.strided_elems_per_cycle
        return self.indexed_elems_per_cycle

    # ------------------------------------------------------------------
    # Interface-specific hooks (overridden)
    # ------------------------------------------------------------------
    @property
    def request_latency(self) -> int:
        raise NotImplementedError

    @property
    def issue_gap(self) -> float:
        raise NotImplementedError

    @property
    def scalar_result_latency(self) -> int:
        raise NotImplementedError

    @property
    def load_first_data_latency(self) -> int:
        raise NotImplementedError

    @property
    def store_pipe_latency(self) -> int:
        raise NotImplementedError

    @property
    def strided_elems_per_cycle(self) -> float:
        raise NotImplementedError

    @property
    def indexed_elems_per_cycle(self) -> float:
        raise NotImplementedError

    def slide_extra_cycles(self, amount: int, vl: int) -> float:
        """Total pipeline latency of a slide (local shuffle + interconnect).

        This is the delay between a source element entering the SLDU and
        the corresponding destination element becoming consumable; it does
        not affect throughput (the ring's 64 bit/cycle per direction
        matches the one-boundary-element-per-lane-block export rate of
        slide-by-1).
        """
        raise NotImplementedError

    def reduction_tail_cycles(self, sew: int) -> float:
        """Fixed cycles after the intra-lane phase of a reduction."""
        raise NotImplementedError

    def simd_reduction_cycles(self, sew: int) -> float:
        """Final SIMD stage: fold sub-lane-width elements inside a word."""
        width = self.config.lane_width_bits
        steps = int(math.log2(width // sew)) if sew < width else 0
        return steps * self.fpu_latency
