"""RINGI — the Ring Interface (Section III-B-4, Fig 4).

Adjacent clusters' SLDUs are joined in a bidirectional ring carrying
64 bits/cycle per direction.  Slide-by-1 moves one boundary element per
cluster to the neighbour; larger slides take multiple transfers or
multi-hop bypasses; inter-cluster reduction runs a log-tree whose later
steps cross doubling hop distances.  Extra register cuts add one cycle to
every hop (the Fig 5/7 "+1 register" experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RingiModel:
    """Ring interconnect timing: per-hop latency law."""
    clusters: int
    hop_latency: int = 2
    extra_regs: int = 0

    @property
    def hop_cycles(self) -> int:
        return self.hop_latency + self.extra_regs

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two clusters on the bidirectional ring."""
        d = abs(dst - src) % self.clusters
        return min(d, self.clusters - d)

    # ------------------------------------------------------------------
    # Slides
    # ------------------------------------------------------------------
    def slide_cross_elems(self, amount: int, vl: int) -> int:
        """Elements each cluster must export for a slide of ``amount``.

        For slide-by-1 exactly one boundary element crosses per cluster
        boundary; for larger amounts up to a whole cluster's share of the
        vector crosses (then the transfer is a bypass of whole chunks).
        """
        if self.clusters <= 1 or vl == 0:
            return 0
        per_cluster = max(1, math.ceil(vl / self.clusters))
        return min(max(amount, 0), per_cluster)

    def slide_latency(self, amount: int, vl: int) -> float:
        """Extra cycles a slide pays for ring traversal.

        The boundary elements ride the ring at 1 element/cycle/direction,
        pipelined with the local shuffle, so the visible penalty is the
        hop latency plus the serialization of the crossing elements.
        Slides larger than a cluster's share travel extra hops.
        """
        if self.clusters <= 1 or vl == 0 or amount == 0:
            return 0.0
        per_cluster = max(1, math.ceil(vl / self.clusters))
        hops = 1 + min(self.clusters - 1, (amount - 1) // per_cluster)
        crossing = self.slide_cross_elems(amount, vl)
        return hops * self.hop_cycles + (crossing - 1)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @property
    def reduction_steps(self) -> int:
        return int(math.log2(self.clusters)) if self.clusters > 1 else 0

    def reduction_ring_cycles(self, op_latency: float) -> float:
        """Inter-cluster log-tree time (Section III-B-4).

        Step ``k`` of the tree moves partial results across ``2**k`` hops
        and then spends ``op_latency`` combining them; total ring distance
        is therefore C-1 hops.
        """
        if self.clusters <= 1:
            return 0.0
        hops_total = self.clusters - 1  # sum of 2**k for k < log2(C)
        return hops_total * self.hop_cycles + self.reduction_steps * op_latency
