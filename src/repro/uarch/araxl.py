"""AraXL timing model (Section III).

Clusters of 4 lanes, each a streamlined Ara2 instance, joined by:

* :class:`~repro.uarch.reqi.ReqiModel` — instruction broadcast + ack;
* :class:`~repro.uarch.glsu.GlsuModel` — pipelined align/addrgen/shuffle
  path to L2 (replaces the A2A byte network of Ara2's VLSU);
* :class:`~repro.uarch.ringi.RingiModel` — ring between adjacent SLDUs
  for slides and the inter-cluster reduction stage.

Every latency here is longer than Ara2's — deliberately.  The architecture
bets that long vectors hide latency, and the Fig 6/7 experiments verify
the bet.
"""

from __future__ import annotations

import math

from ..params import AraXLConfig
from .common import MachineModel
from .glsu import GlsuModel
from .reqi import ReqiModel
from .ringi import RingiModel


class AraXLModel(MachineModel):
    """AraXL machine model: clusters joined by REQI/GLSU/RINGI."""
    def __init__(self, config: AraXLConfig) -> None:
        if not isinstance(config, AraXLConfig):
            raise TypeError("AraXLModel requires an AraXLConfig")
        super().__init__(config)
        self.reqi = ReqiModel(
            broadcast_latency=config.reqi_broadcast_latency,
            extra_regs=config.reqi_extra_regs,
            ack_base_latency=config.reqi_ack_base_latency,
            issue_base_gap=config.reqi_issue_base_gap,
        )
        self.glsu = GlsuModel(
            clusters=config.clusters,
            lanes_per_cluster=config.lanes_per_cluster,
            base_stages=config.glsu_base_stages,
            extra_regs=config.glsu_extra_regs,
        )
        self.ringi = RingiModel(
            clusters=config.clusters,
            hop_latency=config.ring_hop_latency,
            extra_regs=config.ringi_extra_regs,
        )

    @property
    def clusters(self) -> int:
        return self.config.clusters

    # ------------------------------------------------------------------
    # Issue path through REQI
    # ------------------------------------------------------------------
    @property
    def request_latency(self) -> int:
        return self.reqi.request_latency

    @property
    def issue_gap(self) -> float:
        return float(self.reqi.issue_gap)

    @property
    def scalar_result_latency(self) -> int:
        return self.reqi.scalar_result_latency

    # ------------------------------------------------------------------
    # Memory through the GLSU pipeline
    # ------------------------------------------------------------------
    @property
    def load_first_data_latency(self) -> int:
        return self.glsu.first_data_latency(self.config.memory.l2_latency_cycles)

    @property
    def store_pipe_latency(self) -> int:
        return self.glsu.store_latency()

    @property
    def strided_elems_per_cycle(self) -> float:
        # Each cluster VLSU emits one element request per address
        # generator per cycle; the GLSU addrgen merges them.  (The paper
        # only promises "lower throughput" for these patterns.)
        return float(self.config.strided_addrgens_per_cluster
                     * self.clusters)

    @property
    def indexed_elems_per_cycle(self) -> float:
        return self.strided_elems_per_cycle \
            * self.config.indexed_throughput_factor

    # ------------------------------------------------------------------
    # Slides over the ring
    # ------------------------------------------------------------------
    def slide_extra_cycles(self, amount: int, vl: int) -> float:
        return self.sldu_latency + self.ringi.slide_latency(amount, vl)

    # ------------------------------------------------------------------
    # Reductions: intra-lane, inter-lane (in-cluster), inter-cluster
    # (ring log-tree), SIMD stage.
    # ------------------------------------------------------------------
    def reduction_tail_cycles(self, sew: int) -> float:
        lanes_pc = self.config.lanes_per_cluster
        inter_lane_steps = int(math.log2(lanes_pc)) if lanes_pc > 1 else 0
        per_step = self.fpu_latency + self.sldu_latency
        ring = self.ringi.reduction_ring_cycles(
            self.fpu_latency + self.config.ring_reduction_op_overhead)
        return inter_lane_steps * per_step + ring \
            + self.simd_reduction_cycles(sew) \
            + self.config.reduction_writeback_cycles
