"""GLSU — the Global Load-Store Unit (Section III-B-3, Fig 3).

The GLSU sits between the clusters' local VLSUs and the L2, implementing
the memory-to-VRF byte mapping in a *multi-level pipeline* instead of
Ara2's single-cycle all-to-all network:

* **Align** removes the misalignment of the request with power-of-2 shift
  levels over the memory bus (log2 of the bus width in 64-bit words);
* **Addrgen** splits requests and converts bandwidth;
* **Shuffle** distributes aligned data to the right cluster per the
  element-to-cluster mapping, again in log2(C) levels.

Each level is register-guarded, so the round-trip latency grows with the
cluster count — which the latency tolerance of long vectors absorbs.  The
Fig 5/7 experiment adds 4 extra registers, +8 cycles request-to-response.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GlsuModel:
    """Global load/store unit timing: pipeline depth per configuration."""
    clusters: int
    lanes_per_cluster: int
    base_stages: int = 3  # addrgen + request/response handshake registers
    extra_regs: int = 0

    @property
    def align_levels(self) -> int:
        """Power-of-2 shift levels across the memory bus."""
        bus_words = max(1, self.clusters * self.lanes_per_cluster)
        return max(1, int(math.ceil(math.log2(bus_words))))

    @property
    def shuffle_levels(self) -> int:
        """Levels of the cluster-distribution network."""
        return max(1, int(math.ceil(math.log2(max(2, self.clusters)))))

    @property
    def pipeline_depth(self) -> int:
        """One-way pipeline stages between a cluster VLSU and the L2 port."""
        return self.base_stages + self.align_levels + self.shuffle_levels \
            + self.extra_regs

    @property
    def round_trip_extra(self) -> int:
        """Request-to-response cycles added on top of the raw L2 latency.

        Extra register cuts appear on both the request and response paths,
        hence the paper's "+4 registers -> +8 cycles".
        """
        return self.pipeline_depth + self.extra_regs

    def first_data_latency(self, l2_latency: int) -> int:
        """Load issue to first data beat landing in a cluster VLSU."""
        return l2_latency + self.round_trip_extra

    def store_latency(self) -> int:
        """Store data path latency (posted writes: only the pipe depth)."""
        return self.pipeline_depth
