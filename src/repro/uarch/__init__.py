"""Microarchitectural timing models: Ara2 baseline and AraXL.

Each model turns a :class:`~repro.params.SystemConfig` into the set of
latencies, rates and overheads the timing engine consults.  The three
AraXL interfaces have dedicated sub-models (:mod:`repro.uarch.glsu`,
:mod:`repro.uarch.reqi`, :mod:`repro.uarch.ringi`) mirroring Section III
of the paper.
"""

from ..params import Ara2Config, AraXLConfig
from .common import MachineModel
from .ara2 import Ara2Model
from .araxl import AraXLModel
from .glsu import GlsuModel
from .reqi import ReqiModel
from .ringi import RingiModel


def build_model(config) -> MachineModel:
    """Construct the right timing model for a configuration object."""
    if isinstance(config, AraXLConfig):
        return AraXLModel(config)
    if isinstance(config, Ara2Config):
        return Ara2Model(config)
    raise TypeError(f"no timing model for {type(config).__name__}")


__all__ = [
    "MachineModel",
    "Ara2Model",
    "AraXLModel",
    "GlsuModel",
    "ReqiModel",
    "RingiModel",
    "build_model",
]
