"""REQI — the Request Interface (Section III-B-1).

CVA6 broadcasts each vector instruction to every cluster; cluster-0 sends
the acknowledgement (and scalar results / exceptions) back.  The interface
is a pipelined broadcast tree whose register cuts trade issue latency for
timing closure; the Fig 5/7 experiment adds one extra register, delaying
the acknowledgement by 2 cycles (one on the way out, one on the way back).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReqiModel:
    """Timing of the CVA6-to-clusters request broadcast."""

    broadcast_latency: int = 2  # CVA6 -> all clusters
    extra_regs: int = 0
    #: Answer-path latency with no extra register cuts.
    ack_base_latency: int = 1
    #: Issue round-trip floor (one cycle out + one back) with no cuts.
    issue_base_gap: int = 2

    @property
    def request_latency(self) -> int:
        """Cycles from CVA6 issue to cluster dispatchers seeing the op."""
        return self.broadcast_latency + self.extra_regs

    @property
    def ack_latency(self) -> int:
        """Cycles from cluster acceptance back to CVA6.

        With no extra registers the answer path is ``ack_base_latency``
        cycles; every extra register adds one cycle in each direction,
        matching the paper's "acknowledged back to CVA6 2 cycles later"
        for +1 register.
        """
        return self.ack_base_latency + self.extra_regs

    @property
    def issue_gap(self) -> int:
        """Minimum cycles between two vector instruction issues.

        CVA6 cannot issue the next vector instruction before the previous
        one is acknowledged: out + back, each lengthened by one cycle per
        extra register cut.
        """
        return self.extra_regs * 2 + self.issue_base_gap

    @property
    def scalar_result_latency(self) -> int:
        """Vector-to-scalar results ride the same answer path."""
        return self.request_latency + self.ack_latency
