"""Ara2 baseline timing model [13].

The lumped design: one sequencer, one VLSU/SLDU/MASKU, all-to-all
single-cycle byte networks between the memory interface and the lanes.
That makes every latency short — and every wire long, which is why the
PPA model (not this file) charges Ara2 quadratic area in the A2A units
and a lower achievable frequency at high lane counts.
"""

from __future__ import annotations

import math

from ..params import Ara2Config
from .common import MachineModel


class Ara2Model(MachineModel):
    """Lumped Ara2 baseline machine model (single-cluster timing laws)."""
    def __init__(self, config: Ara2Config) -> None:
        if not isinstance(config, Ara2Config):
            raise TypeError("Ara2Model requires an Ara2Config")
        super().__init__(config)

    # ------------------------------------------------------------------
    # Issue path: CVA6 talks to the single dispatcher directly.
    # ------------------------------------------------------------------
    @property
    def request_latency(self) -> int:
        return self.config.accelerator_ack_latency

    @property
    def issue_gap(self) -> float:
        return float(self.config.issue_gap_cycles)

    @property
    def scalar_result_latency(self) -> int:
        return self.config.scalar_result_latency

    # ------------------------------------------------------------------
    # Memory: single-cycle A2A align+shuffle inside the VLSU.
    # ------------------------------------------------------------------
    @property
    def load_first_data_latency(self) -> int:
        return self.config.memory.l2_latency_cycles \
            + self.config.vlsu_pipe_latency

    @property
    def store_pipe_latency(self) -> int:
        return self.config.store_pipe_latency

    @property
    def strided_elems_per_cycle(self) -> float:
        # One element per address generator per cycle.
        return float(self.config.strided_addrgens)

    @property
    def indexed_elems_per_cycle(self) -> float:
        return self.strided_elems_per_cycle \
            * self.config.indexed_throughput_factor

    # ------------------------------------------------------------------
    # Slides: the lumped SLDU shuffles all lanes in one step.
    # ------------------------------------------------------------------
    def slide_extra_cycles(self, amount: int, vl: int) -> float:
        return float(self.sldu_latency)

    # ------------------------------------------------------------------
    # Reductions: intra-lane, inter-lane (log tree via SLDU), SIMD.
    # ------------------------------------------------------------------
    def reduction_tail_cycles(self, sew: int) -> float:
        inter_lane_steps = int(math.log2(self.lanes)) if self.lanes > 1 else 0
        per_step = self.fpu_latency + self.sldu_latency
        return inter_lane_steps * per_step + self.simd_reduction_cycles(sew) \
            + self.config.reduction_writeback_cycles
