"""Registry of every ``REPRO_*`` environment variable the suite reads.

One module is the single source of truth for environment knobs: their
names, what they control, and their defaults.  Everything follows from
that:

* **Reads go through** :func:`read_env` — the only place in ``src/``
  allowed to touch ``os.environ`` (enforced by the ``RL501`` lint rule,
  see ``docs/static-analysis.md``).  Reading an unregistered name is a
  programming error and raises immediately, so a new knob cannot ship
  without a registry entry.
* **Docs are generated** — the knob table in ``docs/trace-store.md`` is
  rendered by :func:`knob_table` and pinned by a test, so the table can
  never drift from the code.

Resolution order for every knob is always explicit argument →
environment variable → default; this module only owns the middle step.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

#: Environment variable naming the shared trace-store directory.
ENV_STORE_DIR = "REPRO_TRACE_STORE"

#: Environment variable naming the trace-store GC byte budget.
ENV_STORE_BYTES = "REPRO_TRACE_STORE_BYTES"

#: Environment variable holding a fault-injection plan spec string.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Environment variable setting the fuzz property-harness seed count.
ENV_FUZZ_SEEDS = "REPRO_FUZZ_SEEDS"


@dataclass(frozen=True)
class EnvKnob:
    """One suite knob: its env var (if any), CLI spelling, and default.

    ``env`` is ``None`` for CLI-only knobs — they appear in the
    generated docs table (which documents *knobs*, not just variables)
    but register no environment name.
    """

    knob: str                 #: Human label, e.g. "Store directory".
    cli: str                  #: CLI flag spelling(s), or "—".
    env: Optional[str]        #: Environment variable name, or None.
    default: str              #: Default, described for the docs table.
    section: str              #: Docs grouping ("store" | "faults").


#: Every knob, in the order the docs table presents them.
KNOBS: tuple[EnvKnob, ...] = (
    EnvKnob(knob="Store directory",
            cli="`--trace-store DIR` (CLI and `pytest benchmarks/`)",
            env=ENV_STORE_DIR,
            default="`benchmarks/out/trace_cache` (benchmark suite); "
                    "*no store* (CLI)",
            section="store"),
    EnvKnob(knob="GC byte budget",
            cli="`--store-bytes BYTES`",
            env=ENV_STORE_BYTES,
            default="256 MiB",
            section="store"),
    EnvKnob(knob="Run GC",
            cli="`--gc`",
            env=None,
            default="benchmark suite GCs once per session",
            section="store"),
    EnvKnob(knob="Manifest summary",
            cli="`--store-stats`",
            env=None,
            default="off",
            section="store"),
    EnvKnob(knob="Fault injection plan",
            cli="—",
            env=ENV_FAULT_PLAN,
            default="no injected faults",
            section="faults"),
    EnvKnob(knob="Fuzz seed count",
            cli="`--seeds N` (CLI `fuzz`); `--fuzz-seeds N` (pytest)",
            env=ENV_FUZZ_SEEDS,
            default="8 (pytest tier-1); 25 (CLI)",
            section="fuzz"),
)

#: Registered environment-variable names -> their knob entries.
ENV_VARS: dict[str, EnvKnob] = {k.env: k for k in KNOBS if k.env}


def read_env(name: str,
             environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Value of registered env var ``name``, or ``None`` when unset.

    ``environ`` substitutes for ``os.environ`` (tests inject mappings).
    Reading a name missing from :data:`ENV_VARS` raises ``KeyError`` —
    register the knob here first, so the generated docs stay complete.
    """
    if name not in ENV_VARS:
        raise KeyError(
            f"environment variable {name!r} is not registered in "
            f"repro.env.KNOBS; declare it there (the docs knob table "
            f"is generated from the registry)")
    env = os.environ if environ is None else environ
    return env.get(name)


def knob_table(section: str) -> str:
    """Markdown knob table for one docs section (pinned by tests).

    The exact text is embedded in ``docs/trace-store.md``; the pinning
    test re-renders this and asserts the doc contains it verbatim.
    """
    lines = ["| Knob | CLI | Environment | Default |",
             "| --- | --- | --- | --- |"]
    for k in KNOBS:
        if k.section != section:
            continue
        env = f"`{k.env}`" if k.env else "—"
        lines.append(f"| {k.knob} | {k.cli} | {env} | {k.default} |")
    return "\n".join(lines)
