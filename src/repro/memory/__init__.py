"""Memory-system substrate: AXI-like port, banked L2, caches, coherence.

These models back the machine-level memory parameters: the GLSU talks to
the L2 through an :class:`~repro.memory.axi.AxiPort`, the scalar core's
D$ timing lives in :mod:`repro.timing.frontend`, and the invalidation
filter of Fig 2 keeps CVA6's caches coherent with vector stores.
"""

from .axi import AxiPort, AxiBurst, split_into_bursts
from .l2 import BankedL2
from .cache import DirectMappedCache
from .invalidation import InvalidationFilter

__all__ = [
    "AxiPort",
    "AxiBurst",
    "split_into_bursts",
    "BankedL2",
    "DirectMappedCache",
    "InvalidationFilter",
]
