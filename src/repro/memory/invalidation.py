"""CVA6 cache invalidation filter (Fig 2).

Vector stores bypass CVA6's write-back D$, so AraXL places an
invalidation filter between the GLSU write path and the scalar core: the
write address of every vector store probes a coarse set of line tags and
invalidates matching D$ lines, keeping scalar loads coherent with vector
results (the pattern every kernel's check path relies on: vector store
then scalar read).

The filter is conservative (a Bloom-style presence set): false positives
only cost an unnecessary invalidation probe, never stale data.
"""

from __future__ import annotations

from .cache import DirectMappedCache


class InvalidationFilter:
    """Tracks which line addresses might live in the scalar D$."""

    def __init__(self, dcache: DirectMappedCache, filter_bits: int = 12) -> None:
        self.dcache = dcache
        self.filter_bits = filter_bits
        self._present = bytearray(1 << filter_bits)
        self.probes = 0
        self.invalidations = 0

    def _slot(self, addr: int) -> int:
        line = addr // self.dcache.line_bytes
        # Cheap multiplicative hash over the line number.
        return (line * 0x9E3779B1 >> 16) & ((1 << self.filter_bits) - 1)

    def note_scalar_fill(self, addr: int) -> None:
        """Record that the D$ fetched this line."""
        self._present[self._slot(addr)] = 1

    def on_vector_store(self, addr: int, nbytes: int) -> int:
        """Probe the store's address range; invalidate hits in the D$.

        Returns the number of invalidation probes forwarded to the D$
        (the quantity that would consume its tag-port bandwidth).
        """
        line_bytes = self.dcache.line_bytes
        first = addr // line_bytes
        last = (addr + max(0, nbytes - 1)) // line_bytes
        forwarded = 0
        for line in range(first, last + 1):
            self.probes += 1
            if self._present[self._slot(line * line_bytes)]:
                self.dcache.invalidate_line(line * line_bytes)
                forwarded += 1
                self.invalidations += 1
        return forwarded
