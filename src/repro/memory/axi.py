"""AXI-like memory port: burst splitting and bandwidth accounting.

The GLSU's Addrgen stage splits vector memory requests into bus-width
beats and protocol-legal bursts (AXI4: max 256 beats per burst, bursts
must not cross 4 KiB boundaries).  This module provides that splitting
plus a simple occupancy model used for cross-checks against the
transaction-level engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryAccessError

#: AXI4 constraints.
MAX_BEATS_PER_BURST = 256
BOUNDARY_BYTES = 4096


@dataclass(frozen=True)
class AxiBurst:
    """One protocol-legal burst."""

    addr: int
    beats: int
    beat_bytes: int

    @property
    def bytes(self) -> int:
        # First/last beats may be partial; the byte count is bounded by
        # the beat span.  For the timing model only beats matter.
        return self.beats * self.beat_bytes

    @property
    def end(self) -> int:
        return self.addr + self.bytes


def split_into_bursts(addr: int, nbytes: int, beat_bytes: int) -> list[AxiBurst]:
    """Split a transfer into 4 KiB-bounded, <=256-beat bursts."""
    if beat_bytes <= 0 or beat_bytes & (beat_bytes - 1):
        raise MemoryAccessError(f"beat width {beat_bytes} not a power of two")
    if nbytes < 0:
        raise MemoryAccessError("negative transfer size")
    bursts: list[AxiBurst] = []
    cursor = addr
    end = addr + nbytes
    while cursor < end:
        boundary = (cursor // BOUNDARY_BYTES + 1) * BOUNDARY_BYTES
        span = min(end, boundary) - cursor
        first_beat = cursor - (cursor % beat_bytes)
        beats = -(-(cursor + span - first_beat) // beat_bytes)
        while beats > 0:
            take = min(beats, MAX_BEATS_PER_BURST)
            bursts.append(AxiBurst(addr=first_beat, beats=take,
                                   beat_bytes=beat_bytes))
            first_beat += take * beat_bytes
            beats -= take
        cursor += span
    return bursts


class AxiPort:
    """Occupancy model of one AXI data channel.

    Beats stream at one per cycle; independent read and write channels
    are separate ports.  ``busy_until`` advances as transfers are issued,
    giving a simple lower bound that the transaction engine's bandwidth
    model must agree with (tested).
    """

    def __init__(self, beat_bytes: int, latency: int,
                 max_outstanding: int = 8) -> None:
        if max_outstanding < 1:
            raise MemoryAccessError("need at least one outstanding txn")
        self.beat_bytes = beat_bytes
        self.latency = latency
        self.max_outstanding = max_outstanding
        self.busy_until = 0.0
        self.beats_total = 0

    def issue(self, now: float, addr: int, nbytes: int) -> tuple[float, float]:
        """Issue a transfer; returns (first_data_time, last_data_time)."""
        bursts = split_into_bursts(addr, nbytes, self.beat_bytes)
        start = max(now, self.busy_until)
        beats = sum(b.beats for b in bursts)
        first = start + self.latency + 1
        last = start + self.latency + beats
        self.busy_until = start + beats
        self.beats_total += beats
        return first, last

    def effective_bandwidth(self, nbytes: int, cycles: float) -> float:
        """Bytes per cycle achieved for a transfer of ``nbytes``."""
        if cycles <= 0:
            return 0.0
        return nbytes / cycles
