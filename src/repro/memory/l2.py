"""Banked L2 model: capacity, bank conflicts, zero-load latency.

The paper assumes an L2 of at least 16 MiB (Table I).  The XBAR of Fig 2
spreads consecutive cache lines across banks, so unit-stride vector
traffic is conflict-free; strided patterns can hammer one bank, which
this model surfaces as a throughput derating.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class BankedL2:
    """Banked shared L2: size, banking, latency and bandwidth knobs."""
    size_bytes: int = 16 * 2 ** 20
    banks: int = 8
    line_bytes: int = 64
    latency: int = 12
    bytes_per_cycle_per_bank: float = 64.0

    def __post_init__(self) -> None:
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ConfigError("bank count must be a power of two")
        if self.line_bytes < 1:
            raise ConfigError("line size must be positive")

    def bank_of(self, addr: int) -> int:
        return (addr // self.line_bytes) % self.banks

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.banks * self.bytes_per_cycle_per_bank

    def conflict_factor(self, stride_bytes: int) -> float:
        """Fraction of peak bandwidth a strided stream can sustain.

        A stride that is a multiple of ``banks * line_bytes`` lands every
        access in one bank (factor 1/banks); unit stride or odd line
        strides spread across all banks (factor 1).
        """
        if stride_bytes == 0:
            return 1.0 / self.banks
        lines = max(1, abs(stride_bytes) // self.line_bytes)
        distinct = self.banks // self._gcd(lines % self.banks or self.banks,
                                           self.banks)
        return distinct / self.banks

    @staticmethod
    def _gcd(a: int, b: int) -> int:
        while b:
            a, b = b, a % b
        return a

    def sustained_bandwidth(self, stride_bytes: int) -> float:
        return self.peak_bytes_per_cycle * self.conflict_factor(stride_bytes)
