"""Scalar-core cache timing models.

Only hit/miss behaviour matters to the evaluation (the D$ determines the
scalar setup time the paper discusses for the medium-vector regime), so
the model is tag-only: no data storage, no write-back traffic.
"""

from __future__ import annotations


class DirectMappedCache:
    """Tag-only direct-mapped cache (hit/miss timing, no data)."""

    def __init__(self, size_bytes: int, line_bytes: int) -> None:
        self.line_bytes = line_bytes
        self.num_lines = max(1, size_bytes // line_bytes)
        self._tags: list[int | None] = [None] * self.num_lines
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit and fills on miss."""
        line = addr // self.line_bytes
        index = line % self.num_lines
        if self._tags[index] == line:
            self.hits += 1
            return True
        self._tags[index] = line
        self.misses += 1
        return False

    def invalidate_line(self, addr: int) -> None:
        """Back-invalidation from the filter of Fig 2."""
        line = addr // self.line_bytes
        index = line % self.num_lines
        if self._tags[index] == line:
            self._tags[index] = None
