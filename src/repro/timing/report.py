"""Timing replay results: cycles, per-unit busy time, utilization.

The quantities here map one-to-one onto the paper's metrics:

* ``cycles`` — simulated runtime of the kernel;
* ``dp_flops`` — DP-FLOP retired (FMA counts 2), from the trace;
* ``flops_per_cycle`` — the performance every Fig 6 bar is built from;
* ``fpu_utilization(peak)`` — "percentage of runtime in which the FPU is
  producing valid results", normalized against a peak in FLOP/cycle
  (the machine peak ``2*lanes`` or a kernel bound from Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimingReport:
    """Cycle-level outcome of one replay: cycles, FLOPs, unit busy time."""
    machine: str
    cycles: float
    dp_flops: float
    unit_busy: dict[str, float] = field(default_factory=dict)
    unit_ops: dict[str, int] = field(default_factory=dict)
    scalar_cycles: float = 0.0
    vector_instructions: int = 0
    scalar_instructions: int = 0
    issue_stall_cycles: float = 0.0
    mem_bytes_read: float = 0.0
    mem_bytes_written: float = 0.0
    dcache_hits: int = 0
    dcache_misses: int = 0

    @property
    def flops_per_cycle(self) -> float:
        return self.dp_flops / self.cycles if self.cycles > 0 else 0.0

    def fpu_utilization(self, peak_flops_per_cycle: float) -> float:
        """Achieved fraction of a FLOP/cycle peak (Table I bounds)."""
        if peak_flops_per_cycle <= 0 or self.cycles <= 0:
            return 0.0
        return min(1.0, self.flops_per_cycle / peak_flops_per_cycle)

    def fpu_busy_fraction(self) -> float:
        """Raw fraction of cycles the FPU pipeline streamed results."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.unit_busy.get("vmfpu", 0.0) / self.cycles)

    def unit_utilization(self, unit: str) -> float:
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.unit_busy.get(unit, 0.0) / self.cycles)

    def gflops(self, freq_ghz: float) -> float:
        """Absolute performance at an operating frequency."""
        return self.flops_per_cycle * freq_ghz

    def summary(self) -> str:
        lines = [
            f"machine               {self.machine}",
            f"cycles                {self.cycles:,.0f}",
            f"DP-FLOP               {self.dp_flops:,.0f}",
            f"DP-FLOP/cycle         {self.flops_per_cycle:.2f}",
            f"vector instructions   {self.vector_instructions}",
            f"scalar instructions   {self.scalar_instructions}",
            f"issue stalls (cyc)    {self.issue_stall_cycles:,.0f}",
        ]
        for unit in sorted(self.unit_busy):
            lines.append(
                f"{unit:<10} busy       {self.unit_busy[unit]:,.0f} cyc "
                f"({self.unit_utilization(unit) * 100:.1f}%)"
            )
        return "\n".join(lines)
