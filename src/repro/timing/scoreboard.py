"""Vector register scoreboard: RAW chaining, WAW/WAR ordering.

Tracks, per architectural vector register, the availability stream of the
last write plus the completion times needed for write-after-write and
write-after-read ordering.  Register groups (LMUL > 1) update every member
register; a reader of any member register chains on the group's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stream import Stream


@dataclass
class _RegState:
    stream: Stream = field(default_factory=lambda: Stream.instant(0.0, 0))
    write_end: float = 0.0  # when the last writer fully retired
    read_end: float = 0.0  # when the last reader finished consuming


class Scoreboard:
    """Availability tracking for the 32 vector registers."""

    def __init__(self) -> None:
        self._regs = [_RegState() for _ in range(32)]

    @staticmethod
    def _group(base: int, emul: int) -> range:
        return range(base, min(32, base + max(1, emul)))

    # ------------------------------------------------------------------
    def source_stream(self, base: int, emul: int, n: int) -> Stream:
        """Combined availability of a source register group.

        The group behaves as the *slowest* member: first element waits for
        the latest first-availability, last element for the latest last-
        availability.  For registers never written, elements are instant.
        """
        t_first = 0.0
        t_last = 0.0
        for reg in self._group(base, emul):
            st = self._regs[reg].stream
            if st.n == 0:
                continue
            t_first = max(t_first, st.t_first)
            t_last = max(t_last, st.t_last)
        if n <= 1 or t_last <= t_first:
            return Stream.instant(t_first, n)
        return Stream(t_first=t_first, rate=(n - 1) / (t_last - t_first), n=n)

    def waw_war_bound(self, base: int, emul: int) -> float:
        """Earliest start for a writer of this group (WAW + WAR)."""
        bound = 0.0
        for reg in self._group(base, emul):
            state = self._regs[reg]
            bound = max(bound, state.write_end, state.read_end)
        return bound

    # ------------------------------------------------------------------
    def record_read(self, base: int, emul: int, end_exec: float) -> None:
        for reg in self._group(base, emul):
            state = self._regs[reg]
            state.read_end = max(state.read_end, end_exec)

    def record_write(self, base: int, emul: int, result: Stream) -> None:
        for reg in self._group(base, emul):
            state = self._regs[reg]
            state.stream = result
            state.write_end = max(state.write_end, result.t_end)

    def all_done(self) -> float:
        """Cycle at which every register write has landed."""
        return max(s.write_end for s in self._regs)
