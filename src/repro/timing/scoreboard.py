"""Vector register scoreboard: RAW chaining, WAW/WAR ordering.

Tracks, per architectural vector register, the availability stream of the
last write plus the completion times needed for write-after-write and
write-after-read ordering.  Register groups (LMUL > 1) update every member
register; a reader of any member register chains on the group's stream.

Storage is three parallel 32-entry lists (stream / write-end / read-end)
rather than per-register objects: the replay loop touches the scoreboard
several times per instruction, and flat list indexing keeps that cheap.
"""

from __future__ import annotations

from .stream import Stream

_EMPTY = Stream.instant(0.0, 0)


class Scoreboard:
    """Availability tracking for the 32 vector registers."""

    def __init__(self) -> None:
        self._streams: list[Stream] = [_EMPTY] * 32
        self._write_end: list[float] = [0.0] * 32
        self._read_end: list[float] = [0.0] * 32

    # ------------------------------------------------------------------
    def source_stream(self, base: int, emul: int, n: int) -> Stream:
        """Combined availability of a source register group.

        The group behaves as the *slowest* member: first element waits for
        the latest first-availability, last element for the latest last-
        availability.  For registers never written, elements are instant.
        """
        t_first = 0.0
        t_last = 0.0
        streams = self._streams
        for reg in range(base, min(32, base + emul) if emul > 1 else base + 1):
            st = streams[reg]
            if st.n == 0:
                continue
            if st.t_first > t_first:
                t_first = st.t_first
            st_last = st.t_last
            if st_last > t_last:
                t_last = st_last
        if n <= 1 or t_last <= t_first:
            return Stream.instant(t_first, n)
        return Stream(t_first=t_first, rate=(n - 1) / (t_last - t_first), n=n)

    def waw_war_bound(self, base: int, emul: int) -> float:
        """Earliest start for a writer of this group (WAW + WAR)."""
        bound = 0.0
        we = self._write_end
        re = self._read_end
        for reg in range(base, min(32, base + emul) if emul > 1 else base + 1):
            if we[reg] > bound:
                bound = we[reg]
            if re[reg] > bound:
                bound = re[reg]
        return bound

    # ------------------------------------------------------------------
    def record_read(self, base: int, emul: int, end_exec: float) -> None:
        re = self._read_end
        for reg in range(base, min(32, base + emul) if emul > 1 else base + 1):
            if end_exec > re[reg]:
                re[reg] = end_exec
        return None

    def record_write(self, base: int, emul: int, result: Stream) -> None:
        streams = self._streams
        we = self._write_end
        t_end = result.t_end
        for reg in range(base, min(32, base + emul) if emul > 1 else base + 1):
            streams[reg] = result
            if t_end > we[reg]:
                we[reg] = t_end
        return None

    def all_done(self) -> float:
        """Cycle at which every register write has landed."""
        return max(self._write_end)


class FlatScoreboard:
    """Scoreboard state as bare parallel lists for the vectorized replay.

    The plan-driven replay loop (:meth:`repro.timing.engine.TimingEngine
    .replay`) inlines every scoreboard operation — group-combine, WAW/WAR
    bound, read/write recording — directly over these lists, with
    register groups pre-resolved to index tuples at plan-build time.  A
    produced stream is summarized as a ``(t_first, t_last)`` pair
    (``None`` = never written or empty, which the group-combine skips,
    exactly like :meth:`Scoreboard.source_stream` skips ``n == 0``
    streams); ``write_end`` / ``read_end`` carry the same completion
    times :class:`Scoreboard` tracks.  Exposing the lists raw trades
    encapsulation for the hot loop's locals — the class exists so the
    state layout is named and testable in one place.
    """

    __slots__ = ("streams", "write_end", "read_end")

    def __init__(self) -> None:
        #: (t_first, t_last) of the last write per register, or None.
        self.streams: list = [None] * 32
        self.write_end: list[float] = [0.0] * 32
        self.read_end: list[float] = [0.0] * 32

    def all_done(self) -> float:
        """Cycle at which every register write has landed."""
        return max(self.write_end)
