"""Transaction-level cycle model (the "QuestaSim cycle" half).

The engine replays a :class:`~repro.functional.trace.DynamicTrace` against
a machine description (:mod:`repro.uarch`).  Vector instructions become
streaming transactions on in-order unit resources; chaining is modelled
with linear element-availability streams, and the three AraXL interfaces
contribute their latencies exactly where the paper says they do.
"""

from .stream import Stream
from .resources import Resource
from .report import TimingReport
from .engine import TimingEngine

__all__ = ["Stream", "Resource", "TimingReport", "TimingEngine"]
