"""Compiled replay plans: decode a trace once, replay it as columns.

The reference replay loop (:meth:`repro.timing.engine.TimingEngine
.replay_reference`) dispatches per event object: every event pays
attribute loads, a memoized decode lookup, stream-object construction
and several function calls.  That cost is replay-invariant — none of it
depends on the machine model — so this module hoists it into a
:class:`ReplayPlan` built once per trace (cached on the trace's
``_plan`` slot) and shared across every machine the trace is replayed
against:

* **static rows** — one entry per issued instruction (vsetvl or vector)
  with its unit index, element counts, pre-resolved source/destination
  register index tuples, and the scalar-event cost segment preceding it;
* **numpy columns** — per-row ``vl``/SEW codes, throughputs, memory-key
  and slide-key indices.  For a given machine model the per-row rates,
  latencies and the stream-algebra constants of
  :func:`repro.timing.stream.batch_stream_params` are produced by a
  handful of vectorized array operations instead of per-event Python —
  each element is the *same single* IEEE-754 operation the reference
  performs, so replay output is bit-identical;
* **scalar segments** — the in-order scalar cost list (including the
  stateful D$ walk) memoized per ``(scalar config, L2 latency)``, which
  all machines sharing a frontend configuration reuse;
* **report memo** — replay is a pure function of (trace, model), so the
  fused per-machine row bundle remembers the finished
  :class:`~repro.timing.report.TimingReport`; replay-many of one trace
  against one model is a dict hit plus a defensive copy.

Decode reuses :meth:`TimingEngine._event_info` (and therefore its
per-instruction ``_tinfo_by_cfg`` memo — including the first-event
``mem`` byte-accounting semantics), so the plan can never drift from
the reference decode.
"""

from __future__ import annotations

import numpy as np

from ..errors import TimingError
from ..functional.trace import ScalarEvent, VectorEvent, VsetvlEvent
from ..isa.instructions import MemPattern
from .frontend import ScalarFrontend
from .stream import batch_stream_params

__all__ = ["ReplayPlan"]

#: Row kinds in the fused issue stream.
ROW_VSETVL, ROW_VECTOR, ROW_REDUCTION = 0, 1, 2

#: SEW -> index into the per-machine (8, 16, 32, 64) rate vectors.
_SEW_CODE = {8: 0, 16: 1, 32: 2, 64: 3}
_SEWS = (8, 16, 32, 64)


def _regs(base: int, emul: int) -> tuple:
    """Register group -> explicit member-index tuple (scoreboard order)."""
    return tuple(range(base, min(32, base + emul) if emul > 1 else base + 1))


class _MachineRows:
    """Per-(plan, machine) fused row bundle plus the replay-report memo."""

    __slots__ = ("rows", "tail_seg", "dcache_hits", "dcache_misses",
                 "report")

    def __init__(self, rows: list, tail_seg: tuple,
                 dcache_hits: int, dcache_misses: int) -> None:
        self.rows = rows
        self.tail_seg = tail_seg
        self.dcache_hits = dcache_hits
        self.dcache_misses = dcache_misses
        self.report = None


class ReplayPlan:
    """Machine-independent compilation of one dynamic trace."""

    __slots__ = ("n_events", "scalar_count", "vector_count", "total_flops",
                 "bytes_read", "bytes_written", "first_vec_unit",
                 "kind_vocab", "segs", "row_kind", "row_unit", "row_cn",
                 "row_n", "row_srcs", "row_dest", "row_dscal",
                 "mem_keys", "slide_pairs",
                 "_cnt_f", "_sew_code", "_thr", "_is_fpu", "_mlog",
                 "_mem_ix", "_align", "_is_store", "_slide_ix",
                 "_ix_mem", "_ix_red", "_ix_slide", "_ix_masku",
                 "_ix_arith", "_seg_memo", "_machine_memo")

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace) -> "ReplayPlan":
        # Deferred import: engine.py imports this module at load time.
        from .engine import (LOAD, MASKU, SLDU, STORE, TimingEngine, VALU,
                             VMFPU)
        unit_index = {VMFPU: 0, VALU: 1, SLDU: 2, MASKU: 3,
                      LOAD: 4, STORE: 5}
        cat_mem = TimingEngine._CAT_MEM
        cat_red = TimingEngine._CAT_RED
        cat_slide = TimingEngine._CAT_SLIDE
        cat_masku = TimingEngine._CAT_MASKU
        cat_arith = TimingEngine._CAT_ARITH
        event_info = TimingEngine._event_info

        plan = cls.__new__(cls)
        segs: list = []
        cur: list = []
        kind_vocab: list = []
        kind_ids: dict = {}
        row_kind: list = []
        row_unit: list = []
        row_cn: list = []
        row_n: list = []
        row_srcs: list = []
        row_dest: list = []
        row_dscal: list = []
        cats: list = []
        sewc: list = []
        thr: list = []
        is_fpu: list = []
        mlog: list = []
        mem_ix: list = []
        alignp: list = []
        is_store: list = []
        slide_ix: list = []
        mem_keys: dict = {}
        slide_pairs: dict = {}
        n_events = 0
        scalar_count = 0
        vector_count = 0
        flops = 0.0
        bytes_read = 0.0
        bytes_written = 0.0
        first_vec_unit = None

        for event in trace:
            n_events += 1
            ecls = event.__class__
            if ecls is ScalarEvent:
                kid = kind_ids.get(event.kind)
                if kid is None:
                    kid = kind_ids[event.kind] = len(kind_vocab)
                    kind_vocab.append(event.kind)
                cur.append((kid, event.addr))
                scalar_count += 1
                continue
            if ecls is VsetvlEvent:
                segs.append(tuple(cur))
                cur = []
                scalar_count += 1
                row_kind.append(ROW_VSETVL)
                row_unit.append(0)
                row_cn.append(1)
                row_n.append(1)
                row_srcs.append(())
                row_dest.append(())
                row_dscal.append(False)
                cats.append(-1)
                sewc.append(0)
                thr.append(1.0)
                is_fpu.append(False)
                mlog.append(False)
                mem_ix.append(0)
                alignp.append(0.0)
                is_store.append(False)
                slide_ix.append(0)
                continue
            if ecls is not VectorEvent:
                raise TimingError(f"unknown trace event {event!r}")

            vector_count += 1
            info = event.__dict__.get("_tinfo")
            if info is None:
                info = event_info(event)
            (unit_name, n, sources, dest, dest_scalar, cat, extra,
             ev_flops, mem_info) = info
            flops += ev_flops
            if mem_info is not None:
                if mem_info[0]:
                    bytes_written += mem_info[1]
                else:
                    bytes_read += mem_info[1]
            segs.append(tuple(cur))
            cur = []
            uix = unit_index[unit_name]
            if first_vec_unit is None:
                first_vec_unit = uix

            kindv = ROW_VECTOR
            cn = n
            sc = 0
            th = 1.0
            fp = False
            ml = False
            mi = 0
            ap = 0.0
            st = False
            si = 0
            if cat == cat_mem:
                mem = event.mem
                if mem is None:
                    raise TimingError(
                        f"memory op {event.instr} lacks a MemAccess")
                cn = mem.count if mem.pattern is MemPattern.MASK else n
                key = (mem.pattern, mem.ew_bytes, mem.is_store)
                mi = mem_keys.get(key)
                if mi is None:
                    mi = mem_keys[key] = len(mem_keys)
                if mem.pattern is MemPattern.UNIT and mem.base % 64:
                    ap = 1.0
                st = bool(mem.is_store)
                sc = _SEW_CODE.get(event.sew, 0)  # rate is SEW-independent
            elif cat == cat_red:
                kindv = ROW_REDUCTION
                sc = _SEW_CODE[event.sew]
            elif cat == cat_slide:
                sc = _SEW_CODE[event.sew]
                th = extra
                pair = (event.slide_amount, event.vl)
                si = slide_pairs.get(pair)
                if si is None:
                    si = slide_pairs[pair] = len(slide_pairs)
            elif cat == cat_masku:
                ml = bool(extra)
                # Mask-logical ops run at the bit rate, never indexing
                # the per-SEW tables (mirrors the reference branch).
                sc = (_SEW_CODE.get(event.sew, 0) if ml
                      else _SEW_CODE[event.sew])
            else:
                th, fp = extra
                sc = _SEW_CODE[event.sew]

            row_kind.append(kindv)
            row_unit.append(uix)
            row_cn.append(cn)
            row_n.append(n)
            row_srcs.append(tuple(_regs(b, e) for b, e in sources))
            row_dest.append(_regs(*dest) if dest is not None else ())
            row_dscal.append(dest_scalar)
            cats.append(cat)
            sewc.append(sc)
            thr.append(th)
            is_fpu.append(fp)
            mlog.append(ml)
            mem_ix.append(mi)
            alignp.append(ap)
            is_store.append(st)
            slide_ix.append(si)
        segs.append(tuple(cur))

        plan.n_events = n_events
        plan.scalar_count = scalar_count
        plan.vector_count = vector_count
        plan.total_flops = flops
        plan.bytes_read = bytes_read
        plan.bytes_written = bytes_written
        plan.first_vec_unit = first_vec_unit
        plan.kind_vocab = tuple(kind_vocab)
        plan.segs = segs
        plan.row_kind = row_kind
        plan.row_unit = row_unit
        plan.row_cn = row_cn
        plan.row_n = row_n
        plan.row_srcs = row_srcs
        plan.row_dest = row_dest
        plan.row_dscal = row_dscal
        plan.mem_keys = tuple(mem_keys)
        plan.slide_pairs = tuple(slide_pairs)
        plan._cnt_f = np.asarray(row_cn, dtype=np.float64)
        cat_arr = np.asarray(cats, dtype=np.int64)
        plan._sew_code = np.asarray(sewc, dtype=np.int64)
        plan._thr = np.asarray(thr, dtype=np.float64)
        plan._is_fpu = np.asarray(is_fpu, dtype=bool)
        plan._mlog = np.asarray(mlog, dtype=bool)
        plan._mem_ix = np.asarray(mem_ix, dtype=np.int64)
        plan._align = np.asarray(alignp, dtype=np.float64)
        plan._is_store = np.asarray(is_store, dtype=bool)
        plan._slide_ix = np.asarray(slide_ix, dtype=np.int64)
        plan._ix_mem = np.nonzero(cat_arr == cat_mem)[0]
        plan._ix_red = np.nonzero(cat_arr == cat_red)[0]
        plan._ix_slide = np.nonzero(cat_arr == cat_slide)[0]
        plan._ix_masku = np.nonzero(cat_arr == cat_masku)[0]
        plan._ix_arith = np.nonzero(cat_arr == cat_arith)[0]
        plan._seg_memo = {}
        plan._machine_memo = {}
        return plan

    # ------------------------------------------------------------------
    def scalar_costs(self, scalar_cfg, l2_latency) -> tuple:
        """Per-segment scalar cost tuples for one frontend configuration.

        Replays the scalar event stream — in original order, D$ state
        included — through a fresh :class:`ScalarFrontend` once, then
        memoizes ``(segment cost lists, dcache hits, dcache misses)``:
        every machine model sharing the scalar config reuses the walk.
        """
        key = (scalar_cfg, l2_latency)
        hit = self._seg_memo.get(key)
        if hit is None:
            frontend = ScalarFrontend(scalar_cfg, l2_latency)
            fixed_cost = frontend.fixed_costs.get
            cost = frontend.cost
            vocab = self.kind_vocab
            out = []
            for seg in self.segs:
                costs = []
                for kid, addr in seg:
                    kind = vocab[kid]
                    cycles = fixed_cost(kind)
                    if cycles is None:
                        cycles = cost(ScalarEvent(kind, addr))
                    costs.append(cycles)
                out.append(tuple(costs))
            hit = (out, frontend.dcache.hits, frontend.dcache.misses)
            self._seg_memo[key] = hit
        return hit

    # ------------------------------------------------------------------
    def _columns_for(self, model) -> tuple:
        """Vectorized per-row machine columns: latency, 1/rate,
        ``(n-1)/rate``, busy cycles, reduction tail."""
        n_rows = len(self.row_kind)
        rate = np.ones(n_rows, dtype=np.float64)
        lat = np.zeros(n_rows, dtype=np.float64)
        tail = np.zeros(n_rows, dtype=np.float64)
        vfu = None
        ix = self._ix_arith
        if ix.size:
            vfu = np.asarray([model.vfu_rate(s) for s in _SEWS])
            rate[ix] = vfu[self._sew_code[ix]] * self._thr[ix]
            lat[ix] = np.where(self._is_fpu[ix], model.fpu_latency,
                               model.valu_latency)
        ix = self._ix_red
        if ix.size:
            if vfu is None:
                vfu = np.asarray([model.vfu_rate(s) for s in _SEWS])
            sc = self._sew_code[ix]
            rate[ix] = vfu[sc]
            tail[ix] = np.asarray([model.reduction_tail_cycles(s)
                                   for s in _SEWS])[sc]
        ix = self._ix_slide
        if ix.size:
            sldu = np.asarray([model.sldu_rate(s) for s in _SEWS])
            rate[ix] = sldu[self._sew_code[ix]] * self._thr[ix]
            slide_lat = np.asarray(
                [model.slide_extra_cycles(amount, vl)
                 for amount, vl in self.slide_pairs], dtype=np.float64)
            lat[ix] = slide_lat[self._slide_ix[ix]]
        ix = self._ix_masku
        if ix.size:
            if vfu is None:
                vfu = np.asarray([model.vfu_rate(s) for s in _SEWS])
            rate[ix] = np.where(self._mlog[ix], model.masku_bit_rate(),
                                vfu[self._sew_code[ix]])
            lat[ix] = model.masku_latency
        ix = self._ix_mem
        if ix.size:
            mem_rate = np.asarray(
                [model.mem_rate(pattern, max(1, ew), store)
                 for pattern, ew, store in self.mem_keys],
                dtype=np.float64)
            rate[ix] = mem_rate[self._mem_ix[ix]]
            lat[ix] = np.where(self._is_store[ix],
                               model.store_pipe_latency,
                               model.load_first_data_latency) \
                + self._align[ix]
        q1, rinv, busy = batch_stream_params(self._cnt_f, rate)
        return (lat.tolist(), rinv.tolist(), q1.tolist(), busy.tolist(),
                tail.tolist())

    # ------------------------------------------------------------------
    def machine_rows(self, model) -> _MachineRows:
        """Fused per-machine row bundle (memoized per model identity)."""
        cfg = model.config
        key = None
        bundle = None
        try:
            key = (type(model).__name__, model.name, cfg)
            bundle = self._machine_memo.get(key)
        except TypeError:
            key = None  # unhashable custom config: rebuild per replay
        if bundle is None:
            seg_costs, dcache_hits, dcache_misses = self.scalar_costs(
                cfg.scalar, cfg.memory.l2_latency_cycles)
            lat, rinv, q1, busy, tail = self._columns_for(model)
            rows = list(zip(seg_costs[:-1], self.row_kind, self.row_unit,
                            self.row_cn, self.row_n, self.row_srcs,
                            self.row_dest, self.row_dscal,
                            lat, rinv, q1, busy, tail))
            bundle = _MachineRows(rows, seg_costs[-1],
                                  dcache_hits, dcache_misses)
            if key is not None:
                self._machine_memo[key] = bundle
        return bundle
