"""CVA6 frontend timing: scalar instruction costs and the D$ model.

The scalar core matters to the evaluation only through the *setup time* it
adds around vector instructions (Section IV-B: at 64 B/lane neither design
can hide "the latency of scalar loads-stores through the data-cache").
We model an in-order single-issue pipeline: one cycle per ALU op, a
load-to-use latency through a direct-mapped D$, a taken-branch penalty,
and a pipelined scalar FPU.
"""

from __future__ import annotations

from ..functional.trace import ScalarEvent
from ..memory.cache import DirectMappedCache
from ..params import ScalarCoreConfig

__all__ = ["ScalarFrontend", "DirectMappedCache"]


class ScalarFrontend:
    """Accumulates CVA6 cycles over the scalar event stream."""

    def __init__(self, config: ScalarCoreConfig, l2_latency: int) -> None:
        self.config = config
        self.l2_latency = l2_latency
        self.dcache = DirectMappedCache(config.dcache_bytes,
                                        config.dcache_line_bytes)
        self.cycles_by_kind: dict[str, float] = {}
        #: State-independent per-kind costs (everything except the D$-
        #: dependent loads/stores).  The replay hot loop reads this table
        #: directly and bypasses :meth:`cost` for these kinds, so
        #: ``cycles_by_kind`` only accumulates loads/stores there.
        #: FP charges half the pipelined latency as the average exposure
        #: (dependent scalar FP chains are rare in the kernels).
        self.fixed_costs: dict[str, float] = {
            "alu": float(config.alu_latency),
            "mul": 2.0,
            "div": 10.0,
            "fp": max(1.0, config.fpu_latency / 2),
            "branch": 1.0,
            "branch_taken": 1.0 + config.branch_penalty,
        }

    def cost(self, event: ScalarEvent) -> float:
        cfg = self.config
        kind = event.kind
        fixed = self.fixed_costs.get(kind)
        if fixed is not None:
            cycles = fixed
        elif kind == "load":
            hit = self.dcache.access(event.addr or 0)
            cycles = float(cfg.dcache_hit_latency)
            if not hit:
                cycles += cfg.dcache_miss_penalty + self.l2_latency
        elif kind == "store":
            # Write-through store buffer: a cycle unless the line misses.
            hit = self.dcache.access(event.addr or 0)
            cycles = 1.0 if hit else 2.0
        else:
            cycles = 1.0
        self.cycles_by_kind[kind] = self.cycles_by_kind.get(kind, 0.0) + cycles
        return cycles
