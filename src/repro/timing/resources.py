"""In-order unit resources with occupancy and busy-cycle accounting.

Each execution unit (lane FPU ensemble, VALU, load path, store path, SLDU,
MASKU) is a :class:`Resource`: ops start in order, a new op cannot start
before the previous one has finished streaming through, and the unit
accumulates *busy* cycles (cycles producing valid results) which the
report divides by runtime to obtain the paper's utilization metric.

A small bounded queue in front of each unit models the sequencer's
instruction queues: issue stalls when the queue is full, which is exactly
what limits short-vector performance in Ara-style designs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import TimingError


@dataclass
class Resource:
    """A throughput-limited unit with a bounded in-order queue."""
    name: str
    queue_depth: int = 4
    ready_time: float = 0.0
    busy_cycles: float = 0.0
    ops: int = 0
    _pending: deque = field(default_factory=deque)

    def admit(self, t_issue: float) -> float:
        """Earliest cycle at which the sequencer can enqueue a new op.

        Returns ``t_issue`` when a queue slot is free, else the cycle at
        which the oldest in-flight op drains.
        """
        if self.queue_depth < 1:
            raise TimingError(f"{self.name}: queue depth must be >= 1")
        while self._pending and self._pending[0] <= t_issue:
            self._pending.popleft()
        if len(self._pending) < self.queue_depth:
            return t_issue
        return self._pending[0]

    def start(self, earliest: float) -> float:
        """Resolve the in-order structural hazard: unit must be free."""
        return max(earliest, self.ready_time)

    def retire(self, start: float, end_exec: float, busy: float) -> None:
        """Record an op spanning [start, end_exec) with ``busy`` useful cycles."""
        if end_exec < start:
            raise TimingError(f"{self.name}: op ends before it starts")
        self.ready_time = end_exec
        self.busy_cycles += busy
        self.ops += 1
        self._pending.append(end_exec)

    def utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)
