"""Element-availability streams: the chaining abstraction.

Ara chains instructions at VRF-word granularity: a consumer may start as
soon as the producer has written the first chunk of the destination, and
thereafter proceeds no faster than the producer delivers.  At the
abstraction level of this model a producer is summarized by a linear
availability function

    avail(i) = t_first + i / rate          for i in [0, n)

which a consumer composes with its own start time and intrinsic rate.
This captures the first-order behaviour (pipeline fill, rate limiting,
stall-free chaining when the producer is faster) without per-element
event simulation, keeping replay cost independent of vector length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import TimingError


@dataclass(frozen=True)
class Stream:
    """Availability of ``n`` elements starting at ``t_first``.

    ``rate`` is in elements per cycle.  ``t_first`` is the cycle at which
    element 0 can first be consumed.
    """

    t_first: float
    rate: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise TimingError("stream cannot carry a negative element count")
        if self.n > 0 and self.rate <= 0:
            raise TimingError("stream rate must be positive")

    @property
    def t_last(self) -> float:
        """Cycle at which the final element becomes available."""
        if self.n == 0:
            return self.t_first
        return self.t_first + (self.n - 1) / self.rate

    @property
    def t_end(self) -> float:
        """Cycle at which the whole stream has been delivered."""
        if self.n == 0:
            return self.t_first
        return self.t_first + self.n / self.rate

    def avail(self, index: int) -> float:
        """Cycle at which element ``index`` is available."""
        if not 0 <= index < max(self.n, 1):
            raise TimingError(f"element {index} outside stream of {self.n}")
        return self.t_first + index / self.rate

    @classmethod
    def instant(cls, t: float, n: int) -> "Stream":
        """All elements available at once (an already-written register)."""
        return cls(t_first=t, rate=math.inf, n=n)

    @classmethod
    def empty(cls, t: float = 0.0) -> "Stream":
        return cls(t_first=t, rate=math.inf, n=0)


def consume(start: float, own_rate: float, n: int,
            sources: tuple[Stream, ...] = (),
            latency: float = 0.0) -> tuple[float, Stream]:
    """Run a streaming operation and derive its result stream.

    The operation begins issuing at ``start`` (already resolved against
    structural hazards), consumes ``n`` elements from every source stream
    simultaneously, produces at most ``own_rate`` elements per cycle, and
    adds ``latency`` pipeline cycles before results appear.

    Returns ``(end_exec, result)`` where ``end_exec`` is the cycle at which
    the last element has been accepted (the unit becomes free) and
    ``result`` describes destination element availability.
    """
    if n == 0:
        return start, Stream.empty(start + latency)
    if own_rate <= 0:
        raise TimingError("operation rate must be positive")
    # First element: the unit needs its sources' element 0.
    t0_in = start
    for src in sources:
        if src.n:
            t0_in = max(t0_in, src.avail(0))
    # Last element: limited by own throughput from t0 and by each source.
    t_last_in = t0_in + (n - 1) / own_rate
    for src in sources:
        if src.n:
            t_last_in = max(t_last_in, src.avail(min(n, src.n) - 1))
    end_exec = t_last_in + 1.0 / own_rate
    t_first_out = t0_in + latency + 1.0 / own_rate
    t_last_out = t_last_in + latency + 1.0 / own_rate
    if n == 1:
        result = Stream(t_first=t_first_out, rate=own_rate, n=1)
    else:
        eff_rate = (n - 1) / max(t_last_out - t_first_out, 1e-12)
        result = Stream(t_first=t_first_out, rate=eff_rate, n=n)
    return end_exec, result
