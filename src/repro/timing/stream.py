"""Element-availability streams: the chaining abstraction.

Ara chains instructions at VRF-word granularity: a consumer may start as
soon as the producer has written the first chunk of the destination, and
thereafter proceeds no faster than the producer delivers.  At the
abstraction level of this model a producer is summarized by a linear
availability function

    avail(i) = t_first + i / rate          for i in [0, n)

which a consumer composes with its own start time and intrinsic rate.
This captures the first-order behaviour (pipeline fill, rate limiting,
stall-free chaining when the producer is faster) without per-element
event simulation, keeping replay cost independent of vector length.

``Stream`` is a hand-rolled ``__slots__`` class rather than a dataclass:
the replay loop creates several streams per instruction, and ``t_last`` /
``t_end`` are precomputed at construction because the scoreboard reads
them repeatedly.  Instances are immutable by convention.
"""

from __future__ import annotations

import math

from ..errors import TimingError


class Stream:
    """Availability of ``n`` elements starting at ``t_first``.

    ``rate`` is in elements per cycle.  ``t_first`` is the cycle at which
    element 0 can first be consumed.  ``t_last`` is the cycle at which
    the final element becomes available; ``t_end`` the cycle at which the
    whole stream has been delivered.
    """

    __slots__ = ("t_first", "rate", "n", "t_last", "t_end")

    def __init__(self, t_first: float, rate: float, n: int) -> None:
        if n < 0:
            raise TimingError("stream cannot carry a negative element count")
        if n > 0 and rate <= 0:
            raise TimingError("stream rate must be positive")
        self.t_first = t_first
        self.rate = rate
        self.n = n
        if n == 0:
            self.t_last = t_first
            self.t_end = t_first
        else:
            self.t_last = t_first + (n - 1) / rate
            self.t_end = t_first + n / rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(t_first={self.t_first}, rate={self.rate}, n={self.n})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Stream):
            return NotImplemented
        return (self.t_first == other.t_first and self.rate == other.rate
                and self.n == other.n)

    def avail(self, index: int) -> float:
        """Cycle at which element ``index`` is available."""
        if not 0 <= index < max(self.n, 1):
            raise TimingError(f"element {index} outside stream of {self.n}")
        return self.t_first + index / self.rate

    @classmethod
    def instant(cls, t: float, n: int) -> "Stream":
        """All elements available at once (an already-written register)."""
        return cls(t, math.inf, n)

    @classmethod
    def empty(cls, t: float = 0.0) -> "Stream":
        return cls(t, math.inf, 0)


def batch_stream_params(counts, rates):
    """Vectorized per-op stream-algebra constants for a whole replay.

    For each op ``j`` with element count ``counts[j]`` and intrinsic
    rate ``rates[j]`` this returns the three constants :func:`consume`
    derives per call — ``(n - 1) / rate`` (own-throughput span),
    ``1.0 / rate`` (one element period), and ``n / rate`` (busy
    cycles) — as float64 arrays.  Each element is the *same single*
    IEEE-754 operation the scalar path performs, just batched, so the
    vectorized replay loop that consumes these columns is bit-identical
    to per-event :func:`consume` calls.  ``counts`` must already be a
    float64 array (integer counts below 2**53 convert exactly).
    """
    return (counts - 1.0) / rates, 1.0 / rates, counts / rates


def consume(start: float, own_rate: float, n: int,
            sources: tuple[Stream, ...] = (),
            latency: float = 0.0) -> tuple[float, Stream]:
    """Run a streaming operation and derive its result stream.

    The operation begins issuing at ``start`` (already resolved against
    structural hazards), consumes ``n`` elements from every source stream
    simultaneously, produces at most ``own_rate`` elements per cycle, and
    adds ``latency`` pipeline cycles before results appear.

    Returns ``(end_exec, result)`` where ``end_exec`` is the cycle at which
    the last element has been accepted (the unit becomes free) and
    ``result`` describes destination element availability.
    """
    if n == 0:
        return start, Stream.empty(start + latency)
    if own_rate <= 0:
        raise TimingError("operation rate must be positive")
    # First element: the unit needs its sources' element 0 (avail(0) is
    # t_first; inlined — this loop runs several times per instruction).
    t0_in = start
    for src in sources:
        if src.n and src.t_first > t0_in:
            t0_in = src.t_first
    # Last element: limited by own throughput from t0 and by each source.
    t_last_in = t0_in + (n - 1) / own_rate
    for src in sources:
        sn = src.n
        if sn:
            last = n if n < sn else sn
            t = src.t_first + (last - 1) / src.rate
            if t > t_last_in:
                t_last_in = t
    end_exec = t_last_in + 1.0 / own_rate
    t_first_out = t0_in + latency + 1.0 / own_rate
    t_last_out = t_last_in + latency + 1.0 / own_rate
    if n == 1:
        result = Stream(t_first_out, own_rate, 1)
    else:
        eff_rate = (n - 1) / max(t_last_out - t_first_out, 1e-12)
        result = Stream(t_first_out, eff_rate, n)
    return end_exec, result
