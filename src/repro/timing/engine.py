"""The timing engine: replays a dynamic trace against a machine model.

One pass over the trace, O(1) work per instruction regardless of vector
length.  The mechanisms modelled, and where the paper's effects come from:

* **Issue path** — CVA6 issues one vector instruction per cycle at best,
  gated by the acknowledgement round trip (``issue_gap``; REQI register
  cuts lengthen it) and by per-unit instruction queues (back-pressure
  when a unit falls behind).
* **Chaining** — consumers start when the producer's first elements are
  available and are rate-limited by the slower party (stream algebra in
  :mod:`repro.timing.stream`).
* **Memory** — separate load and store ports with the configured
  bandwidth; loads see the request-to-first-data latency of the memory
  interface (GLSU pipeline depth + L2 latency on AraXL).
* **Slides** — local shuffle at lane rate plus the ring penalty on AraXL.
* **Reductions** — streamed intra-lane phase plus the configuration-
  dependent tail (inter-lane tree, inter-cluster ring tree, SIMD stage),
  which is what bends the Fig 6 reduction curves.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass

from ..errors import TimingError
from ..functional.trace import (DynamicTrace, MemAccess, ScalarEvent,
                                VectorEvent, VsetvlEvent)
from ..isa.instructions import ExecUnit, MemPattern
from ..uarch.common import MachineModel
from .frontend import ScalarFrontend
from .replay_plan import ROW_REDUCTION, ROW_VSETVL, ReplayPlan
from .report import TimingReport
from .resources import Resource
from .scoreboard import FlatScoreboard, Scoreboard
from .stream import Stream, consume

#: Unit resource names.
VMFPU, VALU, SLDU, MASKU, LOAD, STORE = (
    "vmfpu", "valu", "sldu", "masku", "vlsu_load", "vlsu_store")

#: Canonical unit order (index = the plan's unit id).
_UNIT_NAMES = (VMFPU, VALU, SLDU, MASKU, LOAD, STORE)


def _copy_report(report: TimingReport) -> TimingReport:
    """Fresh report instance (memoized replays must not share dicts)."""
    return dataclasses.replace(report,
                               unit_busy=dict(report.unit_busy),
                               unit_ops=dict(report.unit_ops))


@dataclass
class _Groups:
    """Register groups an instruction touches (base, emul) pairs."""

    sources: list[tuple[int, int]]
    dest: tuple[int, int] | None
    dest_scalar: bool = False


class TimingEngine:
    """Replays a dynamic trace against one machine model, cycle-level."""
    def __init__(self, model: MachineModel) -> None:
        self.model = model

    # ------------------------------------------------------------------
    def replay(self, trace) -> TimingReport:
        """Replay ``trace`` (object or packed form) against the model.

        The vectorized fast path: compile the trace once into a
        :class:`~repro.timing.replay_plan.ReplayPlan` (cached on the
        trace), fetch the fused per-machine row bundle (numpy-batched
        rates/latencies/stream constants, memoized per model), then run
        one branch-light pass over the issue rows.  Every arithmetic
        operation is performed in the same order with the same operands
        as :meth:`replay_reference`, so reports are bit-identical —
        the reference loop stays as the executable specification and
        the property-test oracle.
        """
        plan = getattr(trace, "_plan", None)
        if plan is None or plan.n_events != len(trace):
            plan = ReplayPlan.from_trace(trace)
            try:
                trace._plan = plan
            except (AttributeError, TypeError):
                pass  # foreign trace container: plan lives for this call
        model = self.model
        bundle = plan.machine_rows(model)
        report = bundle.report
        if report is not None:
            return _copy_report(report)
        depth = model.unit_queue_depth
        if depth < 1 and plan.first_vec_unit is not None:
            raise TimingError(f"{_UNIT_NAMES[plan.first_vec_unit]}: "
                              f"queue depth must be >= 1")

        vsetvli_cycles = model.vsetvli_cycles
        issue_gap = model.issue_gap
        issue_to_arrive = model.request_latency + model.dispatch_latency
        scalar_result_latency = model.scalar_result_latency

        sb = FlatScoreboard()
        streams = sb.streams
        write_end = sb.write_end
        read_end = sb.read_end
        upend = [deque() for _ in range(6)]
        uready = [0.0] * 6
        ubusy = [0.0] * 6
        uops = [0] * 6
        t_scalar = 0.0
        next_vissue = 0.0
        issue_stalls = 0.0

        for (costs, kind, u, cn, nn, srcs, dregs, dscal,
             lat, rinv, q1, busy, tail) in bundle.rows:
            for c in costs:
                t_scalar += c
            if kind == ROW_VSETVL:
                t_scalar += vsetvli_cycles
                gap_end = t_scalar + issue_gap
                if gap_end > next_vissue:
                    next_vissue = gap_end
                continue

            # --- issue: frontend cycle, ack gap, queue slot -----------
            t_scalar += 1.0
            t_ready = t_scalar if t_scalar > next_vissue else next_vissue
            pq = upend[u]
            while pq and pq[0] <= t_ready:
                pq.popleft()
            t_admit = t_ready if len(pq) < depth else pq[0]
            issue_stalls += t_admit - t_ready
            t_scalar = t_admit
            next_vissue = t_admit + issue_gap

            # --- hazards: WAW/WAR on the destination group ------------
            earliest = t_admit + issue_to_arrive
            for r in dregs:
                w = write_end[r]
                if w > earliest:
                    earliest = w
                w = read_end[r]
                if w > earliest:
                    earliest = w
            rt = uready[u]
            start = rt if rt > earliest else earliest

            # --- execute: inlined stream algebra over the row columns -
            if cn:
                t0 = start
                tmax = 0.0
                last1 = (cn if cn < nn else nn) - 1
                for regs in srcs:
                    gf = 0.0
                    gl = 0.0
                    for r in regs:
                        st = streams[r]
                        if st is not None:
                            f = st[0]
                            if f > gf:
                                gf = f
                            f = st[1]
                            if f > gl:
                                gl = f
                    if gf > t0:
                        t0 = gf
                    if last1 and nn > 1 and gl > gf:
                        t = gf + last1 / ((nn - 1) / (gl - gf))
                        if t > tmax:
                            tmax = t
                    elif gf > tmax:
                        tmax = gf
                t_last_in = t0 + q1
                if tmax > t_last_in:
                    t_last_in = tmax
                end_exec = t_last_in + rinv
                if kind == ROW_REDUCTION:
                    # Instant single-element result after the tail.
                    end_exec += tail
                    res = (end_exec, end_exec)
                    res_end = end_exec
                    t_last_res = end_exec
                    res_n = 1
                else:
                    t_first_out = t0 + lat + rinv
                    t_last_out = t_last_in + lat + rinv
                    if cn == 1:
                        t_last_res = t_first_out
                        res_end = t_first_out + rinv
                    else:
                        dd = t_last_out - t_first_out
                        if dd < 1e-12:
                            dd = 1e-12
                        eff = (cn - 1) / dd
                        t_last_res = t_first_out + (cn - 1) / eff
                        res_end = t_first_out + cn / eff
                    res = (t_first_out, t_last_res)
                    res_n = cn
                busy_j = busy
            else:  # zero-element op (masked access with empty count)
                end_exec = start
                res = None
                res_end = start + lat
                t_last_res = 0.0
                res_n = 0
                busy_j = 0.0

            # --- retire + scoreboard updates --------------------------
            uready[u] = end_exec
            ubusy[u] += busy_j
            uops[u] += 1
            pq.append(end_exec)
            for regs in srcs:
                for r in regs:
                    if end_exec > read_end[r]:
                        read_end[r] = end_exec
            for r in dregs:
                streams[r] = res
                if res_end > write_end[r]:
                    write_end[r] = res_end
            if dscal:
                sync = (t_last_res if res_n else end_exec) \
                    + scalar_result_latency
                if sync > t_scalar:
                    t_scalar = sync
        for c in bundle.tail_seg:
            t_scalar += c

        total = t_scalar
        done = max(write_end)
        if done > total:
            total = done
        for v in uready:
            if v > total:
                total = v
        report = TimingReport(
            machine=model.name,
            cycles=total if total > 1.0 else 1.0,
            dp_flops=plan.total_flops,
            unit_busy=dict(zip(_UNIT_NAMES, ubusy)),
            unit_ops=dict(zip(_UNIT_NAMES, uops)),
            scalar_cycles=t_scalar,
            vector_instructions=plan.vector_count,
            scalar_instructions=plan.scalar_count,
            issue_stall_cycles=issue_stalls,
            mem_bytes_read=plan.bytes_read,
            mem_bytes_written=plan.bytes_written,
            dcache_hits=bundle.dcache_hits,
            dcache_misses=bundle.dcache_misses,
        )
        bundle.report = report
        return _copy_report(report)

    # ------------------------------------------------------------------
    def replay_reference(self, trace: DynamicTrace) -> TimingReport:
        model = self.model
        cfg = model.config
        frontend = ScalarFrontend(cfg.scalar, cfg.memory.l2_latency_cycles)
        depth = model.unit_queue_depth
        units = {name: Resource(name, queue_depth=depth)
                 for name in (VMFPU, VALU, SLDU, MASKU, LOAD, STORE)}
        sb = Scoreboard()

        t_scalar = 0.0
        next_vissue = 0.0
        issue_stalls = 0.0
        vec_count = 0
        scalar_count = 0
        flops = 0.0
        bytes_read = 0.0
        bytes_written = 0.0

        # Hot-loop locals: the same trace is replayed once per machine
        # model, so per-event decode (unit routing, element count,
        # register groups) is computed once and memoized on the event.
        frontend_cost = frontend.cost
        # Scalar kinds with state-independent cost (everything except the
        # D$-dependent loads/stores) resolve through one dict hit; the
        # table lives on the frontend so both paths share one model.
        fixed_scalar_cost = frontend.fixed_costs.get
        vsetvli_cycles = model.vsetvli_cycles
        issue_gap = model.issue_gap
        issue_to_arrive = model.request_latency + model.dispatch_latency
        scalar_result_latency = model.scalar_result_latency
        execute = self._execute
        event_info = self._event_info
        ctx = self._replay_ctx()

        for event in trace:
            cls = event.__class__
            if cls is ScalarEvent:
                cost = fixed_scalar_cost(event.kind)
                t_scalar += cost if cost is not None else frontend_cost(event)
                scalar_count += 1
                continue
            if cls is VsetvlEvent:
                t_scalar += vsetvli_cycles
                gap_end = t_scalar + issue_gap
                if gap_end > next_vissue:
                    next_vissue = gap_end
                scalar_count += 1
                continue
            if cls is not VectorEvent:  # pragma: no cover
                raise TimingError(f"unknown trace event {event!r}")

            vec_count += 1
            info = event.__dict__.get("_tinfo")
            if info is None:
                info = event_info(event)
            flops += info[7]
            unit = units[info[0]]

            # --- issue: one cycle of frontend work, ack gap, queue slot
            t_scalar += 1.0
            t_ready = t_scalar if t_scalar > next_vissue else next_vissue
            t_admit = unit.admit(t_ready)
            issue_stalls += t_admit - t_ready
            t_issue = t_admit
            t_scalar = t_issue
            next_vissue = t_issue + issue_gap
            arrive = t_issue + issue_to_arrive

            # --- execute on the unit
            end_scalar_sync = execute(event, info, unit, sb, arrive, ctx)
            if end_scalar_sync is not None:
                sync = end_scalar_sync + scalar_result_latency
                if sync > t_scalar:
                    t_scalar = sync

            mem_info = info[8]
            if mem_info is not None:
                if mem_info[0]:
                    bytes_written += mem_info[1]
                else:
                    bytes_read += mem_info[1]

        total = max([t_scalar, sb.all_done()]
                    + [u.ready_time for u in units.values()])
        report = TimingReport(
            machine=model.name,
            cycles=max(total, 1.0),
            dp_flops=flops,
            unit_busy={n: u.busy_cycles for n, u in units.items()},
            unit_ops={n: u.ops for n, u in units.items()},
            scalar_cycles=t_scalar,
            vector_instructions=vec_count,
            scalar_instructions=scalar_count,
            issue_stall_cycles=issue_stalls,
            mem_bytes_read=bytes_read,
            mem_bytes_written=bytes_written,
            dcache_hits=frontend.dcache.hits,
            dcache_misses=frontend.dcache.misses,
        )
        return report

    # ------------------------------------------------------------------
    # Per-event decode cache
    # ------------------------------------------------------------------
    #: Execution categories resolved into the per-event cache.
    _CAT_MEM, _CAT_RED, _CAT_SLIDE, _CAT_MASKU, _CAT_ARITH = range(5)

    @classmethod
    def _event_info(cls, event: VectorEvent) -> tuple:
        """Replay-invariant decode of one event, memoized on the event.

        Returns ``(unit_name, n, sources, dest, dest_scalar, category,
        extra)`` where ``n`` is the element count driving stream algebra,
        ``sources``/``dest`` are the register groups from :meth:`_groups`
        and ``extra`` is per-category static data (spec throughput, mask
        logicality...).  The cache lives in the (frozen) event's
        ``__dict__`` so a trace replayed against many machine models
        decodes each event exactly once.
        """
        # The decode depends only on (static instruction, vl, sew, lmul)
        # — sew reaches MemAccess.ew_bytes for indexed accesses — and the
        # same instruction usually retires with one configuration, so the
        # computed tuple is shared across all of its dynamic events.
        instr = event.instr
        per_instr = instr.__dict__.get("_tinfo_by_cfg")
        if per_instr is None:
            per_instr = {}
            instr.__dict__["_tinfo_by_cfg"] = per_instr
        cfg_key = (event.vl, event.sew, event.lmul)
        info = per_instr.get(cfg_key)
        if info is None:
            spec = event.spec
            # Scalar<->vector moves touch one element regardless of vl.
            if spec.fmt in ("fv", "xs", "sf", "sx"):
                n = 1
            else:
                n = max(1, event.vl)
            groups = cls._groups(event)
            if spec.is_mem:
                cat, extra = cls._CAT_MEM, None
            elif spec.is_reduction:
                cat, extra = cls._CAT_RED, None
            elif spec.is_slide:
                cat, extra = cls._CAT_SLIDE, spec.throughput
            elif spec.unit is ExecUnit.MASKU:
                cat, extra = cls._CAT_MASKU, spec.mask_logical
            else:
                cat, extra = cls._CAT_ARITH, (spec.throughput,
                                              spec.unit is ExecUnit.VMFPU)
            mem = event.mem
            info = (cls._unit_name(event), n, tuple(groups.sources),
                    groups.dest, groups.dest_scalar, cat, extra,
                    event.flops,
                    (mem.is_store, mem.total_bytes) if mem is not None
                    else None)
            per_instr[cfg_key] = info
        event.__dict__["_tinfo"] = info
        return info

    # ------------------------------------------------------------------
    # Unit selection
    # ------------------------------------------------------------------
    @staticmethod
    def _unit_name(event: VectorEvent) -> str:
        spec = event.spec
        if spec.is_load:
            return LOAD
        if spec.is_store:
            return STORE
        return {
            ExecUnit.VMFPU: VMFPU,
            ExecUnit.VALU: VALU,
            ExecUnit.SLDU: SLDU,
            ExecUnit.MASKU: MASKU,
        }[spec.unit]

    # ------------------------------------------------------------------
    # Register group extraction
    # ------------------------------------------------------------------
    @staticmethod
    def _groups(event: VectorEvent) -> _Groups:
        spec = event.spec
        instr = event.instr
        lmul = event.lmul
        sources: list[tuple[int, int]] = []
        dest: tuple[int, int] | None = None
        dest_scalar = False

        src_emul = 2 * lmul if spec.narrows else lmul
        for role in ("vs1", "vs2", "vs3"):
            reg = instr.get(role)
            if reg is not None:
                emul = src_emul if role != "vs1" or spec.fmt != "red_vs" else 1
                sources.append((reg.index, emul))
        # FMA accumulators read the destination.
        if spec.fmt in ("fma_vv", "fma_vx", "fma_vf"):
            vd = instr.get("vd")
            if vd is not None:
                acc_emul = 2 * lmul if spec.widens else lmul
                sources.append((vd.index, acc_emul))
        if instr.masked:
            sources.append((0, 1))

        vd = instr.get("vd")
        if vd is not None:
            if spec.mask_producer or spec.is_reduction:
                dest = (vd.index, 1)
            elif spec.widens:
                dest = (vd.index, min(8, 2 * lmul))
            else:
                dest = (vd.index, lmul)
        if spec.scalar_result:
            dest_scalar = True
        return _Groups(sources=sources, dest=dest, dest_scalar=dest_scalar)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _replay_ctx(self) -> dict:
        """Flatten the model's per-SEW rates and fixed latencies into one
        dict, rebuilt per replay: the hot loop then pays dict hits instead
        of method/property chains for every event."""
        model = self.model
        return {
            "vfu": {s: model.vfu_rate(s) for s in (8, 16, 32, 64)},
            "sldu": {s: model.sldu_rate(s) for s in (8, 16, 32, 64)},
            "red_tail": {s: model.reduction_tail_cycles(s)
                         for s in (8, 16, 32, 64)},
            "masku_bit_rate": model.masku_bit_rate(),
            "masku_latency": model.masku_latency,
            "fpu_latency": model.fpu_latency,
            "valu_latency": model.valu_latency,
            "load_latency": model.load_first_data_latency,
            "store_latency": model.store_pipe_latency,
            "mem_rates": {},  # (pattern, ew_bytes, is_store) -> rate, lazy
        }

    def _execute(self, event: VectorEvent, info: tuple, unit: Resource,
                 sb: Scoreboard, arrive: float, ctx: dict) -> float | None:
        """Run one vector instruction; returns a scalar-sync time if the
        scalar core must wait for the result."""
        _, n, sources, dest, dest_scalar, cat, extra = info[:7]
        source_stream = sb.source_stream
        src_streams = [source_stream(base, emul, n) for base, emul in sources]

        waw = sb.waw_war_bound(*dest) if dest else 0.0
        earliest = arrive if arrive > waw else waw

        rt = unit.ready_time
        start = rt if rt > earliest else earliest
        is_mem = cat == self._CAT_MEM
        if is_mem:
            end_exec, result, busy = self._mem_op(event, unit, src_streams,
                                                  earliest, n, ctx)
        elif cat == self._CAT_RED:
            rate = ctx["vfu"][event.sew]
            end_intra, _ = consume(start, rate, n, src_streams, latency=0.0)
            tail = ctx["red_tail"][event.sew]
            end_exec = end_intra + tail
            result = Stream.instant(end_exec, 1)
            busy = n / rate
        elif cat == self._CAT_SLIDE:
            rate = ctx["sldu"][event.sew] * extra
            latency = self.model.slide_extra_cycles(event.slide_amount,
                                                    event.vl)
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=latency)
            busy = n / rate
        elif cat == self._CAT_MASKU:
            if extra:  # mask-logical op
                rate = ctx["masku_bit_rate"]
            else:
                rate = ctx["vfu"][event.sew]
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=ctx["masku_latency"])
            busy = n / rate
        else:
            throughput, is_fpu = extra
            rate = ctx["vfu"][event.sew] * throughput
            latency = ctx["fpu_latency"] if is_fpu else ctx["valu_latency"]
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=latency)
            busy = n / rate

        unit.retire(end_exec - max(busy, 0.0) if is_mem else start,
                    end_exec, busy)
        for base, emul in sources:
            sb.record_read(base, emul, end_exec)
        if dest is not None:
            sb.record_write(*dest, result)
        if dest_scalar:
            return result.t_last if result.n else end_exec
        return None

    # ------------------------------------------------------------------
    def _mem_op(self, event: VectorEvent, unit: Resource,
                src_streams: tuple[Stream, ...], earliest: float,
                n: int, ctx: dict) -> tuple[float, Stream, float]:
        mem: MemAccess = event.mem  # type: ignore[assignment]
        if mem is None:
            raise TimingError(f"memory op {event.instr} lacks a MemAccess")
        rate_key = (mem.pattern, mem.ew_bytes, mem.is_store)
        rate = ctx["mem_rates"].get(rate_key)
        if rate is None:
            rate = self.model.mem_rate(mem.pattern, max(1, mem.ew_bytes),
                                       mem.is_store)
            ctx["mem_rates"][rate_key] = rate
        # Misaligned unit-stride requests pay one extra align-stage pass.
        align_pen = 0.0
        if mem.pattern is MemPattern.UNIT and mem.base % 64:
            align_pen = 1.0
        start = unit.start(earliest)
        if mem.is_store:
            latency = ctx["store_latency"] + align_pen
        else:
            latency = ctx["load_latency"] + align_pen
        count = mem.count if mem.pattern is MemPattern.MASK else n
        end_exec, result = consume(start, rate, count, src_streams,
                                   latency=latency)
        busy = count / rate
        return end_exec, result, busy
    # NOTE: unit.retire() in _execute receives (end_exec - busy) as the
    # start bound for memory ops so port occupancy equals the transfer
    # time even when chaining stretched the op.
