"""The timing engine: replays a dynamic trace against a machine model.

One pass over the trace, O(1) work per instruction regardless of vector
length.  The mechanisms modelled, and where the paper's effects come from:

* **Issue path** — CVA6 issues one vector instruction per cycle at best,
  gated by the acknowledgement round trip (``issue_gap``; REQI register
  cuts lengthen it) and by per-unit instruction queues (back-pressure
  when a unit falls behind).
* **Chaining** — consumers start when the producer's first elements are
  available and are rate-limited by the slower party (stream algebra in
  :mod:`repro.timing.stream`).
* **Memory** — separate load and store ports with the configured
  bandwidth; loads see the request-to-first-data latency of the memory
  interface (GLSU pipeline depth + L2 latency on AraXL).
* **Slides** — local shuffle at lane rate plus the ring penalty on AraXL.
* **Reductions** — streamed intra-lane phase plus the configuration-
  dependent tail (inter-lane tree, inter-cluster ring tree, SIMD stage),
  which is what bends the Fig 6 reduction curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TimingError
from ..functional.trace import (DynamicTrace, MemAccess, ScalarEvent,
                                VectorEvent, VsetvlEvent)
from ..isa.instructions import ExecUnit, MemPattern
from ..uarch.common import MachineModel
from .frontend import ScalarFrontend
from .report import TimingReport
from .resources import Resource
from .scoreboard import Scoreboard
from .stream import Stream, consume

#: Unit resource names.
VMFPU, VALU, SLDU, MASKU, LOAD, STORE = (
    "vmfpu", "valu", "sldu", "masku", "vlsu_load", "vlsu_store")


@dataclass
class _Groups:
    """Register groups an instruction touches (base, emul) pairs."""

    sources: list[tuple[int, int]]
    dest: tuple[int, int] | None
    dest_scalar: bool = False


class TimingEngine:
    def __init__(self, model: MachineModel) -> None:
        self.model = model

    # ------------------------------------------------------------------
    def replay(self, trace: DynamicTrace) -> TimingReport:
        model = self.model
        cfg = model.config
        frontend = ScalarFrontend(cfg.scalar, cfg.memory.l2_latency_cycles)
        depth = model.unit_queue_depth
        units = {name: Resource(name, queue_depth=depth)
                 for name in (VMFPU, VALU, SLDU, MASKU, LOAD, STORE)}
        sb = Scoreboard()

        t_scalar = 0.0
        next_vissue = 0.0
        issue_stalls = 0.0
        vec_count = 0
        scalar_count = 0
        flops = 0.0
        bytes_read = 0.0
        bytes_written = 0.0

        for event in trace:
            if isinstance(event, ScalarEvent):
                t_scalar += frontend.cost(event)
                scalar_count += 1
                continue
            if isinstance(event, VsetvlEvent):
                t_scalar += model.vsetvli_cycles
                next_vissue = max(next_vissue, t_scalar + model.issue_gap)
                scalar_count += 1
                continue
            if not isinstance(event, VectorEvent):  # pragma: no cover
                raise TimingError(f"unknown trace event {event!r}")

            vec_count += 1
            flops += event.flops
            unit = units[self._unit_name(event)]

            # --- issue: one cycle of frontend work, ack gap, queue slot
            t_scalar += 1.0
            t_ready = max(t_scalar, next_vissue)
            t_admit = unit.admit(t_ready)
            issue_stalls += t_admit - t_ready
            t_issue = t_admit
            t_scalar = t_issue
            next_vissue = t_issue + model.issue_gap
            arrive = t_issue + model.request_latency + model.dispatch_latency

            # --- execute on the unit
            end_scalar_sync = self._execute(event, unit, sb, arrive)
            if end_scalar_sync is not None:
                t_scalar = max(
                    t_scalar, end_scalar_sync + model.scalar_result_latency)

            if event.mem is not None:
                if event.mem.is_store:
                    bytes_written += event.mem.total_bytes
                else:
                    bytes_read += event.mem.total_bytes

        total = max([t_scalar, sb.all_done()]
                    + [u.ready_time for u in units.values()])
        report = TimingReport(
            machine=model.name,
            cycles=max(total, 1.0),
            dp_flops=flops,
            unit_busy={n: u.busy_cycles for n, u in units.items()},
            unit_ops={n: u.ops for n, u in units.items()},
            scalar_cycles=t_scalar,
            vector_instructions=vec_count,
            scalar_instructions=scalar_count,
            issue_stall_cycles=issue_stalls,
            mem_bytes_read=bytes_read,
            mem_bytes_written=bytes_written,
            dcache_hits=frontend.dcache.hits,
            dcache_misses=frontend.dcache.misses,
        )
        return report

    # ------------------------------------------------------------------
    # Unit selection
    # ------------------------------------------------------------------
    @staticmethod
    def _unit_name(event: VectorEvent) -> str:
        spec = event.spec
        if spec.is_load:
            return LOAD
        if spec.is_store:
            return STORE
        return {
            ExecUnit.VMFPU: VMFPU,
            ExecUnit.VALU: VALU,
            ExecUnit.SLDU: SLDU,
            ExecUnit.MASKU: MASKU,
        }[spec.unit]

    # ------------------------------------------------------------------
    # Register group extraction
    # ------------------------------------------------------------------
    @staticmethod
    def _groups(event: VectorEvent) -> _Groups:
        spec = event.spec
        instr = event.instr
        lmul = event.lmul
        sources: list[tuple[int, int]] = []
        dest: tuple[int, int] | None = None
        dest_scalar = False

        src_emul = 2 * lmul if spec.narrows else lmul
        for role in ("vs1", "vs2", "vs3"):
            reg = instr.get(role)
            if reg is not None:
                emul = src_emul if role != "vs1" or spec.fmt != "red_vs" else 1
                sources.append((reg.index, emul))
        # FMA accumulators read the destination.
        if spec.fmt in ("fma_vv", "fma_vx", "fma_vf"):
            vd = instr.get("vd")
            if vd is not None:
                acc_emul = 2 * lmul if spec.widens else lmul
                sources.append((vd.index, acc_emul))
        if instr.masked:
            sources.append((0, 1))

        vd = instr.get("vd")
        if vd is not None:
            if spec.mask_producer or spec.is_reduction:
                dest = (vd.index, 1)
            elif spec.widens:
                dest = (vd.index, min(8, 2 * lmul))
            else:
                dest = (vd.index, lmul)
        if spec.scalar_result:
            dest_scalar = True
        return _Groups(sources=sources, dest=dest, dest_scalar=dest_scalar)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, event: VectorEvent, unit: Resource, sb: Scoreboard,
                 arrive: float) -> float | None:
        """Run one vector instruction; returns a scalar-sync time if the
        scalar core must wait for the result."""
        model = self.model
        spec = event.spec
        # Scalar<->vector moves touch a single element regardless of vl.
        if spec.fmt in ("fv", "xs", "sf", "sx"):
            n = 1
        else:
            n = max(1, event.vl)
        groups = self._groups(event)
        src_streams = tuple(
            sb.source_stream(base, emul, n) for base, emul in groups.sources)

        waw = sb.waw_war_bound(*groups.dest) if groups.dest else 0.0
        earliest = max(arrive, waw)

        if spec.is_mem:
            end_exec, result, busy = self._mem_op(event, unit, src_streams,
                                                  earliest, n)
        elif spec.is_reduction:
            rate = model.vfu_rate(event.sew)
            start = unit.start(earliest)
            end_intra, _ = consume(start, rate, n, src_streams, latency=0.0)
            tail = model.reduction_tail_cycles(event.sew)
            end_exec = end_intra + tail
            result = Stream.instant(end_exec, 1)
            busy = n / rate
        elif spec.is_slide:
            rate = model.sldu_rate(event.sew) * spec.throughput
            latency = model.slide_extra_cycles(event.slide_amount, event.vl)
            start = unit.start(earliest)
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=latency)
            busy = n / rate
        elif spec.unit is ExecUnit.MASKU:
            if spec.mask_logical:
                rate = model.masku_bit_rate()
            else:
                rate = model.vfu_rate(event.sew)
            start = unit.start(earliest)
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=model.masku_latency)
            busy = n / rate
        else:
            rate = model.vfu_rate(event.sew) * spec.throughput
            latency = (model.fpu_latency if spec.unit is ExecUnit.VMFPU
                       else model.valu_latency)
            start = unit.start(earliest)
            end_exec, result = consume(start, rate, n, src_streams,
                                       latency=latency)
            busy = n / rate

        unit.retire(start if not spec.is_mem else end_exec - max(busy, 0.0),
                    end_exec, busy)
        for base, emul in groups.sources:
            sb.record_read(base, emul, end_exec)
        if groups.dest is not None:
            sb.record_write(*groups.dest, result)
        if groups.dest_scalar:
            return result.t_last if result.n else end_exec
        return None

    # ------------------------------------------------------------------
    def _mem_op(self, event: VectorEvent, unit: Resource,
                src_streams: tuple[Stream, ...], earliest: float,
                n: int) -> tuple[float, Stream, float]:
        model = self.model
        mem: MemAccess = event.mem  # type: ignore[assignment]
        if mem is None:
            raise TimingError(f"memory op {event.instr} lacks a MemAccess")
        rate = model.mem_rate(mem.pattern, max(1, mem.ew_bytes), mem.is_store)
        # Misaligned unit-stride requests pay one extra align-stage pass.
        align_pen = 0.0
        if mem.pattern is MemPattern.UNIT and mem.base % 64:
            align_pen = 1.0
        start = unit.start(earliest)
        if mem.is_store:
            latency = model.store_pipe_latency + align_pen
        else:
            latency = model.load_first_data_latency + align_pen
        count = mem.count if mem.pattern is MemPattern.MASK else n
        end_exec, result = consume(start, rate, count, src_streams,
                                   latency=latency)
        busy = count / rate
        return end_exec, result, busy
    # NOTE: unit.retire() in _execute receives (end_exec - busy) as the
    # start bound for memory ops so port occupancy equals the transfer
    # time even when chaining stretched the op.
