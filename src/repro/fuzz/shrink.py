"""Minimizing shrink loop for failing fuzz cases.

When a property fails, the raw reproducer is a ~40-chunk random program;
:func:`shrink_case` reduces it to a minimal failing variant by
structure-aware delta debugging over the case's chunks:

1. **prefix truncation** — binary-search the shortest failing prefix of
   the generated middle chunks (the preamble and the self-contained
   epilogue are always kept, so every candidate is a valid program);
2. **chunk deletion** — repeated single-chunk deletion passes over the
   survivors until a fixpoint (no single deletion still fails).

A candidate "fails" when ``predicate`` returns a truthy value (usually
the :class:`~repro.fuzz.properties.PropertyFailure` re-raised by
re-checking); any *other* exception from the predicate — e.g. an
``IllegalInstructionError`` after deleting the ``vsetvli`` an FP op
relied on — counts as *not reproducing*, so the shrinker never swaps
the original failure for an unrelated crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .gen import FuzzCase, case_from_chunks


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    original: FuzzCase
    minimized: FuzzCase
    failure: object          #: predicate's verdict on the minimized case
    attempts: int            #: candidate programs evaluated
    removed_chunks: int      #: chunks dropped from the original

    def report(self) -> str:
        """Human-readable reproducer summary."""
        case = self.minimized
        lines = [
            f"minimal reproducer for seed {case.seed} "
            f"(size={case.size}, features={case.features!r}, "
            f"max_avl={case.max_avl}):",
            f"  chunks: {len(self.original.chunks)} -> "
            f"{len(case.chunks)} ({self.removed_chunks} removed, "
            f"{self.attempts} candidates tried)",
            f"  instructions: {len(self.original.program)} -> "
            f"{len(case.program)}",
            f"  failure: {self.failure}",
            "  program:",
        ]
        lines += [f"    {line}" for line in case.program.listing().split("\n")]
        return "\n".join(lines)


def _failure(predicate: Callable, case: FuzzCase):
    """Predicate verdict; non-PropertyFailure crashes = not reproducing."""
    try:
        return predicate(case)
    except AssertionError as exc:  # includes PropertyFailure raised inline
        return exc
    # repro-lint: disable=RL201  a candidate crashing off-property (e.g.
    # an FP op whose vsetvli was deleted) is by definition *not* a
    # reproduction of the original failure; classifying it as "does not
    # reproduce" is the swallow the shrinker needs.
    except Exception:
        return None


def shrink_case(case: FuzzCase, predicate: Callable,
                max_attempts: int = 200) -> ShrinkResult:
    """Minimize ``case`` while ``predicate`` keeps failing.

    ``predicate(candidate)`` must return a truthy failure description
    (or raise ``AssertionError``) when the candidate still reproduces
    the original failure, and a falsy value when it does not.
    ``max_attempts`` bounds the number of candidate evaluations; the
    best case found so far is returned when the budget runs out.
    """
    failure = _failure(predicate, case)
    if not failure:
        raise ValueError("predicate does not fail on the original case")
    prefix = [chunk for chunk in case.chunks if chunk[0] == "pre"]
    suffix = [chunk for chunk in case.chunks if chunk[0] == "epi"]
    middle = [chunk for chunk in case.chunks if chunk[0] in ("cfg", "op")]
    attempts = 0

    def try_middle(candidate_middle):
        nonlocal attempts
        attempts += 1
        candidate = case_from_chunks(
            case, prefix + list(candidate_middle) + suffix)
        return candidate, _failure(predicate, candidate)

    # Phase 1: shortest failing prefix of the middle (binary search).
    lo, hi = 0, len(middle)  # middle[:hi] fails; middle[:lo-1] may not
    while lo < hi and attempts < max_attempts:
        mid = (lo + hi) // 2
        _, verdict = try_middle(middle[:mid])
        if verdict:
            hi = mid
        else:
            lo = mid + 1
    middle = middle[:hi]

    # Phase 2: single-chunk deletion passes to a fixpoint.
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        index = 0
        while index < len(middle) and attempts < max_attempts:
            _, verdict = try_middle(middle[:index] + middle[index + 1:])
            if verdict:
                del middle[index]
                changed = True
            else:
                index += 1

    minimized, failure = try_middle(middle)
    if not failure:  # paranoia: re-verify the final candidate
        minimized, failure = case, _failure(predicate, case)
    removed = len(case.chunks) - len(minimized.chunks)
    return ShrinkResult(original=case, minimized=minimized, failure=failure,
                        attempts=attempts, removed_chunks=removed)
