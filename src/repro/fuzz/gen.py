"""``ProgramGen``: seeded generation of valid, machine-independent RVV programs.

Programs are emitted as a sequence of **chunks** — self-contained runs
of instructions (one logical operation each: a config change, a compute
op, a memory op with its own address setup, a whole counted loop) — so
the shrink loop (:mod:`repro.fuzz.shrink`) can drop chunks without ever
producing an invalid program.  The invariants that keep every emitted
program executable on *any* registry machine:

* AVL is always a literal in ``[1, max_avl]``, so ``vl <= max_avl``
  regardless of VLEN and every buffer bound below is machine-free;
* data register groups live at bases ``>= 8`` aligned to the *current*
  EMUL (``v0`` is the mask selector, ``v1``-``v3`` mask scratch,
  ``v4``-``v7`` reduction singles), widening destinations align to
  ``2*LMUL`` and widen/narrow ops only fire when ``2*LMUL <= 8`` and
  the doubled SEW exists;
* FP ops only fire while SEW is 32 or 64; float->int conversions are
  excluded (NaN payloads would hit platform-defined casts);
* memory ops load from the A/B/S regions and store only to S, with the
  address immediately ``li``-ed from a window that already subtracts
  the worst-case span (``max_avl`` elements at the largest stride);
* loops are counted down from a literal, so termination is structural,
  and loop bodies never reconfigure SEW/LMUL (a reconfig would make the
  second iteration's op mix illegal under the new type).

Everything derives from :class:`~repro.fuzz.rng.FuzzRng`, never from
``random`` or the clock, so a ``(seed, size, features, max_avl)``
quadruple names one program forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.asm import Assembler
from ..isa.program import Program
from .rng import FuzzRng

#: Every generator feature flag, in canonical order.
FEATURES = ("arith", "fp", "mask", "reduce", "permute", "mem_unit",
            "mem_strided", "mem_indexed", "scalar", "loops", "vsetvl")

#: Fixed machine-independent memory map (bytes).  A/B hold seeded f64
#: input data, S is the only store target, OUT receives the epilogue's
#: architectural-state dump.  Everything fits far below the functional
#: memory's 32 MiB default.
REGIONS = {
    "A": (0x0000, 8192),
    "B": (0x2000, 8192),
    "S": (0x4000, 8192),
    "OUT": (0x6000, 4096),
}
TOTAL_BYTES = 0x7000

#: Epilogue vector config: a literal AVL far below any registry
#: machine's VLMAX at SEW=64/LMUL=8, so the dump has the same element
#: count (and OUT the same byte layout) on every machine.
EPILOGUE_AVL = 32

_X_POOL = tuple(f"x{i}" for i in range(10, 26))
_F_POOL = tuple(f"f{i}" for i in range(8))
_MASK_REGS = ("v0", "v1", "v2", "v3")
_SINGLE_REGS = ("v4", "v5", "v6", "v7")


def parse_features(spec: str) -> frozenset:
    """Parse a feature spec: ``"all"`` or a comma-joined subset."""
    if spec == "all":
        return frozenset(FEATURES)
    names = [part.strip() for part in spec.split(",") if part.strip()]
    unknown = sorted(set(names) - set(FEATURES))
    if unknown:
        raise ValueError(
            f"unknown fuzz feature(s) {', '.join(unknown)}; "
            f"choose from {', '.join(FEATURES)}")
    if not names:
        raise ValueError("feature spec selects nothing")
    return frozenset(names)


def canonical_features(spec: str) -> str:
    """The canonical spelling of a feature spec (stable cache keys)."""
    enabled = parse_features(spec)
    if enabled == frozenset(FEATURES):
        return "all"
    return ",".join(name for name in FEATURES if name in enabled)


@dataclass(frozen=True)
class FuzzCase:
    """One generated program plus the identity that regenerates it."""

    seed: int
    size: int
    features: str       #: canonical feature spec
    max_avl: int
    chunks: tuple       #: ``(kind, ops)`` pairs; kinds: pre/cfg/op/epi
    program: Program

    @property
    def op_chunks(self) -> tuple:
        """Indices of chunks the shrink loop may drop ("cfg"/"op")."""
        return tuple(i for i, (kind, _) in enumerate(self.chunks)
                     if kind in ("cfg", "op"))


def assemble(chunks, name: str) -> Program:
    """Replay recorded emit-ops onto a fresh assembler."""
    asm = Assembler(name)
    for _, ops in chunks:
        for mnemonic, args, kwargs in ops:
            if mnemonic == "label":
                asm.label(*args)
            else:
                getattr(asm, mnemonic)(*args, **dict(kwargs))
    return asm.build()


def case_from_chunks(case: FuzzCase, chunks) -> FuzzCase:
    """A variant of ``case`` rebuilt from a chunk subset (shrinking)."""
    chunks = tuple(chunks)
    return FuzzCase(seed=case.seed, size=case.size, features=case.features,
                    max_avl=case.max_avl, chunks=chunks,
                    program=assemble(chunks, case.program.name))


def input_image(seed: int) -> bytes:
    """Deterministic input bytes for the A and B regions of ``seed``."""
    rng = FuzzRng(seed, "data")
    count = (REGIONS["A"][1] + REGIONS["B"][1]) // 8
    return rng.floats(count).tobytes()


class ProgramGen:
    """Seeded deterministic random RVV program generator.

    ``generate()`` returns a :class:`FuzzCase` whose program is valid on
    every machine the VLEN law admits; the same constructor arguments
    always return the identical case, bit for bit.
    """

    def __init__(self, seed: int, size: int = 40, features: str = "all",
                 max_avl: int = 64) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 1 <= max_avl <= 256:
            raise ValueError(f"max_avl must be in [1, 256], got {max_avl}")
        self.seed = int(seed)
        self.size = int(size)
        self.features = parse_features(features)
        self.features_spec = canonical_features(features)
        self.max_avl = int(max_avl)
        self.rng = FuzzRng(self.seed, "ops")
        # Tracked architectural generation state.
        self.sew = 64
        self.lmul = 1
        self.mask_ready = False
        self.depth = 0
        self._labels = 0

    # ------------------------------------------------------------------
    # Random operand helpers
    # ------------------------------------------------------------------
    def _group(self, emul: int | None = None) -> str:
        """A data register-group base aligned to ``emul`` (default LMUL)."""
        step = emul if emul is not None else self.lmul
        return f"v{self.rng.choice(range(8, 33 - step, step))}"

    def _xreg(self) -> str:
        return self.rng.choice(_X_POOL)

    def _freg(self) -> str:
        return self.rng.choice(_F_POOL)

    def _mask(self) -> str:
        return self.rng.choice(_MASK_REGS)

    def _masked(self, values: dict | None = None) -> dict:
        """Maybe set ``masked=True`` (needs the mask feature + live v0)."""
        kwargs = dict(values or ())
        if "mask" in self.features and self.mask_ready \
                and self.rng.chance(1, 4):
            kwargs["masked"] = True
        return kwargs

    def _load_region(self) -> tuple[int, int]:
        return REGIONS[self.rng.choice(("A", "B", "S"))]

    def _addr(self, region: tuple[int, int], span: int) -> int:
        """An 8-aligned address leaving ``span`` bytes inside ``region``."""
        base, nbytes = region
        slots = (nbytes - span) // 8
        return base + 8 * self.rng.below(max(1, slots + 1))

    # ------------------------------------------------------------------
    # Chunk emitters (each returns a list of emit-ops)
    # ------------------------------------------------------------------
    def _emit_vsetvl(self) -> list:
        self.sew = self.rng.choice((8, 16, 32, 64))
        self.lmul = self.rng.choice((1, 2, 4, 8))
        avl = self.rng.randint(1, self.max_avl)
        return [("li", ("x1", avl), {}),
                ("vsetvli", ("x2", "x1"),
                 {"sew": self.sew, "lmul": self.lmul})]

    _INT_BASES = (("vadd", "vxi"), ("vsub", "vx"), ("vrsub", "xi"),
                  ("vand", "vxi"), ("vor", "vxi"), ("vxor", "vxi"),
                  ("vsll", "vxi"), ("vsrl", "vxi"), ("vsra", "vxi"),
                  ("vmin", "vx"), ("vmax", "vx"), ("vminu", "vx"),
                  ("vmaxu", "vx"), ("vmul", "vx"), ("vmulh", "vx"),
                  ("vdiv", "vx"), ("vrem", "vx"))

    def _emit_int_bin(self) -> list:
        base, forms = self.rng.choice(self._INT_BASES)
        form = self.rng.choice(forms)
        vd, vs2 = self._group(), self._group()
        if form == "v":
            return [(f"{base}_vv", (vd, vs2, self._group()), self._masked())]
        if form == "x":
            return [(f"{base}_vx", (vd, vs2, self._xreg()), self._masked())]
        if base in ("vsll", "vsrl", "vsra"):
            imm = self.rng.below(self.sew)
        else:
            imm = self.rng.randint(-16, 15)
        return [(f"{base}_vi", (vd, vs2, imm), self._masked())]

    def _emit_int_fma(self) -> list:
        mnem = self.rng.choice(("vmacc_vv", "vmacc_vx", "vnmsac_vv"))
        vd, vs2 = self._group(), self._group()
        op1 = self._xreg() if mnem.endswith("_vx") else self._group()
        return [(mnem, (vd, op1, vs2), self._masked())]

    def _emit_int_widen(self) -> list:
        wide = 2 * self.lmul
        if self.rng.chance(1, 2):
            mnem = self.rng.choice(("vwadd_vv", "vwmul_vv"))
            return [(mnem, (self._group(wide), self._group(), self._group()),
                     self._masked())]
        if self.rng.chance(1, 2):
            return [("vnsrl_wx", (self._group(), self._group(wide),
                                  self._xreg()), self._masked())]
        return [("vnsrl_wi", (self._group(), self._group(wide),
                              self.rng.below(2 * self.sew)), self._masked())]

    _FP_BASES = ("vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax",
                 "vfsgnj", "vfsgnjn", "vfsgnjx")
    _FP_FMAS = ("vfmacc", "vfnmacc", "vfmsac", "vfnmsac",
                "vfmadd", "vfmsub", "vfnmadd", "vfnmsub")

    def _emit_fp_bin(self) -> list:
        vd, vs2 = self._group(), self._group()
        if self.rng.chance(1, 3):
            base = self.rng.choice(self._FP_BASES + ("vfrsub", "vfrdiv"))
            return [(f"{base}_vf", (vd, vs2, self._freg()), self._masked())]
        base = self.rng.choice(self._FP_BASES)
        return [(f"{base}_vv", (vd, vs2, self._group()), self._masked())]

    def _emit_fp_fma(self) -> list:
        base = self.rng.choice(self._FP_FMAS)
        vd, vs2 = self._group(), self._group()
        if self.rng.chance(1, 3):
            return [(f"{base}_vf", (vd, self._freg(), vs2), self._masked())]
        return [(f"{base}_vv", (vd, self._group(), vs2), self._masked())]

    def _emit_fp_unary(self) -> list:
        mnem = self.rng.choice(("vfsqrt_v", "vfabs_v", "vfneg_v",
                                "vfcvt_f_x_v"))
        return [(mnem, (self._group(), self._group()), self._masked())]

    def _emit_fp_widen(self) -> list:
        wide = 2 * self.lmul
        roll = self.rng.below(4)
        if roll == 0:
            mnem = self.rng.choice(("vfwadd_vv", "vfwmul_vv"))
            return [(mnem, (self._group(wide), self._group(), self._group()),
                     self._masked())]
        if roll == 1:
            if self.rng.chance(1, 2):
                return [("vfwmacc_vf", (self._group(wide), self._freg(),
                                        self._group()), self._masked())]
            return [("vfwmacc_vv", (self._group(wide), self._group(),
                                    self._group()), self._masked())]
        if roll == 2:
            return [("vfwcvt_f_f_v", (self._group(wide), self._group()),
                     self._masked())]
        return [("vfncvt_f_f_w", (self._group(), self._group(wide)),
                 self._masked())]

    _INT_CMPS = (("vmseq", "vxi"), ("vmsne", "vxi"), ("vmslt", "vx"),
                 ("vmsle", "vxi"), ("vmsgt", "xi"), ("vmsltu", "vx"),
                 ("vmsleu", "vxi"))
    _FP_CMPS = (("vmfeq", "vf"), ("vmfne", "vf"), ("vmflt", "vf"),
                ("vmfle", "vf"), ("vmfgt", "f"), ("vmfge", "f"))

    def _emit_mask_make(self) -> list:
        vd = self._mask()
        if vd == "v0":
            self.mask_ready = True
        vs2 = self._group()
        if "fp" in self.features and self.sew >= 32 \
                and self.rng.chance(1, 3):
            base, forms = self.rng.choice(self._FP_CMPS)
            if self.rng.choice(forms) == "v":
                return [(f"{base}_vv", (vd, vs2, self._group()), {})]
            return [(f"{base}_vf", (vd, vs2, self._freg()), {})]
        base, forms = self.rng.choice(self._INT_CMPS)
        form = self.rng.choice(forms)
        if form == "v":
            return [(f"{base}_vv", (vd, vs2, self._group()), {})]
        if form == "x":
            return [(f"{base}_vx", (vd, vs2, self._xreg()), {})]
        return [(f"{base}_vi", (vd, vs2, self.rng.randint(-16, 15)), {})]

    def _emit_mask_logic(self) -> list:
        mnem = self.rng.choice(("vmand_mm", "vmor_mm", "vmxor_mm",
                                "vmnand_mm", "vmnor_mm", "vmxnor_mm",
                                "vmandn_mm", "vmorn_mm"))
        vd = self._mask()
        if vd == "v0":
            self.mask_ready = True
        return [(mnem, (vd, self._mask(), self._mask()), {})]

    def _emit_mask_unary(self) -> list:
        mnem = self.rng.choice(("vmsbf_m", "vmsif_m", "vmsof_m"))
        vd = self._mask()
        if vd == "v0":
            self.mask_ready = True
        return [(mnem, (vd, self._mask()), {})]

    def _emit_mask_scalar(self) -> list:
        mnem = self.rng.choice(("vcpop_m", "vfirst_m"))
        return [(mnem, (self._xreg(), self._mask()), {})]

    def _emit_iota(self) -> list:
        if self.rng.chance(1, 2):
            return [("viota_m", (self._group(), self._mask()), {})]
        return [("vid_v", (self._group(),), self._masked())]

    _INT_REDS = ("vredsum_vs", "vredmax_vs", "vredmin_vs",
                 "vredand_vs", "vredor_vs", "vredxor_vs")
    _FP_REDS = ("vfredusum_vs", "vfredosum_vs", "vfredmax_vs",
                "vfredmin_vs")

    def _emit_reduce(self) -> list:
        ops = []
        vseed = self.rng.choice(_SINGLE_REGS)
        if self.rng.chance(1, 2):
            ops.append(("vmv_s_x", (vseed, self._xreg()), {}))
        if "fp" in self.features and self.sew >= 32 \
                and self.rng.chance(1, 2):
            mnem = self.rng.choice(self._FP_REDS)
        else:
            mnem = self.rng.choice(self._INT_REDS)
        ops.append((mnem, (self.rng.choice(_SINGLE_REGS), self._group(),
                           vseed), {}))
        return ops

    def _emit_slide(self) -> list:
        mnem = self.rng.choice(("vslideup", "vslidedown"))
        vd, vs2 = self._group(), self._group()
        if self.rng.chance(1, 2):
            return [("li", ("x4", self.rng.below(self.max_avl + 1)), {}),
                    (f"{mnem}_vx", (vd, vs2, "x4"), self._masked())]
        return [(f"{mnem}_vi", (vd, vs2, self.rng.below(16)), self._masked())]

    def _emit_slide1(self) -> list:
        if "fp" in self.features and self.sew >= 32 \
                and self.rng.chance(1, 3):
            mnem = self.rng.choice(("vfslide1up_vf", "vfslide1down_vf"))
            return [(mnem, (self._group(), self._group(), self._freg()),
                     self._masked())]
        mnem = self.rng.choice(("vslide1up_vx", "vslide1down_vx"))
        return [(mnem, (self._group(), self._group(), self._xreg()),
                 self._masked())]

    def _emit_gather(self) -> list:
        if self.rng.chance(1, 2):
            return [("vrgather_vv", (self._group(), self._group(),
                                     self._group()), self._masked())]
        return [("vcompress_vm", (self._group(), self._group(),
                                  self._mask()), {})]

    def _emit_move(self) -> list:
        roll = self.rng.below(8)
        if roll == 0:
            return [("vmv_v_v", (self._group(), self._group()),
                     self._masked())]
        if roll == 1:
            return [("vmv_v_x", (self._group(), self._xreg()),
                     self._masked())]
        if roll == 2:
            return [("vmv_v_i", (self._group(), self.rng.randint(-16, 15)),
                     self._masked())]
        if roll == 3 and "fp" in self.features and self.sew >= 32:
            return [("vfmv_v_f", (self._group(), self._freg()),
                     self._masked())]
        if roll == 4:
            return [("vmv_s_x", (self._group(), self._xreg()), {})]
        if roll == 5:
            return [("vmv_x_s", (self._xreg(), self._group()), {})]
        if roll == 6 and "fp" in self.features and self.sew >= 32:
            if self.rng.chance(1, 2):
                return [("vfmv_s_f", (self._group(), self._freg()), {})]
            return [("vfmv_f_s", (self._freg(), self._group()), {})]
        return [("vmv_v_v", (self._group(), self._group()), self._masked())]

    def _emit_merge(self) -> list:
        vd, vs2 = self._group(), self._group()
        roll = self.rng.below(4)
        if roll == 0 and "fp" in self.features and self.sew >= 32:
            return [("vfmerge_vfm", (vd, vs2, self._freg()), {})]
        if roll == 1:
            return [("vmerge_vxm", (vd, vs2, self._xreg()), {})]
        if roll == 2:
            return [("vmerge_vim", (vd, vs2, self.rng.randint(-16, 15)), {})]
        return [("vmerge_vvm", (vd, vs2, self._group()), {})]

    def _emit_mem_unit(self) -> list:
        ew = self.sew
        span = self.max_avl * ew // 8
        if self.rng.chance(1, 2):
            addr = self._addr(self._load_region(), span)
            return [("li", ("x3", addr), {}),
                    (f"vle{ew}_v", (self._group(), "x3"), self._masked())]
        addr = self._addr(REGIONS["S"], span)
        return [("li", ("x3", addr), {}),
                (f"vse{ew}_v", (self._group(), "x3"), self._masked())]

    def _emit_mem_mask(self) -> list:
        span = (self.max_avl + 7) // 8
        if self.rng.chance(1, 2):
            addr = self._addr(self._load_region(), span)
            return [("li", ("x3", addr), {}),
                    ("vlm_v", (self._mask(), "x3"), {})]
        addr = self._addr(REGIONS["S"], span)
        return [("li", ("x3", addr), {}),
                ("vsm_v", (self._mask(), "x3"), {})]

    def _emit_mem_strided(self) -> list:
        ew = self.sew
        load = self.rng.chance(1, 2)
        # Stores keep stride >= element size; stride-0 loads are legal
        # (vl reads of one address) and exercise the slow path.
        stride = (ew // 8) * (self.rng.below(4) if load
                              else self.rng.randint(1, 3))
        span = stride * (self.max_avl - 1) + ew // 8
        if load:
            addr = self._addr(self._load_region(), span)
            return [("li", ("x3", addr), {}), ("li", ("x4", stride), {}),
                    (f"vlse{ew}_v", (self._group(), "x3", "x4"),
                     self._masked())]
        addr = self._addr(REGIONS["S"], span)
        return [("li", ("x3", addr), {}), ("li", ("x4", stride), {}),
                (f"vsse{ew}_v", (self._group(), "x3", "x4"), self._masked())]

    def _emit_mem_indexed(self) -> list:
        ew = self.sew
        vidx = self._group()
        mask_bits = self.rng.choice((7, 15, 31, 63))
        shift = (ew // 8).bit_length() - 1 + self.rng.below(2)
        span = (mask_bits << shift) + ew // 8
        ops = [("vid_v", (vidx,), {}),
               ("vand_vi", (vidx, vidx, mask_bits), {}),
               ("vsll_vi", (vidx, vidx, shift), {})]
        if self.rng.chance(1, 2):
            addr = self._addr(self._load_region(), span)
            ops += [("li", ("x3", addr), {}),
                    (f"vluxei{ew}_v", (self._group(), "x3", vidx),
                     self._masked())]
        else:
            addr = self._addr(REGIONS["S"], span)
            ops += [("li", ("x3", addr), {}),
                    (f"vsuxei{ew}_v", (self._group(), "x3", vidx),
                     self._masked())]
        return ops

    _SCALAR_RR = ("add", "sub", "mul", "mulh", "div", "rem", "and_", "or_",
                  "xor", "sll", "srl", "sra", "slt", "sltu", "min_", "max_")

    def _emit_scalar_int(self) -> list:
        roll = self.rng.below(4)
        rd = self._xreg()
        if roll == 0:
            imm = self.rng.randint(-(1 << 31), (1 << 31) - 1)
            return [("li", (rd, imm), {})]
        if roll == 1:
            mnem = self.rng.choice(self._SCALAR_RR)
            return [(mnem, (rd, self._xreg(), self._xreg()), {})]
        if roll == 2:
            mnem = self.rng.choice(("slli", "srli", "srai"))
            return [(mnem, (rd, self._xreg(), self.rng.below(64)), {})]
        mnem = self.rng.choice(("addi", "andi", "ori", "xori", "slti"))
        return [(mnem, (rd, self._xreg(), self.rng.randint(-1024, 1024)), {})]

    _SCALAR_FP_RR = ("fadd_d", "fsub_d", "fmul_d", "fdiv_d", "fmin_d",
                     "fmax_d", "fsgnj_d")
    _SCALAR_FP_FMA = ("fmadd_d", "fmsub_d", "fnmadd_d", "fnmsub_d")

    def _emit_scalar_fp(self) -> list:
        roll = self.rng.below(5)
        frd = self._freg()
        if roll == 0:
            mnem = self.rng.choice(self._SCALAR_FP_RR)
            return [(mnem, (frd, self._freg(), self._freg()), {})]
        if roll == 1:
            mnem = self.rng.choice(self._SCALAR_FP_FMA)
            return [(mnem, (frd, self._freg(), self._freg(), self._freg()),
                     {})]
        if roll == 2:
            mnem = self.rng.choice(("fsqrt_d", "fmv_d", "fneg_d", "fabs_d"))
            return [(mnem, (frd, self._freg()), {})]
        if roll == 3:
            # Int->FP and bit moves only: float->int of a NaN payload
            # would hit int(nan)/platform casts.
            if self.rng.chance(1, 2):
                mnem = self.rng.choice(("fmv_d_x", "fcvt_d_l"))
                return [(mnem, (frd, self._xreg()), {})]
            return [("fmv_x_d", (self._xreg(), self._freg()), {})]
        mnem = self.rng.choice(("feq_d", "flt_d", "fle_d"))
        return [(mnem, (self._xreg(), self._freg(), self._freg()), {})]

    def _emit_scalar_mem(self) -> list:
        roll = self.rng.below(4)
        if roll == 0:
            mnem, nbytes = self.rng.choice(
                (("ld", 8), ("lw", 4), ("lh", 2), ("lb", 1)))
            addr = self._addr(self._load_region(), nbytes)
            return [("li", ("x3", addr), {}),
                    (mnem, (self._xreg(), "x3", 0), {})]
        if roll == 1:
            mnem, nbytes = self.rng.choice(
                (("sd", 8), ("sw", 4), ("sh", 2), ("sb", 1)))
            addr = self._addr(REGIONS["S"], nbytes)
            return [("li", ("x3", addr), {}),
                    (mnem, (self._xreg(), "x3", 0), {})]
        if roll == 2:
            addr = self._addr(self._load_region(), 8)
            return [("li", ("x3", addr), {}),
                    ("fld", (self._freg(), "x3", 0), {})]
        addr = self._addr(REGIONS["S"], 8)
        return [("li", ("x3", addr), {}),
                ("fsd", (self._freg(), "x3", 0), {})]

    def _emit_loop(self) -> list:
        counter = "x28" if self.depth == 0 else "x29"
        label = f"L{self._labels}"
        self._labels += 1
        trips = self.rng.randint(2, 4)
        ops = [("li", (counter, trips), {}), ("label", (label,), {})]
        self.depth += 1
        for _ in range(self.rng.randint(2, 5)):
            kind = self.rng.choice(self._menu(in_loop=True))
            ops.extend(self._EMITTERS[kind](self))
        self.depth -= 1
        ops += [("addi", (counter, counter, -1), {}),
                ("bnez", (counter, label), {})]
        return ops

    # ------------------------------------------------------------------
    # Menu and driver
    # ------------------------------------------------------------------
    _EMITTERS = {
        "vsetvl": _emit_vsetvl,
        "int_bin": _emit_int_bin,
        "int_fma": _emit_int_fma,
        "int_widen": _emit_int_widen,
        "fp_bin": _emit_fp_bin,
        "fp_fma": _emit_fp_fma,
        "fp_unary": _emit_fp_unary,
        "fp_widen": _emit_fp_widen,
        "mask_make": _emit_mask_make,
        "mask_logic": _emit_mask_logic,
        "mask_unary": _emit_mask_unary,
        "mask_scalar": _emit_mask_scalar,
        "iota": _emit_iota,
        "reduce": _emit_reduce,
        "slide": _emit_slide,
        "slide1": _emit_slide1,
        "gather": _emit_gather,
        "move": _emit_move,
        "merge": _emit_merge,
        "mem_unit": _emit_mem_unit,
        "mem_mask": _emit_mem_mask,
        "mem_strided": _emit_mem_strided,
        "mem_indexed": _emit_mem_indexed,
        "scalar_int": _emit_scalar_int,
        "scalar_fp": _emit_scalar_fp,
        "scalar_mem": _emit_scalar_mem,
        "loop": _emit_loop,
    }

    def _menu(self, in_loop: bool = False) -> list:
        """Op kinds legal under the current config, weighted by repeats."""
        f = self.features
        menu: list[str] = []
        if "vsetvl" in f and not in_loop:
            menu += ["vsetvl"]
        if "arith" in f:
            menu += ["int_bin"] * 4 + ["int_fma"]
            if self.sew <= 32 and 2 * self.lmul <= 8:
                menu += ["int_widen"]
        if "fp" in f and self.sew >= 32:
            menu += ["fp_bin"] * 3 + ["fp_fma"] * 2 + ["fp_unary"]
            if self.sew == 32 and 2 * self.lmul <= 8:
                menu += ["fp_widen"]
        if "mask" in f:
            menu += ["mask_make"] * 2 + ["mask_logic", "mask_unary",
                                         "mask_scalar", "iota"]
        if "reduce" in f:
            menu += ["reduce"]
        if "permute" in f:
            menu += ["slide", "slide1", "gather", "move", "merge"]
        if "mem_unit" in f:
            menu += ["mem_unit"] * 2
            if "mask" in f:
                menu += ["mem_mask"]
        if "mem_strided" in f:
            menu += ["mem_strided"]
        if "mem_indexed" in f:
            menu += ["mem_indexed"]
        if "scalar" in f:
            menu += ["scalar_int"] * 2 + ["scalar_fp", "scalar_mem"]
        if "loops" in f and not in_loop and self.depth == 0:
            menu += ["loop"]
        if not menu:  # e.g. features="vsetvl" alone outside a loop body
            menu = ["vsetvl"] if "vsetvl" in f and not in_loop \
                else ["scalar_int"]
        return menu

    def _preamble(self) -> tuple:
        """Initial config + seeding loads (never dropped by shrink)."""
        ops = self._emit_vsetvl()
        ew = self.sew
        span = self.max_avl * ew // 8
        for region in ("A", "B"):
            addr = self._addr(REGIONS[region], span)
            ops += [("li", ("x3", addr), {}),
                    (f"vle{ew}_v", (self._group(), "x3"), {})]
        for i, freg in enumerate(_F_POOL[:4]):
            ops += [("li", ("x3", REGIONS["A"][0] + 8 * i), {}),
                    ("fld", (freg, "x3", 0), {})]
        return ("pre", tuple(ops))

    def _epilogue(self) -> tuple:
        """Dump the architectural state to OUT (machine-independent)."""
        out = REGIONS["OUT"][0]
        ops = [("li", ("x1", EPILOGUE_AVL), {}),
               ("vsetvli", ("x2", "x1"), {"sew": 64, "lmul": 8})]
        for i, vreg in enumerate(("v0", "v8", "v16", "v24")):
            ops += [("li", ("x3", out + i * EPILOGUE_AVL * 8), {}),
                    ("vse64_v", (vreg, "x3"), {})]
        cursor = out + 4 * EPILOGUE_AVL * 8
        for reg in ("x1", "x2", "x28", "x29") + _X_POOL[:8]:
            ops += [("li", ("x3", cursor), {}), ("sd", (reg, "x3", 0), {})]
            cursor += 8
        for freg in _F_POOL:
            ops += [("li", ("x3", cursor), {}), ("fsd", (freg, "x3", 0), {})]
            cursor += 8
        ops.append(("halt", (), {}))
        return ("epi", tuple(ops))

    def generate(self) -> FuzzCase:
        """Generate the case this generator's arguments name."""
        chunks = [self._preamble()]
        for _ in range(self.size):
            kind = self.rng.choice(self._menu())
            chunk_kind = "cfg" if kind == "vsetvl" else "op"
            chunks.append((chunk_kind,
                           tuple(self._EMITTERS[kind](self))))
        chunks.append(self._epilogue())
        chunks = tuple(chunks)
        name = (f"fuzz_s{self.seed}_n{self.size}_"
                f"{self.features_spec}_a{self.max_avl}")
        return FuzzCase(seed=self.seed, size=self.size,
                        features=self.features_spec, max_avl=self.max_avl,
                        chunks=chunks, program=assemble(chunks, name))
