"""The differential properties every generated program must satisfy.

For each :class:`~repro.fuzz.gen.FuzzCase`, :func:`check_case` asserts —
per registry machine unless noted:

1. **replay-identity** — capturing the trace once and replaying it
   yields the same :class:`~repro.timing.report.TimingReport` as a
   direct end-to-end simulation, and two independent captures pack to
   byte-identical blobs (the golden check inside the run also compares
   the final memory against an independent reference execution);
2. **key-stability** — ``trace_key`` is equal across machines that share
   a VLEN (the key must be insensitive to everything else in the
   machine spec);
3. **pack-roundtrip** — ``pack_trace -> unpack_trace -> to_trace ->
   pack_trace`` reproduces the original blob bit for bit;
4. **plan-vs-reference** — the vectorized ``ReplayPlan`` fast path
   (on both the object trace and its packed form) produces a report
   equal to the ``replay_reference`` specification loop.

Failures raise :class:`PropertyFailure`, which carries the case so the
shrink loop (:mod:`repro.fuzz.shrink`) can minimize the reproducer.
"""

from __future__ import annotations

from ..functional.trace_pack import pack_trace, unpack_trace
from ..machine import get_machine
from ..sim import replay_trace
from ..timing.engine import TimingEngine
from ..uarch import build_model
from .gen import FuzzCase
from .kernel import generate_case, kernel_for_case

#: Default machine pair: same lane count (so equal VLEN — required by
#: the key-stability property) but different families, hence entirely
#: different interconnect/timing specs.
DEFAULT_MACHINES = ("8L-Ara2", "8L-AraXL")


class PropertyFailure(AssertionError):
    """One property violated by one generated case."""

    def __init__(self, prop: str, case: FuzzCase, machine: str,
                 detail: str) -> None:
        self.property = prop
        self.case = case
        self.machine = machine
        self.detail = detail
        super().__init__(
            f"fuzz property {prop!r} failed on {machine} for seed "
            f"{case.seed} (size={case.size}, features={case.features!r}, "
            f"max_avl={case.max_avl}): {detail}")


def default_configs() -> list:
    """The resolved default machine pair."""
    return [get_machine(name) for name in DEFAULT_MACHINES]


def _require(ok: bool, prop: str, case: FuzzCase, machine: str,
             detail: str) -> None:
    if not ok:
        raise PropertyFailure(prop, case, machine, detail)


def check_case(case: FuzzCase, configs=None) -> dict:
    """Check all four properties for ``case``; returns run statistics."""
    if configs is None:
        configs = default_configs()
    kernels = [kernel_for_case(case, config) for config in configs]

    # Property 2: the trace key must agree wherever VLEN agrees.
    by_vlen: dict[int, tuple] = {}
    for config, kernel in zip(configs, kernels):
        key = kernel.trace_key(config)
        prev = by_vlen.setdefault(config.vlen_bits, (config.name, key))
        _require(key == prev[1], "key-stability", case, config.name,
                 f"trace_key differs from {prev[0]} at equal "
                 f"VLEN={config.vlen_bits}: {key!r} != {prev[1]!r}")

    stats = {"seed": case.seed, "instructions": len(case.program),
             "events": {}, "cycles": {}}
    for config, kernel in zip(configs, kernels):
        name = config.name
        # Property 1: capture -> replay == direct simulation (the run
        # also performs the independent golden-memory check), and an
        # independent recapture packs byte-identically.
        direct = kernel.run(config, verify=True)
        captured = kernel.capture(config, verify=False)
        replayed = replay_trace(config, captured)
        _require(replayed.timing == direct.timing, "replay-identity",
                 case, name,
                 f"replay of a fresh capture diverges from the direct "
                 f"run: {replayed.timing.cycles} != {direct.timing.cycles} "
                 f"cycles")
        blob = pack_trace(captured.trace, case.program)
        recaptured = kernel.capture(config, verify=False)
        _require(pack_trace(recaptured.trace, case.program) == blob,
                 "replay-identity", case, name,
                 "two independent captures pack to different blobs")

        # Property 3: pack -> unpack -> to_trace -> pack is bit-exact.
        packed = unpack_trace(blob, case.program)
        _require(pack_trace(packed.to_trace(), case.program) == blob,
                 "pack-roundtrip", case, name,
                 "packed trace does not round-trip byte-identically")

        # Property 4: the vectorized plan equals the reference loop,
        # from both the object trace and the packed form.
        model = build_model(config)
        reference = TimingEngine(model).replay_reference(captured.trace)
        fast = TimingEngine(model).replay(captured.trace)
        _require(fast == reference, "plan-vs-reference", case, name,
                 f"vectorized replay diverges from replay_reference: "
                 f"{fast.cycles} != {reference.cycles} cycles")
        packed_fast = TimingEngine(model).replay(packed)
        _require(packed_fast == reference, "plan-vs-reference", case, name,
                 f"packed-trace replay diverges from replay_reference: "
                 f"{packed_fast.cycles} != {reference.cycles} cycles")

        stats["events"][name] = len(captured.trace)
        stats["cycles"][name] = direct.timing.cycles
    return stats


def check_seed(seed: int, size: int = 40, features: str = "all",
               max_avl: int = 64, configs=None) -> dict:
    """Generate the case for ``seed`` and check every property."""
    case = generate_case(seed, size=size, features=features,
                         max_avl=max_avl)
    return check_case(case, configs=configs)
