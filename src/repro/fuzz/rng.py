"""Deterministic SHA-256 counter RNG for the program fuzzer.

The generation path must be bit-reproducible from the seed across
processes and interpreter restarts, so it cannot touch ``random``
(process-seeded), ``numpy.random`` (flagged by the determinism lint in
this tree) or anything clock-derived.  :class:`FuzzRng` instead hashes
``key:counter`` with SHA-256 and consumes the digest as a stream of
64-bit words — the same construction :mod:`repro.sim.faults` uses for
fault rolls — which is stable everywhere Python is.
"""

from __future__ import annotations

import hashlib

import numpy as np


class FuzzRng:
    """A seeded, forkable stream of deterministic pseudo-random words.

    Two instances built with the same ``(seed, stream)`` pair produce
    identical sequences in any process; distinct ``stream`` labels give
    independent sequences from one seed (e.g. ``"ops"`` for program
    structure vs ``"data"`` for buffer contents), so consuming more
    words on one path never perturbs the other.
    """

    __slots__ = ("_key", "_counter", "_queue")

    def __init__(self, seed: int, stream: str = "") -> None:
        self._key = f"repro.fuzz:{int(seed)}:{stream}".encode()
        self._counter = 0
        self._queue: list[int] = []

    def u64(self) -> int:
        """Next 64-bit word of the stream."""
        if not self._queue:
            digest = hashlib.sha256(
                self._key + b"#" + str(self._counter).encode()).digest()
            self._counter += 1
            # Reversed so pop() serves digest words in byte order.
            self._queue = [int.from_bytes(digest[i:i + 8], "little")
                           for i in (24, 16, 8, 0)]
        return self._queue.pop()

    def below(self, n: int) -> int:
        """Uniform draw in ``[0, n)`` (modulo bias is < n/2**64)."""
        if n <= 0:
            raise ValueError(f"below() needs n >= 1, got {n}")
        return self.u64() % n

    def randint(self, lo: int, hi: int) -> int:
        """Uniform draw in the inclusive range ``[lo, hi]``."""
        return lo + self.below(hi - lo + 1)

    def choice(self, seq):
        """Uniform draw from a non-empty sequence."""
        return seq[self.below(len(seq))]

    def chance(self, num: int, den: int) -> bool:
        """True with probability ``num/den``."""
        return self.below(den) < num

    def floats(self, count: int) -> np.ndarray:
        """``count`` float64 values uniform in ``[-1, 1)``."""
        words = np.array([self.u64() for _ in range(count)],
                         dtype=np.uint64)
        # 53 mantissa-width bits -> [0, 1), then stretched to [-1, 1).
        return (words >> np.uint64(11)).astype(np.float64) \
            * (2.0 ** -52) - 1.0
