"""Wrap generated fuzz programs as :class:`~repro.kernels.common.KernelRun`.

A fuzz case enters the capture pipeline through exactly the machinery
the curated kernels use — :func:`repro.kernels.common.memo_program` for
the generated program skeleton, :func:`~repro.kernels.common.lazy_golden`
for the reference memory image — so ``CaptureTask``/``SimPool``/
``TraceStore`` handle it unchanged via the ``"fuzz"`` zoo entry.

The golden model is a second, independent functional execution of the
same program at the same VLEN against a fresh minimal memory, and the
check is **byte-exact** over the S and OUT regions (``np.allclose``
would reject the NaNs and infinities random programs legitimately
produce).  Because the generated program's behaviour may depend on VLEN
(``vl = min(avl, vlmax)``), the golden key includes ``vlen_bits`` while
the program skeleton key does not.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..functional.memory import FunctionalMemory
from ..kernels.common import KernelRun, lazy_golden, memo_program
from ..params import SystemConfig
from .gen import (REGIONS, TOTAL_BYTES, FuzzCase, ProgramGen,
                  canonical_features, input_image)


def generate_case(seed: int, size: int = 40, features: str = "all",
                  max_avl: int = 64) -> FuzzCase:
    """The (memoized) :class:`FuzzCase` named by this quadruple."""
    spec = canonical_features(features)
    return memo_program(
        ("fuzz", int(seed), int(size), spec, int(max_avl)),
        lambda: ProgramGen(seed, size=size, features=spec,
                           max_avl=max_avl).generate())


def reference_image(case: FuzzCase, vlen_bits: int) -> tuple:
    """Independent functional execution of ``case`` at ``vlen_bits``.

    Returns ``(inputs, s_bytes, out_bytes)``: the seeded input image for
    the A/B regions plus the S and OUT region contents after running the
    program against a fresh minimal memory.
    """
    inputs = np.frombuffer(input_image(case.seed), dtype=np.uint8)
    mem = FunctionalMemory(TOTAL_BYTES)
    mem.write_bytes(REGIONS["A"][0], inputs)
    Executor(vlen_bits, mem=mem).run(case.program)
    s_base, s_bytes = REGIONS["S"]
    out_base, out_bytes = REGIONS["OUT"]
    return (inputs, mem.read_bytes(s_base, s_bytes),
            mem.read_bytes(out_base, out_bytes))


def kernel_for_case(case: FuzzCase, config: SystemConfig) -> KernelRun:
    """A :class:`KernelRun` for an explicit case (no memo path).

    The property harness and the shrink loop operate on arbitrary case
    variants — including chunk subsets that no ``(seed, size, features,
    max_avl)`` quadruple names — so this builder computes the reference
    image directly instead of going through the process-wide memos.
    ``setup_id`` folds in the program fingerprint so shrunk variants of
    one seed can never collide in a trace cache.
    """
    vlen_bits = config.vlen_bits
    reference: list = []  # lazily filled [(inputs, s, out)]

    def golden() -> tuple:
        if not reference:
            reference.append(reference_image(case, vlen_bits))
        return reference[0]

    def setup(sim) -> None:
        sim.mem.write_bytes(REGIONS["A"][0], golden()[0])

    def check(sim) -> float:
        _, ref_s, ref_out = golden()
        for region, ref in (("S", ref_s), ("OUT", ref_out)):
            base, _ = REGIONS[region]
            got = sim.mem.read_bytes(base, ref.size)
            if not np.array_equal(got, ref):
                bad = np.flatnonzero(got != ref)
                raise AssertionError(
                    f"fuzz seed {case.seed}: region {region} diverges "
                    f"from the reference execution at VLEN={vlen_bits}: "
                    f"{bad.size} bytes differ, first at +0x{int(bad[0]):x}")
        return 0.0

    return KernelRun(
        name="fuzz",
        program=case.program,
        setup=setup,
        check=check,
        dp_flops=0.0,
        max_flops_per_cycle=float(2 * config.lanes),
        problem={"seed": case.seed, "size": case.size,
                 "features": case.features, "max_avl": case.max_avl,
                 "fingerprint": case.program.fingerprint[:16]},
    )


def build_fuzz(config: SystemConfig, bytes_per_lane: int, *, seed: int = 0,
               size: int = 40, features: str = "all") -> KernelRun:
    """Build the fuzz case for ``seed`` as a standard :class:`KernelRun`.

    ``bytes_per_lane`` plays the role it does for curated kernels —
    problem scale — by bounding AVL: ``max_avl = clamp(B/lane, 1, 256)``.
    """
    max_avl = min(max(int(bytes_per_lane), 1), 256)
    spec = canonical_features(features)
    case = generate_case(seed, size=size, features=spec, max_avl=max_avl)
    vlen_bits = config.vlen_bits
    golden = lazy_golden(
        ("fuzz", case.seed, case.size, spec, max_avl, vlen_bits),
        lambda: reference_image(case, vlen_bits))

    def setup(sim) -> None:
        sim.mem.write_bytes(REGIONS["A"][0], golden()[0])

    def check(sim) -> float:
        _, ref_s, ref_out = golden()
        for region, ref in (("S", ref_s), ("OUT", ref_out)):
            base, _ = REGIONS[region]
            got = sim.mem.read_bytes(base, ref.size)
            if not np.array_equal(got, ref):
                bad = np.flatnonzero(got != ref)
                raise AssertionError(
                    f"fuzz seed {case.seed} (size={case.size}, "
                    f"features={spec!r}, max_avl={max_avl}): region "
                    f"{region} diverges from the reference execution at "
                    f"VLEN={vlen_bits}: {bad.size} bytes differ, first at "
                    f"+0x{int(bad[0]):x}")
        return 0.0

    return KernelRun(
        name="fuzz",
        program=case.program,
        setup=setup,
        check=check,
        dp_flops=0.0,
        max_flops_per_cycle=float(2 * config.lanes),
        problem={"seed": case.seed, "size": case.size, "features": spec,
                 "max_avl": max_avl},
    )
