"""System configuration objects for Ara2 and AraXL instances.

The paper's design space is indexed by the total number of vector lanes.
Ara2 is a single "lumped" design whose units (VLSU, SLDU, MASKU) are
all-to-all interconnected across every lane; AraXL groups lanes into
4-lane clusters joined by three scalable interfaces (REQI, GLSU, RINGI).

The laws encoded here follow Section III of the paper:

* ``VLEN = 1024 * lanes`` bits per vector register, so a 16-lane machine has
  the 16 Kibit VLEN of Ara2 [13] and the 64-lane AraXL reaches the RVV 1.0
  maximum of 64 Kibit.
* AraXL's building block is the 4-lane cluster; configurations are named by
  their total lane count (16/32/64 in the paper; 4 and 8 also work and are
  used for the Fig 6 "8L AraXL" point).
* The latency-tolerance experiment knobs (Fig 5/7) are the three
  ``*_extra_regs`` fields; their cycle-level effect is implemented in
  :mod:`repro.uarch` and documented per-field below.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from .errors import ConfigError

#: Bits of VLEN contributed by each lane (8 vregs * 128 bit... historically:
#: Ara stores VLEN/lanes bits of every register per lane; the paper's designs
#: all satisfy VLEN = 1024 * lanes).
VLEN_BITS_PER_LANE = 1024

#: RVV 1.0 upper bound on the size of one vector register, reached by the
#: 64-lane AraXL (Section I / V).
RVV_MAX_VLEN_BITS = 65536

#: Lanes per AraXL cluster (the paper picks the 4-lane Ara2 as the building
#: block because it is the most energy-efficient configuration of [13]).
LANES_PER_CLUSTER = 4

#: Supported element widths in bits.
SUPPORTED_SEWS = (8, 16, 32, 64)

#: Supported (integer) LMUL values.  Fractional LMUL is not exercised by the
#: paper's benchmarks and is not supported.
SUPPORTED_LMULS = (1, 2, 4, 8)


@dataclass(frozen=True)
class MemoryConfig:
    """Parameters of the L2 memory and its AXI-like port.

    The paper assumes an L2 of at least 16 MiB (Table I footnote) and a
    memory interface that scales with the machine (Fig 2 annotates the
    GLSU-to-L2 link).  Bandwidth here is expressed in bytes per cycle per
    lane and per direction; the default of 8 B/cycle/lane lets the machine
    sustain one 64-bit element per lane per cycle in each direction, which
    is required for ``fdotproduct``'s Table-I bound of L*C DP-FLOP/cycle.
    """

    size_bytes: int = 16 * 2 ** 20
    read_bytes_per_cycle_per_lane: float = 8.0
    write_bytes_per_cycle_per_lane: float = 8.0
    #: Zero-load request-to-first-data latency of the L2 itself, in cycles.
    l2_latency_cycles: int = 12
    #: Number of independent L2 banks (limits bank-level parallelism).
    banks: int = 8
    #: Maximum outstanding AXI transactions per port.
    max_outstanding: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("memory size must be positive")
        if self.read_bytes_per_cycle_per_lane <= 0:
            raise ConfigError("read bandwidth must be positive")
        if self.write_bytes_per_cycle_per_lane <= 0:
            raise ConfigError("write bandwidth must be positive")
        if self.l2_latency_cycles < 0:
            raise ConfigError("L2 latency cannot be negative")
        if self.banks < 1 or self.max_outstanding < 1:
            raise ConfigError("banks and max_outstanding must be >= 1")


@dataclass(frozen=True)
class ScalarCoreConfig:
    """Timing parameters of the CVA6-like scalar core.

    CVA6 is a 6-stage in-order single-issue core [25]; for the purposes of
    the paper's evaluation only its issue bandwidth towards the vector unit
    and the latency of scalar loads during kernel setup are observable.
    """

    #: Cycles for a scalar ALU op (in-order, fully pipelined).
    alu_latency: int = 1
    #: Load-to-use latency on a D$ hit.
    dcache_hit_latency: int = 3
    #: Additional latency on a D$ miss (on top of L2 latency).
    dcache_miss_penalty: int = 8
    #: D$ capacity in bytes (direct-mapped model).
    dcache_bytes: int = 32 * 1024
    #: D$ line size in bytes.
    dcache_line_bytes: int = 64
    #: Taken-branch penalty in cycles.
    branch_penalty: int = 2
    #: FP scalar op latency (fadd/fmul through the scalar FPU).
    fpu_latency: int = 4

    def __post_init__(self) -> None:
        if min(self.alu_latency, self.dcache_hit_latency, self.fpu_latency) < 1:
            raise ConfigError("scalar latencies must be >= 1 cycle")
        if self.dcache_bytes % self.dcache_line_bytes:
            raise ConfigError("D$ size must be a multiple of the line size")


@dataclass(frozen=True)
class SystemConfig:
    """Common base for Ara2 and AraXL machine configurations.

    Subclasses fix the interconnect style; all derived quantities
    (``vlen_bits``, ``vlmax``, bandwidths) live here so kernels and the
    timing engine can be written against a single interface.

    Every field is a named quantity of the machine's declarative spec
    (:mod:`repro.machine`): configurations round-trip through
    ``to_spec()``/``from_spec()`` and the timing models in
    :mod:`repro.uarch` read *only* these fields — there are no timing
    constants baked into the model code.
    """

    #: Family tag used by the spec layer and the PPA/physdesign models
    #: to select interconnect laws; overridden by the subclasses.
    family = "generic"

    lanes: int = 16
    memory: MemoryConfig = dataclasses.field(default_factory=MemoryConfig)
    scalar: ScalarCoreConfig = dataclasses.field(default_factory=ScalarCoreConfig)
    #: Cycles to decode + sequence a vector instruction inside a cluster.
    dispatch_latency: int = 4
    #: Depth of each unit's instruction queue (structural hazard limit).
    unit_queue_depth: int = 4
    #: FPU pipeline depth (first-result latency) for DP FMA.
    fpu_latency: int = 5
    #: Integer ALU pipeline depth.
    valu_latency: int = 1
    #: Datapath width of one lane in bits: each lane produces/consumes
    #: one ``lane_width_bits`` word per cycle, SIMD-packing narrower
    #: elements (the 64-bit datapath of Ara's lanes).
    lane_width_bits: int = 64
    #: Local shuffle pipeline depth of the slide unit (cycles).
    sldu_latency: int = 1
    #: Mask-unit pipeline depth (cycles).
    masku_latency: int = 2
    #: CVA6-visible cost of reconfiguring the vector unit (cycles).
    vsetvli_cycles: int = 3
    #: Fixed cycles to commit a reduction's scalar result into the
    #: destination register after the last combining step.
    reduction_writeback_cycles: int = 3
    #: Indexed (gather/scatter) throughput as a fraction of the strided
    #: address-generation rate: index fetch and address compute share
    #: the generator, halving it in both microarchitectures.
    indexed_throughput_factor: float = 0.5
    #: Display name override (set for machines defined by a spec file
    #: whose ``name`` differs from the derived ``{lanes}L-{family}``).
    label: str | None = None

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigError("need at least one lane")
        if self.lanes & (self.lanes - 1):
            raise ConfigError("lane count must be a power of two")
        if self.dispatch_latency < 1 or self.unit_queue_depth < 1:
            raise ConfigError("dispatch latency and queue depth must be >= 1")
        if self.lane_width_bits < max(SUPPORTED_SEWS) \
                or self.lane_width_bits & (self.lane_width_bits - 1):
            raise ConfigError(
                f"lane width must be a power of two of at least "
                f"{max(SUPPORTED_SEWS)} bits, got {self.lane_width_bits}")
        if self.sldu_latency < 0 or self.masku_latency < 0 \
                or self.vsetvli_cycles < 0 \
                or self.reduction_writeback_cycles < 0:
            raise ConfigError("unit latencies cannot be negative")
        if self.indexed_throughput_factor <= 0:
            raise ConfigError("indexed throughput factor must be positive")
        vlen = self.lanes * VLEN_BITS_PER_LANE
        if vlen > RVV_MAX_VLEN_BITS:
            raise ConfigError(
                f"{self.lanes} lanes imply VLEN={vlen} bits, above the RVV 1.0 "
                f"maximum of {RVV_MAX_VLEN_BITS}"
            )

    # ------------------------------------------------------------------
    # Derived architectural quantities
    # ------------------------------------------------------------------
    @property
    def vlen_bits(self) -> int:
        """Bits per vector register (the paper's VLEN law)."""
        return self.lanes * VLEN_BITS_PER_LANE

    @property
    def vlen_bytes(self) -> int:
        return self.vlen_bits // 8

    def vlmax(self, sew: int, lmul: int = 1) -> int:
        """Maximum vector length for a given element width and LMUL."""
        if sew not in SUPPORTED_SEWS:
            raise ConfigError(f"unsupported SEW {sew}")
        if lmul not in SUPPORTED_LMULS:
            raise ConfigError(f"unsupported LMUL {lmul}")
        return self.vlen_bits * lmul // sew

    @property
    def datapath_bytes_per_cycle(self) -> int:
        """Bytes the lanes jointly produce/consume per cycle."""
        return (self.lane_width_bits // 8) * self.lanes

    @property
    def peak_dp_flops_per_cycle(self) -> int:
        """One DP FMA per lane per cycle = 2 DP-FLOP per lane per cycle."""
        return 2 * self.lanes

    @property
    def mem_read_bytes_per_cycle(self) -> float:
        return self.memory.read_bytes_per_cycle_per_lane * self.lanes

    @property
    def mem_write_bytes_per_cycle(self) -> float:
        return self.memory.write_bytes_per_cycle_per_lane * self.lanes

    def bytes_per_lane(self, vl: int, sew: int = 64) -> float:
        """Vector-length metric used throughout the evaluation (B/lane)."""
        return vl * (sew // 8) / self.lanes

    def vl_for_bytes_per_lane(self, bytes_per_lane: int, sew: int = 64) -> int:
        """Inverse of :meth:`bytes_per_lane` (exact for the paper's sweeps)."""
        total = bytes_per_lane * self.lanes
        ew = sew // 8
        if total % ew:
            raise ConfigError(
                f"{bytes_per_lane} B/lane is not a whole number of {sew}-bit "
                f"elements on {self.lanes} lanes"
            )
        return total // ew

    def lmul_for_vl(self, vl: int, sew: int = 64) -> int:
        """Smallest supported LMUL able to hold ``vl`` elements."""
        for lmul in SUPPORTED_LMULS:
            if vl <= self.vlmax(sew, lmul):
                return lmul
        raise ConfigError(f"vl={vl} exceeds VLMAX at LMUL=8 for {self.lanes} lanes")

    @property
    def name(self) -> str:  # derived name; subclasses change the suffix
        return self.label or f"{self.lanes}L-generic"


@dataclass(frozen=True)
class Ara2Config(SystemConfig):
    """The lumped Ara2 baseline [13].

    A single sequencer drives L lanes plus global VLSU/SLDU/MASKU units whose
    byte-shuffling interconnects are all-to-all across lanes.  The A2A
    structure makes alignment single-cycle (no GLSU pipeline) but its
    wire complexity grows quadratically, which the PPA model penalizes in
    both area and achievable frequency.
    """

    family = "ara2"

    #: Extra issue-to-first-operation latency of the lumped design (small:
    #: no REQI broadcast, the sequencer talks to CVA6 directly).
    accelerator_ack_latency: int = 1
    #: Minimum cycles between two vector-instruction issues: the lumped
    #: sequencer acknowledges back-to-back.
    issue_gap_cycles: float = 1.0
    #: Cycles for a vector-to-scalar result (reductions, ``vmv.x.s``) to
    #: land back in a CVA6 register.
    scalar_result_latency: int = 2
    #: Handshake registers of the lumped VLSU's load path, added on top
    #: of the raw L2 latency (request out + first beat in).
    vlsu_pipe_latency: int = 2
    #: Posted-store datapath latency through the lumped VLSU (cycles).
    store_pipe_latency: int = 2
    #: Parallel strided-access address generators (the lumped VLSU has
    #: exactly one, hence one strided element per cycle).
    strided_addrgens: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.accelerator_ack_latency < 0 or self.scalar_result_latency < 0:
            raise ConfigError("issue/result latencies cannot be negative")
        if self.issue_gap_cycles < 1:
            raise ConfigError("issue gap must be >= 1 cycle")
        if self.vlsu_pipe_latency < 0 or self.store_pipe_latency < 0:
            raise ConfigError("VLSU pipe latencies cannot be negative")
        if self.strided_addrgens < 1:
            raise ConfigError("need at least one strided address generator")

    @property
    def name(self) -> str:
        return self.label or f"{self.lanes}L-Ara2"


@dataclass(frozen=True)
class AraXLConfig(SystemConfig):
    """A cluster-based AraXL instance (Section III).

    ``lanes`` is the *total* lane count; the machine has
    ``lanes / LANES_PER_CLUSTER`` clusters (minimum one).  The three
    ``*_extra_regs`` knobs reproduce the Fig 5 latency-tolerance setups:

    * ``glsu_extra_regs=4`` lengthens the GLSU request-response path by
      8 cycles (4 on the request path, 4 on the response path).
    * ``reqi_extra_regs=1`` delays the instruction acknowledgement to CVA6
      by 2 cycles (1 out + 1 back), stalling the next issue.
    * ``ringi_extra_regs=1`` adds 1 cycle to every ring hop.
    """

    family = "araxl"

    glsu_extra_regs: int = 0
    reqi_extra_regs: int = 0
    ringi_extra_regs: int = 0
    #: Base one-hop latency of the ring between adjacent clusters' SLDUs.
    ring_hop_latency: int = 2
    #: Base REQI broadcast (CVA6 -> clusters) latency in cycles.
    reqi_broadcast_latency: int = 2
    #: Base GLSU pipeline depth added on top of the L2 latency; grows with
    #: the number of clusters because Align/Shuffle are log2-level networks.
    glsu_base_stages: int = 3
    #: Cluster-0-to-CVA6 acknowledgement latency with no extra register
    #: cuts (a single answer-path cycle).
    reqi_ack_base_latency: int = 1
    #: Minimum cycles between two vector-instruction issues with no
    #: extra register cuts: one cycle out plus one cycle back on the
    #: request/acknowledge round trip.
    reqi_issue_base_gap: int = 2
    #: Cycles each inter-cluster reduction step spends handing a partial
    #: result between the ring stop and the FPU, on top of the FPU's
    #: own pipeline depth.
    ring_reduction_op_overhead: float = 1.0
    #: Strided-access address generators per cluster VLSU (each cluster
    #: emits this many element requests per cycle; the GLSU merges them).
    strided_addrgens_per_cluster: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lanes > LANES_PER_CLUSTER and self.lanes % LANES_PER_CLUSTER:
            raise ConfigError(
                f"lanes must be a multiple of {LANES_PER_CLUSTER} above one cluster"
            )
        if min(self.glsu_extra_regs, self.reqi_extra_regs, self.ringi_extra_regs) < 0:
            raise ConfigError("extra register counts cannot be negative")
        if self.ring_hop_latency < 1:
            raise ConfigError("ring hop latency must be >= 1 cycle")
        if self.reqi_ack_base_latency < 0 or self.reqi_issue_base_gap < 1:
            raise ConfigError(
                "REQI ack latency must be >= 0 and issue gap >= 1")
        if self.ring_reduction_op_overhead < 0:
            raise ConfigError("ring reduction overhead cannot be negative")
        if self.strided_addrgens_per_cluster < 1:
            raise ConfigError(
                "need at least one strided address generator per cluster")

    @property
    def clusters(self) -> int:
        return max(1, self.lanes // LANES_PER_CLUSTER)

    @property
    def lanes_per_cluster(self) -> int:
        return min(self.lanes, LANES_PER_CLUSTER)

    @property
    def glsu_pipeline_stages(self) -> int:
        """Levels of the Align+Shuffle networks plus extra register cuts.

        Align uses power-of-2 shift levels over the memory bus and Shuffle
        distributes to C clusters, so both grow with log2(C).
        """
        levels = self.glsu_base_stages + max(0, int(math.log2(self.clusters)))
        return levels + self.glsu_extra_regs

    @property
    def ring_hop_cycles(self) -> int:
        return self.ring_hop_latency + self.ringi_extra_regs

    @property
    def reqi_issue_latency(self) -> int:
        """CVA6-to-cluster request latency."""
        return self.reqi_broadcast_latency + self.reqi_extra_regs

    @property
    def reqi_ack_latency(self) -> int:
        """Cluster-0-to-CVA6 acknowledgement latency (limits issue rate)."""
        return self.reqi_ack_base_latency + self.reqi_extra_regs

    @property
    def name(self) -> str:
        return self.label or f"{self.lanes}L-AraXL"


def paper_configurations() -> dict[str, SystemConfig]:
    """Every machine instance that appears in the paper's evaluation."""
    configs: dict[str, SystemConfig] = {}
    for lanes in (2, 4, 8, 16):
        cfg = Ara2Config(lanes=lanes)
        configs[cfg.name] = cfg
    for lanes in (8, 16, 32, 64):
        xcfg = AraXLConfig(lanes=lanes)
        configs[xcfg.name] = xcfg
    return configs
