"""Deterministic fault injection for the sim and store tiers.

The capture/replay pipeline promises byte-identical renders under any
pool sizing, cache state, *or failure*.  Proving the "or failure" part
needs faults that are (a) realistic — worker crashes, hangs, corrupted
disk payloads, ``ENOSPC`` — and (b) reproducible, so a chaos test that
fails once fails every time.  Real races give neither; this module gives
both.

A :class:`FaultPlan` is a frozen, picklable bundle of per-fault-class
rates plus a seed.  Every injection decision is a *pure function* of
``(seed, fault class, site token, attempt number)`` — a SHA-256 roll,
never ``random`` state — so decisions are independent of scheduling
order, process boundaries (the plan ships to pool workers via the
executor initializer), and how many other faults fired first.  Folding
the attempt number into the roll means a retry of the same job gets a
fresh decision, and the ``*_attempts`` caps let unit tests script exact
narratives like "the first attempt crashes, the retry succeeds".

Activation:

* ``SimPool(fault_plan=...)`` — worker crashes and hangs;
* ``TraceCache(fault_plan=...)`` / ``TraceStore(fault_plan=...)`` —
  corrupted envelope payloads, ``ENOSPC`` and transient ``OSError`` on
  disk writes;
* ``$REPRO_FAULT_PLAN`` (:data:`ENV_FAULT_PLAN`) — a spec string such
  as ``seed=7,crash=0.1,corrupt=0.2`` picked up by both tiers when no
  explicit plan is passed, which is how the CI chaos-smoke job drives
  ``python -m repro.eval`` without code changes.

:class:`FaultLog` is the other half of the contract: a structured count
of every fault the pipeline *recovered from* (retries, pool rebuilds,
quarantines, fallbacks, ...), surfaced through
:class:`~repro.sim.parallel.PipelineStats` so chaos tests can assert
each recovery path actually fired.  See ``docs/robustness.md`` for the
full fault taxonomy and recovery matrix.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Optional

# ENV_FAULT_PLAN is re-exported for the module's historical importers:
# the canonical definition (and all os.environ access) lives in the
# repro.env registry.
from ..env import ENV_FAULT_PLAN, read_env

#: Exit status used for injected worker crashes (distinguishable from a
#: genuine interpreter abort in worker logs).
CRASH_EXIT_STATUS = 87

#: Spec-string aliases: short knob name -> dataclass field.
_SPEC_FIELDS = {
    "seed": "seed",
    "crash": "crash_rate",
    "hang": "hang_rate",
    "corrupt": "corrupt_rate",
    "enospc": "enospc_rate",
    "io": "io_error_rate",
    "hang_s": "hang_seconds",
    "crash_n": "crash_attempts",
    "hang_n": "hang_attempts",
    "corrupt_n": "corrupt_attempts",
    "enospc_n": "enospc_attempts",
    "io_n": "io_attempts",
}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic injection rates for every fault class.

    Rates are probabilities in ``[0, 1]`` evaluated by a pure hash roll
    per ``(fault class, site token, attempt)``; ``*_attempts`` caps
    restrict a fault class to attempt numbers below the cap (``None`` =
    every attempt is eligible), which is how tests force "fails once,
    then succeeds" narratives deterministically.
    """

    seed: int = 0
    #: Worker calls ``os._exit`` mid-job -> ``BrokenProcessPool``.
    crash_rate: float = 0.0
    #: Worker sleeps ``hang_seconds`` mid-job (tripping ``job_timeout``).
    hang_rate: float = 0.0
    #: Envelope payload bytes flipped *after* the CRC is computed.
    corrupt_rate: float = 0.0
    #: ``OSError(ENOSPC)`` raised on a disk write.
    enospc_rate: float = 0.0
    #: Transient ``OSError(EIO)`` raised on a disk write.
    io_error_rate: float = 0.0
    #: How long an injected hang sleeps.
    hang_seconds: float = 0.5
    crash_attempts: Optional[int] = None
    hang_attempts: Optional[int] = None
    corrupt_attempts: Optional[int] = None
    enospc_attempts: Optional[int] = None
    io_attempts: Optional[int] = None

    # -- decision engine ----------------------------------------------
    def roll(self, kind: str, token: str, attempt: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one decision."""
        material = f"{self.seed}:{kind}:{token}:{attempt}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _fires(self, rate: float, cap: Optional[int],
               kind: str, token: str, attempt: int) -> bool:
        if rate <= 0.0:
            return False
        if cap is not None and attempt >= cap:
            return False
        return self.roll(kind, token, attempt) < rate

    # -- worker-side faults (sim tier) --------------------------------
    def should_crash(self, token: str, attempt: int = 0) -> bool:
        """Would this (job, attempt) crash its worker?"""
        return self._fires(self.crash_rate, self.crash_attempts,
                           "crash", token, attempt)

    def should_hang(self, token: str, attempt: int = 0) -> bool:
        """Would this (job, attempt) hang its worker?"""
        return self._fires(self.hang_rate, self.hang_attempts,
                           "hang", token, attempt)

    def inject_job_faults(self, token: str, attempt: int = 0) -> None:
        """Crash (``os._exit``) or hang (sleep) per the plan.

        Called from pool worker processes at job entry; the in-process
        fallback paths never call it, so injected faults are always
        recoverable by design.
        """
        if self.should_crash(token, attempt):
            os._exit(CRASH_EXIT_STATUS)
        if self.should_hang(token, attempt):
            time.sleep(self.hang_seconds)

    # -- store-side faults (disk tier) --------------------------------
    def corrupted(self, token: str, attempt: int, payload: bytes) -> bytes:
        """Payload bytes, possibly bit-flipped (post-CRC) per the plan."""
        if not self._fires(self.corrupt_rate, self.corrupt_attempts,
                           "corrupt", token, attempt):
            return payload
        if not payload:
            return b"\xff"
        mutated = bytearray(payload)
        mutated[len(mutated) // 2] ^= 0xFF
        return bytes(mutated)

    def check_write(self, token: str, attempt: int = 0) -> None:
        """Raise the planned ``OSError`` for this disk write, if any."""
        if self._fires(self.enospc_rate, self.enospc_attempts,
                       "enospc", token, attempt):
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if self._fires(self.io_error_rate, self.io_attempts,
                       "io", token, attempt):
            raise OSError(errno.EIO, "injected: transient I/O error")

    # -- spec strings -------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,crash=0.1,corrupt=0.2,..."`` into a plan.

        Knobs: ``seed``, the rates ``crash``/``hang``/``corrupt``/
        ``enospc``/``io``, ``hang_s`` (hang duration), and the attempt
        caps ``crash_n``/``hang_n``/``corrupt_n``/``enospc_n``/``io_n``.
        Unknown knobs raise ``ValueError`` so a typo'd CI spec fails
        loudly instead of silently injecting nothing.
        """
        kwargs: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"fault spec item without '=': {item!r}")
            try:
                fname = _SPEC_FIELDS[name.strip()]
            except KeyError:
                raise ValueError(f"unknown fault spec knob: {name!r}") \
                    from None
            if fname == "seed" or fname.endswith("_attempts"):
                kwargs[fname] = int(value)
            else:
                kwargs[fname] = float(value)
        return cls(**kwargs)

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec` (non-default knobs only)."""
        parts = []
        defaults = {f.name: f.default for f in dataclasses.fields(self)}
        for name, fname in _SPEC_FIELDS.items():
            value = getattr(self, fname)
            if value == defaults[fname]:
                continue
            parts.append(f"{name}={value}")
        return ",".join(parts)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """Plan from ``$REPRO_FAULT_PLAN``, or ``None`` when unset."""
        spec = read_env(ENV_FAULT_PLAN, environ)
        if not spec:
            return None
        return cls.from_spec(spec)

    @property
    def injects_jobs(self) -> bool:
        """True when the sim tier has anything to inject."""
        return self.crash_rate > 0.0 or self.hang_rate > 0.0


@dataclass
class FaultLog:
    """Structured count of faults the pipeline observed and recovered.

    Attached to :class:`~repro.sim.parallel.PipelineStats` as
    ``.faults`` — every counter here names a *recovery path*, so a chaos
    test asserting ``retries > 0 and pool_rebuilds > 0`` is asserting
    those paths genuinely executed, not merely that nothing raised.
    """

    #: Jobs lost to a broken executor (``BrokenProcessPool`` family).
    worker_crashes: int = 0
    #: Jobs that raised any other exception inside the pool.
    job_errors: int = 0
    #: Jobs abandoned after exceeding their ``job_timeout`` deadline.
    timeouts: int = 0
    #: Failed jobs resubmitted to the pool (bounded: once per job).
    retries: int = 0
    #: Fresh executors built after a broken one was retired.
    pool_rebuilds: int = 0
    #: Jobs that failed twice and were forced in-process (poison jobs).
    quarantined: int = 0
    #: Jobs ultimately served by the in-process fallback.
    fallbacks: int = 0
    #: Whole-sweep downgrades to serial in-process execution.
    serial_degradations: int = 0
    #: Exception type name -> occurrence count (never swallowed silently).
    error_types: dict = field(default_factory=dict)
    #: Cache keys of quarantined jobs, for post-mortem flagging.
    quarantined_keys: list = field(default_factory=list)

    def note_error(self, exc: BaseException) -> None:
        """Record one classified exception by type name."""
        name = type(exc).__name__
        self.error_types[name] = self.error_types.get(name, 0) + 1

    def recovered_total(self) -> int:
        """Total recovery actions taken (0 in a fault-free run)."""
        return (self.timeouts + self.retries + self.pool_rebuilds
                + self.quarantined + self.fallbacks
                + self.serial_degradations)

    def as_dict(self) -> dict:
        """Flat dict view (for stats lines and benchmark tables)."""
        return {
            "worker_crashes": self.worker_crashes,
            "job_errors": self.job_errors,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": self.quarantined,
            "fallbacks": self.fallbacks,
            "serial_degradations": self.serial_degradations,
            "error_types": dict(self.error_types),
        }


class JobTimeout(Exception):
    """A pooled job exceeded its deadline and was abandoned."""
