"""Combined functional + timing result of a simulation run."""

from __future__ import annotations

from dataclasses import dataclass

from ..functional.executor import ExecResult
from ..timing.report import TimingReport


@dataclass
class RunResult:
    """A run's functional outcome paired with its timing report."""
    functional: ExecResult
    timing: TimingReport

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def dp_flops(self) -> float:
        return self.timing.dp_flops

    @property
    def flops_per_cycle(self) -> float:
        return self.timing.flops_per_cycle

    @property
    def state(self):
        return self.functional.state

    @property
    def mem(self):
        """Functional memory after the run (for result checking)."""
        return self.functional.extra.get("mem")

    def utilization(self, peak_flops_per_cycle: float) -> float:
        return self.timing.fpu_utilization(peak_flops_per_cycle)
