"""The Simulator: an explicit trace-once / replay-many pipeline.

Simulation is two decoupled stages:

1. **Trace capture** (:meth:`Simulator.capture`) — the functional
   interpreter executes the program against the architectural state and
   memory, emitting a machine-independent
   :class:`~repro.functional.trace.DynamicTrace`.  The trace depends
   only on the program, the initial data, and VLEN — never on the
   timing model.
2. **Replay** (:meth:`Simulator.replay` / :func:`replay_trace`) — the
   :class:`~repro.timing.engine.TimingEngine` replays a captured trace
   against one machine model, producing a
   :class:`~repro.timing.report.TimingReport`.  Replay never re-executes
   semantics, so one captured trace can be replayed against any number
   of timing configurations (interface-cut sweeps, queue-depth
   ablations, Ara2-vs-AraXL comparisons at equal VLEN) and each replay
   is bit-identical to a fresh end-to-end run.

Captured traces are reusable across machines and processes through
:class:`~repro.sim.trace_cache.TraceCache`, which keys them by
``(program fingerprint, vlen_bits, setup identity)``:

* *program fingerprint* — content hash of the instruction stream
  (:attr:`repro.isa.program.Program.fingerprint`);
* *vlen_bits* — the only machine parameter the functional execution can
  observe (via ``vsetvli``/VLMAX);
* *setup identity* — a caller-chosen string naming the initial memory
  contents (kernels use their name + problem dictionary, which seeds
  the deterministic input RNG).

Typical one-shot use::

    from repro.params import AraXLConfig
    from repro.sim import Simulator

    sim = Simulator(AraXLConfig(lanes=64))
    sim.mem.write_array(addr, data)          # place inputs
    result = sim.run(program)                # capture + replay
    print(result.cycles, result.flops_per_cycle)

Sweep use (capture once, replay per timing config)::

    captured = sim.capture(program)
    for config in timing_configs:
        report = replay_trace(config, captured).timing

Replays of one capture are fully independent, so a whole sweep's replay
batch can fan out over worker processes via
:class:`~repro.sim.parallel.ReplayPool`::

    pool = ReplayPool(workers=None)  # autodetect host CPUs
    reports = pool.replay_batch([(cfg, captured) for cfg in timing_configs])
"""

from __future__ import annotations

from ..functional.executor import ExecResult, Executor
from ..functional.memory import FunctionalMemory
from ..isa.program import Program
from ..params import SystemConfig
from ..timing.engine import TimingEngine
from ..uarch import build_model
from .result import RunResult


class Simulator:
    """Binds a machine configuration to memory and architectural state."""

    def __init__(self, config: SystemConfig,
                 mem: FunctionalMemory | None = None,
                 mem_size: int | None = None) -> None:
        self.config = config
        self.model = build_model(config)
        if mem is None:
            mem = (FunctionalMemory(mem_size) if mem_size is not None
                   else FunctionalMemory())
        self.mem = mem
        self._executor = Executor(config.vlen_bits, mem=self.mem)

    @property
    def state(self):
        return self._executor.state

    # ------------------------------------------------------------------
    # Stage 1: trace capture (functional, machine-independent)
    # ------------------------------------------------------------------
    def capture(self, program: Program) -> ExecResult:
        """Execute ``program`` functionally; returns the captured trace
        bundle, reusable by any replay at this VLEN."""
        exec_result = self._executor.run(program)
        exec_result.extra["mem"] = self.mem
        return exec_result

    # ------------------------------------------------------------------
    # Stage 2: replay (timing, per machine model)
    # ------------------------------------------------------------------
    def replay(self, captured: ExecResult) -> RunResult:
        """Replay a captured trace on this simulator's machine model."""
        timing = TimingEngine(self.model).replay(captured.trace)
        return RunResult(functional=captured, timing=timing)

    # ------------------------------------------------------------------
    def run(self, program: Program, functional_only: bool = False) -> RunResult:
        """Capture + replay in one call; optionally skip the replay."""
        exec_result = self.capture(program)
        if functional_only:
            from ..timing.report import TimingReport

            timing = TimingReport(machine=self.model.name, cycles=0.0,
                                  dp_flops=exec_result.trace.total_flops)
            return RunResult(functional=exec_result, timing=timing)
        return self.replay(exec_result)


def replay_trace(config: SystemConfig, captured: ExecResult) -> RunResult:
    """Replay a captured trace on ``config``'s machine model.

    Builds no memory or architectural state — this is the cheap fan-out
    path for sweeps that reuse one capture across many timing configs.
    The capture's VLEN must match ``config`` (enforced so a cache misuse
    cannot silently produce wrong-VLEN timing).
    """
    vlen = captured.state.vlen_bits if captured.state is not None else None
    if vlen is not None and vlen != config.vlen_bits:
        from ..errors import ConfigError

        raise ConfigError(
            f"trace captured at VLEN={vlen} cannot replay on "
            f"{config.name} (VLEN={config.vlen_bits})"
        )
    timing = TimingEngine(build_model(config)).replay(captured.trace)
    return RunResult(functional=captured, timing=timing)


def run_program(config: SystemConfig, program: Program,
                setup=None) -> RunResult:
    """One-shot convenience: build a simulator, run ``setup(sim)``, run."""
    sim = Simulator(config)
    if setup is not None:
        setup(sim)
    return sim.run(program)
