"""The Simulator: functional execution + timing replay in one call.

Typical use::

    from repro.params import AraXLConfig
    from repro.sim import Simulator

    sim = Simulator(AraXLConfig(lanes=64))
    sim.mem.write_array(addr, data)          # place inputs
    result = sim.run(program)                # execute + time
    print(result.cycles, result.flops_per_cycle)
"""

from __future__ import annotations

from ..functional.executor import Executor
from ..functional.memory import FunctionalMemory
from ..isa.program import Program
from ..params import SystemConfig
from ..timing.engine import TimingEngine
from ..uarch import build_model
from .result import RunResult


class Simulator:
    """Binds a machine configuration to memory and architectural state."""

    def __init__(self, config: SystemConfig,
                 mem: FunctionalMemory | None = None,
                 mem_size: int | None = None) -> None:
        self.config = config
        self.model = build_model(config)
        if mem is None:
            mem = (FunctionalMemory(mem_size) if mem_size is not None
                   else FunctionalMemory())
        self.mem = mem
        self._executor = Executor(config.vlen_bits, mem=self.mem)

    @property
    def state(self):
        return self._executor.state

    def run(self, program: Program, functional_only: bool = False) -> RunResult:
        """Execute ``program``; optionally skip the timing replay."""
        exec_result = self._executor.run(program)
        exec_result.extra["mem"] = self.mem
        if functional_only:
            from ..timing.report import TimingReport

            timing = TimingReport(machine=self.model.name, cycles=0.0,
                                  dp_flops=exec_result.trace.total_flops)
        else:
            timing = TimingEngine(self.model).replay(exec_result.trace)
        return RunResult(functional=exec_result, timing=timing)


def run_program(config: SystemConfig, program: Program,
                setup=None) -> RunResult:
    """One-shot convenience: build a simulator, run ``setup(sim)``, run."""
    sim = Simulator(config)
    if setup is not None:
        setup(sim)
    return sim.run(program)
