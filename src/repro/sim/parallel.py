"""Parallel capture and replay: fan both sweep phases out over processes.

PR 1 made :meth:`~repro.sim.simulator.Simulator.capture` and
:class:`~repro.timing.engine.TimingEngine` replay fully independent: one
captured :class:`~repro.functional.executor.ExecResult` can be replayed
against any number of machine models and each replay is bit-identical to
a fresh end-to-end run.  The paper's evaluation sweeps (Fig 6/7,
Table I/III, the ablations) are therefore embarrassingly parallel in
*both* phases: replays of one capture are independent of each other, and
captures of distinct ``(program fingerprint, vlen_bits, setup)`` keys
are independent of everything.  Two pools exploit this:

* :class:`ReplayPool` fans the timing replays of captured traces out
  over a process pool (batch API below, streaming session via
  :meth:`ReplayPool.session`);
* :class:`CapturePool` fans the functional captures of a cold sweep out
  the same way: one :class:`CaptureTask` per distinct trace key, workers
  rebuilding the kernel from its ``(name, config, B/lane, kwargs)`` spec
  and writing the captured trace into the shared disk store through the
  normal atomic-envelope :meth:`~repro.sim.trace_cache.TraceCache.put`
  path, so the parent — and any concurrently-running replay worker —
  picks it up as an ordinary disk hit.  ``workers=1`` captures
  in-process (byte-identical, no executor), and a dead worker's tasks
  fall back to in-process capture rather than failing the sweep.

:func:`run_pipeline` chains the two into the cold-sweep pipeline: each
operating point's replay tasks enter the replay pool *as soon as* its
trace lands, so capture and replay overlap instead of running as strict
serial phases.

ReplayPool in detail:

* **Batch API** — a replay *task* is ``(config, captured)`` (optionally
  ``(config, captured, trace_key)``); :meth:`ReplayPool.replay_batch`
  returns one :class:`~repro.timing.report.TimingReport` per task **in
  task order**, regardless of worker scheduling.
* **One payload per VLEN group** — tasks sharing a captured trace are
  grouped, and each group ships its single pruned disk payload
  (:func:`~repro.sim.trace_cache._disk_payload`, the same pruning the
  disk cache uses), so lambdas, plan caches and the functional memory
  image never cross a process boundary.  Batches with fewer groups than
  workers split each group's configs into chunks so single-kernel
  many-config sweeps (the ablations) still occupy the whole pool.
* **Disk-backed workers** — given a ``disk_dir`` shared with the
  sweep's :class:`~repro.sim.trace_cache.TraceCache`, groups whose key
  is already on disk ship *no* payload at all: the worker rehydrates
  from its process-local cache (falling back to an explicit payload
  resend if the file is stale or missing).
* **Autodetection and fallback** — ``workers=None`` sizes the pool to
  the host's CPUs; ``workers=1`` bypasses multiprocessing entirely and
  replays in-process, byte-identical to the pooled path.
* **Per-worker statistics** — each job reports its worker's cache
  counters; :attr:`ReplayPool.stats` aggregates them across the pool.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..functional.executor import ExecResult
from ..params import SystemConfig
from ..timing.report import TimingReport
from .simulator import replay_trace
from .trace_cache import (DEFAULT_CAPACITY, TraceCache, TraceKey,
                          _disk_payload, disk_path)

#: A replay task: ``(config, captured)`` or ``(config, captured, key)``.
ReplayTask = tuple

#: A pipeline replay plan entry: ``(config, capture_index)``.
PipelineReplay = tuple


def autodetect_workers() -> int:
    """Worker count for this host: the schedulable CPU count, min 1."""
    count = None
    if hasattr(os, "process_cpu_count"):  # Python >= 3.13
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    return max(1, count or os.cpu_count() or 1)


@dataclass
class _Group:
    """All tasks of one batch that replay the same captured trace."""

    key: Optional[TraceKey]
    captured: ExecResult
    configs: list[SystemConfig] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)


def _merge_snapshot(per_worker: dict[int, dict], pid: int,
                    stats: dict) -> None:
    """Keep the newest cumulative cache snapshot per worker pid.

    A worker's counters only grow, but jobs complete (and their
    snapshots arrive) in arbitrary order, so the snapshot with the most
    lookups is the latest one — never let an earlier, smaller snapshot
    overwrite it.
    """
    def _total(s: dict) -> int:
        return sum(s.get(k, 0) for k in ("hits", "disk_hits", "misses"))

    previous = per_worker.get(pid)
    if previous is None or _total(stats) >= _total(previous):
        per_worker[pid] = stats


# ----------------------------------------------------------------------
# Worker side.  One process-local TraceCache per worker: with a disk_dir
# it rehydrates payload-free jobs; either way its memory layer lets keys
# repeated across batches skip re-shipping.
# ----------------------------------------------------------------------
_WORKER_CACHE: Optional[TraceCache] = None

#: Sentinel result: the worker had no payload and could not rehydrate the
#: key from its cache; the parent must resend with an explicit payload.
_NEEDS_PAYLOAD = None


def _init_worker(disk_dir: Optional[str], capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = TraceCache(capacity=capacity, disk_dir=disk_dir)


def _replay_group(key: Optional[TraceKey], payload: Optional[ExecResult],
                  configs: list[SystemConfig]):
    """Replay one trace group in a worker; returns (pid, reports, stats)."""
    cache = _WORKER_CACHE
    captured = None
    if cache is not None and key is not None:
        captured = cache.get(key)
    if captured is None:
        if payload is None:
            return _NEEDS_PAYLOAD
        captured = payload
        if cache is not None and key is not None:
            cache._remember(key, captured)  # memory layer only: the
            # parent (or another worker) already owns the disk write.
    reports = [replay_trace(config, captured).timing for config in configs]
    stats = dict(cache.stats) if cache is not None else {}
    return os.getpid(), reports, stats


class ReplayPool:
    """Fans :func:`~repro.sim.simulator.replay_trace` calls over processes.

    ``workers=None`` autodetects from the host CPU count; ``workers=1``
    replays in-process with no executor, pickling, or subprocess spawn —
    the results are byte-identical either way.  ``disk_dir`` (typically
    the sweep cache's own ``disk_dir``) lets workers rehydrate captures
    from the shared disk layer instead of receiving them over the pipe.
    """

    def __init__(self, workers: int | None = None,
                 disk_dir: str | Path | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None to autodetect)")
        self.workers = autodetect_workers() if workers is None else int(workers)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.capacity = capacity
        self._worker_stats: dict[int, dict] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(tasks: Sequence[ReplayTask]) -> list[tuple]:
        norm = []
        for task in tasks:
            if len(task) == 2:
                config, captured = task
                key = None
            else:
                config, captured, key = task
            norm.append((config, captured, key))
        return norm

    @staticmethod
    def _group(norm: list[tuple]) -> "OrderedDict[int, _Group]":
        groups: OrderedDict[int, _Group] = OrderedDict()
        for idx, (config, captured, key) in enumerate(norm):
            group = groups.get(id(captured))
            if group is None:
                group = groups[id(captured)] = _Group(key=key,
                                                     captured=captured)
            group.configs.append(config)
            group.indices.append(idx)
        return groups

    def _jobs(self, groups: "OrderedDict[int, _Group]") -> list[_Group]:
        """Split groups into jobs so every worker gets work.

        One job per group is ideal when there are at least as many groups
        as workers (the payload ships once per group).  Sweeps with few
        groups but many configs — e.g. an ablation varying one timing
        knob over a single kernel — would otherwise serialize inside one
        worker, so each group is chunked into up to
        ``workers // len(groups)`` jobs; re-shipping the pruned payload
        per chunk is cheap relative to the replays it buys back.
        """
        per_group = max(1, self.workers // len(groups))
        jobs: list[_Group] = []
        for group in groups.values():
            chunks = min(per_group, len(group.configs))
            size = -(-len(group.configs) // chunks)  # ceil division
            for start in range(0, len(group.configs), size):
                jobs.append(_Group(key=group.key, captured=group.captured,
                                   configs=group.configs[start:start + size],
                                   indices=group.indices[start:start + size]))
        return jobs

    # ------------------------------------------------------------------
    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        norm = self._normalize(tasks)
        if not norm:
            return []
        if self.workers == 1 or len(norm) == 1:
            # In-process serial baseline (workers=1) — also the only
            # sensible plan for a one-task batch.
            return [replay_trace(config, captured).timing
                    for config, captured, _ in norm]
        jobs = self._jobs(self._group(norm))
        results: list[Optional[TimingReport]] = [None] * len(norm)
        max_workers = min(self.workers, len(jobs))
        disk_dir = str(self.disk_dir) if self.disk_dir is not None else None
        with ProcessPoolExecutor(max_workers=max_workers,
                                 initializer=_init_worker,
                                 initargs=(disk_dir, self.capacity)) as pool:
            pending = {}
            for job in jobs:
                payload = None if self._on_disk(job.key) \
                    else _disk_payload(job.captured)
                fut = pool.submit(_replay_group, job.key, payload,
                                  job.configs)
                pending[fut] = job
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    job = pending.pop(fut)
                    outcome = fut.result()
                    if outcome is _NEEDS_PAYLOAD:
                        # Stale/missing disk entry: resend with payload.
                        retry = pool.submit(_replay_group, job.key,
                                            _disk_payload(job.captured),
                                            job.configs)
                        pending[retry] = job
                        continue
                    pid, reports, stats = outcome
                    self._merge_worker_stats(pid, stats)
                    for idx, report in zip(job.indices, reports):
                        results[idx] = report
        return results  # type: ignore[return-value]

    def _merge_worker_stats(self, pid: int, stats: dict) -> None:
        _merge_snapshot(self._worker_stats, pid, stats)

    def _on_disk(self, key: Optional[TraceKey]) -> bool:
        if self.disk_dir is None or key is None:
            return False
        return disk_path(self.disk_dir, key).exists()

    # ------------------------------------------------------------------
    def session(self) -> "ReplaySession":
        """Open a streaming replay session against this pool.

        Unlike :meth:`replay_batch`, a session accepts task groups
        incrementally — the pipeline submits each operating point's
        replays the moment its capture lands — and hands results back
        tagged with caller-chosen indices.  ``workers=1`` sessions
        replay every submission in-process immediately (no executor,
        byte-identical results)."""
        return ReplaySession(self)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        agg = {"hits": 0, "disk_hits": 0, "misses": 0,
               "workers": len(self._worker_stats),
               "per_worker": dict(self._worker_stats)}
        for stats in self._worker_stats.values():
            for counter in ("hits", "disk_hits", "misses"):
                agg[counter] += stats.get(counter, 0)
        return agg


def replay_batch(tasks: Sequence[ReplayTask], workers: int | None = 1,
                 disk_dir: str | Path | None = None) -> list[TimingReport]:
    """One-shot convenience wrapper around :class:`ReplayPool`."""
    return ReplayPool(workers=workers,
                      disk_dir=disk_dir).replay_batch(tasks)


class ReplaySession:
    """Incremental replay against a :class:`ReplayPool`'s workers.

    Created by :meth:`ReplayPool.session` and used as a context manager.
    :meth:`submit` takes one capture's replay configs plus the caller's
    result indices; :meth:`drain` blocks until every submitted replay
    finished and returns ``(index, report)`` pairs.  Submissions overlap
    with each other — and, in the pipeline, with captures still running
    in the capture pool — while ``workers=1`` keeps everything
    in-process and executor-free.
    """

    def __init__(self, pool: ReplayPool) -> None:
        self.pool = pool
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pending: dict = {}
        self._done: list[tuple[int, TimingReport]] = []

    def __enter__(self) -> "ReplaySession":
        return self

    def __exit__(self, *exc) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            disk_dir = str(self.pool.disk_dir) \
                if self.pool.disk_dir is not None else None
            self._executor = ProcessPoolExecutor(
                max_workers=self.pool.workers,
                initializer=_init_worker,
                initargs=(disk_dir, self.pool.capacity))
        return self._executor

    # ------------------------------------------------------------------
    def submit(self, configs: Sequence[SystemConfig], captured: ExecResult,
               key: Optional[TraceKey], indices: Sequence[int]) -> None:
        """Queue one captured trace's replays; results carry ``indices``."""
        if not configs:
            return
        if self.pool.workers == 1:
            for config, idx in zip(configs, indices):
                self._done.append((idx, replay_trace(config,
                                                     captured).timing))
            return
        executor = self._ensure_executor()
        # Chunk so one submission can occupy the whole pool — but only
        # when the key is on shared disk, where extra chunks ship no
        # payload (workers rehydrate).  Without shared disk every chunk
        # would pipe its own pruned-payload pickle, so the submission
        # stays whole; streaming concurrency then comes from the other
        # in-flight submissions.
        on_disk = self.pool._on_disk(key)
        payload = None if on_disk else _disk_payload(captured)
        chunks = min(self.pool.workers, len(configs)) if on_disk else 1
        size = -(-len(configs) // chunks)  # ceil division
        for start in range(0, len(configs), size):
            job = _Group(key=key, captured=captured,
                         configs=list(configs[start:start + size]),
                         indices=list(indices[start:start + size]))
            fut = executor.submit(_replay_group, key, payload, job.configs)
            self._pending[fut] = job

    def drain(self) -> list[tuple[int, TimingReport]]:
        """Wait for every submitted replay; returns (index, report) pairs."""
        while self._pending:
            done, _ = wait(self._pending, return_when=FIRST_COMPLETED)
            for fut in done:
                job = self._pending.pop(fut)
                outcome = fut.result()
                if outcome is _NEEDS_PAYLOAD:
                    # Stale/missing disk entry: resend with payload.
                    retry = self._executor.submit(
                        _replay_group, job.key, _disk_payload(job.captured),
                        job.configs)
                    self._pending[retry] = job
                    continue
                pid, reports, stats = outcome
                self.pool._merge_worker_stats(pid, stats)
                self._done.extend(zip(job.indices, reports))
        return self._done


# ----------------------------------------------------------------------
# Capture side: fan functional captures over a process pool.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaptureTask:
    """One functional capture, specified by what to *build*, not by live
    objects: a :class:`~repro.kernels.common.KernelRun` holds closures
    (setup, golden check) that cannot cross a process boundary, so
    workers rebuild it from the kernel registry.  Builds are
    deterministic in these fields, hence worker and parent agree on the
    trace key and the captured trace bit-for-bit."""

    kernel: str
    config: SystemConfig
    bytes_per_lane: int
    kwargs: tuple = ()
    verify: bool = False

    @staticmethod
    def for_kernel(kernel: str, config: SystemConfig, bytes_per_lane: int,
                   kwargs: dict | None = None,
                   verify: bool = False) -> "CaptureTask":
        return CaptureTask(kernel=kernel, config=config,
                           bytes_per_lane=int(bytes_per_lane),
                           kwargs=tuple(sorted((kwargs or {}).items())),
                           verify=verify)

    def build(self):
        """(Re)build the kernel; memoized process-wide by the registry."""
        from ..kernels import KERNELS  # deferred: kernels import repro.sim

        return KERNELS[self.kernel](self.config, self.bytes_per_lane,
                                    **dict(self.kwargs))

    def key(self) -> TraceKey:
        return self.build().trace_key(self.config)


_CAPTURE_CACHE: Optional[TraceCache] = None


def _init_capture_worker(disk_dir: Optional[str], capacity: int) -> None:
    global _CAPTURE_CACHE
    _CAPTURE_CACHE = TraceCache(capacity=capacity, disk_dir=disk_dir)


def _capture_point(task: CaptureTask):
    """Capture one task in a worker; returns (pid, key, payload, stats).

    With a disk-backed worker cache the capture lands in the shared
    store through the normal atomic-envelope ``put`` and ``payload`` is
    None — the parent (and any concurrent replay worker) rehydrates it
    as a disk hit.  Without shared disk the pruned payload ships back
    over the pipe instead.
    """
    cache = _CAPTURE_CACHE
    run = task.build()
    captured = run.capture(task.config, cache=cache, verify=task.verify)
    on_disk = cache is not None and cache.disk_dir is not None
    payload = None if on_disk else _disk_payload(captured)
    stats = dict(cache.stats) if cache is not None else {}
    return os.getpid(), run.trace_key(task.config), payload, stats


class CapturePool:
    """Fans functional captures over processes, writing into ``cache``.

    The capture-phase twin of :class:`ReplayPool`: one worker task per
    distinct trace key, ``workers=1`` capturing in-process with no
    executor (byte-identical to the pooled path), ``workers=None``
    autodetecting the host CPUs.  Keys already present in ``cache``
    (memory or shared disk) are served in-process with the same
    hit/verify accounting as a serial sweep; a worker that dies — or a
    store whose GC evicts the fresh entry before the parent adopts it —
    degrades to an in-process capture instead of failing the sweep
    (counted in :attr:`fallbacks`).
    """

    def __init__(self, workers: int | None = 1,
                 cache: TraceCache | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None to autodetect)")
        self.workers = autodetect_workers() if workers is None else int(workers)
        self.cache = cache if cache is not None else TraceCache()
        self.capacity = capacity
        self._worker_stats: dict[int, dict] = {}
        #: In-process captures forced by a worker death or a lost entry.
        self.fallbacks = 0

    # ------------------------------------------------------------------
    def capture_batch(self, tasks: Sequence[CaptureTask]) -> list[ExecResult]:
        """Capture every task; results come back in task order."""
        results: list[Optional[ExecResult]] = [None] * len(tasks)
        for idx, _key, captured in self.capture_stream(tasks):
            results[idx] = captured
        return results  # type: ignore[return-value]

    def capture_stream(self, tasks: Sequence[CaptureTask]
                       ) -> Iterator[tuple[int, TraceKey, ExecResult]]:
        """Yield ``(task_index, key, captured)`` as captures land.

        ``workers=1`` yields in task order (plain serial sweep);
        pooled captures yield in completion order, which is what lets
        :func:`run_pipeline` start replays while later captures are
        still running.  Tasks sharing a trace key execute exactly once.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) == 1:
            for idx, task in enumerate(tasks):
                run = task.build()
                yield (idx, run.trace_key(task.config),
                       run.capture(task.config, cache=self.cache,
                                   verify=task.verify))
            return

        groups: "OrderedDict[TraceKey, list[int]]" = OrderedDict()
        for idx, task in enumerate(tasks):
            groups.setdefault(task.key(), []).append(idx)
        local: list[tuple[TraceKey, list[int]]] = []
        remote: list[tuple[TraceKey, list[int]]] = []
        for key, indices in groups.items():
            # Tag-only probe (no payload deserialization, no counter);
            # the capture() below then counts the hit — or recaptures,
            # if the probed entry's payload turns out unreadable —
            # exactly as a serial sweep would.
            (local if self.cache.probe(key) else remote).append(
                (key, indices))
        # Cold keys go to the workers *first*, so the serial warm-serve
        # loop below overlaps with captures already in flight instead of
        # keeping the pool idle for its duration.
        pool = None
        pending: dict = {}
        if remote:
            disk_dir = str(self.cache.disk_dir) \
                if self.cache.disk_dir is not None else None
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(remote)),
                initializer=_init_capture_worker,
                initargs=(disk_dir, self.capacity))
            for key, indices in remote:
                fut = pool.submit(_capture_point, tasks[indices[0]])
                pending[fut] = (key, indices)
        try:
            for key, indices in local:
                task = tasks[indices[0]]
                captured = task.build().capture(task.config,
                                                cache=self.cache,
                                                verify=task.verify)
                for idx in indices:
                    yield idx, key, captured
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    key, indices = pending.pop(fut)
                    task = tasks[indices[0]]
                    try:
                        pid, _wkey, payload, stats = fut.result()
                    except Exception:
                        # Dead worker (or a broken pool taking every
                        # sibling future with it): capture in-process.
                        captured = self._fallback(task)
                    else:
                        _merge_snapshot(self._worker_stats, pid, stats)
                        captured = self.cache.ingest_remote(key, payload)
                        if captured is None:
                            # The store's GC evicted the entry between
                            # the worker's put and our adoption.
                            captured = self._fallback(task)
                    for idx in indices:
                        yield idx, key, captured
        finally:
            # Also reached via GeneratorExit if the consumer abandons
            # the stream: never leak the worker processes.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _fallback(self, task: CaptureTask) -> ExecResult:
        self.fallbacks += 1
        return task.build().capture(task.config, cache=self.cache,
                                    verify=task.verify)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        agg = {"hits": 0, "disk_hits": 0, "misses": 0,
               "workers": len(self._worker_stats),
               "fallbacks": self.fallbacks,
               "per_worker": dict(self._worker_stats)}
        for stats in self._worker_stats.values():
            for counter in ("hits", "disk_hits", "misses"):
                agg[counter] += stats.get(counter, 0)
        return agg


def run_pipeline(captures: Sequence[CaptureTask],
                 replays: Sequence[PipelineReplay],
                 capture_pool: CapturePool,
                 replay_pool: ReplayPool) -> list[TimingReport]:
    """Two-pool cold-sweep pipeline: capture fan-out feeding replay fan-out.

    ``captures[i]`` names one distinct operating point;
    ``replays[j] = (config, i)`` times capture ``i`` on ``config``.
    Captures stream over ``capture_pool`` and each point's replay tasks
    are submitted to ``replay_pool`` the moment its trace lands, so a
    sweep's replay phase overlaps the remainder of its capture phase.
    Returns one report per replay entry **in replay order** — byte-
    identical for any worker counts on either pool (both phases are
    deterministic; only scheduling changes).
    """
    captures = list(captures)
    replays = list(replays)
    plans: list[list[int]] = [[] for _ in captures]
    for ridx, (_config, cidx) in enumerate(replays):
        plans[cidx].append(ridx)
    results: list[Optional[TimingReport]] = [None] * len(replays)
    with replay_pool.session() as session:
        for cidx, key, captured in capture_pool.capture_stream(captures):
            indices = plans[cidx]
            session.submit([replays[r][0] for r in indices], captured,
                           key, indices)
        for ridx, report in session.drain():
            results[ridx] = report
    return results  # type: ignore[return-value]
