"""Parallel replay: fan independent trace replays out over processes.

PR 1 made :meth:`~repro.sim.simulator.Simulator.capture` and
:class:`~repro.timing.engine.TimingEngine` replay fully independent: one
captured :class:`~repro.functional.executor.ExecResult` can be replayed
against any number of machine models and each replay is bit-identical to
a fresh end-to-end run.  The paper's evaluation sweeps (Fig 6/7,
Table III, the ablations) are therefore embarrassingly parallel in their
replay phase, and :class:`ReplayPool` is the harness that exploits it:

* **Batch API** — a replay *task* is ``(config, captured)`` (optionally
  ``(config, captured, trace_key)``); :meth:`ReplayPool.replay_batch`
  returns one :class:`~repro.timing.report.TimingReport` per task **in
  task order**, regardless of worker scheduling.
* **One payload per VLEN group** — tasks sharing a captured trace are
  grouped, and each group ships its single pruned disk payload
  (:func:`~repro.sim.trace_cache._disk_payload`, the same pruning the
  disk cache uses), so lambdas, plan caches and the functional memory
  image never cross a process boundary.  Batches with fewer groups than
  workers split each group's configs into chunks so single-kernel
  many-config sweeps (the ablations) still occupy the whole pool.
* **Disk-backed workers** — given a ``disk_dir`` shared with the
  sweep's :class:`~repro.sim.trace_cache.TraceCache`, groups whose key
  is already on disk ship *no* payload at all: the worker rehydrates
  from its process-local cache (falling back to an explicit payload
  resend if the file is stale or missing).
* **Autodetection and fallback** — ``workers=None`` sizes the pool to
  the host's CPUs; ``workers=1`` bypasses multiprocessing entirely and
  replays in-process, byte-identical to the pooled path.
* **Per-worker statistics** — each job reports its worker's cache
  counters; :attr:`ReplayPool.stats` aggregates them across the pool.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..functional.executor import ExecResult
from ..params import SystemConfig
from ..timing.report import TimingReport
from .simulator import replay_trace
from .trace_cache import (DEFAULT_CAPACITY, TraceCache, TraceKey,
                          _disk_payload, disk_path)

#: A replay task: ``(config, captured)`` or ``(config, captured, key)``.
ReplayTask = tuple


def autodetect_workers() -> int:
    """Worker count for this host: the schedulable CPU count, min 1."""
    count = None
    if hasattr(os, "process_cpu_count"):  # Python >= 3.13
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    return max(1, count or os.cpu_count() or 1)


@dataclass
class _Group:
    """All tasks of one batch that replay the same captured trace."""

    key: Optional[TraceKey]
    captured: ExecResult
    configs: list[SystemConfig] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Worker side.  One process-local TraceCache per worker: with a disk_dir
# it rehydrates payload-free jobs; either way its memory layer lets keys
# repeated across batches skip re-shipping.
# ----------------------------------------------------------------------
_WORKER_CACHE: Optional[TraceCache] = None

#: Sentinel result: the worker had no payload and could not rehydrate the
#: key from its cache; the parent must resend with an explicit payload.
_NEEDS_PAYLOAD = None


def _init_worker(disk_dir: Optional[str], capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = TraceCache(capacity=capacity, disk_dir=disk_dir)


def _replay_group(key: Optional[TraceKey], payload: Optional[ExecResult],
                  configs: list[SystemConfig]):
    """Replay one trace group in a worker; returns (pid, reports, stats)."""
    cache = _WORKER_CACHE
    captured = None
    if cache is not None and key is not None:
        captured = cache.get(key)
    if captured is None:
        if payload is None:
            return _NEEDS_PAYLOAD
        captured = payload
        if cache is not None and key is not None:
            cache._remember(key, captured)  # memory layer only: the
            # parent (or another worker) already owns the disk write.
    reports = [replay_trace(config, captured).timing for config in configs]
    stats = dict(cache.stats) if cache is not None else {}
    return os.getpid(), reports, stats


class ReplayPool:
    """Fans :func:`~repro.sim.simulator.replay_trace` calls over processes.

    ``workers=None`` autodetects from the host CPU count; ``workers=1``
    replays in-process with no executor, pickling, or subprocess spawn —
    the results are byte-identical either way.  ``disk_dir`` (typically
    the sweep cache's own ``disk_dir``) lets workers rehydrate captures
    from the shared disk layer instead of receiving them over the pipe.
    """

    def __init__(self, workers: int | None = None,
                 disk_dir: str | Path | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None to autodetect)")
        self.workers = autodetect_workers() if workers is None else int(workers)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.capacity = capacity
        self._worker_stats: dict[int, dict] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(tasks: Sequence[ReplayTask]) -> list[tuple]:
        norm = []
        for task in tasks:
            if len(task) == 2:
                config, captured = task
                key = None
            else:
                config, captured, key = task
            norm.append((config, captured, key))
        return norm

    @staticmethod
    def _group(norm: list[tuple]) -> "OrderedDict[int, _Group]":
        groups: OrderedDict[int, _Group] = OrderedDict()
        for idx, (config, captured, key) in enumerate(norm):
            group = groups.get(id(captured))
            if group is None:
                group = groups[id(captured)] = _Group(key=key,
                                                     captured=captured)
            group.configs.append(config)
            group.indices.append(idx)
        return groups

    def _jobs(self, groups: "OrderedDict[int, _Group]") -> list[_Group]:
        """Split groups into jobs so every worker gets work.

        One job per group is ideal when there are at least as many groups
        as workers (the payload ships once per group).  Sweeps with few
        groups but many configs — e.g. an ablation varying one timing
        knob over a single kernel — would otherwise serialize inside one
        worker, so each group is chunked into up to
        ``workers // len(groups)`` jobs; re-shipping the pruned payload
        per chunk is cheap relative to the replays it buys back.
        """
        per_group = max(1, self.workers // len(groups))
        jobs: list[_Group] = []
        for group in groups.values():
            chunks = min(per_group, len(group.configs))
            size = -(-len(group.configs) // chunks)  # ceil division
            for start in range(0, len(group.configs), size):
                jobs.append(_Group(key=group.key, captured=group.captured,
                                   configs=group.configs[start:start + size],
                                   indices=group.indices[start:start + size]))
        return jobs

    # ------------------------------------------------------------------
    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        norm = self._normalize(tasks)
        if not norm:
            return []
        if self.workers == 1 or len(norm) == 1:
            # In-process serial baseline (workers=1) — also the only
            # sensible plan for a one-task batch.
            return [replay_trace(config, captured).timing
                    for config, captured, _ in norm]
        jobs = self._jobs(self._group(norm))
        results: list[Optional[TimingReport]] = [None] * len(norm)
        max_workers = min(self.workers, len(jobs))
        disk_dir = str(self.disk_dir) if self.disk_dir is not None else None
        with ProcessPoolExecutor(max_workers=max_workers,
                                 initializer=_init_worker,
                                 initargs=(disk_dir, self.capacity)) as pool:
            pending = {}
            for job in jobs:
                payload = None if self._on_disk(job.key) \
                    else _disk_payload(job.captured)
                fut = pool.submit(_replay_group, job.key, payload,
                                  job.configs)
                pending[fut] = job
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    job = pending.pop(fut)
                    outcome = fut.result()
                    if outcome is _NEEDS_PAYLOAD:
                        # Stale/missing disk entry: resend with payload.
                        retry = pool.submit(_replay_group, job.key,
                                            _disk_payload(job.captured),
                                            job.configs)
                        pending[retry] = job
                        continue
                    pid, reports, stats = outcome
                    self._merge_worker_stats(pid, stats)
                    for idx, report in zip(job.indices, reports):
                        results[idx] = report
        return results  # type: ignore[return-value]

    def _merge_worker_stats(self, pid: int, stats: dict) -> None:
        """Keep the newest cumulative snapshot per worker.

        A worker's counters only grow, but jobs complete (and their
        snapshots arrive) in arbitrary order, so the snapshot with the
        most lookups is the latest one — never let an earlier, smaller
        snapshot overwrite it.
        """
        def _total(s: dict) -> int:
            return sum(s.get(k, 0) for k in ("hits", "disk_hits", "misses"))

        previous = self._worker_stats.get(pid)
        if previous is None or _total(stats) >= _total(previous):
            self._worker_stats[pid] = stats

    def _on_disk(self, key: Optional[TraceKey]) -> bool:
        if self.disk_dir is None or key is None:
            return False
        return disk_path(self.disk_dir, key).exists()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        agg = {"hits": 0, "disk_hits": 0, "misses": 0,
               "workers": len(self._worker_stats),
               "per_worker": dict(self._worker_stats)}
        for stats in self._worker_stats.values():
            for counter in ("hits", "disk_hits", "misses"):
                agg[counter] += stats.get(counter, 0)
        return agg


def replay_batch(tasks: Sequence[ReplayTask], workers: int | None = 1,
                 disk_dir: str | Path | None = None) -> list[TimingReport]:
    """One-shot convenience wrapper around :class:`ReplayPool`."""
    return ReplayPool(workers=workers,
                      disk_dir=disk_dir).replay_batch(tasks)
