"""Parallel capture and replay: one shared pool, tagged jobs, two phases.

PR 1 made :meth:`~repro.sim.simulator.Simulator.capture` and
:class:`~repro.timing.engine.TimingEngine` replay fully independent: one
captured :class:`~repro.functional.executor.ExecResult` can be replayed
against any number of machine models and each replay is bit-identical to
a fresh end-to-end run.  The paper's evaluation sweeps (Fig 6/7,
Table I/III, the ablations) are therefore embarrassingly parallel in
*both* phases: replays of one capture are independent of each other, and
captures of distinct ``(program fingerprint, vlen_bits, setup)`` keys
are independent of everything.

:class:`SimPool` exploits this with **one** process pool.  Earlier
revisions ran two private executors (a capture pool feeding a replay
pool), which could hold up to ``capture_workers + workers`` live
processes during the overlap window — oversubscription on exactly the
small hosts that need parallelism least.  A :class:`SimPool` owns a
single :class:`~concurrent.futures.ProcessPoolExecutor` sized by one
``workers=`` budget and executes *tagged* jobs on it:

* ``capture`` jobs run one functional capture per distinct trace key
  (workers rebuild the kernel from its picklable :class:`CaptureTask`
  spec and write the captured trace into the shared disk store through
  the normal atomic-envelope
  :meth:`~repro.sim.trace_cache.TraceCache.put` path);
* ``replay`` jobs time a captured trace on one or more machine configs.

``capture_workers=`` survives as a **soft priority split**: while replay
jobs are in flight, at most ``min(capture_workers, workers)`` capture
jobs are submitted concurrently, leaving the remaining slots to drain
replays; when no replays are pending, captures may fill the whole
budget.  ``capture_workers=1`` (the default) keeps the capture phase
in-process — the old two-pool ``workers=1``-capture semantics — and
``workers=1`` keeps *everything* in-process with no executor at all.
Whatever the knobs, the total number of live worker processes never
exceeds the ``workers=`` budget, and rendered sweep output is
byte-identical: only scheduling changes, never results.

:func:`run_pipeline` is the cold-sweep pipeline over one
:class:`SimPool`: each operating point's replay jobs enter the pool *as
soon as* its trace lands, so capture and replay overlap instead of
running as strict serial phases.  Replay submissions are **chunked
adaptively**: a capture whose key sits in the shared disk store ships no
payload, so its replays can split across however many pool slots are
currently idle — a busy pool gets one job (queueing more buys nothing),
a draining pool gets enough chunks to refill.  Payload-shipping
submissions (no shared disk) stay whole, since every extra chunk would
re-pipe the pruned trace pickle.

Both phases are instrumented: every job (pooled or in-process) reports
its wall-clock, aggregated per worker and per phase in
:class:`PipelineStats` (:attr:`SimPool.pipeline_stats`), so benchmark
tables can report capture/replay seconds per point — pipeline
*efficiency*, not just cache hit counts.

:class:`CapturePool` and :class:`ReplayPool` remain as thin batch-API
facades over a private :class:`SimPool` (their historical constructors
and ``capture_batch`` / ``replay_batch`` / ``stats`` surfaces are used
throughout the test and benchmark suites); neither owns an executor of
its own anymore.

Worker-side details shared by both job kinds:

* **One process-local cache per worker** — with a ``disk_dir`` it
  rehydrates payload-free replay jobs and write-throughs captures;
  either way its memory layer lets keys repeated across jobs skip
  re-shipping, and a worker that captured a trace serves its own replay
  jobs from memory.
* **One payload per trace key** — replay jobs ship the single pruned
  disk payload (:func:`~repro.sim.trace_cache._disk_payload`, the same
  pruning the disk cache uses) only when the key is not already in the
  shared store; stale or vanished store entries trigger an explicit
  payload resend (:data:`_NEEDS_PAYLOAD`).
* **Failure degradation** — a dead capture worker, or a store GC that
  evicts a fresh entry before the parent adopts it, degrades to an
  in-process capture (counted in :attr:`SimPool.fallbacks`) rather than
  failing the sweep.
* **Per-worker statistics** — each job reports its worker's cache
  counters; :attr:`SimPool.stats` aggregates them across the pool.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..functional.executor import ExecResult
from ..params import SystemConfig
from ..timing.report import TimingReport
from .simulator import replay_trace
from .trace_cache import (DEFAULT_CAPACITY, TraceCache, TraceKey,
                          _disk_payload, disk_path)

#: A replay task: ``(config, captured)`` or ``(config, captured, key)``.
ReplayTask = tuple

#: A pipeline replay plan entry: ``(config, capture_index)``.
PipelineReplay = tuple

#: The parent's pid slot in per-worker stats: in-process work (serial
#: paths, warm serves, fallbacks) is attributed to worker id 0.
PARENT_WORKER = 0


def autodetect_workers() -> int:
    """Worker count for this host: the schedulable CPU count, min 1."""
    count = None
    if hasattr(os, "process_cpu_count"):  # Python >= 3.13
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    return max(1, count or os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Pipeline statistics: per-phase wall-clock, aggregated per worker.
# ----------------------------------------------------------------------
@dataclass
class PipelineStats:
    """Wall-clock instrumentation of one pool's capture/replay phases.

    ``*_points`` counts operating points served per phase (a replay job
    covering three configs contributes three points), ``*_seconds``
    sums the jobs' measured wall-clock, and ``per_worker`` breaks both
    down by worker pid (:data:`PARENT_WORKER` is the parent process:
    serial paths, warm cache serves, and fallback captures).  Seconds
    are *work* seconds summed across workers — with N workers busy they
    accrue up to N times faster than the pipeline's elapsed time, which
    is exactly what makes ``capture_seconds / capture_points`` a
    scheduling-independent per-point cost.
    """

    capture_points: int = 0
    capture_seconds: float = 0.0
    replay_points: int = 0
    replay_seconds: float = 0.0
    per_worker: dict = field(default_factory=dict)

    def note(self, tag: str, pid: int, points: int, seconds: float) -> None:
        """Record one finished job of ``tag`` ('capture' | 'replay')."""
        if tag == "capture":
            self.capture_points += points
            self.capture_seconds += seconds
        else:
            self.replay_points += points
            self.replay_seconds += seconds
        slot = self.per_worker.setdefault(
            pid, {"capture_points": 0, "capture_seconds": 0.0,
                  "replay_points": 0, "replay_seconds": 0.0})
        slot[f"{tag}_points"] += points
        slot[f"{tag}_seconds"] += seconds

    def seconds_per_point(self, tag: str) -> float:
        """Mean per-point wall-clock for one phase (0.0 when unused)."""
        points = self.capture_points if tag == "capture" \
            else self.replay_points
        seconds = self.capture_seconds if tag == "capture" \
            else self.replay_seconds
        return seconds / points if points else 0.0


@dataclass
class _Job:
    """Parent-side bookkeeping for one tagged submission.

    ``indices`` are capture-task indices for a capture job and result
    indices for a replay job; ``captured`` is kept on replay jobs so a
    stale-entry resend or an in-process degradation never needs the
    worker's copy.
    """

    tag: str                                   # "capture" | "replay"
    key: Optional[TraceKey] = None
    captured: Optional[ExecResult] = None
    configs: list = field(default_factory=list)
    indices: list = field(default_factory=list)


@dataclass
class _Group:
    """All tasks of one replay batch that share a captured trace."""

    key: Optional[TraceKey]
    captured: ExecResult
    configs: list[SystemConfig] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)


def _merge_snapshot(per_worker: dict[int, dict], pid: int,
                    stats: dict) -> None:
    """Keep the newest cumulative cache snapshot per worker pid.

    A worker's counters only grow, but jobs complete (and their
    snapshots arrive) in arbitrary order, so the snapshot with the most
    lookups is the latest one — never let an earlier, smaller snapshot
    overwrite it.
    """
    def _total(s: dict) -> int:
        return sum(s.get(k, 0) for k in ("hits", "disk_hits", "misses"))

    previous = per_worker.get(pid)
    if previous is None or _total(stats) >= _total(previous):
        per_worker[pid] = stats


# ----------------------------------------------------------------------
# Worker side.  One process-local TraceCache per worker serves BOTH job
# kinds: with a disk_dir it rehydrates payload-free replay jobs and
# write-throughs captures; either way its memory layer lets a worker
# that captured a trace replay it without ever touching disk.
# ----------------------------------------------------------------------
_WORKER_CACHE: Optional[TraceCache] = None

#: Sentinel result: the worker had no payload and could not rehydrate the
#: key from its cache; the parent must resend with an explicit payload.
_NEEDS_PAYLOAD = None


def _init_worker(disk_dir: Optional[str], capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = TraceCache(capacity=capacity, disk_dir=disk_dir)


def _capture_job(task: "CaptureTask"):
    """Capture one task in a worker; returns (pid, key, payload, stats, s).

    With a disk-backed worker cache the capture lands in the shared
    store through the normal atomic-envelope ``put`` and ``payload`` is
    None — the parent (and any concurrent replay worker) rehydrates it
    as a disk hit.  Without shared disk the pruned payload ships back
    over the pipe instead.
    """
    t0 = time.perf_counter()
    cache = _WORKER_CACHE
    run = task.build()
    captured = run.capture(task.config, cache=cache, verify=task.verify)
    on_disk = cache is not None and cache.disk_dir is not None
    payload = None if on_disk else _disk_payload(captured)
    stats = dict(cache.stats) if cache is not None else {}
    return (os.getpid(), run.trace_key(task.config), payload, stats,
            time.perf_counter() - t0)


def _replay_job(key: Optional[TraceKey], payload: Optional[ExecResult],
                configs: list[SystemConfig]):
    """Replay one trace's configs in a worker; (pid, reports, stats, s)."""
    t0 = time.perf_counter()
    cache = _WORKER_CACHE
    captured = None
    if cache is not None and key is not None:
        captured = cache.get(key)
    if captured is None:
        if payload is None:
            return _NEEDS_PAYLOAD
        captured = payload
        if cache is not None and key is not None:
            cache._remember(key, captured)  # memory layer only: the
            # parent (or another worker) already owns the disk write.
    reports = [replay_trace(config, captured).timing for config in configs]
    stats = dict(cache.stats) if cache is not None else {}
    return os.getpid(), reports, stats, time.perf_counter() - t0


def _run_job(tag: str, *args):
    """The pool's single entry point: dispatch one tagged job.

    Every submission to a :class:`SimPool` executor goes through here,
    so one worker pool — and one process-local cache — serves both
    phases.  ``tag`` is ``"capture"`` or ``"replay"``.
    """
    if tag == "capture":
        return _capture_job(*args)
    return _replay_job(*args)


# ----------------------------------------------------------------------
# Batch planning helpers (replay-only batches).
# ----------------------------------------------------------------------
def _normalize_tasks(tasks: Sequence[ReplayTask]) -> list[tuple]:
    """Coerce ``(config, captured[, key])`` task tuples to triples."""
    norm = []
    for task in tasks:
        if len(task) == 2:
            config, captured = task
            key = None
        else:
            config, captured, key = task
        norm.append((config, captured, key))
    return norm


def _group_tasks(norm: list[tuple]) -> "OrderedDict[int, _Group]":
    """Group batch tasks by the captured trace they replay."""
    groups: OrderedDict[int, _Group] = OrderedDict()
    for idx, (config, captured, key) in enumerate(norm):
        group = groups.get(id(captured))
        if group is None:
            group = groups[id(captured)] = _Group(key=key, captured=captured)
        group.configs.append(config)
        group.indices.append(idx)
    return groups


def _batch_jobs(groups: "OrderedDict[int, _Group]",
                workers: int) -> list[_Group]:
    """Split a batch's groups into jobs so every worker gets work.

    One job per group is ideal when there are at least as many groups
    as workers (the payload ships once per group).  Batches with few
    groups but many configs — e.g. an ablation varying one timing knob
    over a single kernel — would otherwise serialize inside one worker,
    so each group is chunked into up to ``workers // len(groups)`` jobs;
    re-shipping the pruned payload per chunk is cheap relative to the
    replays it buys back.  (The *streaming* pipeline instead adapts its
    chunking to live queue depth: :meth:`SimPool._adaptive_chunks`.)
    """
    per_group = max(1, workers // len(groups))
    jobs: list[_Group] = []
    for group in groups.values():
        chunks = min(per_group, len(group.configs))
        size = -(-len(group.configs) // chunks)  # ceil division
        for start in range(0, len(group.configs), size):
            jobs.append(_Group(key=group.key, captured=group.captured,
                               configs=group.configs[start:start + size],
                               indices=group.indices[start:start + size]))
    return jobs


# ----------------------------------------------------------------------
# Capture task specs.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaptureTask:
    """One functional capture, specified by what to *build*, not by live
    objects: a :class:`~repro.kernels.common.KernelRun` holds closures
    (setup, golden check) that cannot cross a process boundary, so
    workers rebuild it from the kernel registry.  Builds are
    deterministic in these fields, hence worker and parent agree on the
    trace key and the captured trace bit-for-bit."""

    kernel: str
    config: SystemConfig
    bytes_per_lane: int
    kwargs: tuple = ()
    verify: bool = False

    @staticmethod
    def for_kernel(kernel: str, config: SystemConfig, bytes_per_lane: int,
                   kwargs: dict | None = None,
                   verify: bool = False) -> "CaptureTask":
        """Build a task spec from a kernel registry name and its knobs."""
        return CaptureTask(kernel=kernel, config=config,
                           bytes_per_lane=int(bytes_per_lane),
                           kwargs=tuple(sorted((kwargs or {}).items())),
                           verify=verify)

    def build(self):
        """(Re)build the kernel; memoized process-wide by the registry.

        Cheap since the lazy-golden split: building assembles (or
        fetches the memoized) program skeleton but never materializes
        golden arrays — those are built on first ``setup``/``check``
        use, i.e. only where a capture actually executes.
        """
        from ..kernels import KERNELS  # deferred: kernels import repro.sim

        return KERNELS[self.kernel](self.config, self.bytes_per_lane,
                                    **dict(self.kwargs))

    def key(self) -> TraceKey:
        """The trace key this task's capture will land under."""
        return self.build().trace_key(self.config)


# ----------------------------------------------------------------------
# The shared pool.
# ----------------------------------------------------------------------
class SimPool:
    """One process pool executing tagged capture/replay jobs.

    * ``workers=`` is the **total** process budget — the executor is
      sized by it, so capture and replay fan-out together can never
      hold more than ``workers`` live processes.  ``None`` autodetects
      the host's schedulable CPUs; ``1`` runs everything in-process
      with no executor, byte-identical to any pooled schedule.
    * ``capture_workers=`` is a **soft priority split**: while replay
      jobs are pending, at most ``min(capture_workers, workers)``
      capture jobs are in flight, keeping slots free to drain replays;
      with no replays pending, captures may fill the whole budget.
      ``1`` (the default) captures in the parent process.  ``None``
      autodetects (and is then clamped to the budget).
    * ``cache`` is the trace cache/store both phases go through; its
      ``disk_dir`` (if any) is what lets workers exchange traces as
      disk envelopes instead of pipe payloads.

    The pool is lazy: the executor spawns on first pooled submission
    and is torn down at the end of each :func:`run_pipeline` /
    batch call (or explicitly via :meth:`shutdown` / ``with pool:``).
    """

    def __init__(self, workers: int | None = 1,
                 capture_workers: int | None = None,
                 cache: TraceCache | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None to autodetect)")
        if capture_workers is not None and capture_workers < 1:
            raise ValueError(
                "capture_workers must be >= 1 (or None to autodetect)")
        self.workers = autodetect_workers() if workers is None \
            else int(workers)
        split = autodetect_workers() if capture_workers is None \
            else int(capture_workers)
        #: The soft split, clamped to the budget: the cap on in-flight
        #: capture jobs while replay jobs are pending.
        self.capture_workers = max(1, min(split, self.workers))
        self.cache = cache if cache is not None else TraceCache()
        self.capacity = capacity
        self._executor: Optional[ProcessPoolExecutor] = None
        self._worker_stats: dict[int, dict] = {}
        #: In-process captures forced by a worker death or a lost entry.
        self.fallbacks = 0
        #: Per-phase wall-clock, aggregated per worker.
        self.pipeline_stats = PipelineStats()

    # -- executor lifecycle --------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            disk_dir = str(self.cache.disk_dir) \
                if self.cache.disk_dir is not None else None
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(disk_dir, self.capacity))
        return self._executor

    def shutdown(self) -> None:
        """Tear the executor down (if one was ever spawned).

        ``wait=True`` matters: the teardown must leave no executor
        management threads or worker processes behind, because callers
        may ``fork`` afterwards (e.g. ``multiprocessing.Process`` in
        tests and benchmark drivers) and a fork taken while an executor
        thread holds one of its internal locks deadlocks the child.
        Pending futures are cancelled first, so the wait is bounded by
        the jobs already running.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SimPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- shared helpers ------------------------------------------------
    def _on_disk(self, key: Optional[TraceKey]) -> bool:
        if self.cache.disk_dir is None or key is None:
            return False
        return disk_path(self.cache.disk_dir, key).exists()

    def _merge_worker_stats(self, pid: int, stats: dict) -> None:
        _merge_snapshot(self._worker_stats, pid, stats)

    def _capture_local(self, task: CaptureTask,
                       points: int = 1) -> ExecResult:
        """Capture (or cache-serve) one task in the parent, timed.

        ``points=0`` records the wall-clock without claiming another
        operating point — used when the point was already counted (a
        worker captured it but the entry was lost before adoption), so
        ``capture_points`` stays "points served", never "captures run".
        """
        t0 = time.perf_counter()
        run = task.build()
        captured = run.capture(task.config, cache=self.cache,
                               verify=task.verify)
        self.pipeline_stats.note("capture", PARENT_WORKER, points,
                                 time.perf_counter() - t0)
        return captured

    def _fallback(self, task: CaptureTask, points: int = 1) -> ExecResult:
        self.fallbacks += 1
        return self._capture_local(task, points=points)

    def _replay_local(self, job: _Job, results: list) -> None:
        """Replay one job's configs in the parent, timed.

        The degradation path when the shared executor can no longer run
        the job (a worker died, or the whole pool broke): the parent
        holds ``job.captured``, so the sweep completes instead of
        failing.
        """
        t0 = time.perf_counter()
        for idx, config in zip(job.indices, job.configs):
            results[idx] = replay_trace(config, job.captured).timing
        self.pipeline_stats.note("replay", PARENT_WORKER, len(job.indices),
                                 time.perf_counter() - t0)

    def _adaptive_chunks(self, n_configs: int, on_disk: bool,
                         queue_depth: int) -> int:
        """Chunk count for one capture's replay submission.

        Adapts to the live queue instead of splitting every submission
        ``workers`` ways: payload-free (shared-disk) submissions split
        across the pool's currently *idle* slots — a busy pool gets one
        job (extra chunks would only queue), a drained pool gets enough
        chunks to refill.  Payload-shipping submissions never split:
        each chunk would re-pipe the pruned trace pickle.
        """
        if not on_disk or n_configs <= 1:
            return 1
        idle = self.workers - queue_depth
        return max(1, min(n_configs, idle))

    def _submit_replays(self, pending: dict, captured: ExecResult,
                        key: Optional[TraceKey],
                        configs: Sequence[SystemConfig],
                        indices: Sequence[int],
                        results: list) -> None:
        """Queue one captured trace's replays onto the shared executor.

        A pool that can no longer accept work (broken by an earlier
        worker death) degrades each chunk to an in-process replay
        instead of failing the sweep.
        """
        if not configs:
            return
        executor = self._ensure_executor()
        on_disk = self._on_disk(key)
        payload = None if on_disk else _disk_payload(captured)
        chunks = self._adaptive_chunks(len(configs), on_disk, len(pending))
        size = -(-len(configs) // chunks)  # ceil division
        for start in range(0, len(configs), size):
            job = _Job(tag="replay", key=key, captured=captured,
                       configs=list(configs[start:start + size]),
                       indices=list(indices[start:start + size]))
            try:
                fut = executor.submit(_run_job, "replay", key, payload,
                                      job.configs)
            except Exception:
                self._replay_local(job, results)
                continue
            pending[fut] = job

    def _finish_replay(self, pending: dict, job: _Job, outcome,
                       results: list) -> bool:
        """Record one replay job's outcome; False = resent for payload."""
        if outcome is _NEEDS_PAYLOAD:
            # Stale/missing disk entry: resend with an explicit payload
            # (in-process if the pool can no longer take the job).
            try:
                retry = self._ensure_executor().submit(
                    _run_job, "replay", job.key,
                    _disk_payload(job.captured), job.configs)
            except Exception:
                self._replay_local(job, results)
                return True
            pending[retry] = job
            return False
        pid, reports, stats, seconds = outcome
        self._merge_worker_stats(pid, stats)
        self.pipeline_stats.note("replay", pid, len(job.indices), seconds)
        for idx, report in zip(job.indices, reports):
            results[idx] = report
        return True

    # ------------------------------------------------------------------
    # The two-phase pipeline.
    # ------------------------------------------------------------------
    def run(self, captures: Sequence[CaptureTask],
            replays: Sequence[PipelineReplay]) -> list[TimingReport]:
        """Capture every task, replaying each point as its trace lands.

        ``captures[i]`` names one distinct operating point;
        ``replays[j] = (config, i)`` times capture ``i`` on ``config``.
        Returns one report per replay entry **in replay order** —
        byte-identical for any ``workers`` / ``capture_workers``
        combination (both phases are deterministic; only scheduling
        changes).
        """
        captures = list(captures)
        replays = list(replays)
        plans: list[list[int]] = [[] for _ in captures]
        for ridx, (_config, cidx) in enumerate(replays):
            plans[cidx].append(ridx)
        results: list[Optional[TimingReport]] = [None] * len(replays)

        if self.workers == 1:
            # Fully in-process: the serial baseline every pooled
            # schedule must match byte-for-byte.
            for cidx, task in enumerate(captures):
                captured = self._capture_local(task)
                if not plans[cidx]:
                    continue
                t0 = time.perf_counter()
                for ridx in plans[cidx]:
                    results[ridx] = replay_trace(replays[ridx][0],
                                                 captured).timing
                self.pipeline_stats.note("replay", PARENT_WORKER,
                                         len(plans[cidx]),
                                         time.perf_counter() - t0)
            return results  # type: ignore[return-value]

        # Classify captures: keys the cache can already serve are
        # handled in the parent with ordinary hit accounting; cold keys
        # go to the pool (or the parent, if the split says so).  Tasks
        # sharing a trace key collapse into one capture whose result
        # serves every aliased task's replays.
        by_key: "OrderedDict[TraceKey, list[int]]" = OrderedDict()
        for cidx, task in enumerate(captures):
            by_key.setdefault(task.key(), []).append(cidx)
        warm: list[tuple[TraceKey, list[int]]] = []
        cold: "deque[tuple[TraceKey, list[int]]]" = deque()
        for key, cidxs in by_key.items():
            # Tag-only probe (no payload deserialization, no counter);
            # the capture() below then counts the hit — or recaptures,
            # if the probed entry's payload turns out unreadable —
            # exactly as a serial sweep would.
            (warm if self.cache.probe(key) else cold).append((key, cidxs))

        pooled_captures = self.capture_workers > 1 and len(captures) > 1
        pending: dict = {}
        in_flight_captures = 0
        pending_replays = 0

        def capture_allowance() -> int:
            # The soft split: full budget while no replays compete.
            return self.capture_workers if pending_replays else self.workers

        def top_up_captures() -> None:
            nonlocal in_flight_captures
            if not pooled_captures:
                return
            executor = self._ensure_executor()
            while cold and in_flight_captures < capture_allowance():
                key, cidxs = cold.popleft()
                try:
                    fut = executor.submit(_run_job, "capture",
                                          captures[cidxs[0]])
                except Exception:
                    # Broken pool: capture (and replay) in the parent.
                    submit_point(cidxs, key,
                                 self._fallback(captures[cidxs[0]]))
                    continue
                pending[fut] = _Job(tag="capture", key=key,
                                    indices=list(cidxs))
                in_flight_captures += 1

        def submit_point(cidxs: list[int], key: TraceKey,
                         captured: ExecResult) -> None:
            nonlocal pending_replays
            indices = [ridx for cidx in cidxs for ridx in plans[cidx]]
            before = len(pending)
            self._submit_replays(pending, captured,
                                 key, [replays[r][0] for r in indices],
                                 indices, results)
            pending_replays += len(pending) - before

        try:
            # Cold keys enter the pool first, so the warm serving below
            # overlaps with captures already in flight.
            top_up_captures()
            for key, cidxs in warm:
                submit_point(cidxs, key,
                             self._capture_local(captures[cidxs[0]]))
            if not pooled_captures:
                # capture_workers == 1: the capture phase stays in the
                # parent (old two-pool semantics) while submitted
                # replays drain in the pool behind it.
                while cold:
                    key, cidxs = cold.popleft()
                    submit_point(cidxs, key,
                                 self._capture_local(captures[cidxs[0]]))
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    job = pending.pop(fut)
                    if job.tag == "capture":
                        in_flight_captures -= 1
                        task = captures[job.indices[0]]
                        try:
                            outcome = fut.result()
                        except Exception:
                            # Dead worker (or a broken pool taking every
                            # sibling future with it): capture locally.
                            captured = self._fallback(task)
                        else:
                            pid, _wkey, payload, stats, seconds = outcome
                            self._merge_worker_stats(pid, stats)
                            self.pipeline_stats.note("capture", pid, 1,
                                                     seconds)
                            captured = self.cache.ingest_remote(job.key,
                                                                payload)
                            if captured is None:
                                # The store's GC evicted the entry
                                # between the worker's put and adoption;
                                # the point is already counted, so the
                                # re-capture adds seconds, not points.
                                captured = self._fallback(task, points=0)
                        submit_point(job.indices, job.key, captured)
                    else:
                        pending_replays -= 1
                        try:
                            outcome = fut.result()
                        except Exception:
                            # Dead worker/broken pool: the parent holds
                            # the capture — finish this chunk itself.
                            self._replay_local(job, results)
                        else:
                            if not self._finish_replay(pending, job,
                                                       outcome, results):
                                pending_replays += 1  # resent: pending
                    top_up_captures()
        finally:
            self.shutdown()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Replay-only batches.
    # ------------------------------------------------------------------
    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        norm = _normalize_tasks(tasks)
        if not norm:
            return []
        if self.workers == 1 or len(norm) == 1:
            # In-process serial baseline (workers=1) — also the only
            # sensible plan for a one-task batch.
            t0 = time.perf_counter()
            reports = [replay_trace(config, captured).timing
                       for config, captured, _ in norm]
            self.pipeline_stats.note("replay", PARENT_WORKER, len(norm),
                                     time.perf_counter() - t0)
            return reports
        jobs = _batch_jobs(_group_tasks(norm), self.workers)
        results: list[Optional[TimingReport]] = [None] * len(norm)
        try:
            executor = self._ensure_executor()
            pending: dict = {}
            for group in jobs:
                payload = None if self._on_disk(group.key) \
                    else _disk_payload(group.captured)
                job = _Job(tag="replay", key=group.key,
                           captured=group.captured, configs=group.configs,
                           indices=group.indices)
                fut = executor.submit(_run_job, "replay", job.key, payload,
                                      job.configs)
                pending[fut] = job
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    job = pending.pop(fut)
                    try:
                        outcome = fut.result()
                    except Exception:
                        # Dead worker/broken pool: finish in-process.
                        self._replay_local(job, results)
                        continue
                    self._finish_replay(pending, job, outcome, results)
        finally:
            self.shutdown()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Capture-only batches.
    # ------------------------------------------------------------------
    def capture_batch(self, tasks: Sequence[CaptureTask]) -> list[ExecResult]:
        """Capture every task; results come back in task order."""
        results: list[Optional[ExecResult]] = [None] * len(tasks)
        for idx, _key, captured in self.capture_stream(tasks):
            results[idx] = captured
        return results  # type: ignore[return-value]

    def capture_stream(self, tasks: Sequence[CaptureTask]
                       ) -> Iterator[tuple[int, TraceKey, ExecResult]]:
        """Yield ``(task_index, key, captured)`` as captures land.

        ``workers=1`` yields in task order (plain serial sweep); pooled
        captures yield in completion order.  Tasks sharing a trace key
        execute exactly once.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) == 1:
            for idx, task in enumerate(tasks):
                captured = self._capture_local(task)
                yield idx, task.build().trace_key(task.config), captured
            return

        groups: "OrderedDict[TraceKey, list[int]]" = OrderedDict()
        for idx, task in enumerate(tasks):
            groups.setdefault(task.key(), []).append(idx)
        local: list[tuple[TraceKey, list[int]]] = []
        remote: list[tuple[TraceKey, list[int]]] = []
        for key, indices in groups.items():
            (local if self.cache.probe(key) else remote).append(
                (key, indices))
        # Cold keys go to the workers *first*, so the serial warm-serve
        # loop below overlaps with captures already in flight instead of
        # keeping the pool idle for its duration.
        pending: dict = {}
        try:
            if remote:
                executor = self._ensure_executor()
                for key, indices in remote:
                    fut = executor.submit(_run_job, "capture",
                                          tasks[indices[0]])
                    pending[fut] = (key, indices)
            for key, indices in local:
                captured = self._capture_local(tasks[indices[0]])
                for idx in indices:
                    yield idx, key, captured
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    key, indices = pending.pop(fut)
                    task = tasks[indices[0]]
                    try:
                        pid, _wkey, payload, stats, seconds = fut.result()
                    except Exception:
                        # Dead worker (or a broken pool taking every
                        # sibling future with it): capture in-process.
                        captured = self._fallback(task)
                    else:
                        self._merge_worker_stats(pid, stats)
                        self.pipeline_stats.note("capture", pid, 1, seconds)
                        captured = self.cache.ingest_remote(key, payload)
                        if captured is None:
                            # The store's GC evicted the entry between
                            # the worker's put and our adoption; the
                            # point is already counted, so the local
                            # re-capture adds seconds, not points.
                            captured = self._fallback(task, points=0)
                    for idx in indices:
                        yield idx, key, captured
        finally:
            # Also reached via GeneratorExit if the consumer abandons
            # the stream: never leak the worker processes.
            self.shutdown()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        agg = {"hits": 0, "disk_hits": 0, "misses": 0,
               "workers": len(self._worker_stats),
               "fallbacks": self.fallbacks,
               "per_worker": dict(self._worker_stats)}
        for stats in self._worker_stats.values():
            for counter in ("hits", "disk_hits", "misses"):
                agg[counter] += stats.get(counter, 0)
        return agg


def run_pipeline(captures: Sequence[CaptureTask],
                 replays: Sequence[PipelineReplay],
                 pool: SimPool) -> list[TimingReport]:
    """Cold-sweep pipeline over one shared :class:`SimPool`.

    ``captures[i]`` names one distinct operating point;
    ``replays[j] = (config, i)`` times capture ``i`` on ``config``.
    Captures fan out over the pool's tagged jobs and each point's replay
    tasks are submitted the moment its trace lands, so a sweep's replay
    phase overlaps the remainder of its capture phase — all inside the
    single ``workers=`` process budget.  Returns one report per replay
    entry **in replay order**, byte-identical for any pool sizing.
    Per-phase wall-clock lands in ``pool.pipeline_stats``.
    """
    return pool.run(captures, replays)


# ----------------------------------------------------------------------
# Historical facades.  Both wrap a private SimPool — neither owns an
# executor of its own — and keep the batch APIs the tests and benchmark
# suite use.
# ----------------------------------------------------------------------
class ReplayPool:
    """Replay-only batch facade over a private :class:`SimPool`.

    ``workers=None`` autodetects from the host CPU count; ``workers=1``
    replays in-process with no executor, pickling, or subprocess spawn —
    the results are byte-identical either way.  ``disk_dir`` (typically
    the sweep cache's own ``disk_dir``) lets workers rehydrate captures
    from the shared disk layer instead of receiving them over the pipe.
    """

    def __init__(self, workers: int | None = None,
                 disk_dir: str | Path | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._sim = SimPool(
            workers=workers,
            cache=TraceCache(capacity=capacity, disk_dir=disk_dir),
            capacity=capacity)

    @property
    def workers(self) -> int:
        return self._sim.workers

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._sim.cache.disk_dir

    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        return self._sim.replay_batch(tasks)

    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        return self._sim.stats

    @property
    def pipeline_stats(self) -> PipelineStats:
        return self._sim.pipeline_stats


def replay_batch(tasks: Sequence[ReplayTask], workers: int | None = 1,
                 disk_dir: str | Path | None = None) -> list[TimingReport]:
    """One-shot convenience wrapper around :class:`ReplayPool`."""
    return ReplayPool(workers=workers,
                      disk_dir=disk_dir).replay_batch(tasks)


class CapturePool:
    """Capture-only batch facade over a private :class:`SimPool`.

    One worker task per distinct trace key, ``workers=1`` capturing
    in-process with no executor (byte-identical to the pooled path),
    ``workers=None`` autodetecting the host CPUs.  Keys already present
    in ``cache`` (memory or shared disk) are served in-process with the
    same hit/verify accounting as a serial sweep; a worker that dies —
    or a store whose GC evicts the fresh entry before the parent adopts
    it — degrades to an in-process capture instead of failing the sweep
    (counted in :attr:`fallbacks`).
    """

    def __init__(self, workers: int | None = 1,
                 cache: TraceCache | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._sim = SimPool(workers=workers, capture_workers=workers,
                            cache=cache, capacity=capacity)

    @property
    def workers(self) -> int:
        return self._sim.workers

    @property
    def cache(self) -> TraceCache:
        return self._sim.cache

    @property
    def fallbacks(self) -> int:
        """In-process captures forced by a worker death or a lost entry."""
        return self._sim.fallbacks

    def capture_batch(self, tasks: Sequence[CaptureTask]) -> list[ExecResult]:
        """Capture every task; results come back in task order."""
        return self._sim.capture_batch(tasks)

    def capture_stream(self, tasks: Sequence[CaptureTask]
                       ) -> Iterator[tuple[int, TraceKey, ExecResult]]:
        """Yield ``(task_index, key, captured)`` as captures land."""
        return self._sim.capture_stream(tasks)

    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        return self._sim.stats

    @property
    def pipeline_stats(self) -> PipelineStats:
        return self._sim.pipeline_stats
