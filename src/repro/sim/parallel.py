"""Parallel capture and replay: one shared pool, tagged jobs, two phases.

PR 1 made :meth:`~repro.sim.simulator.Simulator.capture` and
:class:`~repro.timing.engine.TimingEngine` replay fully independent: one
captured :class:`~repro.functional.executor.ExecResult` can be replayed
against any number of machine models and each replay is bit-identical to
a fresh end-to-end run.  The paper's evaluation sweeps (Fig 6/7,
Table I/III, the ablations) are therefore embarrassingly parallel in
*both* phases: replays of one capture are independent of each other, and
captures of distinct ``(program fingerprint, vlen_bits, setup)`` keys
are independent of everything.

:class:`SimPool` exploits this with **one** process pool.  Earlier
revisions ran two private executors (a capture pool feeding a replay
pool), which could hold up to ``capture_workers + workers`` live
processes during the overlap window — oversubscription on exactly the
small hosts that need parallelism least.  A :class:`SimPool` owns a
single :class:`~concurrent.futures.ProcessPoolExecutor` sized by one
``workers=`` budget and executes *tagged* jobs on it:

* ``capture`` jobs run one functional capture per distinct trace key
  (workers rebuild the kernel from its picklable :class:`CaptureTask`
  spec and write the captured trace into the shared disk store through
  the normal atomic-envelope
  :meth:`~repro.sim.trace_cache.TraceCache.put` path);
* ``replay`` jobs time a captured trace on one or more machine configs.

``capture_workers=`` survives as a **soft priority split**: while replay
jobs are in flight, at most ``min(capture_workers, workers)`` capture
jobs are submitted concurrently, leaving the remaining slots to drain
replays; when no replays are pending, captures may fill the whole
budget.  ``capture_workers=1`` (the default) keeps the capture phase
in-process — the old two-pool ``workers=1``-capture semantics — and
``workers=1`` keeps *everything* in-process with no executor at all.
Whatever the knobs, the total number of live worker processes never
exceeds the ``workers=`` budget, and rendered sweep output is
byte-identical: only scheduling changes, never results.

:func:`run_pipeline` is the cold-sweep pipeline over one
:class:`SimPool`: each operating point's replay jobs enter the pool *as
soon as* its trace lands, so capture and replay overlap instead of
running as strict serial phases.  Replay submissions are **chunked
adaptively**: a capture whose key sits in the shared disk store ships no
payload, so its replays can split across however many pool slots are
currently idle — a busy pool gets one job (queueing more buys nothing),
a draining pool gets enough chunks to refill.  Payload-shipping
submissions (no shared disk) stay whole, since every extra chunk would
re-pipe the pruned trace pickle.

Both phases are instrumented: every job (pooled or in-process) reports
its wall-clock, aggregated per worker and per phase in
:class:`PipelineStats` (:attr:`SimPool.pipeline_stats`), so benchmark
tables can report capture/replay seconds per point — pipeline
*efficiency*, not just cache hit counts.

:class:`CapturePool` and :class:`ReplayPool` remain as thin batch-API
facades over a private :class:`SimPool` (their historical constructors
and ``capture_batch`` / ``replay_batch`` / ``stats`` surfaces are used
throughout the test and benchmark suites); neither owns an executor of
its own anymore.

Worker-side details shared by both job kinds:

* **One process-local cache per worker** — with a ``disk_dir`` it
  rehydrates payload-free replay jobs and write-throughs captures;
  either way its memory layer lets keys repeated across jobs skip
  re-shipping, and a worker that captured a trace serves its own replay
  jobs from memory.
* **One payload per trace key** — replay jobs ship the single pruned
  disk payload (:func:`~repro.sim.trace_cache._disk_payload`, the same
  pruning the disk cache uses) only when the key is not already in the
  shared store; stale or vanished store entries trigger an explicit
  payload resend (:data:`_NEEDS_PAYLOAD`).
* **Failure degradation** — a dead capture worker, or a store GC that
  evicts a fresh entry before the parent adopts it, degrades to an
  in-process capture (counted in :attr:`SimPool.fallbacks`) rather than
  failing the sweep.
* **Per-worker statistics** — each job reports its worker's cache
  counters; :attr:`SimPool.stats` aggregates them across the pool.

Fault tolerance (the full ladder lives in ``docs/robustness.md``):

* **Classification, never silence** — every pooled-job exception is
  classified (``BrokenProcessPool`` family vs anything else) and
  counted by type in the pool's :class:`~repro.sim.faults.FaultLog`
  (``pool.pipeline_stats.faults``); ``KeyboardInterrupt`` /
  ``SystemExit`` re-raise cleanly out of the pipeline loop.
* **Bounded retry** — a failed pipeline job is resubmitted to the pool
  exactly once (a fresh attempt number, so a seeded
  :class:`~repro.sim.faults.FaultPlan` can let the retry succeed)
  before degrading in-process.
* **Executor rebuild** — a broken executor is retired (not reused: a
  ``BrokenProcessPool`` poisons every later submission) and the next
  submission builds a fresh one, up to ``max_rebuilds`` times; beyond
  that the whole sweep degrades to serial in-process execution and
  still completes byte-identically.
* **Poison-job quarantine** — a job that takes workers down twice runs
  in-process and its key is flagged in ``FaultLog.quarantined_keys``.
* **Deadlines** — ``job_timeout=`` (default off) bounds each pooled
  job's wall-clock; an expired job is abandoned (its worker may be
  hung — the process is terminated at shutdown) and handled like any
  other failure: retried once, then served in-process.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..functional.executor import ExecResult
from ..params import SystemConfig
from ..timing.report import TimingReport
from .faults import FaultLog, FaultPlan, JobTimeout
from .simulator import replay_trace
from .trace_cache import (DEFAULT_CAPACITY, TraceCache, TraceKey,
                          _disk_payload, disk_path)

#: Executor rebuilds allowed before a sweep degrades to serial.
DEFAULT_MAX_REBUILDS = 3

#: A replay task: ``(config, captured)`` or ``(config, captured, key)``.
ReplayTask = tuple

#: A pipeline replay plan entry: ``(config, capture_index)``.
PipelineReplay = tuple

#: The parent's pid slot in per-worker stats: in-process work (serial
#: paths, warm serves, fallbacks) is attributed to worker id 0.
PARENT_WORKER = 0


def autodetect_workers() -> int:
    """Worker count for this host: the schedulable CPU count, min 1."""
    count = None
    if hasattr(os, "process_cpu_count"):  # Python >= 3.13
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    return max(1, count or os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Pipeline statistics: per-phase wall-clock, aggregated per worker.
# ----------------------------------------------------------------------
@dataclass
class PipelineStats:
    """Wall-clock instrumentation of one pool's capture/replay phases.

    ``*_points`` counts operating points served per phase (a replay job
    covering three configs contributes three points), ``*_seconds``
    sums the jobs' measured wall-clock, and ``per_worker`` breaks both
    down by worker pid (:data:`PARENT_WORKER` is the parent process:
    serial paths, warm cache serves, and fallback captures).  Seconds
    are *work* seconds summed across workers — with N workers busy they
    accrue up to N times faster than the pipeline's elapsed time, which
    is exactly what makes ``capture_seconds / capture_points`` a
    scheduling-independent per-point cost.
    """

    capture_points: int = 0
    capture_seconds: float = 0.0
    replay_points: int = 0
    replay_seconds: float = 0.0
    per_worker: dict = field(default_factory=dict)
    #: Structured fault/recovery counters (see FaultLog).
    faults: FaultLog = field(default_factory=FaultLog)

    def note(self, tag: str, pid: int, points: int, seconds: float) -> None:
        """Record one finished job of ``tag`` ('capture' | 'replay')."""
        if tag == "capture":
            self.capture_points += points
            self.capture_seconds += seconds
        else:
            self.replay_points += points
            self.replay_seconds += seconds
        slot = self.per_worker.setdefault(
            pid, {"capture_points": 0, "capture_seconds": 0.0,
                  "replay_points": 0, "replay_seconds": 0.0})
        slot[f"{tag}_points"] += points
        slot[f"{tag}_seconds"] += seconds

    def seconds_per_point(self, tag: str) -> float:
        """Mean per-point wall-clock for one phase (0.0 when unused)."""
        points = self.capture_points if tag == "capture" \
            else self.replay_points
        seconds = self.capture_seconds if tag == "capture" \
            else self.replay_seconds
        return seconds / points if points else 0.0


@dataclass
class _Job:
    """Parent-side bookkeeping for one tagged submission.

    ``indices`` are capture-task indices for a capture job and result
    indices for a replay job; ``captured`` is kept on replay jobs so a
    stale-entry resend or an in-process degradation never needs the
    worker's copy.  ``attempts`` numbers the submissions of this job
    (feeding the fault plan's deterministic per-attempt rolls) and
    ``deadline`` is the monotonic instant after which the job is
    abandoned (None = no ``job_timeout``).
    """

    tag: str                                   # "capture" | "replay"
    key: Optional[TraceKey] = None
    captured: Optional[ExecResult] = None
    configs: list = field(default_factory=list)
    indices: list = field(default_factory=list)
    attempts: int = 0
    deadline: Optional[float] = None


@dataclass
class _Group:
    """All tasks of one replay batch that share a captured trace."""

    key: Optional[TraceKey]
    captured: ExecResult
    configs: list[SystemConfig] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)


def _merge_snapshot(per_worker: dict[int, dict], pid: int,
                    stats: dict) -> None:
    """Keep the newest cumulative cache snapshot per worker pid.

    A worker's counters only grow, but jobs complete (and their
    snapshots arrive) in arbitrary order, so the snapshot with the most
    lookups is the latest one — never let an earlier, smaller snapshot
    overwrite it.
    """
    def _total(s: dict) -> int:
        return sum(s.get(k, 0) for k in ("hits", "disk_hits", "misses"))

    previous = per_worker.get(pid)
    if previous is None or _total(stats) >= _total(previous):
        per_worker[pid] = stats


# ----------------------------------------------------------------------
# Worker side.  One process-local TraceCache per worker serves BOTH job
# kinds: with a disk_dir it rehydrates payload-free replay jobs and
# write-throughs captures; either way its memory layer lets a worker
# that captured a trace replay it without ever touching disk.
# ----------------------------------------------------------------------
_WORKER_CACHE: Optional[TraceCache] = None

#: The fault plan active in this worker process (None in the parent and
#: in fault-free workers) — injected crashes/hangs only ever happen in
#: pool workers, so every injected fault is recoverable by design.
_WORKER_FAULTS: Optional[FaultPlan] = None

#: Sentinel result: the worker had no payload and could not rehydrate the
#: key from its cache; the parent must resend with an explicit payload.
_NEEDS_PAYLOAD = None


def _init_worker(disk_dir: Optional[str], capacity: int,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    global _WORKER_CACHE, _WORKER_FAULTS
    # The worker cache shares the pool's fault plan, so store-tier
    # faults (corrupt payloads, ENOSPC) fire on worker write-throughs
    # with the same deterministic rolls as in the parent.
    _WORKER_CACHE = TraceCache(capacity=capacity, disk_dir=disk_dir,
                               fault_plan=fault_plan)
    _WORKER_FAULTS = fault_plan


def _capture_job(task: "CaptureTask"):
    """Capture one task in a worker; returns (pid, key, payload, stats, s).

    With a disk-backed worker cache the capture lands in the shared
    store through the normal atomic-envelope ``put`` and ``payload`` is
    None — the parent (and any concurrent replay worker) rehydrates it
    as a disk hit.  Without shared disk the pruned payload ships back
    over the pipe instead.
    """
    t0 = time.perf_counter()
    cache = _WORKER_CACHE
    run = task.build()
    captured = run.capture(task.config, cache=cache, verify=task.verify)
    # A cache ENOSPC-demoted to memory-only never landed the entry on
    # disk — ship the payload over the pipe instead of pointing the
    # parent at a file that does not exist.
    on_disk = (cache is not None and cache.disk_dir is not None
               and not cache.memory_only)
    payload = None if on_disk else _disk_payload(captured)
    stats = dict(cache.stats) if cache is not None else {}
    return (os.getpid(), run.trace_key(task.config), payload, stats,
            time.perf_counter() - t0)


def _replay_job(key: Optional[TraceKey], payload: Optional[ExecResult],
                configs: list[SystemConfig]):
    """Replay one trace's configs in a worker; (pid, reports, stats, s)."""
    t0 = time.perf_counter()
    cache = _WORKER_CACHE
    captured = None
    if cache is not None and key is not None:
        captured = cache.get(key)
    if captured is None:
        if payload is None:
            return _NEEDS_PAYLOAD
        captured = payload
        if cache is not None and key is not None:
            cache._remember(key, captured)  # memory layer only: the
            # parent (or another worker) already owns the disk write.
    reports = [replay_trace(config, captured).timing for config in configs]
    stats = dict(cache.stats) if cache is not None else {}
    return os.getpid(), reports, stats, time.perf_counter() - t0


def _run_job(tag: str, token: str, attempt: int, *args):
    """The pool's single entry point: dispatch one tagged job.

    Every submission to a :class:`SimPool` executor goes through here,
    so one worker pool — and one process-local cache — serves both
    phases.  ``tag`` is ``"capture"`` or ``"replay"``; ``token`` and
    ``attempt`` identify this (job, submission) pair for the fault
    plan's deterministic injection rolls — a retried job carries a
    fresh attempt number, so a plan can crash the first attempt and
    let the retry through.
    """
    if _WORKER_FAULTS is not None:
        _WORKER_FAULTS.inject_job_faults(f"{tag}:{token}", attempt)
    if tag == "capture":
        return _capture_job(*args)
    return _replay_job(*args)


# ----------------------------------------------------------------------
# Batch planning helpers (replay-only batches).
# ----------------------------------------------------------------------
def _normalize_tasks(tasks: Sequence[ReplayTask]) -> list[tuple]:
    """Coerce ``(config, captured[, key])`` task tuples to triples."""
    norm = []
    for task in tasks:
        if len(task) == 2:
            config, captured = task
            key = None
        else:
            config, captured, key = task
        norm.append((config, captured, key))
    return norm


def _group_tasks(norm: list[tuple]) -> "OrderedDict[int, _Group]":
    """Group batch tasks by the captured trace they replay."""
    groups: OrderedDict[int, _Group] = OrderedDict()
    for idx, (config, captured, key) in enumerate(norm):
        group = groups.get(id(captured))
        if group is None:
            group = groups[id(captured)] = _Group(key=key, captured=captured)
        group.configs.append(config)
        group.indices.append(idx)
    return groups


def _batch_jobs(groups: "OrderedDict[int, _Group]",
                workers: int) -> list[_Group]:
    """Split a batch's groups into jobs so every worker gets work.

    One job per group is ideal when there are at least as many groups
    as workers (the payload ships once per group).  Batches with few
    groups but many configs — e.g. an ablation varying one timing knob
    over a single kernel — would otherwise serialize inside one worker,
    so each group is chunked into up to ``workers // len(groups)`` jobs;
    re-shipping the pruned payload per chunk is cheap relative to the
    replays it buys back.  (The *streaming* pipeline instead adapts its
    chunking to live queue depth: :meth:`SimPool._adaptive_chunks`.)
    """
    per_group = max(1, workers // len(groups))
    jobs: list[_Group] = []
    for group in groups.values():
        chunks = min(per_group, len(group.configs))
        size = -(-len(group.configs) // chunks)  # ceil division
        for start in range(0, len(group.configs), size):
            jobs.append(_Group(key=group.key, captured=group.captured,
                               configs=group.configs[start:start + size],
                               indices=group.indices[start:start + size]))
    return jobs


# ----------------------------------------------------------------------
# Capture task specs.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaptureTask:
    """One functional capture, specified by what to *build*, not by live
    objects: a :class:`~repro.kernels.common.KernelRun` holds closures
    (setup, golden check) that cannot cross a process boundary, so
    workers rebuild it from the kernel registry.  Builds are
    deterministic in these fields, hence worker and parent agree on the
    trace key and the captured trace bit-for-bit."""

    kernel: str
    config: SystemConfig
    bytes_per_lane: int
    kwargs: tuple = ()
    verify: bool = False

    @staticmethod
    def for_kernel(kernel: str, config: SystemConfig, bytes_per_lane: int,
                   kwargs: dict | None = None,
                   verify: bool = False) -> "CaptureTask":
        """Build a task spec from a kernel registry name and its knobs."""
        return CaptureTask(kernel=kernel, config=config,
                           bytes_per_lane=int(bytes_per_lane),
                           kwargs=tuple(sorted((kwargs or {}).items())),
                           verify=verify)

    def build(self):
        """(Re)build the kernel; memoized process-wide by the registry.

        Cheap since the lazy-golden split: building assembles (or
        fetches the memoized) program skeleton but never materializes
        golden arrays — those are built on first ``setup``/``check``
        use, i.e. only where a capture actually executes.
        """
        from ..kernels import zoo_builder  # deferred: kernels import repro.sim

        return zoo_builder(self.kernel)(self.config, self.bytes_per_lane,
                                        **dict(self.kwargs))

    def key(self) -> TraceKey:
        """The trace key this task's capture will land under."""
        return self.build().trace_key(self.config)


# ----------------------------------------------------------------------
# The shared pool.
# ----------------------------------------------------------------------
class SimPool:
    """One process pool executing tagged capture/replay jobs.

    * ``workers=`` is the **total** process budget — the executor is
      sized by it, so capture and replay fan-out together can never
      hold more than ``workers`` live processes.  ``None`` autodetects
      the host's schedulable CPUs; ``1`` runs everything in-process
      with no executor, byte-identical to any pooled schedule.
    * ``capture_workers=`` is a **soft priority split**: while replay
      jobs are pending, at most ``min(capture_workers, workers)``
      capture jobs are in flight, keeping slots free to drain replays;
      with no replays pending, captures may fill the whole budget.
      ``1`` (the default) captures in the parent process.  ``None``
      autodetects (and is then clamped to the budget).
    * ``cache`` is the trace cache/store both phases go through; its
      ``disk_dir`` (if any) is what lets workers exchange traces as
      disk envelopes instead of pipe payloads.

    The pool is lazy: the executor spawns on first pooled submission
    and is torn down at the end of each :func:`run_pipeline` /
    batch call (or explicitly via :meth:`shutdown` / ``with pool:``).
    """

    def __init__(self, workers: int | None = 1,
                 capture_workers: int | None = None,
                 cache: TraceCache | None = None,
                 capacity: int = DEFAULT_CAPACITY,
                 fault_plan: Optional[FaultPlan] = None,
                 job_timeout: Optional[float] = None,
                 max_rebuilds: int = DEFAULT_MAX_REBUILDS) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None to autodetect)")
        if capture_workers is not None and capture_workers < 1:
            raise ValueError(
                "capture_workers must be >= 1 (or None to autodetect)")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0 seconds (or None)")
        self.workers = autodetect_workers() if workers is None \
            else int(workers)
        split = autodetect_workers() if capture_workers is None \
            else int(capture_workers)
        #: The soft split, clamped to the budget: the cap on in-flight
        #: capture jobs while replay jobs are pending.
        self.capture_workers = max(1, min(split, self.workers))
        self.cache = cache if cache is not None else TraceCache()
        self.capacity = capacity
        #: Fault plan shipped to pool workers (None unless configured
        #: explicitly or via $REPRO_FAULT_PLAN).
        self.fault_plan = (fault_plan if fault_plan is not None
                           else FaultPlan.from_env())
        #: Per-job wall-clock deadline in seconds (None = no deadline).
        self.job_timeout = job_timeout
        #: Executor rebuilds allowed before degrading to serial.
        self.max_rebuilds = int(max_rebuilds)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._worker_stats: dict[int, dict] = {}
        #: In-process captures forced by a worker death or a lost entry.
        self.fallbacks = 0
        #: Per-phase wall-clock, aggregated per worker.
        self.pipeline_stats = PipelineStats()
        #: Structured fault/recovery counters (alias of
        #: ``pipeline_stats.faults``).
        self.fault_log = self.pipeline_stats.faults
        # Fault-tolerance state: retired-but-unreclaimed executors, the
        # futures of abandoned (timed-out) jobs, executor break count,
        # per-key failure strikes, and the serial-degradation latch.
        self._zombies: list = []
        self._abandoned: list = []
        self._breaks = 0
        self._strikes: dict = {}
        self._serial_only = False

    # -- executor lifecycle --------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            disk_dir = str(self.cache.disk_dir) \
                if self.cache.disk_dir is not None else None
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(disk_dir, self.capacity, self.fault_plan))
        return self._executor

    def _pool_usable(self) -> bool:
        """Can the pool still accept submissions (possibly rebuilding)?"""
        return not self._serial_only

    def _retire_broken(self) -> None:
        """Retire a broken executor so the next submission rebuilds.

        A ``BrokenProcessPool`` poisons every later submission on the
        same executor, so it is moved to the zombie list (reclaimed at
        :meth:`shutdown` — tearing it down here could block mid-sweep)
        and the slot cleared for :meth:`_ensure_executor` to rebuild.
        After ``max_rebuilds`` breaks the pool latches serial-only:
        every subsequent job runs in the parent and the sweep still
        completes byte-identically.
        """
        executor = self._executor
        if executor is None or not getattr(executor, "_broken", False):
            return
        self._zombies.append(executor)
        self._executor = None
        self._breaks += 1
        if self._breaks > self.max_rebuilds:
            if not self._serial_only:
                self._serial_only = True
                self.fault_log.serial_degradations += 1
        else:
            self.fault_log.pool_rebuilds += 1

    def _note_failure(self, exc: BaseException) -> None:
        """Classify one pooled-job failure into the fault log."""
        self.fault_log.note_error(exc)
        if isinstance(exc, JobTimeout):
            pass  # already counted in fault_log.timeouts at abandon time
        elif isinstance(exc, BrokenExecutor):
            self.fault_log.worker_crashes += 1
        else:
            self.fault_log.job_errors += 1
        self._retire_broken()

    def _job_token(self, job: _Job) -> str:
        """Stable per-job identity for the fault plan's rolls."""
        if job.tag == "capture":
            return repr(job.key)
        return f"{job.key!r}|{job.indices[0] if job.indices else -1}" \
               f"x{len(job.indices)}"

    def _submit_job(self, pending: dict, job: _Job, args: tuple) -> bool:
        """Submit one tagged job to the (possibly rebuilt) executor.

        Returns False — without raising — when the pool cannot take the
        job (serial-only latch, or the submission itself failed); the
        caller then serves the job in-process.  On success the job
        lands in ``pending`` with its deadline armed.
        """
        if not self._pool_usable():
            return False
        try:
            executor = self._ensure_executor()
            fut = executor.submit(_run_job, job.tag, self._job_token(job),
                                  job.attempts, *args)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._note_failure(exc)
            return False
        if self.job_timeout is not None:
            job.deadline = time.monotonic() + self.job_timeout
        pending[fut] = job
        return True

    def _wait_done(self, pending: dict) -> tuple[set, set]:
        """Wait for completions; returns ``(done, expired)`` futures.

        Without a ``job_timeout`` this is a plain FIRST_COMPLETED wait.
        With one, the wait is bounded by the earliest pending deadline;
        jobs still running past their deadline come back in ``expired``
        — their workers may be hung, so the futures are abandoned (and
        the processes terminated at :meth:`shutdown`), never joined.
        """
        if self.job_timeout is None:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            return done, set()
        while True:
            deadlines = [job.deadline for job in pending.values()
                         if job.deadline is not None]
            budget = None
            if deadlines:
                budget = max(0.0, min(deadlines) - time.monotonic())
            done, _ = wait(pending, timeout=budget,
                           return_when=FIRST_COMPLETED)
            if done:
                return done, set()
            now = time.monotonic()
            expired = {fut for fut, job in pending.items()
                       if job.deadline is not None and job.deadline <= now}
            if expired:
                return set(), expired
            if not pending:
                return set(), set()

    def _abandon(self, fut, job: _Job) -> JobTimeout:
        """Give up on one expired job; its worker may be hung.

        The future is left uncancelled on purpose: cancelling a queued
        work item from outside races the executor's own management
        thread, which (CPython 3.11) raises ``InvalidStateError`` if
        the pool breaks and it tries to fail an already-cancelled
        future.  :meth:`shutdown` cancels leftovers under the
        executor's lock instead; until then a queued abandoned job may
        still run, costing only wasted work — its result is never read.
        """
        self._abandoned.append(fut)
        self.fault_log.timeouts += 1
        exc = JobTimeout(
            f"{job.tag} job exceeded job_timeout={self.job_timeout}s")
        self.fault_log.note_error(exc)
        return exc

    def shutdown(self) -> None:
        """Tear down the live executor and any retired (zombie) ones.

        ``wait=True`` matters: the teardown must leave no executor
        management threads or worker processes behind, because callers
        may ``fork`` afterwards (e.g. ``multiprocessing.Process`` in
        tests and benchmark drivers) and a fork taken while an executor
        thread holds one of its internal locks deadlocks the child.
        Pending futures are cancelled first, so the wait is bounded by
        the jobs already running — except abandoned (timed-out) jobs,
        whose workers may be hung forever: if any abandoned future is
        still unresolved, the executor's worker processes are
        terminated first so the bounded wait stays bounded.
        """
        executors = []
        if self._executor is not None:
            executors.append(self._executor)
            self._executor = None
        executors.extend(self._zombies)
        self._zombies = []
        hung = any(not fut.done() for fut in self._abandoned)
        self._abandoned = []
        for executor in executors:
            if hung:
                procs = getattr(executor, "_processes", None) or {}
                for proc in list(procs.values()):
                    try:
                        proc.terminate()
                    # repro-lint: disable=RL201  best-effort teardown of a
                    # maybe-dead process; no recovery path exists past here
                    except Exception:
                        pass  # already exited, or not a real process
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            # repro-lint: disable=RL201  best-effort teardown of a broken
            # executor; no recovery path exists past shutdown
            except Exception:
                pass  # a broken executor may refuse; nothing to keep

    def __enter__(self) -> "SimPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- shared helpers ------------------------------------------------
    def _on_disk(self, key: Optional[TraceKey]) -> bool:
        if self.cache.disk_dir is None or key is None:
            return False
        return disk_path(self.cache.disk_dir, key).exists()

    def _merge_worker_stats(self, pid: int, stats: dict) -> None:
        _merge_snapshot(self._worker_stats, pid, stats)

    def _capture_local(self, task: CaptureTask,
                       points: int = 1) -> ExecResult:
        """Capture (or cache-serve) one task in the parent, timed.

        ``points=0`` records the wall-clock without claiming another
        operating point — used when the point was already counted (a
        worker captured it but the entry was lost before adoption), so
        ``capture_points`` stays "points served", never "captures run".
        """
        t0 = time.perf_counter()
        run = task.build()
        captured = run.capture(task.config, cache=self.cache,
                               verify=task.verify)
        self.pipeline_stats.note("capture", PARENT_WORKER, points,
                                 time.perf_counter() - t0)
        return captured

    def _fallback(self, task: CaptureTask, points: int = 1) -> ExecResult:
        self.fallbacks += 1
        self.fault_log.fallbacks += 1
        return self._capture_local(task, points=points)

    def _replay_local(self, job: _Job, results: list) -> None:
        """Replay one job's configs in the parent, timed.

        The degradation path when the shared executor can no longer run
        the job (a worker died, timed out, or the whole pool broke):
        the parent holds ``job.captured``, so the sweep completes
        instead of failing.  Counted in ``FaultLog.fallbacks`` — every
        call site is a recovery, never a scheduling choice.
        """
        self.fault_log.fallbacks += 1
        t0 = time.perf_counter()
        for idx, config in zip(job.indices, job.configs):
            results[idx] = replay_trace(config, job.captured).timing
        self.pipeline_stats.note("replay", PARENT_WORKER, len(job.indices),
                                 time.perf_counter() - t0)

    def _adaptive_chunks(self, n_configs: int, on_disk: bool,
                         queue_depth: int) -> int:
        """Chunk count for one capture's replay submission.

        Adapts to the live queue instead of splitting every submission
        ``workers`` ways: payload-free (shared-disk) submissions split
        across the pool's currently *idle* slots — a busy pool gets one
        job (extra chunks would only queue), a drained pool gets enough
        chunks to refill.  Payload-shipping submissions never split:
        each chunk would re-pipe the pruned trace pickle.
        """
        if not on_disk or n_configs <= 1:
            return 1
        idle = self.workers - queue_depth
        return max(1, min(n_configs, idle))

    def _submit_replays(self, pending: dict, captured: ExecResult,
                        key: Optional[TraceKey],
                        configs: Sequence[SystemConfig],
                        indices: Sequence[int],
                        results: list) -> None:
        """Queue one captured trace's replays onto the shared executor.

        A pool that can no longer accept work (broken by an earlier
        worker death) degrades each chunk to an in-process replay
        instead of failing the sweep.
        """
        if not configs:
            return
        on_disk = self._on_disk(key)
        payload = None if on_disk else _disk_payload(captured)
        chunks = self._adaptive_chunks(len(configs), on_disk, len(pending))
        size = -(-len(configs) // chunks)  # ceil division
        for start in range(0, len(configs), size):
            job = _Job(tag="replay", key=key, captured=captured,
                       configs=list(configs[start:start + size]),
                       indices=list(indices[start:start + size]))
            if not self._submit_job(pending, job,
                                    (key, payload, job.configs)):
                self._replay_local(job, results)

    def _resubmit_replay(self, pending: dict, job: _Job) -> bool:
        """Re-enter one replay job as a fresh pool attempt."""
        job.attempts += 1
        on_disk = self._on_disk(job.key)
        payload = None if on_disk else _disk_payload(job.captured)
        return self._submit_job(pending, job,
                                (job.key, payload, job.configs))

    def _finish_replay(self, pending: dict, job: _Job, outcome,
                       results: list) -> bool:
        """Record one replay job's outcome; False = resent for payload."""
        if outcome is _NEEDS_PAYLOAD:
            # Stale/missing disk entry: resend with an explicit payload
            # (in-process if the pool can no longer take the job).
            job.attempts += 1
            if self._submit_job(
                    pending, job,
                    (job.key, _disk_payload(job.captured), job.configs)):
                return False
            self._replay_local(job, results)
            return True
        pid, reports, stats, seconds = outcome
        self._merge_worker_stats(pid, stats)
        self.pipeline_stats.note("replay", pid, len(job.indices), seconds)
        for idx, report in zip(job.indices, reports):
            results[idx] = report
        return True

    # ------------------------------------------------------------------
    # The two-phase pipeline.
    # ------------------------------------------------------------------
    def run(self, captures: Sequence[CaptureTask],
            replays: Sequence[PipelineReplay]) -> list[TimingReport]:
        """Capture every task, replaying each point as its trace lands.

        ``captures[i]`` names one distinct operating point;
        ``replays[j] = (config, i)`` times capture ``i`` on ``config``.
        Returns one report per replay entry **in replay order** —
        byte-identical for any ``workers`` / ``capture_workers``
        combination (both phases are deterministic; only scheduling
        changes).
        """
        captures = list(captures)
        replays = list(replays)
        plans: list[list[int]] = [[] for _ in captures]
        for ridx, (_config, cidx) in enumerate(replays):
            plans[cidx].append(ridx)
        results: list[Optional[TimingReport]] = [None] * len(replays)

        if self.workers == 1:
            # Fully in-process: the serial baseline every pooled
            # schedule must match byte-for-byte.
            for cidx, task in enumerate(captures):
                captured = self._capture_local(task)
                if not plans[cidx]:
                    continue
                t0 = time.perf_counter()
                for ridx in plans[cidx]:
                    results[ridx] = replay_trace(replays[ridx][0],
                                                 captured).timing
                self.pipeline_stats.note("replay", PARENT_WORKER,
                                         len(plans[cidx]),
                                         time.perf_counter() - t0)
            return results  # type: ignore[return-value]

        # Classify captures: keys the cache can already serve are
        # handled in the parent with ordinary hit accounting; cold keys
        # go to the pool (or the parent, if the split says so).  Tasks
        # sharing a trace key collapse into one capture whose result
        # serves every aliased task's replays.
        by_key: "OrderedDict[TraceKey, list[int]]" = OrderedDict()
        for cidx, task in enumerate(captures):
            by_key.setdefault(task.key(), []).append(cidx)
        warm: list[tuple[TraceKey, list[int]]] = []
        cold: "deque[tuple[TraceKey, list[int]]]" = deque()
        for key, cidxs in by_key.items():
            # Tag-only probe (no payload deserialization, no counter);
            # the capture() below then counts the hit — or recaptures,
            # if the probed entry's payload turns out unreadable —
            # exactly as a serial sweep would.
            (warm if self.cache.probe(key) else cold).append((key, cidxs))

        pooled_captures = self.capture_workers > 1 and len(captures) > 1
        pending: dict = {}
        in_flight_captures = 0
        pending_replays = 0

        def capture_allowance() -> int:
            # The soft split: full budget while no replays compete.
            return self.capture_workers if pending_replays else self.workers

        def top_up_captures() -> None:
            nonlocal in_flight_captures
            if not pooled_captures:
                return
            while cold and in_flight_captures < capture_allowance():
                key, cidxs = cold.popleft()
                job = _Job(tag="capture", key=key, indices=list(cidxs))
                if self._submit_job(pending, job, (captures[cidxs[0]],)):
                    in_flight_captures += 1
                else:
                    # Unusable pool: capture (and replay) in the parent.
                    submit_point(cidxs, key,
                                 self._fallback(captures[cidxs[0]]))

        def capture_failure(job: _Job) -> bool:
            """Retry a failed capture once; else quarantine + fallback.

            Returns True while the job is back in flight.  The second
            failure for one key marks it a poison job: it runs in the
            parent (like any fallback) and the key is flagged in
            ``FaultLog.quarantined_keys``.
            """
            task = captures[job.indices[0]]
            strikes = self._strikes.get(job.key, 0) + 1
            self._strikes[job.key] = strikes
            if strikes < 2:
                job.attempts += 1
                if self._submit_job(pending, job, (task,)):
                    self.fault_log.retries += 1
                    return True
            else:
                self.fault_log.quarantined += 1
                self.fault_log.quarantined_keys.append(repr(job.key))
            submit_point(job.indices, job.key, self._fallback(task))
            return False

        def replay_failure(job: _Job) -> bool:
            """Retry a failed replay job once; else finish in-process.

            Returns True while the job is back in flight.
            """
            if job.attempts < 1 and self._resubmit_replay(pending, job):
                self.fault_log.retries += 1
                return True
            self._replay_local(job, results)
            return False

        def submit_point(cidxs: list[int], key: TraceKey,
                         captured: ExecResult) -> None:
            nonlocal pending_replays
            indices = [ridx for cidx in cidxs for ridx in plans[cidx]]
            before = len(pending)
            self._submit_replays(pending, captured,
                                 key, [replays[r][0] for r in indices],
                                 indices, results)
            pending_replays += len(pending) - before

        try:
            # Cold keys enter the pool first, so the warm serving below
            # overlaps with captures already in flight.
            top_up_captures()
            for key, cidxs in warm:
                submit_point(cidxs, key,
                             self._capture_local(captures[cidxs[0]]))
            if not pooled_captures:
                # capture_workers == 1: the capture phase stays in the
                # parent (old two-pool semantics) while submitted
                # replays drain in the pool behind it.
                while cold:
                    key, cidxs = cold.popleft()
                    submit_point(cidxs, key,
                                 self._capture_local(captures[cidxs[0]]))
            while pending:
                done, expired = self._wait_done(pending)
                for fut in (done or expired):
                    job = pending.pop(fut)
                    timed_out = fut in expired
                    if timed_out:
                        # Deadline exceeded: the worker may be hung —
                        # abandon the future (terminated at shutdown)
                        # and handle it like any other failure.
                        self._abandon(fut, job)
                    if job.tag == "capture":
                        in_flight_captures -= 1
                        failed = timed_out
                        outcome = None
                        if not timed_out:
                            try:
                                outcome = fut.result()
                            except (KeyboardInterrupt, SystemExit):
                                raise
                            except Exception as exc:
                                # Dead worker (or a broken pool taking
                                # every sibling future with it):
                                # classified below, retried once, then
                                # captured locally.
                                self._note_failure(exc)
                                failed = True
                        if failed:
                            if capture_failure(job):
                                in_flight_captures += 1  # retried
                        else:
                            pid, _wkey, payload, stats, seconds = outcome
                            self._merge_worker_stats(pid, stats)
                            self.pipeline_stats.note("capture", pid, 1,
                                                     seconds)
                            captured = self.cache.ingest_remote(job.key,
                                                                payload)
                            if captured is None:
                                # The store's GC evicted the entry (or a
                                # corrupt write failed its checksum)
                                # between the worker's put and adoption;
                                # the point is already counted, so the
                                # re-capture adds seconds, not points.
                                captured = self._fallback(
                                    captures[job.indices[0]], points=0)
                            submit_point(job.indices, job.key, captured)
                    else:
                        pending_replays -= 1
                        failed = timed_out
                        outcome = None
                        if not timed_out:
                            try:
                                outcome = fut.result()
                            except (KeyboardInterrupt, SystemExit):
                                raise
                            except Exception as exc:
                                # Dead worker/broken pool: classified
                                # below, retried once, then finished in
                                # the parent (which holds the capture).
                                self._note_failure(exc)
                                failed = True
                        if failed:
                            if replay_failure(job):
                                pending_replays += 1  # retried
                        elif not self._finish_replay(pending, job,
                                                     outcome, results):
                            pending_replays += 1  # resent: pending
                    top_up_captures()
        finally:
            self.shutdown()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Replay-only batches.
    # ------------------------------------------------------------------
    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        norm = _normalize_tasks(tasks)
        if not norm:
            return []
        if self.workers == 1 or len(norm) == 1:
            # In-process serial baseline (workers=1) — also the only
            # sensible plan for a one-task batch.
            t0 = time.perf_counter()
            reports = [replay_trace(config, captured).timing
                       for config, captured, _ in norm]
            self.pipeline_stats.note("replay", PARENT_WORKER, len(norm),
                                     time.perf_counter() - t0)
            return reports
        jobs = _batch_jobs(_group_tasks(norm), self.workers)
        results: list[Optional[TimingReport]] = [None] * len(norm)
        try:
            pending: dict = {}
            for group in jobs:
                payload = None if self._on_disk(group.key) \
                    else _disk_payload(group.captured)
                job = _Job(tag="replay", key=group.key,
                           captured=group.captured, configs=group.configs,
                           indices=group.indices)
                if not self._submit_job(pending, job,
                                        (job.key, payload, job.configs)):
                    self._replay_local(job, results)
            while pending:
                done, expired = self._wait_done(pending)
                for fut in (done or expired):
                    job = pending.pop(fut)
                    if fut in expired:
                        self._abandon(fut, job)
                        if not (job.attempts < 1
                                and self._resubmit_replay(pending, job)):
                            self._replay_local(job, results)
                        else:
                            self.fault_log.retries += 1
                        continue
                    try:
                        outcome = fut.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        # Dead worker/broken pool: classify, retry once,
                        # then finish in-process.
                        self._note_failure(exc)
                        if (job.attempts < 1
                                and self._resubmit_replay(pending, job)):
                            self.fault_log.retries += 1
                        else:
                            self._replay_local(job, results)
                        continue
                    self._finish_replay(pending, job, outcome, results)
        finally:
            self.shutdown()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Capture-only batches.
    # ------------------------------------------------------------------
    def capture_batch(self, tasks: Sequence[CaptureTask]) -> list[ExecResult]:
        """Capture every task; results come back in task order."""
        results: list[Optional[ExecResult]] = [None] * len(tasks)
        for idx, _key, captured in self.capture_stream(tasks):
            results[idx] = captured
        return results  # type: ignore[return-value]

    def capture_stream(self, tasks: Sequence[CaptureTask]
                       ) -> Iterator[tuple[int, TraceKey, ExecResult]]:
        """Yield ``(task_index, key, captured)`` as captures land.

        ``workers=1`` yields in task order (plain serial sweep); pooled
        captures yield in completion order.  Tasks sharing a trace key
        execute exactly once.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) == 1:
            for idx, task in enumerate(tasks):
                captured = self._capture_local(task)
                yield idx, task.build().trace_key(task.config), captured
            return

        groups: "OrderedDict[TraceKey, list[int]]" = OrderedDict()
        for idx, task in enumerate(tasks):
            groups.setdefault(task.key(), []).append(idx)
        local: list[tuple[TraceKey, list[int]]] = []
        remote: list[tuple[TraceKey, list[int]]] = []
        for key, indices in groups.items():
            (local if self.cache.probe(key) else remote).append(
                (key, indices))
        # Cold keys go to the workers *first*, so the serial warm-serve
        # loop below overlaps with captures already in flight instead of
        # keeping the pool idle for its duration.
        pending: dict = {}
        try:
            for key, indices in remote:
                job = _Job(tag="capture", key=key, indices=list(indices))
                if not self._submit_job(pending, job,
                                        (tasks[indices[0]],)):
                    # Unusable pool: serve the point in the parent.
                    captured = self._fallback(tasks[indices[0]])
                    for idx in indices:
                        yield idx, key, captured
            for key, indices in local:
                captured = self._capture_local(tasks[indices[0]])
                for idx in indices:
                    yield idx, key, captured
            while pending:
                done, expired = self._wait_done(pending)
                for fut in (done or expired):
                    job = pending.pop(fut)
                    key, indices = job.key, job.indices
                    task = tasks[indices[0]]
                    failed = fut in expired
                    if failed:
                        self._abandon(fut, job)
                    else:
                        try:
                            outcome = fut.result()
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except Exception as exc:
                            # Dead worker (or a broken pool taking every
                            # sibling future with it): classify, retry
                            # once, then capture in-process.
                            self._note_failure(exc)
                            failed = True
                    if failed:
                        strikes = self._strikes.get(key, 0) + 1
                        self._strikes[key] = strikes
                        if strikes < 2:
                            job.attempts += 1
                            if self._submit_job(pending, job, (task,)):
                                self.fault_log.retries += 1
                                continue
                        else:
                            self.fault_log.quarantined += 1
                            self.fault_log.quarantined_keys.append(
                                repr(key))
                        captured = self._fallback(task)
                    else:
                        pid, _wkey, payload, stats, seconds = outcome
                        self._merge_worker_stats(pid, stats)
                        self.pipeline_stats.note("capture", pid, 1, seconds)
                        captured = self.cache.ingest_remote(key, payload)
                        if captured is None:
                            # The store's GC evicted the entry between
                            # the worker's put and our adoption; the
                            # point is already counted, so the local
                            # re-capture adds seconds, not points.
                            captured = self._fallback(task, points=0)
                    for idx in indices:
                        yield idx, key, captured
        finally:
            # Also reached via GeneratorExit if the consumer abandons
            # the stream: never leak the worker processes.
            self.shutdown()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        agg = {"hits": 0, "disk_hits": 0, "misses": 0,
               "workers": len(self._worker_stats),
               "fallbacks": self.fallbacks,
               "faults": self.fault_log.as_dict(),
               "per_worker": dict(self._worker_stats)}
        for stats in self._worker_stats.values():
            for counter in ("hits", "disk_hits", "misses"):
                agg[counter] += stats.get(counter, 0)
        return agg


def run_pipeline(captures: Sequence[CaptureTask],
                 replays: Sequence[PipelineReplay],
                 pool: SimPool) -> list[TimingReport]:
    """Cold-sweep pipeline over one shared :class:`SimPool`.

    ``captures[i]`` names one distinct operating point;
    ``replays[j] = (config, i)`` times capture ``i`` on ``config``.
    Captures fan out over the pool's tagged jobs and each point's replay
    tasks are submitted the moment its trace lands, so a sweep's replay
    phase overlaps the remainder of its capture phase — all inside the
    single ``workers=`` process budget.  Returns one report per replay
    entry **in replay order**, byte-identical for any pool sizing.
    Per-phase wall-clock lands in ``pool.pipeline_stats``.

    Replays are deduplicated by **machine-spec identity**: two entries
    naming the same capture and configs with equal
    :func:`~repro.machine.registry.machine_fingerprint` values (e.g. a
    builtin config and a YAML spec differing only in display name) run
    once and share the report object.  Capture keys never involve the
    fingerprint — traces stay machine-independent.
    """
    from ..machine.registry import machine_fingerprint

    unique: dict = {}
    order: list[PipelineReplay] = []
    expand: list[int] = []
    for config, cidx in replays:
        key = (cidx, machine_fingerprint(config))
        slot = unique.get(key)
        if slot is None:
            slot = unique[key] = len(order)
            order.append((config, cidx))
        expand.append(slot)
    reports = pool.run(captures, order)
    return [reports[i] for i in expand]


# ----------------------------------------------------------------------
# Historical facades.  Both wrap a private SimPool — neither owns an
# executor of its own — and keep the batch APIs the tests and benchmark
# suite use.
# ----------------------------------------------------------------------
class ReplayPool:
    """Replay-only batch facade over a private :class:`SimPool`.

    ``workers=None`` autodetects from the host CPU count; ``workers=1``
    replays in-process with no executor, pickling, or subprocess spawn —
    the results are byte-identical either way.  ``disk_dir`` (typically
    the sweep cache's own ``disk_dir``) lets workers rehydrate captures
    from the shared disk layer instead of receiving them over the pipe.
    """

    def __init__(self, workers: int | None = None,
                 disk_dir: str | Path | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._sim = SimPool(
            workers=workers,
            cache=TraceCache(capacity=capacity, disk_dir=disk_dir),
            capacity=capacity)

    @property
    def workers(self) -> int:
        return self._sim.workers

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._sim.cache.disk_dir

    def replay_batch(self, tasks: Sequence[ReplayTask]) -> list[TimingReport]:
        """Replay every task; reports come back in task order."""
        return self._sim.replay_batch(tasks)

    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        return self._sim.stats

    @property
    def pipeline_stats(self) -> PipelineStats:
        return self._sim.pipeline_stats


def replay_batch(tasks: Sequence[ReplayTask], workers: int | None = 1,
                 disk_dir: str | Path | None = None) -> list[TimingReport]:
    """One-shot convenience wrapper around :class:`ReplayPool`."""
    return ReplayPool(workers=workers,
                      disk_dir=disk_dir).replay_batch(tasks)


class CapturePool:
    """Capture-only batch facade over a private :class:`SimPool`.

    One worker task per distinct trace key, ``workers=1`` capturing
    in-process with no executor (byte-identical to the pooled path),
    ``workers=None`` autodetecting the host CPUs.  Keys already present
    in ``cache`` (memory or shared disk) are served in-process with the
    same hit/verify accounting as a serial sweep; a worker that dies —
    or a store whose GC evicts the fresh entry before the parent adopts
    it — degrades to an in-process capture instead of failing the sweep
    (counted in :attr:`fallbacks`).
    """

    def __init__(self, workers: int | None = 1,
                 cache: TraceCache | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._sim = SimPool(workers=workers, capture_workers=workers,
                            cache=cache, capacity=capacity)

    @property
    def workers(self) -> int:
        return self._sim.workers

    @property
    def cache(self) -> TraceCache:
        return self._sim.cache

    @property
    def fallbacks(self) -> int:
        """In-process captures forced by a worker death or a lost entry."""
        return self._sim.fallbacks

    def capture_batch(self, tasks: Sequence[CaptureTask]) -> list[ExecResult]:
        """Capture every task; results come back in task order."""
        return self._sim.capture_batch(tasks)

    def capture_stream(self, tasks: Sequence[CaptureTask]
                       ) -> Iterator[tuple[int, TraceKey, ExecResult]]:
        """Yield ``(task_index, key, captured)`` as captures land."""
        return self._sim.capture_stream(tasks)

    @property
    def stats(self) -> dict:
        """Cache counters aggregated over every worker this pool used."""
        return self._sim.stats

    @property
    def pipeline_stats(self) -> PipelineStats:
        return self._sim.pipeline_stats
