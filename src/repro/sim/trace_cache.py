"""Trace cache: capture a functional execution once, replay it everywhere.

The dynamic trace of a program depends only on (a) the program itself,
(b) the initial architectural/memory state its setup placed, and (c) the
machine's VLEN — never on the timing model.  The paper's evaluation is a
large cross-product of kernels x problem sizes x machine/timing configs,
so re-running the functional interpreter per timing point wastes almost
all of its work.  :class:`TraceCache` keys captured
:class:`~repro.functional.executor.ExecResult` objects by

    (program fingerprint, vlen_bits, setup identity)

where the *program fingerprint* is the content hash from
:attr:`repro.isa.program.Program.fingerprint` and the *setup identity*
names the initial data (for kernels: the kernel name plus its problem
dictionary, which seeds the deterministic input RNG).  Two operating
points with equal keys are guaranteed to produce identical traces, so a
replay against any machine model yields a bit-identical
:class:`~repro.timing.report.TimingReport` to a fresh end-to-end run.

The cache is an in-memory LRU with an optional on-disk pickle layer for
cross-process reuse (e.g. ``benchmarks/out/trace_cache``, or the worker
caches of :class:`~repro.sim.parallel.ReplayPool`).

Disk format
-----------
Disk entries are written for *concurrent* readers and writers sharing one
``disk_dir``:

* **Payload pruning** — entries drop the functional memory image (large,
  only needed by golden checks, which run at capture time) and decoded
  plan caches (which hold lambdas); a disk-rehydrated capture is
  replay-only and safe to ship across process boundaries.
* **Columnar trace payload (v6)** — the payload is a small dict of
  ``ExecResult`` fields in which the trace travels as a packed
  struct-of-arrays blob (:func:`repro.functional.trace_pack
  .pack_trace`) rather than a per-event object pickle.  Rehydration
  wraps the blob as a lazy :class:`~repro.functional.trace_pack
  .PackedTrace` — column views via ``np.frombuffer``, no per-event
  heap objects — which the timing engine's vectorized replay consumes
  directly.  Events that do not flatten (foreign classes, out-of-range
  fields) ride in the blob's pickled fallback map, so any trace
  round-trips losslessly.
* **Atomic writes** — each entry is pickled to a ``tempfile`` inside
  ``disk_dir`` and moved into place with :func:`os.replace`, so a
  concurrent reader sees either the old complete file or the new
  complete file, never an interleaved or truncated one, and a crashed
  writer leaves at worst an orphaned ``*.tmp``.
* **Versioned envelope** — the pickle is a dict
  ``{"format": DISK_FORMAT_VERSION, "schema": <ExecResult field names>,
  "hits_served": <int>, "crc32": <payload checksum>, "payload": <the
  pruned ExecResult, pickled then zlib-compressed>}``.  A stale file
  from an older code revision (wrong version, drifted ``ExecResult``
  fields, or a pre-envelope bare pickle) is treated as a plain miss —
  the caller recaptures and the subsequent :meth:`TraceCache.put`
  overwrites the stale file in place.  Nesting the payload as bytes
  lets envelope *validation* (``__contains__`` probes, the store GC's
  stale purge) check the tags without deserializing — or decompressing
  — the trace itself.
* **Payload checksum** — ``crc32`` (optional-within-v4, like
  ``hits_served``) covers the compressed payload bytes and is verified
  on every disk read and :meth:`TraceCache.probe`.  A mismatch means
  the bytes on disk are not what the writer produced (bit rot, a
  partial foreign write, injected corruption); the entry is unlinked
  and counted in ``corrupt_purged`` rather than left to shadow the
  budget, and the caller sees a plain miss.  Pre-checksum v4 entries
  (no ``crc32`` field) are accepted unverified.
* **Write-failure degradation** — a ``put`` whose disk write raises
  ``ENOSPC`` flips the cache to memory-only (one-shot
  ``RuntimeWarning``; later puts skip the disk layer entirely); any
  other transient ``OSError`` is retried once (``io_retries``) and
  then abandoned for that entry (``put_errors``) — the in-memory layer
  still holds it, so correctness never depends on the disk write
  landing.
* **Popularity counter** — ``hits_served`` counts how many times the
  entry's disk layer served a whole trace; the suite store
  (:class:`~repro.sim.trace_store.TraceStore`) bumps it on every disk
  hit so a future GC can weight eviction by popularity, not just
  recency.  The live count rides in a tiny ``<entry>.hits`` *sidecar*
  file (see :func:`sidecar_path`) so a warm hit writes a few bytes,
  never the whole envelope; the envelope's ``hits_served`` field is
  the base the sidecar adds to (always 0 for entries this revision
  writes).  A (re)capture unlinks the sidecar — new payload bytes, new
  popularity life — and a plain :class:`TraceCache` (e.g. a transient
  pool worker's cache) never bumps it.
* **Compressed payload** — the nested payload bytes are
  zlib-compressed (v4).  Trace pickles are dominated by repetitive
  event records, so compression cuts entries by roughly an order of
  magnitude, which multiplies how many operating points fit in the
  shared store's GC budget and shrinks what capture/replay workers
  write.  An uncompressed v3 file reads as a plain miss via the format
  tag, never as a decode error.

Statistics distinguish the layers: ``hits`` counts in-memory LRU hits
only, ``disk_hits`` counts rehydrations from disk, and ``hit_rate`` is
the true in-memory rate ``hits / (hits + disk_hits + misses)``.
``remote_puts`` counts entries adopted via :meth:`TraceCache
.ingest_remote` — captures paid by a worker process of a
:class:`~repro.sim.parallel.CapturePool` rather than by this process —
so warm disk hits served by an *earlier* run stay distinguishable from
captures this very sweep fanned out.

Shared store layout and lifecycle
---------------------------------
``disk_dir`` is flat: one ``trace_<sha256(key)[:32]>.pkl`` per entry
(see :func:`disk_path`) plus transient ``<name>.<random>.tmp`` files
while an atomic write is in flight.  The whole benchmark suite and
:func:`~repro.eval.runner.run_experiment` share one such directory via
:class:`~repro.sim.trace_store.TraceStore`, which adds the lifecycle a
long-lived store needs — a size-capped mtime-LRU GC, stale-envelope
purging, and crashed-writer ``*.tmp`` reaping — and resolves its
location and byte budget from, in priority order, an explicit path
(``pytest --trace-store`` / ``python -m repro.eval --trace-store``), the
``REPRO_TRACE_STORE`` / ``REPRO_TRACE_STORE_BYTES`` environment
variables, and the suite default ``benchmarks/out/trace_cache``.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import os
import pickle
import tempfile
import time
import warnings
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional

from ..functional.executor import ExecResult
from ..functional.trace_pack import PackedTrace, pack_trace, unpack_trace
from ..isa.program import Program
from .faults import FaultPlan

TraceKey = tuple

#: Default number of captured traces kept in memory.  Sweeps revisit a
#: key only within one inner machine loop, so a modest window suffices.
DEFAULT_CAPACITY = 32

#: Version of the on-disk envelope.  Bump when the disk representation
#: itself changes shape; ``ExecResult`` field drift is caught separately
#: by the schema tag so unrelated refactors invalidate entries without a
#: manual bump.  v3: the payload is nested as pickled bytes so envelope
#: validation need not deserialize the trace.  v4: the payload bytes are
#: zlib-compressed (a v3 file fails the format check and reads as a
#: plain miss, never as a decompression error).  v5: trace event classes
#: (``MemAccess``, ``DynamicTrace``) grew ``__slots__``, changing their
#: pickled state shape — a v4 payload would fail mid-unpickle and be
#: miscounted as *corrupt*; the bump makes it a plain stale miss.  v6:
#: the payload is a field dict whose trace is a columnar
#: :func:`~repro.functional.trace_pack.pack_trace` blob instead of a
#: per-event object pickle; a v5 payload (a pickled ``ExecResult``)
#: would unwrap to the wrong shape, so the bump again makes it a plain
#: stale miss that the store GC purges.
DISK_FORMAT_VERSION = 6

#: zlib level for the payload bytes.  The default (6) already reaches
#: within a few percent of level 9 on trace pickles at a fraction of the
#: CPU; level 1 would halve the ratio for little time saved relative to
#: the pickling itself.
COMPRESS_LEVEL = 6


def trace_key(program: Program, vlen_bits: int, setup_id: str) -> TraceKey:
    """Build the canonical cache key for one operating point."""
    return (program.fingerprint, int(vlen_bits), setup_id)


def disk_path(disk_dir: str | Path, key: TraceKey) -> Path:
    """On-disk location of one cache entry inside ``disk_dir``."""
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
    return Path(disk_dir) / f"trace_{digest}.pkl"


def sidecar_path(path: Path) -> Path:
    """Hit-counter sidecar of one disk entry (``<entry>.hits``).

    Kept outside the envelope so a warm serve persists its popularity
    bump by writing a few counter bytes, not the whole entry (see
    :meth:`~repro.sim.trace_store.TraceStore._note_disk_serve`).
    """
    return path.with_name(path.name + ".hits")


def _disk_payload(er: ExecResult) -> ExecResult:
    """Replay-only pruned capture: drop the functional memory image
    (large, and only needed by golden checks, which run at capture
    time).  Decoded plan caches (which hold lambdas) are excluded by
    ``Program`` / ``Instruction.__getstate__`` without touching the
    live objects.  This object form is what capture workers ship over
    pipes; the disk tier packs it further via :func:`_pack_payload`."""
    return ExecResult(state=er.state, trace=er.trace, retired=er.retired,
                      program=er.program, halted=er.halted, extra={})


def _pack_payload(er: ExecResult) -> dict:
    """v6 disk payload: pruned ``ExecResult`` fields with the trace as
    a columnar blob.  A trace already rehydrated as a
    :class:`~repro.functional.trace_pack.PackedTrace` contributes its
    existing blob bytes — re-persisting a disk-served entry never
    re-packs."""
    trace = er.trace
    blob = (bytes(trace.blob) if isinstance(trace, PackedTrace)
            else pack_trace(trace, er.program))
    return {"state": er.state, "program": er.program,
            "retired": er.retired, "halted": er.halted,
            "trace_blob": blob}


def _payload_schema() -> tuple:
    """Fingerprint of the ``ExecResult`` shape baked into disk entries."""
    return tuple(sorted(f.name for f in dataclasses.fields(ExecResult)))


def _validate_envelope(obj: object) -> bool:
    """Envelope tags are current.  Never deserializes the payload, so
    stale-entry scans (e.g. the trace store's GC) stay cheap."""
    return (isinstance(obj, dict)
            and obj.get("format") == DISK_FORMAT_VERSION
            and obj.get("schema") == _payload_schema()
            and isinstance(obj.get("payload"), bytes))


def _write_envelope(path: Path, envelope: dict,
                    clock: Optional[Callable[[], float]] = None) -> None:
    """Atomically (re)write one envelope dict at ``path``.

    The envelope is pickled to a private tempfile in the destination
    directory and renamed over ``path``; concurrent writers race only
    on the final :func:`os.replace`, which is atomic, so the file is
    always one writer's complete output.

    ``clock`` (when given) stamps the tempfile's mtime before the
    rename, so a store using an injected clock judges in-flight
    tempfile age with the *same* clock its GC reaps orphans by — the
    invariant that keeps a live writer's tempfile unreapable however
    slow the write is (see :meth:`~repro.sim.trace_store.TraceStore
    .gc`).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
        if clock is not None:
            stamp = clock()
            os.utime(tmp_name, (stamp, stamp))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _crc_ok(obj: dict) -> bool:
    """Payload bytes match the envelope's checksum (absent = accepted).

    Cheap relative to decompression — a CRC32 pass over compressed
    bytes — so reads and probes can verify integrity without paying
    for a decode attempt on garbage.
    """
    crc = obj.get("crc32")
    if crc is None:
        return True  # pre-checksum v4 entry: accepted unverified
    return crc == (zlib.crc32(obj["payload"]) & 0xFFFFFFFF)


def _unwrap_envelope(obj: object) -> Optional[ExecResult]:
    """Payload of a disk envelope, or None for any stale/foreign shape.

    Rehydrates the v6 field dict into a replay-only ``ExecResult``
    whose trace is a lazy :class:`~repro.functional.trace_pack
    .PackedTrace` over the payload's columnar blob — no per-event
    objects are built here.
    """
    if not _validate_envelope(obj):
        return None  # older revision, drifted schema, or foreign shape
    try:
        payload = pickle.loads(zlib.decompress(obj["payload"]))
    # repro-lint: disable=RL201  unpickling corrupt bytes can raise any type
    except Exception:
        return None  # corrupt compressed bytes or inner pickle: a miss
    if not isinstance(payload, dict):
        return None  # foreign checksummed object: a miss
    try:
        trace = unpack_trace(payload["trace_blob"], payload["program"])
        return ExecResult(state=payload["state"], trace=trace,
                          retired=payload["retired"],
                          program=payload["program"],
                          halted=payload["halted"], extra={})
    # repro-lint: disable=RL201  a foreign checksummed dict can carry an
    # arbitrarily malformed blob; any parse failure is just a miss
    except Exception:
        return None


class TraceCache:
    """LRU cache of captured functional executions, keyed by
    ``(program fingerprint, vlen_bits, setup identity)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk_dir: str | Path | None = None,
                 fault_plan: Optional[FaultPlan] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity < 1:
            raise ValueError("trace cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.fault_plan = (fault_plan if fault_plan is not None
                           else FaultPlan.from_env())
        #: Injectable time source; every age judgement (GC orphan
        #: reaping, manifest ages) and tempfile stamp uses this one
        #: clock so they can never disagree.  ``None`` = wall clock.
        self.clock = clock
        self._entries: OrderedDict[TraceKey, ExecResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.remote_puts = 0
        #: Entries whose payload failed its checksum and were unlinked.
        self.corrupt_purged = 0
        #: Disk writes retried once after a transient ``OSError``.
        self.io_retries = 0
        #: Disk writes abandoned after the retry also failed.
        self.put_errors = 0
        #: Set once ``ENOSPC`` demoted this cache to memory-only.
        self.memory_only = False
        self._write_counts: dict[str, int] = {}  # fault-roll attempt nos
        self._last_lookup: str | None = None  # "memory" | "disk" | "miss"

    def _now(self) -> float:
        """Current time per the injected clock (wall clock by default)."""
        # repro-lint: disable=RL101  injected-clock default: feeds only
        # GC age judgements and manifest ages, never a rendered table
        return time.time() if self.clock is None else self.clock()

    # ------------------------------------------------------------------
    @staticmethod
    def key(program: Program, vlen_bits: int, setup_id: str) -> TraceKey:
        return trace_key(program, vlen_bits, setup_id)

    def _disk_path(self, key: TraceKey) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return disk_path(self.disk_dir, key)

    # ------------------------------------------------------------------
    def get(self, key: TraceKey) -> Optional[ExecResult]:
        """Captured execution for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._last_lookup = "memory"
            return entry
        entry = self._load_from_disk(key)
        if entry is not None:
            self._remember(key, entry)
            self.disk_hits += 1
            self._last_lookup = "disk"
            return entry
        self.misses += 1
        self._last_lookup = "miss"
        return None

    def _load_from_disk(self, key: TraceKey) -> Optional[ExecResult]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
        except (KeyboardInterrupt, SystemExit):
            raise
        # repro-lint: disable=RL201  unpickling foreign files raises any type
        except Exception:
            return None  # unreadable/foreign file: fall through to a miss
        if not _validate_envelope(obj):
            return None  # stale tags (old format/schema): a plain miss
        entry = _unwrap_envelope(obj) if _crc_ok(obj) else None
        if entry is None:
            # Tags are current but the payload is not what the writer
            # produced: purge it so the broken bytes can't shadow the
            # store budget or fail again on the next read.
            self._purge_corrupt(path)
            return None
        self._note_disk_serve(path, obj)
        return entry

    def _purge_corrupt(self, path: Path) -> None:
        """Unlink (and count) an entry whose payload failed integrity."""
        self.corrupt_purged += 1
        try:
            path.unlink()
        except OSError:
            pass  # already evicted/replaced concurrently
        try:
            sidecar_path(path).unlink()
        except OSError:
            pass  # no sidecar, or it vanished with the entry

    def _note_disk_serve(self, path: Path, envelope: dict) -> None:
        """Hook: the disk layer just served ``envelope`` whole.

        A plain cache does nothing; :class:`~repro.sim.trace_store
        .TraceStore` overrides this to persist the entry's
        ``hits_served`` bump (which also freshens its ``mtime``, the
        GC's LRU signal).
        """

    def put(self, key: TraceKey, captured: ExecResult) -> None:
        # A put invalidates the "last lookup" context: a demote_last_hit()
        # issued after it must be a no-op, not a re-demotion of an older
        # get() (which would corrupt — even negate — the counters).
        self._last_lookup = None
        self._remember(key, captured)
        path = self._disk_path(key)
        if path is not None and not self.memory_only:
            self._put_disk(path, captured)

    def _put_disk(self, path: Path, captured: ExecResult) -> None:
        """Disk half of :meth:`put`, with bounded failure handling.

        ``ENOSPC`` demotes the whole cache to memory-only (one-shot
        warning; the entry and all later ones stay in the LRU only);
        any other ``OSError`` is retried once, then abandoned for this
        entry.  Neither ever propagates: the in-memory layer already
        holds the capture, so a failed disk write costs sharing, not
        correctness.
        """
        for retry in (False, True):
            try:
                self._write_disk(path, captured)
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except OSError as exc:
                if getattr(exc, "errno", None) == errno.ENOSPC:
                    self._degrade_memory_only(exc)
                    return
                if not retry:
                    self.io_retries += 1
                    continue
                self.put_errors += 1
                return

    def _degrade_memory_only(self, exc: OSError) -> None:
        """Flip to memory-only after ``ENOSPC`` (warn exactly once)."""
        if not self.memory_only:
            self.memory_only = True
            warnings.warn(
                f"trace store disk write failed ({exc}); continuing "
                f"memory-only — captures will not be shared on disk",
                RuntimeWarning, stacklevel=4)

    def _write_disk(self, path: Path, captured: ExecResult) -> None:
        """Atomically (re)write one disk entry.

        A (re)capture starts the entry's ``hits_served`` life over at
        zero — the payload is new bytes, so inherited popularity would
        claim service the new trace never rendered — which includes
        unlinking any hit-counter sidecar a store left beside the old
        entry.  The payload checksum is computed over the exact
        compressed bytes handed to the envelope; an active
        :class:`~repro.sim.faults.FaultPlan` may then corrupt those
        bytes or veto the write with an ``OSError``, deliberately
        *after* the checksum, so injected corruption is exactly what
        the read-side CRC check catches.
        """
        payload = zlib.compress(
            pickle.dumps(_pack_payload(captured),
                         protocol=pickle.HIGHEST_PROTOCOL),
            COMPRESS_LEVEL)
        envelope = {"format": DISK_FORMAT_VERSION,
                    "schema": _payload_schema(),
                    "hits_served": 0,
                    "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
                    "payload": payload}
        plan = self.fault_plan
        if plan is not None:
            token = path.name
            attempt = self._write_counts.get(token, 0)
            self._write_counts[token] = attempt + 1
            plan.check_write(token, attempt)
            envelope["payload"] = plan.corrupted(token, attempt, payload)
        _write_envelope(path, envelope, clock=self.clock)
        try:
            sidecar_path(path).unlink()
        except OSError:
            pass  # no sidecar (fresh entry) or it raced away: zero either way

    def ingest_remote(self, key: TraceKey,
                      payload: Optional[ExecResult] = None
                      ) -> Optional[ExecResult]:
        """Adopt an entry a capture worker produced for this cache.

        A :class:`~repro.sim.parallel.CapturePool` worker either wrote
        the entry to the shared disk directory (``payload=None`` — it is
        rehydrated here) or shipped the pruned payload back over the
        pipe.  Either way the capture was *paid elsewhere*: the adoption
        is counted in ``remote_puts``, not as a hit, disk hit, or miss,
        so the counters keep attributing functional work to whoever did
        it.  Returns the adopted entry, or ``None`` when a disk-routed
        entry vanished before adoption (e.g. the store's GC evicted it
        mid-capture) — the caller must then recapture locally.
        """
        captured = payload
        if captured is None:
            captured = self._load_from_disk(key)
        if captured is None:
            return None
        self._remember(key, captured)
        self.remote_puts += 1
        self._last_lookup = None  # see put(): no stale demotion context
        return captured

    def _remember(self, key: TraceKey, captured: ExecResult) -> None:
        self._entries[key] = captured
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def demote_last_hit(self) -> None:
        """Recount the immediately preceding :meth:`get` hit as a miss.

        Used by callers that looked an entry up but could not use it —
        e.g. a verified capture request served a replay-only disk payload
        — so the statistics reflect that no functional work was saved.
        A no-op unless the cache's most recent operation was a
        :meth:`get` that hit: an intervening :meth:`put` or
        :meth:`clear` clears the lookup context, and a second call after
        a demotion changes nothing.
        """
        if self._last_lookup == "memory":
            self.hits -= 1
        elif self._last_lookup == "disk":
            self.disk_hits -= 1
        else:
            return
        self.misses += 1
        self._last_lookup = None  # consumed: a repeat call must not stack

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._entries.clear()
        self._last_lookup = None  # see put(): no stale demotion context

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, key: TraceKey) -> bool:
        """Cheap membership hint: tags and checksum, never the payload.

        Unlike ``key in cache``, a disk probe validates the envelope's
        format/schema tags and payload CRC without decompressing or
        unpickling the trace itself, so callers that will immediately
        :meth:`get` on a positive answer (e.g. :class:`~repro.sim
        .parallel.CapturePool` classifying warm keys) don't deserialize
        every entry twice.  The CRC check means byte-level corruption
        probes False (and the pipeline recaptures cold); the residual
        price is that an entry whose checksummed bytes decode to a
        *foreign* object can still probe True and miss on the ``get`` —
        callers must treat a positive probe as a hint, not a guarantee.
        """
        if key in self._entries:
            return True
        path = self._disk_path(key)
        if path is None or not path.exists():
            return False
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
        except (KeyboardInterrupt, SystemExit):
            raise
        # repro-lint: disable=RL201  unpickling foreign files raises any type
        except Exception:
            return False
        return _validate_envelope(obj) and _crc_ok(obj)

    def __contains__(self, key: TraceKey) -> bool:
        # Membership mirrors get(): both layers count, neither is charged
        # a hit or miss.  The disk probe validates the full envelope —
        # a stale or truncated file that get() would refuse must not
        # report membership — but rehydrates nothing into the LRU.
        if key in self._entries:
            return True
        return self._load_from_disk(key) is not None

    @property
    def stats(self) -> dict:
        lookups = self.hits + self.disk_hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "remote_puts": self.remote_puts,
            "lookups": lookups,
            "entries": len(self._entries),
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "corrupt_purged": self.corrupt_purged,
            "io_retries": self.io_retries,
            "put_errors": self.put_errors,
            "memory_only": self.memory_only,
        }
