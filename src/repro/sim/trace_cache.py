"""Trace cache: capture a functional execution once, replay it everywhere.

The dynamic trace of a program depends only on (a) the program itself,
(b) the initial architectural/memory state its setup placed, and (c) the
machine's VLEN — never on the timing model.  The paper's evaluation is a
large cross-product of kernels x problem sizes x machine/timing configs,
so re-running the functional interpreter per timing point wastes almost
all of its work.  :class:`TraceCache` keys captured
:class:`~repro.functional.executor.ExecResult` objects by

    (program fingerprint, vlen_bits, setup identity)

where the *program fingerprint* is the content hash from
:attr:`repro.isa.program.Program.fingerprint` and the *setup identity*
names the initial data (for kernels: the kernel name plus its problem
dictionary, which seeds the deterministic input RNG).  Two operating
points with equal keys are guaranteed to produce identical traces, so a
replay against any machine model yields a bit-identical
:class:`~repro.timing.report.TimingReport` to a fresh end-to-end run.

The cache is an in-memory LRU with an optional on-disk pickle layer
(for cross-process reuse, e.g. ``benchmarks/out/trace_cache``).  Disk
entries are pruned of the functional memory image and of decoded plan
caches (which hold lambdas); a disk-rehydrated capture is replay-only.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..functional.executor import ExecResult
from ..isa.program import Program

TraceKey = tuple

#: Default number of captured traces kept in memory.  Sweeps revisit a
#: key only within one inner machine loop, so a modest window suffices.
DEFAULT_CAPACITY = 32


def trace_key(program: Program, vlen_bits: int, setup_id: str) -> TraceKey:
    """Build the canonical cache key for one operating point."""
    return (program.fingerprint, int(vlen_bits), setup_id)


def _disk_payload(er: ExecResult) -> ExecResult:
    """Replay-only disk payload: drop the functional memory image (large,
    and only needed by golden checks, which run at capture time).  Decoded
    plan caches (which hold lambdas) are excluded by ``Program`` /
    ``Instruction.__getstate__`` without touching the live objects."""
    return ExecResult(state=er.state, trace=er.trace, retired=er.retired,
                      program=er.program, halted=er.halted, extra={})


class TraceCache:
    """LRU cache of captured functional executions, keyed by
    ``(program fingerprint, vlen_bits, setup identity)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("trace cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._entries: OrderedDict[TraceKey, ExecResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(program: Program, vlen_bits: int, setup_id: str) -> TraceKey:
        return trace_key(program, vlen_bits, setup_id)

    def _disk_path(self, key: TraceKey) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return self.disk_dir / f"trace_{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, key: TraceKey) -> Optional[ExecResult]:
        """Captured execution for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as fh:
                    entry = pickle.load(fh)
            except Exception:
                entry = None  # corrupt/stale file: fall through to a miss
            if entry is not None:
                self._remember(key, entry)
                self.hits += 1
                self.disk_hits += 1
                return entry
        self.misses += 1
        return None

    def put(self, key: TraceKey, captured: ExecResult) -> None:
        self._remember(key, captured)
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as fh:
                pickle.dump(_disk_payload(captured), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)

    def _remember(self, key: TraceKey, captured: ExecResult) -> None:
        self._entries[key] = captured
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._entries

    @property
    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._entries),
            "hit_rate": self.hits / total if total else 0.0,
        }
