"""User-facing simulation facade.

:class:`~repro.sim.simulator.Simulator` exposes the trace-once /
replay-many pipeline: :meth:`~repro.sim.simulator.Simulator.capture`
produces a machine-independent trace, :func:`~repro.sim.simulator
.replay_trace` times it on any machine model, and ``run`` does both in
one call, returning a :class:`~repro.sim.result.RunResult` with the
architectural outcome and the cycle-level report.  Captured traces are
shared across operating points via
:class:`~repro.sim.trace_cache.TraceCache` — and across the whole
benchmark suite via the disk-backed, garbage-collected
:class:`~repro.sim.trace_store.TraceStore` — and both sweep phases fan
out over one shared worker pool via :mod:`repro.sim.parallel`:
:class:`~repro.sim.parallel.SimPool` executes tagged capture/replay
jobs inside a single ``workers=`` process budget,
:func:`~repro.sim.parallel.run_pipeline` streams each capture's replays
into the pool as its trace lands, and
:class:`~repro.sim.parallel.CapturePool` /
:class:`~repro.sim.parallel.ReplayPool` remain as batch-API facades
over the same machinery.

Fault tolerance lives in :mod:`repro.sim.faults`: a seeded
:class:`~repro.sim.faults.FaultPlan` deterministically injects worker
crashes/hangs and store-tier corruption/``ENOSPC`` so the pool's
recovery ladder (retry, executor rebuild, quarantine, serial
degradation — all counted in a :class:`~repro.sim.faults.FaultLog`)
is provable in tests and CI.
"""

from .simulator import Simulator, replay_trace, run_program
from .result import RunResult
from .faults import FaultLog, FaultPlan
from .trace_cache import TraceCache, trace_key
from .trace_store import TraceStore, attach_store, resolve_store_dir
from .parallel import (CapturePool, CaptureTask, PipelineStats, ReplayPool,
                       SimPool, autodetect_workers, replay_batch,
                       run_pipeline)

__all__ = ["CapturePool", "CaptureTask", "FaultLog", "FaultPlan",
           "PipelineStats", "Simulator", "RunResult", "SimPool",
           "TraceCache", "TraceStore", "ReplayPool", "attach_store",
           "autodetect_workers", "replay_batch", "replay_trace",
           "resolve_store_dir", "run_pipeline", "run_program", "trace_key"]
