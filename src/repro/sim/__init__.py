"""User-facing simulation facade.

:class:`~repro.sim.simulator.Simulator` runs a program functionally and
replays its trace on the timing model in one call, returning a
:class:`~repro.sim.result.RunResult` with both the architectural outcome
and the cycle-level report.
"""

from .simulator import Simulator, run_program
from .result import RunResult

__all__ = ["Simulator", "RunResult", "run_program"]
