"""Shared benchmark-suite trace store: one disk cache, a real lifecycle.

PR 2 made the :class:`~repro.sim.trace_cache.TraceCache` disk layer safe
under concurrent writers; this module turns that layer into a *suite-wide
store*.  The paper's evaluation revisits many identical ``(program,
VLEN, setup)`` operating points across Fig 6/7, Table I/III and the
ablation sweeps, so every benchmark and :func:`~repro.eval.runner
.run_experiment` call attaches to **one** disk directory instead of each
building a private cache — a capture paid by ``bench_fig6`` is a disk
hit for ``bench_table1`` (and for the next run of the whole suite).

Store resolution
----------------
The store directory is resolved in priority order:

1. an explicit path (function argument / ``pytest --trace-store`` /
   ``python -m repro.eval --trace-store``);
2. the :data:`ENV_STORE_DIR` (``REPRO_TRACE_STORE``) environment
   variable;
3. the suite default ``benchmarks/out/trace_cache`` (gitignored).

The GC byte budget resolves the same way through :data:`ENV_STORE_BYTES`
(``REPRO_TRACE_STORE_BYTES``), defaulting to
:data:`DEFAULT_MAX_BYTES`.

Lifecycle policy (:meth:`TraceStore.gc`)
----------------------------------------
A shared long-lived directory needs eviction, which the plain cache
never had.  One ``gc()`` pass, safe to run while other processes read
and write the same directory:

* **orphan reaping** — ``*.tmp`` files are the private tempfiles of
  in-flight atomic writes; one older than ``tmp_max_age_s`` belongs to a
  crashed writer and is deleted (a live writer's tempfile is seconds
  old, never hours);
* **stale purge** — entries whose envelope no longer validates (older
  ``DISK_FORMAT_VERSION``, drifted ``ExecResult`` schema, pre-envelope
  bare pickles, truncation) would never satisfy a ``get()`` again; they
  are unlinked rather than left to shadow the budget;
* **size cap** — while the store exceeds its byte budget, the
  oldest-``mtime`` entries are evicted first.  :meth:`TraceStore.get`
  freshens an entry's ``mtime`` on every disk hit (and persists its
  ``hits_served`` bump in a few-byte ``.hits`` sidecar — never by
  rewriting the multi-KiB envelope it just read), so the ordering is a
  true LRU over *use*, not a FIFO over write time — and a future GC
  can weight eviction by the persisted per-entry popularity;
* **sidecar hygiene** — a ``.hits`` sidecar whose entry is gone
  (evicted by a foreign process, or a crash between the two unlinks)
  is reaped.

Every deletion tolerates the file vanishing underneath it (another
process may evict, rewrite, or replace concurrently); losing a race
costs at worst one re-capture, never corruption — reads still only ever
see whole files thanks to the atomic-rename write protocol.

Manifest and stats
------------------
:meth:`TraceStore.manifest` lists every entry with its size, age and
``hits_served`` count; :attr:`TraceStore.store_stats` adds the
aggregate (entry count, total bytes, oldest/newest age, total hits
served) to the usual hit/miss counters so benchmark tables can surface
what the shared store actually served.
"""

from __future__ import annotations

import errno
import os
import pickle
import tempfile
from pathlib import Path
from typing import Callable, Optional, Union

# Re-exported for the module's historical importers: the canonical
# definitions (and the only os.environ access) live in repro.env.
from ..env import ENV_STORE_BYTES, ENV_STORE_DIR, read_env
from .faults import FaultPlan
from .trace_cache import (DEFAULT_CAPACITY, TraceCache, _crc_ok,
                          _validate_envelope, sidecar_path)

#: Suite-default store location: ``benchmarks/out/trace_cache`` (kept
#: under the gitignored bench output directory, so a checkout never
#: tracks cache files), anchored to the source checkout rather than the
#: caller's working directory — ``TraceStore()`` from any cwd resolves
#: to the same suite-wide store.
DEFAULT_STORE_DIR = (Path(__file__).resolve().parents[3]
                     / "benchmarks" / "out" / "trace_cache")

#: Default GC byte budget.  A captured trace entry for the reduced-scale
#: sweeps is a few hundred KiB; 256 MiB comfortably holds the whole
#: suite's cross-product several times over.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: A ``*.tmp`` file older than this is a crashed writer's orphan.
DEFAULT_TMP_MAX_AGE_S = 3600.0

#: Glob of live store entries (matches trace_cache.disk_path naming).
_ENTRY_GLOB = "trace_*.pkl"

#: Glob of hit-counter sidecars (see trace_cache.sidecar_path).
_SIDECAR_GLOB = "trace_*.pkl.hits"


def _unlink_quiet(path: Path) -> bool:
    """Best-effort unlink; True when this call removed the file."""
    try:
        path.unlink()
        return True
    except OSError:
        return False


def _read_hits(side: Path) -> int:
    """Count persisted in a sidecar: 0 for absent, torn or foreign bytes.

    The counter is advisory (a lost or garbled sidecar costs popularity
    accuracy, never correctness), so every failure mode degrades to
    "never served" rather than an error.
    """
    try:
        return int(side.read_bytes())
    except (OSError, ValueError):
        return 0


def _write_hits(side: Path, count: int,
                clock: Optional[Callable[[], float]] = None) -> int:
    """Atomically write ``count`` to sidecar ``side``; returns the bytes
    written.  Same tempfile-and-rename protocol as envelope writes (a
    crashed writer leaves a ``*.tmp`` the GC reaps; ``clock`` stamps it
    so an injected-clock store judges its age consistently)."""
    data = b"%d" % count
    fd, tmp_name = tempfile.mkstemp(dir=str(side.parent),
                                    prefix=side.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        if clock is not None:
            stamp = clock()
            os.utime(tmp_name, (stamp, stamp))
        os.replace(tmp_name, side)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(data)


def resolve_store_dir(explicit: Union[str, Path, None] = None,
                      default: Union[str, Path] = DEFAULT_STORE_DIR) -> Path:
    """Store directory: explicit arg > $REPRO_TRACE_STORE > default."""
    if explicit is not None:
        return Path(explicit)
    env = read_env(ENV_STORE_DIR)
    if env:
        return Path(env)
    return Path(default)


def resolve_store_bytes(explicit: Optional[int] = None) -> int:
    """GC byte budget: explicit arg > $REPRO_TRACE_STORE_BYTES > default."""
    if explicit is not None:
        return int(explicit)
    env = read_env(ENV_STORE_BYTES)
    if env:
        return int(env)
    return DEFAULT_MAX_BYTES


class TraceStore(TraceCache):
    """A :class:`TraceCache` bound to the suite-wide shared directory,
    with the lifecycle policy (GC, orphan reaping, manifest) a long-lived
    multi-process store needs."""

    def __init__(self, disk_dir: Union[str, Path, None] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 max_bytes: Optional[int] = None,
                 tmp_max_age_s: float = DEFAULT_TMP_MAX_AGE_S,
                 fault_plan: Optional[FaultPlan] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__(capacity=capacity,
                         disk_dir=resolve_store_dir(disk_dir),
                         fault_plan=fault_plan, clock=clock)
        self.max_bytes = resolve_store_bytes(max_bytes)
        self.tmp_max_age_s = float(tmp_max_age_s)
        #: Total sidecar bytes written persisting warm-hit bumps.
        self.serve_write_bytes = 0
        #: Sidecar bytes the most recent bump wrote (0 = none yet).
        self.last_serve_write_bytes = 0
        #: Bumps abandoned on a non-ENOSPC ``OSError`` (entry raced away).
        self.serve_note_errors = 0

    # ------------------------------------------------------------------
    def _note_disk_serve(self, path, envelope: dict) -> None:
        """Persist the popularity bump for one served entry.

        The bump lands in the entry's tiny ``.hits`` sidecar — a warm
        hit writes O(counter) bytes, never the multi-KiB envelope it
        just read (rewriting the whole envelope per hit was the old
        behaviour, turning every warm serve into a full-entry disk
        write).  The entry's own ``mtime`` is then freshened so the
        GC's eviction order stays an LRU over *use* rather than a FIFO
        over writes.  The counter is advisory: concurrent readers race
        last-writer-wins (a lost bump costs accuracy, never
        correctness).

        Failure handling mirrors :meth:`~repro.sim.trace_cache
        .TraceCache.put`: ``ENOSPC`` demotes the store to memory-only
        (one-shot warning — and once demoted, later serves skip the
        disk write entirely); any other ``OSError`` means the entry or
        its directory raced away (evicted, replaced, reaped) and the
        bump is simply dropped (counted in ``serve_note_errors``).
        """
        if self.memory_only:
            return
        side = sidecar_path(path)
        count = _read_hits(side) + 1  # serves since the entry was written
        plan = self.fault_plan
        try:
            if plan is not None:
                token = side.name
                attempt = self._write_counts.get(token, 0)
                self._write_counts[token] = attempt + 1
                plan.check_write(token, attempt)
            written = _write_hits(side, count, clock=self.clock)
            stamp = self._now()
            os.utime(path, (stamp, stamp))
        except OSError as exc:
            if getattr(exc, "errno", None) == errno.ENOSPC:
                self._degrade_memory_only(exc)
                return
            self.serve_note_errors += 1
            return
        self.serve_write_bytes += written
        self.last_serve_write_bytes = written

    # ------------------------------------------------------------------
    def gc(self, max_bytes: Optional[int] = None) -> dict:
        """Run one lifecycle pass over the store directory.

        Reaps crashed-writer ``*.tmp`` orphans, purges entries whose
        envelope no longer validates or whose payload fails its
        checksum, then evicts oldest-``mtime`` entries until the store
        fits ``max_bytes`` (default: the store's configured budget).
        Safe to run concurrently with readers and writers in other
        processes.  Returns a summary dict.

        Orphan ages are judged by the store's *injected* clock
        (``self._now()``), the same clock :func:`~repro.sim.trace_cache
        ._write_envelope` stamps tempfiles with — so a live writer's
        tempfile can never look ``tmp_max_age_s`` old to its own
        store's GC, however slowly the write progresses (e.g. under
        fault-injected slow I/O).  Mixing the wall clock here with a
        synthetic write clock would reap in-flight writes.
        """
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        summary = {"reaped_tmp": 0, "purged_stale": 0, "purged_corrupt": 0,
                   "evicted": 0, "reaped_sidecars": 0, "entries": 0,
                   "bytes_before": 0, "bytes_after": 0}
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return summary
        now = self._now()

        for tmp in self.disk_dir.glob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= self.tmp_max_age_s:
                    tmp.unlink()
                    summary["reaped_tmp"] += 1
            except OSError:
                continue  # vanished or finished mid-scan: not an orphan

        live: list[tuple[float, int, Path]] = []
        for path in sorted(self.disk_dir.glob(_ENTRY_GLOB)):
            try:
                stat = path.stat()
                with path.open("rb") as fh:
                    obj = pickle.load(fh)
            except OSError:
                continue  # concurrently evicted: nothing to manage
            # repro-lint: disable=RL201  unpickling garbage raises any type
            except Exception:
                obj = None  # corrupt/truncated: treat as stale below
            # Tag-only validation: the nested payload bytes stay packed,
            # so a full-store scan never deserializes a single trace.
            if not _validate_envelope(obj):
                try:
                    path.unlink()
                    summary["purged_stale"] += 1
                except OSError:
                    pass
                _unlink_quiet(sidecar_path(path))
                continue
            # Integrity: a CRC pass over the packed payload bytes (still
            # no deserialization).  Checksum-failed entries would never
            # satisfy a get() — purge and count them separately so a
            # corruption burst is visible in the summary.
            if not _crc_ok(obj):
                try:
                    path.unlink()
                    summary["purged_corrupt"] += 1
                except OSError:
                    pass
                _unlink_quiet(sidecar_path(path))
                self.corrupt_purged += 1
                continue
            live.append((stat.st_mtime, stat.st_size, path))

        total = sum(size for _, size, _ in live)
        summary["bytes_before"] = total
        live.sort(key=lambda item: (item[0], item[2].name))  # oldest first
        survivors = len(live)
        for mtime, size, path in live:
            if total <= budget:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # another process evicted it: bytes reclaimed anyway
            except OSError:
                continue  # undeletable: it still counts against the budget
            _unlink_quiet(sidecar_path(path))
            total -= size
            survivors -= 1
            summary["evicted"] += 1
        summary["bytes_after"] = total
        summary["entries"] = survivors

        # Sidecars never outlive their entry: one orphaned by a crash
        # between an eviction and its sidecar unlink (or by a foreign
        # process's eviction) is reaped here.
        for side in self.disk_dir.glob(_SIDECAR_GLOB):
            entry = side.with_name(side.name[:-len(".hits")])
            if not entry.exists() and _unlink_quiet(side):
                summary["reaped_sidecars"] += 1
        return summary

    # ------------------------------------------------------------------
    def manifest(self) -> list[dict]:
        """Per-entry view: file name, size, age, and hits served.

        ``hits_served`` is the envelope's base count plus the ``.hits``
        sidecar's serves-since-write (the payload stays packed — a
        manifest pass never decompresses a trace); an unreadable
        envelope or absent sidecar contributes 0.  The ``corrupt`` flag
        marks entries whose payload fails its checksum (or whose
        envelope cannot be read at all) — candidates the next
        :meth:`gc` pass will purge.
        """
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        now = self._now()
        rows = []
        for path in sorted(self.disk_dir.glob(_ENTRY_GLOB)):
            try:
                stat = path.stat()
            except OSError:
                continue
            hits_served = _read_hits(sidecar_path(path))
            corrupt = False
            try:
                with path.open("rb") as fh:
                    obj = pickle.load(fh)
                if isinstance(obj, dict):
                    hits_served += int(obj.get("hits_served", 0))
                    corrupt = (_validate_envelope(obj)
                               and not _crc_ok(obj))
            # repro-lint: disable=RL201  unpickling garbage raises any type
            except Exception:
                corrupt = True  # unreadable on disk: flagged until GC'd
            rows.append({"file": path.name, "bytes": stat.st_size,
                         "age_s": max(0.0, now - stat.st_mtime),
                         "hits_served": hits_served,
                         "corrupt": corrupt})
        return rows

    @property
    def store_stats(self) -> dict:
        """Aggregate disk-side view plus the in-memory cache counters."""
        manifest = self.manifest()
        ages = [row["age_s"] for row in manifest]
        stats = dict(self.stats)
        stats.update({
            "dir": str(self.disk_dir),
            "disk_entries": len(manifest),
            "disk_bytes": sum(row["bytes"] for row in manifest),
            "oldest_age_s": max(ages) if ages else 0.0,
            "newest_age_s": min(ages) if ages else 0.0,
            "hits_served": sum(row["hits_served"] for row in manifest),
            "corrupt_entries": sum(1 for row in manifest if row["corrupt"]),
            "max_bytes": self.max_bytes,
            "serve_write_bytes": self.serve_write_bytes,
            "serve_note_errors": self.serve_note_errors,
        })
        return stats


def attach_store(store: Union[TraceCache, str, Path, None] = None
                 ) -> Optional[TraceCache]:
    """Resolve a caller-supplied store argument to a usable cache.

    * a :class:`TraceCache`/:class:`TraceStore` instance — used as-is;
    * a path — a :class:`TraceStore` attached to that directory;
    * ``None`` — a :class:`TraceStore` at ``$REPRO_TRACE_STORE`` when
      the environment names one, else ``None`` (caller keeps its
      private-cache behaviour).
    """
    if isinstance(store, TraceCache):
        return store
    if store is not None:
        return TraceStore(disk_dir=store)
    if read_env(ENV_STORE_DIR):
        return TraceStore()
    return None
