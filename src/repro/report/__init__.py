"""Terminal rendering helpers for experiment outputs."""

from .tables import render_table
from .charts import bar_chart, line_points

__all__ = ["render_table", "bar_chart", "line_points"]
