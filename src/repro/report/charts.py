"""Minimal ASCII charts for terminal-rendered figures."""

from __future__ import annotations

from typing import Sequence


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str | None = None,
              unit: str = "") -> str:
    """Horizontal bar chart, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_w = max((len(x) for x in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value else 0, round(abs(value) / peak * width))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def line_points(xs: Sequence[float], ys: Sequence[float],
                x_label: str = "x", y_label: str = "y") -> str:
    """Render a series as aligned (x, y) pairs — good enough for logs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    lines = [f"{x_label:>10} {y_label:>12}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>10g} {y:>12.4g}")
    return "\n".join(lines)
