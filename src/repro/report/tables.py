"""Plain-text table rendering for benchmark/eval output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
