"""Machine models as data: specs, registry, fingerprints.

This package is the declarative face of the machine-model layer:

* :class:`~repro.machine.spec.MachineSpec` — a typed, validated,
  dict/YAML-loadable description of one machine (schema in
  :data:`~repro.machine.spec.SPEC_FIELDS`, documented in
  ``docs/machine-models.md``);
* :func:`~repro.machine.spec.to_spec` /
  :func:`~repro.machine.spec.from_spec` — lossless round-trip between
  specs and the frozen config dataclasses in :mod:`repro.params`;
* :func:`~repro.machine.registry.list_machines` /
  :func:`~repro.machine.registry.get_machine` — the shipped paper
  machines (``repro/machine/specs/*.yaml``) plus user spec files;
* :func:`~repro.machine.registry.machine_fingerprint` — the stable
  timing-identity hash the sweep planner keys replay results by.
"""

from .spec import (FAMILIES, SPEC_FIELDS, MachineSpec, SpecError,
                   SpecField, from_spec, parse_spec_yaml, spec_field_rows,
                   to_spec)
from .registry import (SPECS_DIR, get_machine, list_machines,
                       machine_fingerprint)

__all__ = [
    "FAMILIES",
    "SPEC_FIELDS",
    "SPECS_DIR",
    "MachineSpec",
    "SpecError",
    "SpecField",
    "from_spec",
    "get_machine",
    "list_machines",
    "machine_fingerprint",
    "parse_spec_yaml",
    "spec_field_rows",
    "to_spec",
]
