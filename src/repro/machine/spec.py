"""Declarative machine specifications: schema, validation, round-trip.

A :class:`MachineSpec` is a machine model *as data*: a typed, validated,
dict/YAML-loadable description of everything the timing engine (and the
PPA/physdesign models) read about one machine — lanes, queue depths,
dispatch/issue latencies, unit pipeline depths, memory latencies and
bandwidths, and the interconnect quantities that distinguish the lumped
Ara2 all-to-all design from AraXL's REQI/GLSU/RINGI interfaces.

The schema is the :data:`SPEC_FIELDS` table: one :class:`SpecField` per
quantity, carrying its section, type, default, valid range, applicable
families, the configuration attribute it maps onto, and the timing law
that consumes it.  ``docs/machine-models.md`` renders the same table for
humans; :func:`spec_field_rows` is the single source both share.

Key properties:

* **Validation** — unknown keys are rejected (with a close-match
  suggestion), types are checked (``bool`` is not an ``int``), ranges
  are enforced, and family-specific interconnect fields may only appear
  under their family.  All errors are :class:`SpecError` (a
  :class:`~repro.errors.ConfigError`) with actionable messages.
* **Defaulting** — every field except ``family`` and ``lanes`` has a
  documented default, so a minimal spec is just those two lines.
* **Round-trip** — :func:`to_spec` / :func:`from_spec` are inverses for
  every shipped configuration: ``from_spec(to_spec(cfg)) == cfg``.
* **Fingerprints** — :attr:`MachineSpec.fingerprint` hashes the
  canonical (fully defaulted, key-sorted) spec *minus its display
  name*: two specs with the same timing identity share a fingerprint
  regardless of key order or label, which is what keys replay results
  in the sweep planner.  Capture keys never include the fingerprint —
  traces stay machine-independent.
"""

from __future__ import annotations

import copy
import difflib
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigError
from ..params import (Ara2Config, AraXLConfig, MemoryConfig,
                      ScalarCoreConfig, SystemConfig)

#: Machine families the spec layer knows how to build.
FAMILIES = ("ara2", "araxl")

#: Sentinel default for fields that must be present in every spec.
REQUIRED = object()


@dataclass(frozen=True)
class SpecField:
    """One schema entry: a named, documented machine quantity."""

    #: Spec section the field lives in ("" = top level).
    section: str
    #: Key inside the section.
    key: str
    #: Python type of the value (``int`` | ``float`` | ``str``).
    kind: type
    #: Default value, or :data:`REQUIRED`.
    default: object
    #: Configuration attribute the field maps onto (constructor kwarg
    #: of :class:`SystemConfig` / :class:`MemoryConfig` /
    #: :class:`ScalarCoreConfig` or the family config class).
    target: str
    #: Families the field applies to (() = every family).
    families: tuple = ()
    #: Inclusive lower bound, if any.
    minimum: float | None = None
    #: Inclusive upper bound, if any.
    maximum: float | None = None
    #: Which timing/PPA law reads the quantity.
    law: str = ""

    @property
    def path(self) -> str:
        """Dotted display path, e.g. ``pipeline.fpu_latency``."""
        return f"{self.section}.{self.key}" if self.section else self.key

    def check_value(self, value: object, source: str) -> object:
        """Validate one raw value against this field; returns it coerced."""
        if self.kind is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, self.kind) or isinstance(value, bool):
            raise SpecError(
                f"{source}: field '{self.path}' expects "
                f"{self.kind.__name__}, got {value!r} "
                f"({type(value).__name__})")
        if self.minimum is not None and value < self.minimum:
            raise SpecError(
                f"{source}: field '{self.path}' = {value!r} is out of "
                f"range (must be >= {self.minimum})")
        if self.maximum is not None and value > self.maximum:
            raise SpecError(
                f"{source}: field '{self.path}' = {value!r} is out of "
                f"range (must be <= {self.maximum})")
        return value


class SpecError(ConfigError):
    """A machine spec failed validation; the message says how to fix it."""


#: The machine-spec schema.  Section order here is the canonical dump
#: order; ``docs/machine-models.md`` mirrors this table.
SPEC_FIELDS: tuple = (
    # ---- identity ----------------------------------------------------
    SpecField("", "family", str, REQUIRED, "",
              law="selects the interconnect laws: 'ara2' (lumped "
                  "all-to-all) or 'araxl' (REQI/GLSU/RINGI clusters); "
                  "also dispatches the PPA area/frequency/power models"),
    SpecField("", "lanes", int, REQUIRED, "lanes", minimum=1,
              law="VLEN = 1024*lanes; datapath rates scale with lanes; "
                  "area and frequency laws"),
    SpecField("", "name", str, None, "label",
              law="display only — never part of the spec fingerprint "
                  "or any cache key"),
    # ---- memory ------------------------------------------------------
    SpecField("memory", "size_bytes", int, 16 * 2 ** 20, "size_bytes",
              minimum=1, law="functional memory bound (no timing law)"),
    SpecField("memory", "read_bytes_per_cycle_per_lane", float, 8.0,
              "read_bytes_per_cycle_per_lane", minimum=1e-9,
              law="unit-stride load rate: mem_rate(UNIT/MASK, load)"),
    SpecField("memory", "write_bytes_per_cycle_per_lane", float, 8.0,
              "write_bytes_per_cycle_per_lane", minimum=1e-9,
              law="unit-stride store rate: mem_rate(UNIT/MASK, store)"),
    SpecField("memory", "l2_latency_cycles", int, 12, "l2_latency_cycles",
              minimum=0,
              law="load_first_data_latency (plus the interface pipe) "
                  "and the scalar frontend's D$-miss cost"),
    SpecField("memory", "banks", int, 8, "banks", minimum=1,
              law="bank-level parallelism bound (validation only today)"),
    SpecField("memory", "max_outstanding", int, 8, "max_outstanding",
              minimum=1,
              law="outstanding-transaction bound (validation only today)"),
    # ---- scalar core -------------------------------------------------
    SpecField("scalar", "alu_latency", int, 1, "alu_latency", minimum=1,
              law="scalar frontend: ALU op cost"),
    SpecField("scalar", "dcache_hit_latency", int, 3, "dcache_hit_latency",
              minimum=1, law="scalar frontend: load-to-use on a D$ hit"),
    SpecField("scalar", "dcache_miss_penalty", int, 8,
              "dcache_miss_penalty", minimum=0,
              law="scalar frontend: added on a D$ miss (on top of L2)"),
    SpecField("scalar", "dcache_bytes", int, 32 * 1024, "dcache_bytes",
              minimum=1, law="scalar frontend: D$ capacity"),
    SpecField("scalar", "dcache_line_bytes", int, 64, "dcache_line_bytes",
              minimum=1, law="scalar frontend: D$ line size"),
    SpecField("scalar", "branch_penalty", int, 2, "branch_penalty",
              minimum=0, law="scalar frontend: taken-branch cost"),
    SpecField("scalar", "fpu_latency", int, 4, "fpu_latency", minimum=1,
              law="scalar frontend: scalar FP op cost"),
    # ---- vector pipeline (family-independent) ------------------------
    SpecField("pipeline", "dispatch_latency", int, 4, "dispatch_latency",
              minimum=1,
              law="issue-to-arrive: request_latency + dispatch_latency"),
    SpecField("pipeline", "unit_queue_depth", int, 4, "unit_queue_depth",
              minimum=1,
              law="per-unit instruction queue depth (issue back-pressure)"),
    SpecField("pipeline", "fpu_latency", int, 5, "fpu_latency", minimum=1,
              law="VMFPU first-result latency; reduction tree step cost"),
    SpecField("pipeline", "valu_latency", int, 1, "valu_latency",
              minimum=1, law="VALU first-result latency"),
    SpecField("pipeline", "lane_width_bits", int, 64, "lane_width_bits",
              minimum=8,
              law="vfu/sldu rates = lanes*(width/sew); mask bit rate; "
                  "SIMD reduction fold steps"),
    SpecField("pipeline", "sldu_latency", int, 1, "sldu_latency",
              minimum=0,
              law="slide latency floor; reduction inter-lane step cost"),
    SpecField("pipeline", "masku_latency", int, 2, "masku_latency",
              minimum=0, law="MASKU op latency"),
    SpecField("pipeline", "vsetvli_cycles", int, 3, "vsetvli_cycles",
              minimum=0, law="cost of every vsetvli in the trace"),
    SpecField("pipeline", "reduction_writeback_cycles", int, 3,
              "reduction_writeback_cycles", minimum=0,
              law="fixed tail of every reduction (both families)"),
    SpecField("pipeline", "indexed_throughput_factor", float, 0.5,
              "indexed_throughput_factor", minimum=1e-9, maximum=1.0,
              law="indexed rate = strided rate * factor"),
    # ---- interconnect: the lumped Ara2 quantities --------------------
    SpecField("interconnect", "accelerator_ack_latency", int, 1,
              "accelerator_ack_latency", families=("ara2",), minimum=0,
              law="request_latency of the lumped design"),
    SpecField("interconnect", "issue_gap_cycles", float, 1.0,
              "issue_gap_cycles", families=("ara2",), minimum=1,
              law="minimum cycles between vector issues"),
    SpecField("interconnect", "scalar_result_latency", int, 2,
              "scalar_result_latency", families=("ara2",), minimum=0,
              law="vector-to-scalar result sync latency"),
    SpecField("interconnect", "vlsu_pipe_latency", int, 2,
              "vlsu_pipe_latency", families=("ara2",), minimum=0,
              law="load_first_data_latency = l2_latency + this"),
    SpecField("interconnect", "store_pipe_latency", int, 2,
              "store_pipe_latency", families=("ara2",), minimum=0,
              law="posted-store datapath latency"),
    SpecField("interconnect", "strided_addrgens", int, 1,
              "strided_addrgens", families=("ara2",), minimum=1,
              law="strided rate (elems/cycle); indexed rate via factor"),
    # ---- interconnect: the AraXL REQI/GLSU/RINGI quantities ----------
    SpecField("interconnect", "ring_hop_latency", int, 2,
              "ring_hop_latency", families=("araxl",), minimum=1,
              law="RINGI: cycles per ring hop (slides, reduction tree)"),
    SpecField("interconnect", "ringi_extra_regs", int, 0,
              "ringi_extra_regs", families=("araxl",), minimum=0,
              law="RINGI: +1 cycle per hop per register (Fig 5/7 knob)"),
    SpecField("interconnect", "reqi_broadcast_latency", int, 2,
              "reqi_broadcast_latency", families=("araxl",), minimum=0,
              law="REQI: CVA6-to-cluster request latency"),
    SpecField("interconnect", "reqi_ack_base_latency", int, 1,
              "reqi_ack_base_latency", families=("araxl",), minimum=0,
              law="REQI: cluster-0-to-CVA6 ack latency floor"),
    SpecField("interconnect", "reqi_issue_base_gap", int, 2,
              "reqi_issue_base_gap", families=("araxl",), minimum=1,
              law="REQI: issue gap = base + 2*extra_regs"),
    SpecField("interconnect", "reqi_extra_regs", int, 0,
              "reqi_extra_regs", families=("araxl",), minimum=0,
              law="REQI: +1 cycle out and back per register (Fig 5/7)"),
    SpecField("interconnect", "glsu_base_stages", int, 3,
              "glsu_base_stages", families=("araxl",), minimum=0,
              law="GLSU: pipe depth = base + align + shuffle + extra"),
    SpecField("interconnect", "glsu_extra_regs", int, 0,
              "glsu_extra_regs", families=("araxl",), minimum=0,
              law="GLSU: +2 cycles round trip per register (Fig 5/7)"),
    SpecField("interconnect", "ring_reduction_op_overhead", float, 1.0,
              "ring_reduction_op_overhead", families=("araxl",),
              minimum=0,
              law="RINGI reduction step cost = fpu_latency + this"),
    SpecField("interconnect", "strided_addrgens_per_cluster", int, 1,
              "strided_addrgens_per_cluster", families=("araxl",),
              minimum=1,
              law="strided rate = this * clusters; indexed via factor"),
)

#: Section names in canonical order.
SECTIONS = ("", "memory", "scalar", "pipeline", "interconnect")

_CONFIG_CLASSES = {"ara2": Ara2Config, "araxl": AraXLConfig}


def _fields_for(family: str) -> list[SpecField]:
    """Schema fields applicable to one family, in canonical order."""
    return [f for f in SPEC_FIELDS
            if not f.families or family in f.families]


def spec_field_rows(family: str | None = None) -> list[SpecField]:
    """The schema table (optionally filtered to one family).

    ``docs/machine-models.md`` documents exactly these rows; tests
    assert the doc table and this function agree.
    """
    if family is None:
        return list(SPEC_FIELDS)
    if family not in FAMILIES:
        raise SpecError(f"unknown machine family {family!r}; "
                        f"choose from {FAMILIES}")
    return _fields_for(family)


def _suggest(key: str, valid: list[str]) -> str:
    """Closest valid key, rendered as a hint (empty when none is close)."""
    close = difflib.get_close_matches(key, valid, n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


class MachineSpec:
    """A validated, fully-defaulted machine description.

    Construct via :meth:`from_dict`, :meth:`from_yaml` or
    :func:`to_spec`; treat instances as immutable.  ``spec.to_config()``
    builds the runnable :class:`~repro.params.SystemConfig`.
    """

    def __init__(self, data: dict) -> None:
        """Internal: wrap an already-canonical data dict (no validation)."""
        self._data = data

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def family(self) -> str:
        """Machine family ('ara2' | 'araxl')."""
        return self._data["family"]

    @property
    def lanes(self) -> int:
        """Total vector-lane count."""
        return self._data["lanes"]

    @property
    def name(self) -> str:
        """Display name (defaults to ``{lanes}L-{Family}``)."""
        return self._data["name"]

    @property
    def fingerprint(self) -> str:
        """Stable identity of the spec's *timing-relevant* content.

        A SHA-256 over the canonical, key-sorted JSON of every field
        except ``name``: insensitive to key ordering and display
        labels, sensitive to any quantity a timing or PPA law reads.
        The sweep planner keys replay results by this value; capture
        keys never include it (traces are machine-independent).
        """
        content = {k: v for k, v in self._data.items() if k != "name"}
        blob = json.dumps(content, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deep copy of the canonical (fully defaulted) spec dict."""
        return copy.deepcopy(self._data)

    def to_config(self) -> SystemConfig:
        """Build the runnable configuration object for this spec."""
        data = self._data
        family = data["family"]
        kwargs: dict = {"lanes": data["lanes"]}
        derived = f"{data['lanes']}L-{'Ara2' if family == 'ara2' else 'AraXL'}"
        kwargs["label"] = data["name"] if data["name"] != derived else None
        kwargs["memory"] = MemoryConfig(**data["memory"])
        kwargs["scalar"] = ScalarCoreConfig(**data["scalar"])
        for field in _fields_for(family):
            if field.section in ("pipeline", "interconnect"):
                kwargs[field.target] = data[field.section][field.key]
        return _CONFIG_CLASSES[family](**kwargs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict, source: str = "<dict>") -> "MachineSpec":
        """Validate a (possibly partial) raw dict into a spec.

        Unknown keys, wrong types, out-of-range values and
        family-mismatched interconnect fields raise :class:`SpecError`
        with the offending path and a fix hint; everything omitted
        takes its documented default.
        """
        if not isinstance(raw, dict):
            raise SpecError(f"{source}: a machine spec must be a mapping, "
                            f"got {type(raw).__name__}")
        family = raw.get("family")
        if family is None:
            raise SpecError(
                f"{source}: machine spec is missing required field "
                f"'family' (one of {', '.join(FAMILIES)})")
        if family not in FAMILIES:
            raise SpecError(
                f"{source}: unknown machine family {family!r}; choose "
                f"from {', '.join(FAMILIES)}"
                f"{_suggest(str(family), list(FAMILIES))}")
        if "lanes" not in raw:
            raise SpecError(
                f"{source}: machine spec is missing required field "
                f"'lanes' (the total vector-lane count)")

        fields = _fields_for(family)
        by_section: dict[str, dict[str, SpecField]] = {}
        for field in fields:
            by_section.setdefault(field.section, {})[field.key] = field
        # Family-mismatched keys get a dedicated message instead of a
        # generic "unknown key".
        other_family = {f.key: f.families for f in SPEC_FIELDS
                        if f.families and family not in f.families}

        top_valid = set(by_section.get("", {})) | set(SECTIONS) - {""}
        for key in raw:
            if key not in top_valid:
                raise SpecError(
                    f"{source}: unknown machine-spec key {key!r}"
                    f"{_suggest(key, sorted(top_valid))}")

        data: dict = {}
        for section in SECTIONS:
            section_fields = by_section.get(section, {})
            if section:
                sub = raw.get(section, {})
                if sub is None:
                    sub = {}
                if not isinstance(sub, dict):
                    raise SpecError(
                        f"{source}: section '{section}' must be a "
                        f"mapping, got {type(sub).__name__}")
                for key in sub:
                    if key not in section_fields:
                        if section == "interconnect" and key in other_family:
                            raise SpecError(
                                f"{source}: field 'interconnect.{key}' "
                                f"is not valid for family {family!r} "
                                f"(it is "
                                f"{'/'.join(other_family[key])}-only)")
                        raise SpecError(
                            f"{source}: unknown field "
                            f"'{section}.{key}'"
                            f"{_suggest(key, sorted(section_fields))}")
                out = data.setdefault(section, {})
                for key, field in section_fields.items():
                    if key in sub:
                        out[key] = field.check_value(sub[key], source)
                    else:
                        out[key] = field.default
            else:
                for key, field in section_fields.items():
                    if key in raw and raw[key] is not None:
                        data[key] = field.check_value(raw[key], source)
                    elif field.default is REQUIRED:
                        raise SpecError(
                            f"{source}: machine spec is missing required "
                            f"field '{key}'")
                    else:
                        data[key] = field.default
        if data.get("name") is None:
            fam_title = "Ara2" if family == "ara2" else "AraXL"
            data["name"] = f"{data['lanes']}L-{fam_title}"
        return cls(data)

    @classmethod
    def from_yaml(cls, path: str | Path) -> "MachineSpec":
        """Load and validate a spec from a YAML file on disk."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read machine spec {path}: "
                            f"{exc.strerror or exc}") from exc
        raw = parse_spec_yaml(text, source=str(path))
        return cls.from_dict(raw, source=str(path))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Specs are equal when their canonical dicts are (names too)."""
        return isinstance(other, MachineSpec) and self._data == other._data

    def __hash__(self) -> int:
        """Hash over the canonical JSON (usable as a dict key)."""
        return hash(json.dumps(self._data, sort_keys=True))

    def __repr__(self) -> str:
        """Short identity: name, family, lanes, fingerprint."""
        return (f"MachineSpec({self.name!r}, family={self.family!r}, "
                f"lanes={self.lanes}, fingerprint={self.fingerprint!r})")


# ----------------------------------------------------------------------
# YAML parsing (PyYAML when available, minimal fallback otherwise)
# ----------------------------------------------------------------------
def parse_spec_yaml(text: str, source: str = "<yaml>") -> dict:
    """Parse YAML text into the raw dict :meth:`MachineSpec.from_dict`
    validates.

    Uses :mod:`yaml` (``safe_load``) when installed; otherwise falls
    back to a minimal parser covering the spec subset — two-level
    mappings of scalars with ``#`` comments — so machine files work in
    bare environments too.
    """
    try:
        import yaml
    except ImportError:
        return _parse_mini_yaml(text, source)
    try:
        raw = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SpecError(f"{source}: invalid YAML: {exc}") from exc
    return {} if raw is None else raw


def _coerce_scalar(token: str):
    """Interpret one YAML scalar token (int, float, bool, null, str)."""
    token = token.strip()
    if token.startswith(("'", '"')) and token.endswith(token[0]) \
            and len(token) >= 2:
        return token[1:-1]
    low = token.lower()
    if low in ("null", "~", ""):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_mini_yaml(text: str, source: str) -> dict:
    """Fallback parser for the spec subset of YAML (nested mappings)."""
    root: dict = {}
    section: dict | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        indented = stripped.startswith((" ", "\t"))
        body = stripped.strip()
        if ":" not in body:
            raise SpecError(f"{source}:{lineno}: expected 'key: value', "
                            f"got {body!r}")
        key, _, value = body.partition(":")
        key = key.strip()
        value = value.strip()
        if indented:
            if section is None:
                raise SpecError(f"{source}:{lineno}: indented key "
                                f"{key!r} outside any section")
            section[key] = _coerce_scalar(value)
        elif value:
            root[key] = _coerce_scalar(value)
            section = None
        else:
            section = root.setdefault(key, {})
    return root


# ----------------------------------------------------------------------
# Config <-> spec round trip
# ----------------------------------------------------------------------
def to_spec(config: SystemConfig) -> MachineSpec:
    """Express a configuration object as its declarative spec.

    Inverse of :func:`from_spec` for every supported family:
    ``from_spec(to_spec(cfg)) == cfg`` (asserted by the test suite for
    every :func:`~repro.params.paper_configurations` entry).
    """
    family = getattr(config, "family", None)
    if family not in FAMILIES:
        raise SpecError(
            f"cannot build a machine spec for {type(config).__name__} "
            f"(family {family!r}); supported families: "
            f"{', '.join(FAMILIES)}")
    data: dict = {"family": family, "lanes": config.lanes,
                  "name": config.name}
    for field in _fields_for(family):
        if field.section == "memory":
            value = getattr(config.memory, field.target)
        elif field.section == "scalar":
            value = getattr(config.scalar, field.target)
        elif field.section in ("pipeline", "interconnect"):
            value = getattr(config, field.target)
        else:
            continue
        if field.kind is float:
            value = float(value)
        data.setdefault(field.section, {})[field.key] = value
    return MachineSpec.from_dict(data, source=f"to_spec({config.name})")


def from_spec(spec: MachineSpec | dict, source: str = "<dict>"
              ) -> SystemConfig:
    """Build a configuration from a spec (or a raw spec dict)."""
    if isinstance(spec, dict):
        spec = MachineSpec.from_dict(spec, source=source)
    return spec.to_config()
