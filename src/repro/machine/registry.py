"""The machine registry: shipped specs and name/path resolution.

Every machine the paper evaluates ships as a YAML spec file under
``repro/machine/specs/``; the registry loads them once, keys them by
display name, and resolves ``--machine`` arguments — a registry name
like ``"32L-AraXL"`` or a path to a user YAML file — to runnable
configurations.  ``machine_fingerprint`` is the identity the sweep
planner keys replay results by (see :mod:`repro.machine.spec`).
"""

from __future__ import annotations

from pathlib import Path

from ..params import SystemConfig
from .spec import FAMILIES, MachineSpec, SpecError, to_spec

#: Directory holding the shipped machine spec files.
SPECS_DIR = Path(__file__).resolve().parent / "specs"

_REGISTRY: dict[str, MachineSpec] | None = None


def _load_registry() -> dict[str, MachineSpec]:
    """Load every shipped spec once, keyed by display name."""
    global _REGISTRY
    if _REGISTRY is None:
        registry: dict[str, MachineSpec] = {}
        for path in sorted(SPECS_DIR.glob("*.yaml")):
            spec = MachineSpec.from_yaml(path)
            if spec.name in registry:
                raise SpecError(
                    f"duplicate machine name {spec.name!r} in shipped "
                    f"specs ({path.name})")
            registry[spec.name] = spec
        _REGISTRY = registry
    return _REGISTRY


def list_machines() -> dict[str, MachineSpec]:
    """All shipped machines, name -> spec, in a stable display order.

    Sorted by family then lane count, matching the paper's tables
    (Ara2 baselines first, then the AraXL instances).
    """
    registry = _load_registry()
    ordered = sorted(registry.values(),
                     key=lambda s: (FAMILIES.index(s.family), s.lanes))
    return {spec.name: spec for spec in ordered}


def get_machine(name_or_path: str) -> SystemConfig:
    """Resolve a machine argument to a configuration object.

    Accepts a registry name (``"64L-AraXL"``) or a path to a spec file
    (anything containing a path separator or ending in ``.yaml`` /
    ``.yml``).  Unknown names raise :class:`SpecError` listing every
    registered machine.
    """
    registry = _load_registry()
    if name_or_path in registry:
        return registry[name_or_path].to_config()
    looks_like_path = ("/" in name_or_path or "\\" in name_or_path
                       or name_or_path.endswith((".yaml", ".yml")))
    if looks_like_path or Path(name_or_path).exists():
        return MachineSpec.from_yaml(name_or_path).to_config()
    known = ", ".join(list_machines())
    raise SpecError(
        f"unknown machine {name_or_path!r}: not a registered name and "
        f"not a spec file on disk; registered machines: {known}")


def machine_fingerprint(config: SystemConfig) -> str:
    """Spec fingerprint of a configuration (replay-identity key).

    Falls back to the configuration's ``repr`` for objects outside the
    spec-supported families, so exotic configs are still deduplicated
    conservatively (equal reprs share replays, nothing is conflated).
    """
    try:
        return to_spec(config).fingerprint
    except SpecError:
        return f"repr:{config!r}"
