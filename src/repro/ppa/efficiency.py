"""PPA roll-up: GFLOPs, GFLOPs/W, GFLOPs/mm2 (Table III).

A :class:`PpaPoint` combines the timing report of a workload with the
area, frequency and power models into exactly the columns of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import SystemConfig
from ..timing.report import TimingReport
from .area import AreaBreakdown
from .frequency import max_frequency_ghz
from .power import PowerEstimate, power_watts, _area_for


@dataclass(frozen=True)
class PpaPoint:
    """One machine's PPA summary (frequency, GFLOPs, W, mm^2)."""
    machine: str
    lanes: int
    freq_ghz: float
    gflops: float
    watts: float
    area_mm2: float

    @property
    def gflops_per_watt(self) -> float:
        return self.gflops / self.watts if self.watts else 0.0

    @property
    def gflops_per_mm2(self) -> float:
        return self.gflops / self.area_mm2 if self.area_mm2 else 0.0

    def row(self) -> dict[str, float]:
        return {
            "L": self.lanes,
            "Freq [GHz]": round(self.freq_ghz, 2),
            "Max Perf [GFLOPs]": round(self.gflops, 1),
            "Energy Eff [GFLOPs/W]": round(self.gflops_per_watt, 1),
            "Area Eff [GFLOPs/mm2]": round(self.gflops_per_mm2, 1),
        }


def ppa_point(config: SystemConfig, report: TimingReport,
              freq_ghz: float | None = None) -> PpaPoint:
    """Table III row for a machine running the workload in ``report``."""
    freq = max_frequency_ghz(config) if freq_ghz is None else freq_ghz
    area: AreaBreakdown = _area_for(config)
    power: PowerEstimate = power_watts(config, report, freq)
    return PpaPoint(
        machine=config.name,
        lanes=config.lanes,
        freq_ghz=freq,
        gflops=report.gflops(freq),
        watts=power.total_watts,
        area_mm2=area.total_mm2,
    )


#: Published reference row for Vitruvius+ [12] (Table III; the paper
#: notes its energy metric excludes the scalar core and caches).
VITRUVIUS_ROW = {
    "machine": "8L-Vitruvius+",
    "L": 8,
    "Freq [GHz]": 1.40,
    "Max Perf [GFLOPs]": 22.4,
    "Energy Eff [GFLOPs/W]": 47.3,
    "Area Eff [GFLOPs/mm2]": 17.23,
}
