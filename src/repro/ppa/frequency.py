"""Maximum-frequency model (typical corner: 0.8 V, TT, 25 C).

Calibration targets (Section IV-D, Table III):

* the 4-lane cluster closes at 1.4 GHz — that is AraXL's ceiling;
* Ara2 degrades with lane count as the A2A byte networks lengthen its
  critical path: 1.08 GHz at 16 lanes;
* AraXL holds 1.4 GHz to 32 lanes; at 64 lanes routing congestion in the
  interface strait (see :mod:`repro.physdesign`) costs it ~18%,
  landing at 1.15 GHz.
"""

from __future__ import annotations

from ..params import AraXLConfig, SystemConfig

#: Frequency of the hardened 4-lane cluster (and small Ara2 instances).
BASE_FREQ_GHZ = 1.40

#: Ara2 critical-path growth per lane beyond the 4-lane sweet spot;
#: fitted to 1.08 GHz at 16 lanes: 1.4 / (1 + a*(16-4)) = 1.08.
ARA2_WIRE_SLOPE = (BASE_FREQ_GHZ / 1.08 - 1.0) / 12.0

#: Congestion-to-frequency penalty; fitted to 1.15 GHz at 64 lanes.
CONGESTION_SLOPE = 0.96


def ara2_frequency_ghz(lanes: int) -> float:
    """Ara2 frequency law: wire-dominated slowdown past 4 lanes."""
    if lanes <= 4:
        return BASE_FREQ_GHZ
    return BASE_FREQ_GHZ / (1.0 + ARA2_WIRE_SLOPE * (lanes - 4))


def araxl_frequency_ghz(lanes: int) -> float:
    """AraXL frequency law: congestion-driven derating from the floorplan."""
    from ..physdesign import build_floorplan, congestion_score

    config = lanes if isinstance(lanes, AraXLConfig) else AraXLConfig(lanes=lanes)
    score = congestion_score(build_floorplan(config))
    overflow = max(0.0, score - 1.0)
    return BASE_FREQ_GHZ / (1.0 + CONGESTION_SLOPE * overflow)


def max_frequency_ghz(config: SystemConfig) -> float:
    """Typical-corner fmax for any supported machine configuration.

    Dispatches on the configuration's spec ``family`` tag (the same
    identity the machine-spec layer validates against), so any config
    built from a spec — shipped or user YAML — lands on the right law.
    """
    family = getattr(config, "family", None)
    if family == "araxl":
        return araxl_frequency_ghz(config.lanes)
    if family == "ara2":
        return ara2_frequency_ghz(config.lanes)
    raise TypeError(f"no frequency model for machine family {family!r} "
                    f"({type(config).__name__})")
