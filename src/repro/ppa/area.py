"""Area model in kGE, calibrated to Fig 9 and Table II.

Structural laws:

* **Lanes** are constant area each (VRF chunk + FPU + ALU + operand
  queues): the paper's central linear-scaling claim.
* **Ara2's A2A units** (MASKU, VLSU and the lumped byte interconnects)
  carry a quadratic term in the lane count — the all-to-all wiring that
  blocks scaling beyond 8-16 lanes.
* **AraXL's per-cluster units** are linear in lanes (fixed cost per
  4-lane cluster), and the three global interfaces grow with the cluster
  count: GLSU ~ C * log-levels, RINGI/REQI ~ C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..params import LANES_PER_CLUSTER

#: Gate density of the paper's 22-nm node, derived from Table III
#: (12641 kGE AraXL-16 at 17.4 GFLOPs/mm2 and 44.3 GFLOPs -> 2.55 mm2).
GE_PER_MM2 = 4.97e6

# ----------------------------------------------------------------------
# Fitted constants (kGE).  Sources noted per constant.
# ----------------------------------------------------------------------
LANE_KGE = 627.0          # Fig 9: 10032 kGE / 16 lanes
CVA6_KGE = 923.0          # Fig 9 / Table II: 901-936 kGE across configs

# AraXL per-cluster unit costs (Fig 9 AraXL bars minus the top-level
# interfaces, divided by 4 clusters).
CLUSTER_MASKU_KGE = 82.0   # 328 / 4
CLUSTER_SLDU_KGE = 100.0   # (425 - 25 RINGI) / 4
CLUSTER_VLSU_KGE = 54.0    # (507 - 291 GLSU) / 4
CLUSTER_SEQ_KGE = 25.0     # (134 - 34 REQI) / 4
CLUSTER_MISC_KGE = 70.0    # residual vs Table II "Clusters" row
ARA2_MISC_KGE = 791.0      # Fig 9 components sum to 13982 of 14773 total

# Ara2 lumped units: linear part matches the per-lane cost of the
# distributed versions; the quadratic term is the A2A wiring (Fig 9).
ARA2_MASKU_L = CLUSTER_MASKU_KGE / LANES_PER_CLUSTER   # 20.5 / lane
ARA2_MASKU_Q = (1105.0 - 328.0) / 256.0                # fit at 16 lanes
ARA2_VLSU_L = CLUSTER_VLSU_KGE / LANES_PER_CLUSTER     # 13.5 / lane
ARA2_VLSU_Q = (1677.0 - 216.0) / 256.0
ARA2_SLDU_L = 196.0 / 16.0                             # Fig 9 (no quad term:
#   Ara2's SLDU is narrow; its scaling pain is timing, not area)
ARA2_SEQ_KGE = 52.0

# AraXL global interfaces (Table II: C = 4, 8, 16).
GLSU_PER_CLUSTER_KGE = 60.6    # fits 291/618/1385 with the log factor
GLSU_LOG_FACTOR = 0.1
RINGI_BASE_KGE = 6.0           # fits 25/44/76
RINGI_PER_CLUSTER_KGE = 4.75
REQI_BASE_KGE = 0.0            # fits 34/81/144 within ~12%
REQI_PER_CLUSTER_KGE = 8.9


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area in kGE, with the paper's grouping."""

    machine: str
    lanes: int
    components: dict[str, float] = field(default_factory=dict)

    @property
    def total_kge(self) -> float:
        return sum(self.components.values())

    @property
    def total_mm2(self) -> float:
        return kge_to_mm2(self.total_kge)

    def component(self, name: str) -> float:
        return self.components.get(name, 0.0)

    @property
    def a2a_units_kge(self) -> float:
        """The Fig 9 'A2A' grouping: MASKU + SLDU + VLSU (+ interfaces)."""
        return sum(self.components.get(k, 0.0)
                   for k in ("masku", "sldu", "vlsu", "glsu", "ringi"))

    def fig9_row(self) -> dict[str, float]:
        """The Fig 9 bar grouping (interfaces folded into their units)."""
        return {
            "LANES": self.component("lanes"),
            "MASKU": self.component("masku"),
            "SLDU": self.component("sldu") + self.component("ringi"),
            "VLSU": self.component("vlsu") + self.component("glsu"),
            "SEQ+DISP": self.component("seq_disp") + self.component("reqi"),
            "CVA6": self.component("cva6"),
        }


def kge_to_mm2(kge: float) -> float:
    """Convert kGE to mm^2 at the calibrated gate density."""
    return kge * 1000.0 / GE_PER_MM2


def ara2_area(lanes: int) -> AreaBreakdown:
    """Lumped Ara2 baseline: linear lanes + quadratic A2A units."""
    if lanes < 1:
        raise ConfigError("need at least one lane")
    comp = {
        "lanes": LANE_KGE * lanes,
        "masku": ARA2_MASKU_L * lanes + ARA2_MASKU_Q * lanes ** 2,
        "sldu": ARA2_SLDU_L * lanes,
        "vlsu": ARA2_VLSU_L * lanes + ARA2_VLSU_Q * lanes ** 2,
        "seq_disp": ARA2_SEQ_KGE,
        "cva6": CVA6_KGE,
        "misc": ARA2_MISC_KGE,
    }
    return AreaBreakdown(machine=f"{lanes}L-Ara2", lanes=lanes,
                         components=comp)


def araxl_area(lanes: int) -> AreaBreakdown:
    """Cluster-based AraXL: linear clusters + thin global interfaces."""
    if lanes < 1:
        raise ConfigError("need at least one lane")
    clusters = max(1, lanes // LANES_PER_CLUSTER)
    comp = {
        "lanes": LANE_KGE * lanes,
        "masku": CLUSTER_MASKU_KGE * clusters,
        "sldu": CLUSTER_SLDU_KGE * clusters,
        "vlsu": CLUSTER_VLSU_KGE * clusters,
        "seq_disp": CLUSTER_SEQ_KGE * clusters,
        "misc": CLUSTER_MISC_KGE * clusters,
        "cva6": CVA6_KGE,
        "glsu": GLSU_PER_CLUSTER_KGE * clusters
        * (1 + GLSU_LOG_FACTOR * math.log2(max(2, clusters))),
        "ringi": (RINGI_BASE_KGE + RINGI_PER_CLUSTER_KGE * clusters
                  if clusters > 1 else 0.0),
        "reqi": REQI_BASE_KGE + REQI_PER_CLUSTER_KGE * clusters,
    }
    return AreaBreakdown(machine=f"{lanes}L-AraXL", lanes=lanes,
                         components=comp)


def clusters_row_kge(breakdown: AreaBreakdown) -> float:
    """Table II 'Clusters' row: everything inside the clusters."""
    return sum(breakdown.components.get(k, 0.0)
               for k in ("lanes", "masku", "sldu", "vlsu", "seq_disp",
                         "misc"))
