"""Power model (typical conditions: 0.8 V, TT, 25 C).

Two-coefficient model per component: an idle/clock-tree term over the
whole area and an activity term over the busy fraction of each unit,
both linear in frequency.  Ara2's A2A units carry a wire-toggle factor
(long all-to-all nets switch more capacitance per gate equivalent).

Calibrated against Table III: 16L AraXL at 1.4 GHz running fmatmul
burns ~1.12 W (44.3 GFLOPs / 39.6 GFLOPs/W); Ara2-16 ~1.13 W; the 64L
instance ~3.6 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import SystemConfig
from ..timing.report import TimingReport
from .area import AreaBreakdown, ara2_area, araxl_area

#: Clock/idle power per kGE per GHz (W).
IDLE_W_PER_KGE_GHZ = 15e-6
#: Additional power per *active* kGE per GHz (W).
ACTIVE_W_PER_KGE_GHZ = 56e-6
#: Extra switching of Ara2's wire-dominated A2A units.
A2A_TOGGLE_FACTOR = 1.5
#: Extra clock/glue power of Ara2's A2A byte networks even when the unit
#: is idle (the long wires toggle with every broadcast); fitted to the
#: Table III 30.3 GFLOPs/W of the 16-lane Ara2.
ARA2_A2A_IDLE_EXTRA_W_PER_KGE_GHZ = 70e-6

#: Which area components each timing-report unit activates.
_UNIT_COMPONENTS = {
    "vmfpu": ("lanes",),
    "valu": ("lanes",),
    "sldu": ("sldu", "ringi"),
    "masku": ("masku",),
    "vlsu_load": ("vlsu", "glsu"),
    "vlsu_store": ("vlsu", "glsu"),
}


@dataclass(frozen=True)
class PowerEstimate:
    """Idle/active power split for one machine at one frequency."""
    machine: str
    freq_ghz: float
    idle_watts: float
    active_watts: float

    @property
    def total_watts(self) -> float:
        return self.idle_watts + self.active_watts


def _area_for(config: SystemConfig) -> AreaBreakdown:
    # Family dispatch (spec identity), like the frequency model.
    if getattr(config, "family", None) == "ara2":
        return ara2_area(config.lanes)
    return araxl_area(config.lanes)


def power_watts(config: SystemConfig, report: TimingReport,
                freq_ghz: float) -> PowerEstimate:
    """Average power of a workload characterized by ``report``."""
    area = _area_for(config)
    is_ara2 = getattr(config, "family", None) == "ara2"
    idle = area.total_kge * IDLE_W_PER_KGE_GHZ * freq_ghz
    if is_ara2:
        a2a_kge = sum(area.component(c) for c in ("masku", "vlsu", "sldu"))
        idle += a2a_kge * ARA2_A2A_IDLE_EXTRA_W_PER_KGE_GHZ * freq_ghz

    active = 0.0
    cycles = max(report.cycles, 1.0)
    seen: dict[str, float] = {}
    for unit, comps in _UNIT_COMPONENTS.items():
        duty = min(1.0, report.unit_busy.get(unit, 0.0) / cycles)
        for comp in comps:
            seen[comp] = max(seen.get(comp, 0.0), duty)
    # CVA6 and sequencers toggle with the scalar stream.
    scalar_duty = min(1.0, report.scalar_cycles / cycles)
    seen["cva6"] = scalar_duty
    seen["seq_disp"] = min(1.0, report.vector_instructions * 4.0 / cycles)
    seen["reqi"] = seen["seq_disp"]

    for comp, duty in seen.items():
        kge = area.component(comp)
        factor = A2A_TOGGLE_FACTOR if (
            is_ara2 and comp in ("masku", "vlsu", "sldu")) else 1.0
        active += kge * duty * factor * ACTIVE_W_PER_KGE_GHZ * freq_ghz
    return PowerEstimate(machine=area.machine, freq_ghz=freq_ghz,
                         idle_watts=idle, active_watts=active)
