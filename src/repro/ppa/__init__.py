"""Analytical PPA models replacing the paper's 22-nm Synopsys flow.

Calibration sources (all from the paper):

* Fig 9 — 16-lane area breakdowns of Ara2 and AraXL (kGE);
* Table II — AraXL area scaling 16/32/64 lanes, per interface;
* Table III — frequency, peak GFLOPs, GFLOPs/W and GFLOPs/mm²;
* Section IV-D — 1.4 GHz up to 32 lanes, 1.15 GHz at 64 (congestion).

The *laws* are structural (linear lanes, quadratic A2A, log-level
interfaces); the constants are fitted to the published numbers and every
fitted value is asserted against its source in the test suite.
"""

from .area import AreaBreakdown, ara2_area, araxl_area, GE_PER_MM2, kge_to_mm2
from .frequency import max_frequency_ghz
from .power import power_watts, PowerEstimate
from .efficiency import PpaPoint, ppa_point

__all__ = [
    "AreaBreakdown",
    "ara2_area",
    "araxl_area",
    "GE_PER_MM2",
    "kge_to_mm2",
    "max_frequency_ghz",
    "power_watts",
    "PowerEstimate",
    "PpaPoint",
    "ppa_point",
]
