"""Shared kernel infrastructure: strip sizing, run container, harness.

The evaluation indexes problem sizes by **bytes per lane** (B/lane): the
number of bytes of vector length each lane holds, ``vl * 8 / lanes`` for
DP elements.  Weak scaling keeps B/lane constant while lanes grow, which
is exactly how Fig 6 sweeps 64 -> 512 B/lane.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..functional.executor import ExecResult
from ..isa.program import Program
from ..params import SystemConfig
from ..sim import RunResult, Simulator, TraceCache, replay_trace, trace_key

#: Process-wide memo of kernel *program skeletons*: the assembled
#: program plus its buffer base addresses — everything a sweep planner
#: needs (the program fingerprint feeds ``trace_key``; peak bounds are
#: arithmetic on the config) and nothing it doesn't.  Distinct
#: operating points share a skeleton — e.g. Fig 6's (8 lanes,
#: 128 B/lane) and (16 lanes, 64 B/lane) both solve the vl=128, LMUL=1
#: problem — and a :class:`~repro.sim.parallel.SimPool` worker handed
#: several points of one kernel assembles each skeleton once.  Programs
#: are small (instruction lists), so a plain entry-count LRU suffices.
_PROGRAM_CACHE: OrderedDict = OrderedDict()
_PROGRAM_CACHE_ENTRIES = 512

#: Process-wide memo of *golden data*: the input arrays and reference
#: outputs a kernel's ``setup``/``check`` closures consume.  Built
#: **lazily** on first use — planning a sweep (building every
#: :class:`KernelRun` for trace keys and peak bounds) never touches
#: this cache, so parent RSS and planning time scale with assembly, not
#: problem size; only the process that actually captures a point pays
#: for (and memoizes) its arrays.  Entries hold golden arrays — a
#: paper-scale fconv2d problem is tens of MB — so the LRU is capped by
#: a byte budget over its array payloads, not by entry count.
_GOLDEN_CACHE: OrderedDict = OrderedDict()
_GOLDEN_CACHE_BYTES = 256 * 1024 * 1024
_golden_cache_used = 0
_golden_builds = 0  # monotonic; golden_builds() is the test hook


def _golden_nbytes(value: tuple) -> int:
    """Array bytes pinned by one golden entry (ints/floats are noise)."""
    return sum(getattr(item, "nbytes", 0) for item in value)


def memo_program(key: tuple, build: Callable[[], tuple]) -> tuple:
    """Return the program skeleton for ``key``, building on miss.

    ``key`` must name every input of ``build`` (kernel name + the
    program-shaping parameters, including LMUL); the cached value is
    shared across :class:`KernelRun` instances, so ``build`` must
    return objects the runs treat as immutable (programs, base
    addresses).
    """
    hit = _PROGRAM_CACHE.get(key)
    if hit is not None:
        _PROGRAM_CACHE.move_to_end(key)
        return hit
    value = _PROGRAM_CACHE[key] = build()
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_ENTRIES:
        _PROGRAM_CACHE.popitem(last=False)
    return value


def memo_golden(key: tuple, build: Callable[[], tuple]) -> tuple:
    """Return the golden data for ``key``, building (and caching) on miss.

    The byte-budgeted sibling of :func:`memo_program`.  Kernels never
    call this at build time — only from inside their ``setup``/``check``
    closures, via the handle :func:`lazy_golden` returns — which is what
    keeps sweep *planning* free of array materialization.
    """
    global _golden_cache_used, _golden_builds
    hit = _GOLDEN_CACHE.get(key)
    if hit is not None:
        _GOLDEN_CACHE.move_to_end(key)
        return hit
    value = _GOLDEN_CACHE[key] = build()
    _golden_builds += 1
    _golden_cache_used += _golden_nbytes(value)
    while _golden_cache_used > _GOLDEN_CACHE_BYTES \
            and len(_GOLDEN_CACHE) > 1:
        _, evicted = _GOLDEN_CACHE.popitem(last=False)
        _golden_cache_used -= _golden_nbytes(evicted)
    return value


def lazy_golden(key: tuple, build: Callable[[], tuple]
                ) -> Callable[[], tuple]:
    """A zero-argument handle that materializes golden data on demand.

    Kernel builders close their ``setup``/``check`` functions over this
    handle instead of over the arrays themselves; the first call builds
    (and memoizes, via :func:`memo_golden`) the arrays, later calls are
    cache hits.  Golden keys deliberately omit LMUL: the data depends
    only on the problem shape, so two LMUL variants of one problem
    share one entry.
    """
    return lambda: memo_golden(key, build)


def golden_builds() -> int:
    """How many golden-data builds this process has paid (test hook)."""
    return _golden_builds


def reset_skeleton_caches() -> None:
    """Drop both process-wide memos (tests that count builds use this)."""
    global _golden_cache_used
    _PROGRAM_CACHE.clear()
    _GOLDEN_CACHE.clear()
    _golden_cache_used = 0


def vl_and_lmul(config: SystemConfig, bytes_per_lane: int,
                sew: int = 64) -> tuple[int, int]:
    """Vector length and the smallest LMUL that holds it in one strip.

    The paper's sweeps use B/lane in {64, 128, 256, 512}; with the VLEN
    law (1024 bit/lane) those map to LMUL {1, 1, 2, 4} — matching the
    LMUL column of Table I.
    """
    vl = config.vl_for_bytes_per_lane(bytes_per_lane, sew)
    lmul = config.lmul_for_vl(vl, sew)
    return vl, lmul


@dataclass
class KernelRun:
    """A fully-prepared benchmark: program + data + golden check."""

    name: str
    program: Program
    setup: Callable[[Simulator], None]
    check: Callable[[Simulator], float]  # returns max |error|; raises on fail
    dp_flops: float
    max_flops_per_cycle: float
    problem: dict = field(default_factory=dict)

    @property
    def setup_id(self) -> str:
        """Identity of the initial data this kernel places in memory.

        The kernel name plus the problem dictionary fully determine the
        inputs (they seed the deterministic RNG), so this string is the
        third component of the trace-cache key.
        """
        return f"{self.name}:{sorted(self.problem.items())!r}"

    def trace_key(self, config: SystemConfig):
        return trace_key(self.program, config.vlen_bits, self.setup_id)

    def capture(self, config: SystemConfig, cache: TraceCache | None = None,
                verify: bool = True) -> ExecResult:
        """Capture (or fetch from ``cache``) this kernel's dynamic trace.

        The golden ``check()`` runs **once per captured trace** — at
        capture time, when the functional memory holds the results — and
        never again on replays of the same trace.  A ``verify=True``
        request hitting a cache entry that was captured unverified still
        gets its check: against the entry's retained memory image when
        present, else by recapturing fresh.
        """
        key = self.trace_key(config) if cache is not None else None
        if cache is not None:
            captured = cache.get(key)
            if captured is not None:
                if not verify or captured.extra.get("verified"):
                    return captured
                mem = captured.extra.get("mem")
                if mem is not None:
                    self.check(SimpleNamespace(mem=mem))
                    captured.extra["verified"] = True
                    return captured
                # Replay-only entry (e.g. disk-rehydrated) cannot satisfy
                # a verified capture: recapture fresh (the put() below
                # upgrades the cached entry) and correct the accounting —
                # the lookup saved no functional work.
                cache.demote_last_hit()
        sim = Simulator(config)
        self.setup(sim)
        captured = sim.capture(self.program)
        if verify:
            self.check(sim)
            captured.extra["verified"] = True
        if cache is not None:
            cache.put(key, captured)
        return captured

    def run(self, config: SystemConfig, verify: bool = True,
            sim: Simulator | None = None,
            trace: ExecResult | None = None,
            cache: TraceCache | None = None) -> RunResult:
        """Execute at one operating point.

        * ``trace=`` — replay-only path: time the given captured trace on
          ``config``'s machine model (no functional run, no check).
        * ``cache=`` — capture-or-reuse path: fetch/capture the trace via
          the cache (check runs only on a capture miss), then replay.
        * otherwise — classic end-to-end run on a fresh (or provided)
          simulator.
        """
        if trace is not None:
            return replay_trace(config, trace)
        if cache is not None:
            return replay_trace(config, self.capture(config, cache=cache,
                                                     verify=verify))
        if sim is None:
            sim = Simulator(config)
        self.setup(sim)
        result = sim.run(self.program)
        if verify:
            self.check(sim)
        return result

    def utilization(self, result: RunResult) -> float:
        """Fig 6 utilization: achieved / kernel peak FLOP-per-cycle."""
        return result.timing.fpu_utilization(self.max_flops_per_cycle)


def run_kernel(builder: Callable, config: SystemConfig,
               bytes_per_lane: int, verify: bool = True,
               **kwargs) -> tuple[KernelRun, RunResult]:
    """Build and execute one kernel at one operating point."""
    kernel = builder(config, bytes_per_lane, **kwargs)
    result = kernel.run(config, verify=verify)
    return kernel, result


def check_array(sim: Simulator, addr: int, expected: np.ndarray,
                what: str, rtol: float = 1e-9, atol: float = 1e-9) -> float:
    """Compare a memory region against a golden array; raise on mismatch."""
    actual = sim.mem.read_array(addr, expected.size, expected.dtype)
    expected = expected.reshape(-1)
    if not np.allclose(actual, expected, rtol=rtol, atol=atol):
        bad = np.flatnonzero(~np.isclose(actual, expected, rtol=rtol,
                                         atol=atol))
        i = int(bad[0])
        raise AssertionError(
            f"{what}: {bad.size}/{expected.size} elements mismatch, first at "
            f"[{i}]: got {actual[i]!r}, want {expected[i]!r}"
        )
    err = np.max(np.abs(actual - expected)) if expected.size else 0.0
    return float(err)


class Layout:
    """Static memory layout planner used at program-build time.

    Kernels must know buffer addresses while assembling (addresses are
    immediates), so allocation happens before the simulator exists.
    """

    def __init__(self, base: int = 0, align: int = 64) -> None:
        self._cursor = base
        self._align = align
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        if name in self.regions:
            raise ConfigError(f"region {name!r} allocated twice")
        base = -(-self._cursor // self._align) * self._align
        self._cursor = base + nbytes
        self.regions[name] = (base, nbytes)
        return base

    def alloc_f64(self, name: str, count: int) -> int:
        return self.alloc(name, count * 8)

    @property
    def total_bytes(self) -> int:
        return self._cursor


def rng_for(name: str, *shape_parts: int) -> np.random.Generator:
    """Deterministic per-kernel RNG so golden checks are reproducible.

    Uses CRC32 rather than ``hash`` because string hashing is randomized
    per interpreter run.
    """
    import zlib

    seed = zlib.crc32(repr((name,) + shape_parts).encode())
    return np.random.default_rng(seed)
