"""The paper's benchmark kernels (Table I), written in RVV assembly.

Each module builds a :class:`~repro.kernels.common.KernelRun`: the vector
program, input placement, a golden-model check, the analytic FLOP count
and the Table-I peak-performance bound used to normalize utilization.

============  =========================  ======  =====================
kernel        problem (Table I)          LMUL    max perf [DP-FLOP/cyc]
============  =========================  ======  =====================
fmatmul       A=64x256, B=256xN          1,2,4   2 * lanes
fconv2d       A=256xN, f=7x7             2       2 * lanes
jacobi2d      A=256xN                    4       lanes
fdotproduct   A=B=N                      8       lanes
exp           A=N                        1       28/21 * lanes
softmax       A=N                        1       32/25 * lanes
============  =========================  ======  =====================
"""

from .common import KernelRun, vl_and_lmul, run_kernel
from .fmatmul import build_fmatmul
from .fconv2d import build_fconv2d
from .jacobi2d import build_jacobi2d
from .fdotproduct import build_fdotproduct, build_fdotproduct_strips
from .expk import build_exp
from .softmax import build_softmax

#: Kernel registry keyed by the paper's benchmark names.
KERNELS = {
    "fmatmul": build_fmatmul,
    "fconv2d": build_fconv2d,
    "jacobi2d": build_jacobi2d,
    "fdotproduct": build_fdotproduct,
    "exp": build_exp,
    "softmax": build_softmax,
}

__all__ = [
    "KernelRun",
    "KERNELS",
    "vl_and_lmul",
    "run_kernel",
    "build_fmatmul",
    "build_fconv2d",
    "build_jacobi2d",
    "build_fdotproduct",
    "build_fdotproduct_strips",
    "build_exp",
    "build_softmax",
]
