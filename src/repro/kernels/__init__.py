"""The paper's benchmark kernels (Table I), written in RVV assembly.

Each module builds a :class:`~repro.kernels.common.KernelRun`: the vector
program, input placement, a golden-model check, the analytic FLOP count
and the Table-I peak-performance bound used to normalize utilization.

============  =========================  ======  =====================
kernel        problem (Table I)          LMUL    max perf [DP-FLOP/cyc]
============  =========================  ======  =====================
fmatmul       A=64x256, B=256xN          1,2,4   2 * lanes
fconv2d       A=256xN, f=7x7             2       2 * lanes
jacobi2d      A=256xN                    4       lanes
fdotproduct   A=B=N                      8       lanes
exp           A=N                        1       28/21 * lanes
softmax       A=N                        1       32/25 * lanes
============  =========================  ======  =====================
"""

from collections import OrderedDict

from ..errors import ConfigError
from .common import KernelRun, vl_and_lmul, run_kernel
from .fmatmul import build_fmatmul as _build_fmatmul
from .fconv2d import build_fconv2d as _build_fconv2d
from .jacobi2d import build_jacobi2d as _build_jacobi2d
from .fdotproduct import (build_fdotproduct as _build_fdotproduct,
                          build_fdotproduct_strips)
from .expk import build_exp as _build_exp
from .softmax import build_softmax as _build_softmax
from .scan import build_scan as _build_scan
from .sort import build_sort as _build_sort

#: Builds are deterministic in (kernel, lanes, VLEN, B/lane, kwargs):
#: the program, input data and golden model all derive from those alone,
#: so sweeps and tests revisiting an operating point share one KernelRun
#: (and therefore one Program object, whose fingerprint/plan caches then
#: amortize too).  Since the lazy-golden split, entries hold only the
#: program skeleton and closures over a lazy golden handle — arrays live
#: in the byte-budgeted memo in :mod:`repro.kernels.common` — so this
#: LRU's cap bounds entry count, not memory.
_BUILD_CACHE: OrderedDict = OrderedDict()
_BUILD_CACHE_CAP = 64


def _memoized(name: str, builder):
    def build(config, bytes_per_lane, **kwargs) -> KernelRun:
        key = (name, config.lanes, config.vlen_bits, bytes_per_lane,
               tuple(sorted(kwargs.items())))
        hit = _BUILD_CACHE.get(key)
        if hit is not None:
            _BUILD_CACHE.move_to_end(key)
            return hit
        run = builder(config, bytes_per_lane, **kwargs)
        _BUILD_CACHE[key] = run
        while len(_BUILD_CACHE) > _BUILD_CACHE_CAP:
            _BUILD_CACHE.popitem(last=False)
        return run

    build.__name__ = f"build_{name}"
    build.__doc__ = builder.__doc__
    build.__wrapped__ = builder
    return build


def _build_fuzz(config, bytes_per_lane, **kwargs) -> KernelRun:
    """Deferred import: :mod:`repro.fuzz` depends on this package."""
    from ..fuzz.kernel import build_fuzz
    return build_fuzz(config, bytes_per_lane, **kwargs)


build_fmatmul = _memoized("fmatmul", _build_fmatmul)
build_fconv2d = _memoized("fconv2d", _build_fconv2d)
build_jacobi2d = _memoized("jacobi2d", _build_jacobi2d)
build_fdotproduct = _memoized("fdotproduct", _build_fdotproduct)
build_exp = _memoized("exp", _build_exp)
build_softmax = _memoized("softmax", _build_softmax)
build_scan = _memoized("scan", _build_scan)
build_sort = _memoized("sort", _build_sort)
build_fuzz_kernel = _memoized("fuzz", _build_fuzz)

#: Kernel registry keyed by the paper's benchmark names.  Deliberately
#: pinned to Table I: the paper sweeps (fig6/fig7/table1) default to
#: iterating this dict, so growing it would change rendered figures.
KERNELS = {
    "fmatmul": build_fmatmul,
    "fconv2d": build_fconv2d,
    "jacobi2d": build_jacobi2d,
    "fdotproduct": build_fdotproduct,
    "exp": build_exp,
    "softmax": build_softmax,
}

#: The full curated zoo: every kernel the capture/replay pipeline can
#: build by name — the paper's six plus the scenario-diversity kernels
#: (``scan``, ``sort``) and the seeded random-program generator
#: (``fuzz``).  :class:`~repro.sim.parallel.CaptureTask` and
#: :func:`~repro.eval.ablations.run_knob_sweep` resolve names here, so
#: zoo kernels ride the same SimPool/TraceStore machinery unchanged.
ZOO = {
    **KERNELS,
    "scan": build_scan,
    "sort": build_sort,
    "fuzz": build_fuzz_kernel,
}


def zoo_builder(name: str):
    """Resolve a kernel name against the full zoo (raises on unknown)."""
    try:
        return ZOO[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel {name!r}; the zoo has "
            f"{', '.join(sorted(ZOO))}") from None


__all__ = [
    "KernelRun",
    "KERNELS",
    "ZOO",
    "zoo_builder",
    "vl_and_lmul",
    "run_kernel",
    "build_fmatmul",
    "build_fconv2d",
    "build_jacobi2d",
    "build_fdotproduct",
    "build_fdotproduct_strips",
    "build_exp",
    "build_softmax",
    "build_scan",
    "build_sort",
    "build_fuzz_kernel",
]
