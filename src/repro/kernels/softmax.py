"""softmax — numerically-stable softmax over one long vector (Table I).

    softmax(x) = exp(x - max(x)) / sum(exp(x - max(x)))

Exercises both reduction flavours (max and sum) around the exp pipeline:
25 FPU op-slots carrying 32 DP-FLOP per element — exactly the Table I
bound of 32/25 * lanes DP-FLOP/cycle:

    vfredmax (1) + vfsub (1) + exp body (21/28) + vfredusum (1) + vfmul (1)

The division by the sum happens once on the scalar core (1/sum) and is
applied with ``vfmul.vf``, the standard strength reduction.
"""

from __future__ import annotations

import numpy as np

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)
from .expk import EXP_CONSTS, emit_exp_body, emit_exp_consts, exp_golden

#: FPU op-slots and DP-FLOP per element (Table I row 6).
SOFTMAX_FPU_OPS = 25
SOFTMAX_FLOPS = 32


def _softmax_program(n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", n)
    o_base = layout.alloc_f64("O", n)
    const_base = layout.alloc_f64("consts", len(EXP_CONSTS))
    ninf_base = layout.alloc_f64("ninf", 1)

    asm = Assembler(f"softmax_{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    emit_exp_consts(asm, const_base)
    asm.li("x21", 1023)
    asm.li("x5", a_base)
    asm.li("x7", o_base)
    asm.li("x22", ninf_base)
    asm.vle64_v("v0", "x5")
    # max reduction (seed -inf in v29; groups v0..v27 belong to exp).
    asm.fld("f4", "x22", 0)
    asm.vfmv_s_f("v29", "f4")
    asm.vfredmax_vs("v28", "v0", "v29")
    asm.vfmv_f_s("f5", "v28")
    asm.vfsub_vf("v0", "v0", "f5")  # x - max, in place
    result = emit_exp_body(asm, lmul)
    # sum reduction over the exp results.
    asm.vmv_s_x("v29", "x0")
    asm.vfredusum_vs("v28", result, "v29")
    asm.vfmv_f_s("f6", "v28")
    asm.fdiv_d("f7", "f15", "f6")  # 1 / sum  (f15 holds 1.0)
    asm.vfmul_vf(result, result, "f7")
    asm.vse64_v(result, "x7")
    asm.halt()
    return asm.build(), a_base, o_base, const_base, ninf_base


def _softmax_golden(n: int) -> tuple:
    """Golden data: inputs and reference softmax (built on first use)."""
    rng = rng_for("softmax", n)
    x_vec = rng.uniform(-8.0, 8.0, size=n)
    shifted = exp_golden(x_vec - np.max(x_vec))
    return x_vec, shifted / np.sum(shifted)


def build_softmax(config: SystemConfig, bytes_per_lane: int) -> KernelRun:
    """Build the softmax run for one operating point (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl

    program, a_base, o_base, const_base, ninf_base = memo_program(
        ("softmax", n, lmul), lambda: _softmax_program(n, lmul))
    golden = lazy_golden(("softmax", n), lambda: _softmax_golden(n))

    def setup(sim) -> None:
        sim.mem.write_array(a_base, golden()[0])
        sim.mem.write_array(const_base, np.array(EXP_CONSTS))
        sim.mem.store_f64(ninf_base, -np.inf)

    def check(sim) -> float:
        return check_array(sim, o_base, golden()[1], "softmax O",
                           rtol=5e-6, atol=1e-12)

    return KernelRun(
        name="softmax",
        program=program,
        setup=setup,
        check=check,
        dp_flops=float(SOFTMAX_FLOPS * n),
        max_flops_per_cycle=SOFTMAX_FLOPS / SOFTMAX_FPU_OPS * config.lanes,
        problem={"n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
