"""exp — vectorized exponential with basic mask-free FP ops (Table I).

The element-wise pipeline is the classic range-reduction + polynomial:

    k  = round(x * log2(e))
    r  = x - k*ln2_hi - k*ln2_lo          (2-term Cody-Waite)
    p  = 1 + c1 r + c2 r^2 + ... + c6 r^6 (powers + vfmacc.vf)
    e  = p * 2^(k/2) * 2^(k - k/2)        (split scale avoids overflow)

The VMFPU op budget is *exactly* the paper's Table I ratio: 21 FPU ops
carrying 28 DP-FLOP per element (8 FMAs = 16, 12 single-FLOP ops, and one
0-FLOP splat), so peak = 28/21 * lanes DP-FLOP/cycle.  Integer support
work (scale construction, register moves) runs on the VALU in parallel
and does not consume FPU slots.
"""

from __future__ import annotations

import numpy as np

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)

#: FP constants loaded into f10..f20 by :func:`emit_exp_consts`.
EXP_CONSTS = (
    709.782712893384,          # f10: clamp high (exp overflow threshold)
    -708.396418532264,         # f11: clamp low
    1.4426950408889634,        # f12: log2(e)
    0.6931471803691238,        # f13: ln2_hi (top bits)
    1.9082149292705877e-10,    # f14: ln2_lo
    1.0,                       # f15: 1 and c1
    1.0 / 2,                   # f16: c2
    1.0 / 6,                   # f17: c3
    1.0 / 24,                  # f18: c4
    1.0 / 120,                 # f19: c5
    1.0 / 720,                 # f20: c6
)

#: VMFPU ops and DP-FLOP per element of the exp body (Table I: 21 and 28).
EXP_FPU_OPS = 21
EXP_FLOPS = 28


def emit_exp_consts(asm: Assembler, const_base: int, ptr: str = "x20") -> None:
    """Load the constant table into f10..f20."""
    asm.li(ptr, const_base)
    for i in range(len(EXP_CONSTS)):
        asm.fld(f"f{10 + i}", ptr, i * 8)


def emit_exp_body(asm: Assembler, lmul: int, bias_reg: str = "x21") -> str:
    """Emit exp over the register group at v0; returns the result group.

    Register plan (7 groups of ``lmul``, fits LMUL=4 exactly):
    g1=v0 input/clamped, g2 scratch (t/ki/k2/scale2), g3 k, g4 (k1/scale1),
    g5 r, g6 accumulator/result, g7 running power of r.
    The caller must have loaded the constants (:func:`emit_exp_consts`)
    and set ``bias_reg`` to 1023.
    """
    g1, g2, g3, g4, g5, g6, g7 = (f"v{i * lmul}" for i in range(7))

    asm.vfmin_vf(g1, g1, "f10")          # clamp high
    asm.vfmax_vf(g1, g1, "f11")          # clamp low
    # r = x issued first on the VALU so the Cody-Waite FMAs are not stuck
    # behind the (independent) scale-construction chain in the VALU queue.
    asm.vmv_v_v(g5, g1)                  # r = x (VALU move)
    asm.vfmul_vf(g2, g1, "f12")          # t = x * log2e
    asm.vfcvt_x_f_v(g2, g2)              # ki = round(t)   (in place)
    asm.vfcvt_f_x_v(g3, g2)              # k = double(ki)
    # Scale construction on the VALU: 2^k1 and 2^k2 as raw f64 bits.
    asm.vsra_vi(g4, g2, 1)               # k1 = ki >> 1
    asm.vsub_vv(g2, g2, g4)              # k2 = ki - k1
    asm.vadd_vx(g4, g4, bias_reg)
    asm.vsll_vi(g4, g4, 52)              # scale1 bits
    asm.vadd_vx(g2, g2, bias_reg)
    asm.vsll_vi(g2, g2, 52)              # scale2 bits
    # Cody-Waite reduction on the FPU.
    asm.vfnmsac_vf(g5, "f13", g3)        # r -= ln2_hi * k
    asm.vfnmsac_vf(g5, "f14", g3)        # r -= ln2_lo * k
    # Polynomial: acc = 1 + sum c_i * r^i via running powers.
    asm.vfmv_v_f(g6, "f15")              # acc = 1        (FPU splat)
    asm.vfmacc_vf(g6, "f15", g5)         # + c1 * r
    asm.vfmul_vv(g7, g5, g5)             # r^2
    asm.vfmacc_vf(g6, "f16", g7)
    asm.vfmul_vv(g7, g7, g5)             # r^3
    asm.vfmacc_vf(g6, "f17", g7)
    asm.vfmul_vv(g7, g7, g5)             # r^4
    asm.vfmacc_vf(g6, "f18", g7)
    asm.vfmul_vv(g7, g7, g5)             # r^5
    asm.vfmacc_vf(g6, "f19", g7)
    asm.vfmul_vv(g7, g7, g5)             # r^6
    asm.vfmacc_vf(g6, "f20", g7)
    # Reconstruct: acc * 2^k1 * 2^k2.
    asm.vfmul_vv(g6, g6, g4)
    asm.vfmul_vv(g6, g6, g2)
    return g6


def exp_golden(x: np.ndarray) -> np.ndarray:
    """Reference exp with the kernel's clamp applied."""
    return np.exp(np.clip(x, EXP_CONSTS[1], EXP_CONSTS[0]))


def _exp_program(n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", n)
    o_base = layout.alloc_f64("O", n)
    const_base = layout.alloc_f64("consts", len(EXP_CONSTS))

    asm = Assembler(f"exp_{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    emit_exp_consts(asm, const_base)
    asm.li("x21", 1023)
    asm.li("x5", a_base)
    asm.li("x7", o_base)
    asm.vle64_v("v0", "x5")
    result = emit_exp_body(asm, lmul)
    asm.vse64_v(result, "x7")
    asm.halt()
    return asm.build(), a_base, o_base, const_base


def _exp_golden(n: int) -> tuple:
    """Golden data: inputs and reference exp (built on first use)."""
    rng = rng_for("exp", n)
    x_vec = rng.uniform(-10.0, 10.0, size=n)
    return x_vec, exp_golden(x_vec)


def build_exp(config: SystemConfig, bytes_per_lane: int) -> KernelRun:
    """Build the exp run for one operating point (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl

    program, a_base, o_base, const_base = memo_program(
        ("exp", n, lmul), lambda: _exp_program(n, lmul))
    golden = lazy_golden(("exp", n), lambda: _exp_golden(n))

    def setup(sim) -> None:
        sim.mem.write_array(a_base, golden()[0])
        sim.mem.write_array(const_base, np.array(EXP_CONSTS))

    def check(sim) -> float:
        # Degree-6 Taylor over |r| <= ln2/2: relative error ~2e-7.
        return check_array(sim, o_base, golden()[1], "exp O",
                           rtol=2e-6, atol=0.0)

    return KernelRun(
        name="exp",
        program=program,
        setup=setup,
        check=check,
        dp_flops=float(EXP_FLOPS * n),
        max_flops_per_cycle=EXP_FLOPS / EXP_FPU_OPS * config.lanes,
        problem={"n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
