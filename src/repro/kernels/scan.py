"""scan — inclusive prefix sum via Hillis-Steele doubling (zoo kernel).

Not a paper kernel: ``scan`` extends the curated zoo beyond Table I to
exercise the slide unit on a data-movement-heavy pattern the figures
never touch.  Each of the ``log2(vl)`` doubling steps slides the running
vector up by ``offset`` (zero-filling the low elements via a splat) and
adds it back in, so SLDU and VMFPU alternate on the same register group.

The golden model replays the *same association order* step by step —
``np.cumsum`` would sum left-to-right and differ in the last ulps — so
the check is exact, not tolerance-washed.
"""

from __future__ import annotations

import numpy as np

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)


def _scan_program(n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", n)
    o_base = layout.alloc_f64("out", n)

    vacc, vshift = f"v{lmul}", f"v{2 * lmul}"

    asm = Assembler(f"scan_{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)
    asm.li("x6", o_base)
    asm.vle64_v(vacc, "x5")
    offset = 1
    while offset < n:
        # Slideup leaves elements below `offset` undisturbed, so zero the
        # destination first to get [0]*offset ++ acc[:n-offset].
        asm.vmv_v_i(vshift, 0)
        asm.li("x7", offset)
        asm.vslideup_vx(vshift, vacc, "x7")
        asm.vfadd_vv(vacc, vacc, vshift)
        offset *= 2
    asm.vse64_v(vacc, "x6")
    asm.halt()
    return asm.build(), a_base, o_base


def _scan_golden(n: int) -> tuple:
    """Input vector and the doubling-order prefix sum (built on first use)."""
    rng = rng_for("scan", n)
    a_vec = rng.uniform(-1.0, 1.0, size=n)
    acc = a_vec.copy()
    offset = 1
    while offset < n:
        shifted = np.zeros(n)
        shifted[offset:] = acc[: n - offset]
        acc = acc + shifted
        offset *= 2
    return a_vec, acc


def build_scan(config: SystemConfig, bytes_per_lane: int) -> KernelRun:
    """Build the prefix-sum kernel (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl
    steps = max(1, n - 1).bit_length() if n > 1 else 0

    program, a_base, o_base = memo_program(
        ("scan", n, lmul), lambda: _scan_program(n, lmul))
    golden = lazy_golden(("scan", n), lambda: _scan_golden(n))

    def setup(sim) -> None:
        sim.mem.write_array(a_base, golden()[0])

    def check(sim) -> float:
        return check_array(sim, o_base, golden()[1], "scan")

    return KernelRun(
        name="scan",
        program=program,
        setup=setup,
        check=check,
        dp_flops=float(n * steps),
        max_flops_per_cycle=float(config.lanes),
        problem={"n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
