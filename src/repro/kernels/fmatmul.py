"""fmatmul — dense DP matrix multiplication C = A @ B (Table I row 1).

The Ara-style formulation: the N dimension is vectorized (one strip of
``vl`` columns, N = vl per Table I), rows of A are processed in blocks of
``ROW_BLOCK``; for every k the kernel loads one row of B once and issues
one ``vfmacc.vf`` per block row with the scalar ``A[r][k]``:

    for block of ROW_BLOCK rows:
        acc[j] = 0
        for k in 0..K-1:
            vB   <- B[k][0:vl]          (vle64, reused by all block rows)
            acc[j] += A[row_j][k] * vB  (vfmacc.vf, the FLOP carrier)
        C[row_j][0:vl] = acc[j]

Peak: one FMA per lane per cycle -> 2 * lanes DP-FLOP/cycle (Table I).
"""

from __future__ import annotations

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)

#: Rows of A processed per accumulator block (register-budget bound:
#: ROW_BLOCK accumulator groups + one B-row group must fit 32 registers
#: at LMUL up to 4).
ROW_BLOCK = 4

DEFAULT_M = 64
DEFAULT_K = 256


def _fmatmul_program(m: int, k: int, n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", m * k)
    b_base = layout.alloc_f64("B", k * n)
    c_base = layout.alloc_f64("C", m * n)

    # Vector register allocation: accumulators at group stride lmul, then
    # two B-row groups used as a double buffer so the next row's load is
    # never write-after-read blocked behind the current row's FMAs (the
    # same ping-pong the hand-written Ara kernels use).
    acc = [f"v{j * lmul}" for j in range(ROW_BLOCK)]
    vb = (f"v{ROW_BLOCK * lmul}", f"v{(ROW_BLOCK + 1) * lmul}")

    asm = Assembler(f"fmatmul_{m}x{k}x{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)        # A block base
    asm.li("x7", c_base)        # C block base
    asm.li("x10", m // ROW_BLOCK)

    asm.label("block_loop")
    for j in range(ROW_BLOCK):
        asm.vmv_v_i(acc[j], 0)
    asm.li("x6", b_base)        # B row pointer (restarts every block)
    asm.mv("x11", "x5")         # A element pointer (column k of the block)
    asm.li("x9", k // 2)

    # The k loop is unrolled by two so each iteration statically targets
    # one half of the B double buffer.
    asm.label("k_loop")
    for half in range(2):
        asm.vle64_v(vb[half], "x6")
        for j in range(ROW_BLOCK):
            asm.fld(f"f{j}", "x11", j * k * 8)
        for j in range(ROW_BLOCK):
            asm.vfmacc_vf(acc[j], f"f{j}", vb[half])
        asm.addi("x6", "x6", n * 8)
        asm.addi("x11", "x11", 8)
    asm.addi("x9", "x9", -1)
    asm.bnez("x9", "k_loop")

    for j in range(ROW_BLOCK):
        asm.addi("x12", "x7", j * n * 8)
        asm.vse64_v(acc[j], "x12")
    asm.addi("x5", "x5", ROW_BLOCK * k * 8)
    asm.addi("x7", "x7", ROW_BLOCK * n * 8)
    asm.addi("x10", "x10", -1)
    asm.bnez("x10", "block_loop")
    asm.halt()
    return asm.build(), a_base, b_base, c_base


def _fmatmul_golden(m: int, k: int, n: int) -> tuple:
    """Golden data: inputs and reference product (built on first use)."""
    rng = rng_for("fmatmul", m, k, n)
    a_mat = rng.uniform(-1.0, 1.0, size=(m, k))
    b_mat = rng.uniform(-1.0, 1.0, size=(k, n))
    return a_mat, b_mat, a_mat @ b_mat


def build_fmatmul(config: SystemConfig, bytes_per_lane: int,
                  m: int = DEFAULT_M, k: int = DEFAULT_K) -> KernelRun:
    """Build the fmatmul run for one operating point (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl  # Table I: N spans exactly one strip
    if m % ROW_BLOCK:
        raise ValueError(f"m={m} must be a multiple of {ROW_BLOCK}")
    if k % 2:
        raise ValueError(f"k={k} must be even (B double buffering)")

    program, a_base, b_base, c_base = memo_program(
        ("fmatmul", m, k, n, lmul),
        lambda: _fmatmul_program(m, k, n, lmul))
    golden = lazy_golden(("fmatmul", m, k, n),
                         lambda: _fmatmul_golden(m, k, n))

    def setup(sim) -> None:
        a_mat, b_mat, _ = golden()
        sim.mem.write_array(a_base, a_mat.reshape(-1))
        sim.mem.write_array(b_base, b_mat.reshape(-1))

    def check(sim) -> float:
        # The simulator FMA is not fused and accumulates in a different
        # association order than BLAS; tolerance covers K=256 partials.
        return check_array(sim, c_base, golden()[2], "fmatmul C",
                           rtol=1e-9, atol=1e-7 * k)

    return KernelRun(
        name="fmatmul",
        program=program,
        setup=setup,
        check=check,
        dp_flops=2.0 * m * k * n,
        max_flops_per_cycle=2.0 * config.lanes,
        problem={"m": m, "k": k, "n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
