"""sort — in-register bitonic sort of one strip (zoo kernel).

Not a paper kernel: ``sort`` stresses the units the curated set barely
touches together — every compare-exchange stage runs ``vrgather`` (SLDU
at quarter throughput) to fetch the partner lane, integer mask algebra
on the MASKU, and an FP min/max/merge triple on VMFPU/VALU — so replay
identity is pinned on a permute-heavy, mask-heavy instruction mix.

The network sorts the ``vl``-element strip ascending with exact f64
compares, so the golden model is simply ``np.sort``.  Register budget:
seven LMUL-sized groups at bases ``4 + k*lmul`` plus ``v0``-``v2`` for
masks, which fits for LMUL <= 4 (the sweeps' 64..512 B/lane range).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)


def _sort_program(n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", n)
    o_base = layout.alloc_f64("out", n)

    vdata, vid, vix, vpart, vmin, vmax, vt = (
        f"v{4 + k * lmul}" for k in range(7))

    asm = Assembler(f"sort_{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)
    asm.li("x6", o_base)
    asm.vle64_v(vdata, "x5")
    asm.vid_v(vid)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            asm.li("x7", j)
            asm.vxor_vx(vix, vid, "x7")          # partner index i ^ j
            asm.vrgather_vv(vpart, vdata, vix)   # partner values
            asm.li("x8", k)
            asm.vand_vx(vt, vid, "x8")
            asm.vmseq_vi("v2", vt, 0)            # ascending block?
            asm.vand_vx(vt, vid, "x7")
            asm.vmseq_vi("v1", vt, 0)            # lower half of the pair?
            # Keep the minimum exactly when "lower half" == "ascending".
            asm.vmxnor_mm("v0", "v1", "v2")
            asm.vfmin_vv(vmin, vdata, vpart)
            asm.vfmax_vv(vmax, vdata, vpart)
            asm.vmerge_vvm(vdata, vmax, vmin)    # v0 ? min : max
            j //= 2
        k *= 2
    asm.vse64_v(vdata, "x6")
    asm.halt()
    return asm.build(), a_base, o_base


def _sort_golden(n: int) -> tuple:
    """Input vector and its ascending sort (built on first use)."""
    rng = rng_for("sort", n)
    a_vec = rng.uniform(-1.0, 1.0, size=n)
    return a_vec, np.sort(a_vec)


def build_sort(config: SystemConfig, bytes_per_lane: int) -> KernelRun:
    """Build the bitonic-sort kernel (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    if lmul > 4:
        raise ConfigError(
            f"sort needs seven register groups plus three mask registers, "
            f"which LMUL={lmul} cannot fit in 32 registers (use "
            f"bytes_per_lane <= 512)")
    n = vl
    stages = (n - 1).bit_length() if n > 1 else 0
    steps = stages * (stages + 1) // 2

    program, a_base, o_base = memo_program(
        ("sort", n, lmul), lambda: _sort_program(n, lmul))
    golden = lazy_golden(("sort", n), lambda: _sort_golden(n))

    def setup(sim) -> None:
        sim.mem.write_array(a_base, golden()[0])

    def check(sim) -> float:
        return check_array(sim, o_base, golden()[1], "sort")

    return KernelRun(
        name="sort",
        program=program,
        setup=setup,
        check=check,
        dp_flops=float(2 * n * steps),
        max_flops_per_cycle=float(config.lanes),
        problem={"n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
