"""fconv2d — 7x7 dense convolution over a 256-row image (Table I row 2).

The column dimension is vectorized; the 7x7 stencil walks its columns with
``vfslide1down`` (the operation the RINGI is optimized for) and its rows
with unit-stride loads.  Output rows are processed **in pairs sharing the
loaded input rows** — the structure of the hand-optimized Ara kernel —
which both halves the load traffic and interleaves two independent
accumulators so consecutive FMAs never chain on the same register:

    for output rows (i, i+1):
        acc0 = acc1 = 0
        for r in 0..7:                       # input rows i..i+7
            t <- A[i+r][0:vl]
            for c in 0..6:
                if r <= 6: acc0 += F[r][c]   * t
                if r >= 1: acc1 += F[r-1][c] * t
                t = slide1down(t, halo)      # shared by both outputs

49 FMAs per output row against 24 slides and 4 loads: the FPU is the
bottleneck (hence the paper's 97% utilization).  Peak: 2 * lanes.
"""

from __future__ import annotations

import numpy as np

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)

FILTER = 7
DEFAULT_ROWS = 256


def _fconv2d_program(rows: int, n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    halo = FILTER - 1
    in_w = n + halo
    in_rows = rows + halo

    layout = Layout()
    a_base = layout.alloc_f64("A", in_rows * in_w)
    f_base = layout.alloc_f64("F", FILTER * FILTER)
    o_base = layout.alloc_f64("O", rows * n)

    # Six groups at LMUL<=4: two accumulators, two alternating load
    # targets, two slide scratch buffers.
    acc = ("v0", f"v{lmul}")
    load_regs = (f"v{2 * lmul}", f"v{3 * lmul}")
    slide_regs = (f"v{4 * lmul}", f"v{5 * lmul}")

    asm = Assembler(f"fconv2d_{rows}x{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)   # input base of the current row pair
    asm.li("x7", o_base)   # output row pointer
    asm.li("x13", f_base)  # filter coefficients
    asm.li("x10", rows // 2)

    asm.label("pair_loop")
    asm.vmv_v_i(acc[0], 0)
    asm.vmv_v_i(acc[1], 0)
    asm.mv("x11", "x5")  # input row pointer (row i + r)
    for r in range(FILTER + 1):
        load_reg = load_regs[r % 2]
        asm.vle64_v(load_reg, "x11")
        t = load_reg
        for c in range(FILTER):
            if r < FILTER:
                asm.fld("f1", "x13", (r * FILTER + c) * 8)
                asm.vfmacc_vf(acc[0], "f1", t)
            if r >= 1:
                asm.fld("f3", "x13", ((r - 1) * FILTER + c) * 8)
                asm.vfmacc_vf(acc[1], "f3", t)
            if c < FILTER - 1:
                # Incoming halo element A[i+r][n + c]; slides bounce
                # between the two scratch groups, never the load targets.
                asm.fld("f2", "x11", (n + c) * 8)
                dst = slide_regs[c % 2]
                asm.vfslide1down_vf(dst, t, "f2")
                t = dst
        asm.addi("x11", "x11", in_w * 8)
    asm.vse64_v(acc[0], "x7")
    asm.addi("x12", "x7", n * 8)
    asm.vse64_v(acc[1], "x12")
    asm.addi("x5", "x5", 2 * in_w * 8)
    asm.addi("x7", "x7", 2 * n * 8)
    asm.addi("x10", "x10", -1)
    asm.bnez("x10", "pair_loop")
    asm.halt()
    return asm.build(), a_base, f_base, o_base


def _fconv2d_golden(rows: int, n: int) -> tuple:
    """Golden data: image, filter, reference output (built on first use)."""
    halo = FILTER - 1
    rng = rng_for("fconv2d", rows, n)
    a_img = rng.uniform(-1.0, 1.0, size=(rows + halo, n + halo))
    filt = rng.uniform(-1.0, 1.0, size=(FILTER, FILTER))
    golden = np.zeros((rows, n))
    for r in range(FILTER):
        for c in range(FILTER):
            golden += filt[r, c] * a_img[r:r + rows, c:c + n]
    return a_img, filt, golden


def build_fconv2d(config: SystemConfig, bytes_per_lane: int,
                  rows: int = DEFAULT_ROWS) -> KernelRun:
    """Build the fconv2d run for one operating point (arrays stay lazy)."""
    if rows % 2:
        raise ValueError(f"rows={rows} must be even (row-pair blocking)")
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl

    program, a_base, f_base, o_base = memo_program(
        ("fconv2d", rows, n, lmul),
        lambda: _fconv2d_program(rows, n, lmul))
    golden = lazy_golden(("fconv2d", rows, n),
                         lambda: _fconv2d_golden(rows, n))

    def setup(sim) -> None:
        a_img, filt, _ = golden()
        sim.mem.write_array(a_base, a_img.reshape(-1))
        sim.mem.write_array(f_base, filt.reshape(-1))

    def check(sim) -> float:
        return check_array(sim, o_base, golden()[2], "fconv2d O",
                           rtol=1e-9, atol=1e-9 * FILTER * FILTER)

    return KernelRun(
        name="fconv2d",
        program=program,
        setup=setup,
        check=check,
        dp_flops=2.0 * FILTER * FILTER * rows * n,
        max_flops_per_cycle=2.0 * config.lanes,
        problem={"rows": rows, "n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
