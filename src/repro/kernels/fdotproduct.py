"""fdotproduct — DP dot product with a vector reduction (Table I row 4).

The memory-bound kernel: every element-pair costs 16 loaded bytes for
2 DP-FLOP, so with the machine's load bandwidth of 8 bytes/lane/cycle the
bound is ``lanes`` DP-FLOP/cycle — half of fmatmul's.  The reduction at
the end exercises the inter-lane/inter-cluster tree, which is why this
kernel scales worst in Fig 6 (6.1x on 64 lanes).

Two builders:

* :func:`build_fdotproduct` — the Fig 6 operating point: one strip,
  ``vfmul`` + ``vfredusum``.
* :func:`build_fdotproduct_strips` — the Section IV-B long-vector variant
  (16384 B/lane over 16 strip-mined iterations) that amortizes the
  reduction tail and recovers ~7.6x scaling.
"""

from __future__ import annotations

import numpy as np

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)


def _fdotproduct_program(n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    layout = Layout()
    a_base = layout.alloc_f64("A", n)
    b_base = layout.alloc_f64("B", n)
    r_base = layout.alloc_f64("result", 1)

    va, vb, vt = f"v{2 * lmul}", f"v{3 * lmul}", f"v{4 * lmul}"

    asm = Assembler(f"fdotproduct_{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)
    asm.li("x6", b_base)
    asm.li("x7", r_base)
    asm.vle64_v(va, "x5")
    asm.vle64_v(vb, "x6")
    asm.vfmul_vv(vt, va, vb)
    asm.vmv_s_x("v1", "x0")  # zero seed
    asm.vfredusum_vs("v2", vt, "v1")
    asm.vfmv_f_s("f1", "v2")
    asm.fsd("f1", "x7", 0)
    asm.halt()
    return asm.build(), a_base, b_base, r_base


def _dot_golden(name: str, n: int) -> tuple:
    """Golden data for either dot-product variant (built on first use)."""
    rng = rng_for(name, n)
    a_vec = rng.uniform(-1.0, 1.0, size=n)
    b_vec = rng.uniform(-1.0, 1.0, size=n)
    return a_vec, b_vec, np.array([np.dot(a_vec, b_vec)])


def build_fdotproduct(config: SystemConfig, bytes_per_lane: int) -> KernelRun:
    """Build the one-strip dot product (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl

    program, a_base, b_base, r_base = memo_program(
        ("fdotproduct", n, lmul),
        lambda: _fdotproduct_program(n, lmul))
    golden = lazy_golden(("fdotproduct", n),
                         lambda: _dot_golden("fdotproduct", n))

    def setup(sim) -> None:
        a_vec, b_vec, _ = golden()
        sim.mem.write_array(a_base, a_vec)
        sim.mem.write_array(b_base, b_vec)

    def check(sim) -> float:
        return check_array(sim, r_base, golden()[2], "fdotproduct",
                           rtol=1e-9, atol=1e-10 * n)

    return KernelRun(
        name="fdotproduct",
        program=program,
        setup=setup,
        check=check,
        dp_flops=2.0 * n,
        max_flops_per_cycle=float(config.lanes),
        problem={"n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )


def build_fdotproduct_strips(config: SystemConfig, bytes_per_lane: int,
                             strips: int = 16) -> KernelRun:
    """Strip-mined long dot product (Section IV-B: 16384 B/lane over 16).

    ``bytes_per_lane`` here is the per-strip size; the total problem is
    ``strips`` times larger.  Partial products accumulate into a vector
    register via ``vfmacc`` and a single reduction runs at the end, so the
    non-ideal reduction phases amortize across the whole vector.
    """
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n_total = vl * strips

    program, a_base, b_base, r_base = memo_program(
        ("fdotproduct_strips", vl, strips, lmul),
        lambda: _fdotproduct_strips_program(vl, strips, lmul))
    golden = lazy_golden(("fdotproduct_strips", n_total),
                         lambda: _dot_golden("fdotproduct_strips", n_total))

    def setup(sim) -> None:
        a_vec, b_vec, _ = golden()
        sim.mem.write_array(a_base, a_vec)
        sim.mem.write_array(b_base, b_vec)

    def check(sim) -> float:
        return check_array(sim, r_base, golden()[2], "fdotproduct_strips",
                           rtol=1e-9, atol=1e-10 * n_total)

    return KernelRun(
        name="fdotproduct_strips",
        program=program,
        setup=setup,
        check=check,
        dp_flops=2.0 * n_total,
        max_flops_per_cycle=float(config.lanes),
        problem={"n": n_total, "vl": vl, "lmul": lmul, "strips": strips,
                 "bytes_per_lane": bytes_per_lane * strips},
    )


def _fdotproduct_strips_program(vl: int, strips: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    n_total = vl * strips

    layout = Layout()
    a_base = layout.alloc_f64("A", n_total)
    b_base = layout.alloc_f64("B", n_total)
    r_base = layout.alloc_f64("result", 1)

    # Four groups (works up to LMUL=8) + two spare singles for the
    # reduction seed and result, taken from the unused fourth group.
    va, vb, vacc = "v0", f"v{lmul}", f"v{2 * lmul}"
    vseed, vres = f"v{3 * lmul}", f"v{3 * lmul + 1}"

    asm = Assembler(f"fdotproduct_strips_{n_total}")
    asm.li("x1", vl)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)
    asm.li("x6", b_base)
    asm.li("x7", r_base)
    asm.li("x10", strips)
    asm.vmv_v_i(vacc, 0)
    asm.label("strip_loop")
    asm.vle64_v(va, "x5")
    asm.vle64_v(vb, "x6")
    asm.vfmacc_vv(vacc, va, vb)
    asm.addi("x5", "x5", vl * 8)
    asm.addi("x6", "x6", vl * 8)
    asm.addi("x10", "x10", -1)
    asm.bnez("x10", "strip_loop")
    asm.vmv_s_x(vseed, "x0")
    asm.vfredusum_vs(vres, vacc, vseed)
    asm.vfmv_f_s("f1", vres)
    asm.fsd("f1", "x7", 0)
    asm.halt()
    return asm.build(), a_base, b_base, r_base
