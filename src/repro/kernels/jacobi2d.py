"""jacobi2d — 5-point Jacobi stencil sweep over a 256-row grid (Table I).

One Jacobi update per interior point:

    out[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1])

Columns are vectorized; the east/west neighbours come from
``vfslide1up/down`` with the halo columns feeding the boundary element.
4 DP-FLOP per point over 4 FPU ops -> peak = lanes DP-FLOP/cycle.
"""

from __future__ import annotations

from ..isa.asm import Assembler
from ..params import SystemConfig
from .common import (KernelRun, Layout, check_array, lazy_golden,
                     memo_program, rng_for, vl_and_lmul)

DEFAULT_ROWS = 256


def _jacobi2d_program(rows: int, n: int, lmul: int) -> tuple:
    """Program-only skeleton: assembled program plus buffer bases."""
    in_w = n + 2  # one halo column each side
    in_rows = rows + 2  # one halo row top and bottom

    layout = Layout()
    a_base = layout.alloc_f64("A", in_rows * in_w)
    o_base = layout.alloc_f64("O", rows * n)
    const_base = layout.alloc_f64("consts", 1)

    # Register groups (aligned to LMUL): up, down, cur, west, east, scratch,
    # result.  Seven groups of LMUL<=4 fit the 32-register file.
    v_up, v_dn, v_cur, v_w, v_e, v_t, v_out = (
        f"v{i * lmul}" for i in range(1, 8))

    asm = Assembler(f"jacobi2d_{rows}x{n}")
    asm.li("x1", n)
    asm.vsetvli("x2", "x1", sew=64, lmul=lmul)
    asm.li("x5", a_base)  # base of row i-1 (starts at halo row 0)
    asm.li("x7", o_base)
    asm.li("x14", const_base)
    asm.fld("f3", "x14", 0)  # 0.25
    asm.li("x10", rows)

    asm.label("row_loop")
    # Interior of rows i-1, i, i+1 starts one halo element in.
    asm.addi("x11", "x5", 8)                    # &A[i-1][1]
    asm.addi("x12", "x5", (in_w + 1) * 8)       # &A[i][1]
    asm.addi("x13", "x5", (2 * in_w + 1) * 8)   # &A[i+1][1]
    asm.vle64_v(v_up, "x11")
    asm.vle64_v(v_cur, "x12")
    asm.vle64_v(v_dn, "x13")
    # West neighbour: slide up, halo element A[i][0] enters at j=0.
    asm.fld("f1", "x5", in_w * 8)
    asm.vfslide1up_vf(v_w, v_cur, "f1")
    # East neighbour: slide down, halo element A[i][n+1] enters at j=n-1.
    asm.fld("f2", "x5", (in_w + n + 1) * 8)
    asm.vfslide1down_vf(v_e, v_cur, "f2")
    asm.vfadd_vv(v_t, v_up, v_dn)
    asm.vfadd_vv(v_w, v_w, v_e)
    asm.vfadd_vv(v_t, v_t, v_w)
    asm.vfmul_vf(v_out, v_t, "f3")
    asm.vse64_v(v_out, "x7")
    asm.addi("x5", "x5", in_w * 8)
    asm.addi("x7", "x7", n * 8)
    asm.addi("x10", "x10", -1)
    asm.bnez("x10", "row_loop")
    asm.halt()
    return asm.build(), a_base, o_base, const_base


def _jacobi2d_golden(rows: int, n: int) -> tuple:
    """Golden data: grid and reference update (built on first use)."""
    rng = rng_for("jacobi2d", rows, n)
    grid = rng.uniform(-1.0, 1.0, size=(rows + 2, n + 2))
    golden = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                     + grid[1:-1, :-2] + grid[1:-1, 2:])
    return grid, golden


def build_jacobi2d(config: SystemConfig, bytes_per_lane: int,
                   rows: int = DEFAULT_ROWS) -> KernelRun:
    """Build the jacobi2d run for one operating point (arrays stay lazy)."""
    vl, lmul = vl_and_lmul(config, bytes_per_lane)
    n = vl

    program, a_base, o_base, const_base = memo_program(
        ("jacobi2d", rows, n, lmul),
        lambda: _jacobi2d_program(rows, n, lmul))
    golden = lazy_golden(("jacobi2d", rows, n),
                         lambda: _jacobi2d_golden(rows, n))

    def setup(sim) -> None:
        sim.mem.write_array(a_base, golden()[0].reshape(-1))
        sim.mem.store_f64(const_base, 0.25)

    def check(sim) -> float:
        return check_array(sim, o_base, golden()[1], "jacobi2d O")

    return KernelRun(
        name="jacobi2d",
        program=program,
        setup=setup,
        check=check,
        dp_flops=4.0 * rows * n,
        max_flops_per_cycle=float(config.lanes),
        problem={"rows": rows, "n": n, "vl": vl, "lmul": lmul,
                 "bytes_per_lane": bytes_per_lane},
    )
