"""Exception hierarchy for the AraXL reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A system or memory configuration is inconsistent or unsupported."""


class IsaError(ReproError):
    """An instruction is malformed or uses unsupported operands."""


class AssemblerError(IsaError):
    """The assembler DSL was used incorrectly (bad label, bad operand)."""


class ExecutionError(ReproError):
    """The functional simulator hit an illegal runtime condition."""


class IllegalInstructionError(ExecutionError):
    """An instruction that is architecturally illegal in the current state.

    Mirrors the RISC-V illegal-instruction exception, e.g. a vector
    instruction executed with an invalid ``vtype`` or an element width
    unsupported by the current configuration.
    """


class MemoryAccessError(ExecutionError):
    """An access outside the mapped memory range or misaligned when illegal."""


class TimingError(ReproError):
    """The timing engine was driven with inconsistent transactions."""


class EvaluationError(ReproError):
    """An experiment driver was asked for an unsupported data point."""
