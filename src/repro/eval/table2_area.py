"""Table II — AraXL area breakdown and scaling, 16/32/64 lanes.

Checks the paper's two claims: near-perfect 2x area per lane doubling,
and the three interfaces together costing ~3% of total area.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ppa.area import AreaBreakdown, araxl_area, clusters_row_kge
from ..report.tables import render_table

#: Published Table II (kGE).
PAPER_TABLE2 = {
    16: {"Clusters": 11354, "CVA6": 936, "GLSU": 291, "RINGI": 25,
         "REQI": 34, "TOTAL": 12641},
    32: {"Clusters": 22708, "CVA6": 901, "GLSU": 618, "RINGI": 44,
         "REQI": 81, "TOTAL": 24352},
    64: {"Clusters": 45415, "CVA6": 931, "GLSU": 1385, "RINGI": 76,
         "REQI": 144, "TOTAL": 47950},
}


@dataclass(frozen=True)
class Table2Row:
    """Area breakdown of one AraXL lane count (Table II row)."""
    lanes: int
    clusters_kge: float
    cva6_kge: float
    glsu_kge: float
    ringi_kge: float
    reqi_kge: float
    total_kge: float

    @property
    def interface_fraction(self) -> float:
        return (self.glsu_kge + self.ringi_kge + self.reqi_kge) \
            / self.total_kge


def run_table2(lane_counts: tuple[int, ...] = (16, 32, 64)) -> list[Table2Row]:
    """Compute the Table II area breakdowns per lane count."""
    rows = []
    for lanes in lane_counts:
        b: AreaBreakdown = araxl_area(lanes)
        rows.append(Table2Row(
            lanes=lanes,
            clusters_kge=clusters_row_kge(b),
            cva6_kge=b.component("cva6"),
            glsu_kge=b.component("glsu"),
            ringi_kge=b.component("ringi"),
            reqi_kge=b.component("reqi"),
            total_kge=b.total_kge,
        ))
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Table II: per-component kGE with the paper's reference values."""
    table_rows = []
    prev: Table2Row | None = None
    for r in rows:
        ratio = f"{r.total_kge / prev.total_kge:.2f}x" if prev else "1.00x"
        paper = PAPER_TABLE2.get(r.lanes, {})
        table_rows.append((
            f"{r.lanes}L",
            f"{r.clusters_kge:,.0f} ({paper.get('Clusters', '-'):,})",
            f"{r.cva6_kge:,.0f} ({paper.get('CVA6', '-'):,})",
            f"{r.glsu_kge:,.0f} ({paper.get('GLSU', '-'):,})",
            f"{r.ringi_kge:,.0f} ({paper.get('RINGI', '-'):,})",
            f"{r.reqi_kge:,.0f} ({paper.get('REQI', '-'):,})",
            f"{r.total_kge:,.0f} ({paper.get('TOTAL', '-'):,})",
            ratio,
            f"{r.interface_fraction * 100:.1f}%",
        ))
        prev = r
    return render_table(
        ("config", "Clusters (paper)", "CVA6", "GLSU", "RINGI", "REQI",
         "TOTAL", "step", "interfaces"),
        table_rows,
        title="Table II — AraXL area scaling [kGE], model (paper)")
