"""Fig 7 — latency tolerance of the three interfaces.

Re-runs every kernel on a 64-lane AraXL with register cuts added to one
interface at a time (the Fig 5 setups):

* (a) GLSU +4 registers -> +8 cycles memory round trip;
* (b) REQI +1 register  -> acknowledgement 2 cycles later;
* (c) RINGI +1 register -> +1 cycle per ring hop;

and reports the FPU-utilization drop versus the unmodified baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigError
from ..kernels import KERNELS
from ..params import AraXLConfig
from ..report.tables import render_table
from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline
from .fig6_scaling import _SCALE_KWARGS, DEFAULT_BYTES_PER_LANE

#: Section IV-C claims: maximum utilization drop per interface in the
#: long-vector regime (>= 128 B/lane), plus the per-kernel maxima the
#: figure annotates.
PAPER_FIG7_CLAIMS = {
    "glsu_max_drop_long": 0.015,
    "reqi_max_drop": 0.053,   # fconv2d at 128 B/lane
    "ringi_max_drop": 0.014,
    "long_vector_drop_bound": 0.02,  # "less than 2%" at 512 B/lane
}

INTERFACE_SETUPS = {
    "glsu": {"glsu_extra_regs": 4},
    "reqi": {"reqi_extra_regs": 1},
    "ringi": {"ringi_extra_regs": 1},
}


@dataclass(frozen=True)
class Fig7Point:
    """One (interface, kernel, B/lane) utilization-drop measurement."""
    interface: str
    kernel: str
    bytes_per_lane: int
    base_utilization: float
    cut_utilization: float

    @property
    def drop(self) -> float:
        return self.base_utilization - self.cut_utilization


def run_fig7(kernels: tuple[str, ...] | None = None,
             bytes_per_lane: tuple[int, ...] = DEFAULT_BYTES_PER_LANE,
             lanes: int = 64,
             interfaces: tuple[str, ...] = ("glsu", "reqi", "ringi"),
             scale: str = "paper",
             base_config: AraXLConfig | None = None,
             trace_cache: TraceCache | None = None,
             workers: int | None = 1,
             capture_workers: int | None = 1,
             job_timeout: float | None = None,
             sim_pool: SimPool | None = None) -> list[Fig7Point]:
    """Run the Fig 7 sweep as a capture/replay pipeline.

    The register-cut configurations change only the timing model — the
    dynamic trace is identical across them — so the **capture phase**
    executes each (kernel, B/lane) point functionally exactly once and
    the **replay phase** times the captured trace on the baseline plus
    every interface-cut machine, each point's replays entering the
    shared :class:`~repro.sim.parallel.SimPool` as soon as its trace
    lands.  ``base_config`` substitutes the unmodified machine the cuts
    are applied to (e.g. one resolved from a spec file); it must be an
    AraXL-family configuration because the ``*_extra_regs`` knobs are
    AraXL interconnect quantities, and it overrides ``lanes``.
    ``workers`` is the pool's total process budget (``1`` stays
    in-process, ``None`` autodetects) and ``capture_workers`` the soft
    share captures may hold while replays are pending; pass your own
    ``sim_pool`` to read its :class:`~repro.sim.parallel.PipelineStats`
    afterwards.  Output is byte-identical for any combination.
    """
    kernels = kernels or tuple(KERNELS)
    kwargs_by_kernel = _SCALE_KWARGS[scale]
    if base_config is None:
        base_config = AraXLConfig(lanes=lanes)
    elif getattr(base_config, "family", None) != "araxl":
        raise ConfigError(
            f"fig7 sweeps AraXL interface register cuts; machine "
            f"{getattr(base_config, 'name', base_config)!r} is family "
            f"{getattr(base_config, 'family', None)!r}, not 'araxl'")
    cut_configs = {interface: dataclasses.replace(
        base_config, **INTERFACE_SETUPS[interface])
        for interface in interfaces}
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)

    # ---- plan: one capture per (kernel, B/lane) point; the baseline
    # replay plus one replay per interface cut reference it by index.
    meta = []  # (kernel, bpl, run), one entry per operating point
    captures: list[CaptureTask] = []
    replays = []  # (config, capture index)
    for kernel_name in kernels:
        builder = KERNELS[kernel_name]
        kw = kwargs_by_kernel.get(kernel_name, {})
        for bpl in bytes_per_lane:
            base_run = builder(base_config, bpl, **kw)
            cidx = len(captures)
            captures.append(CaptureTask.for_kernel(kernel_name, base_config,
                                                   bpl, kw))
            meta.append((kernel_name, bpl, base_run))
            replays.append((base_config, cidx))
            for interface in interfaces:
                replays.append((cut_configs[interface], cidx))

    # ---- pipeline: captures fan out, replays start as traces land.
    reports = run_pipeline(captures, replays, sim_pool)

    points: list[Fig7Point] = []
    per_point = 1 + len(interfaces)
    for slot, (kernel_name, bpl, base_run) in enumerate(meta):
        group = reports[slot * per_point:(slot + 1) * per_point]
        peak = base_run.max_flops_per_cycle
        base_util = group[0].fpu_utilization(peak)
        for interface, cut_report in zip(interfaces, group[1:]):
            points.append(Fig7Point(
                interface=interface,
                kernel=kernel_name,
                bytes_per_lane=bpl,
                base_utilization=base_util,
                cut_utilization=cut_report.fpu_utilization(peak),
            ))
    return points


def max_drop(points: list[Fig7Point], interface: str,
             min_bytes_per_lane: int = 0) -> float:
    """Worst utilization drop for one interface (optionally long-vector only)."""
    drops = [p.drop for p in points if p.interface == interface
             and p.bytes_per_lane >= min_bytes_per_lane]
    return max(drops, default=0.0)


def render_fig7(points: list[Fig7Point]) -> str:
    """One table per interface: kernels as rows, B/lane as columns."""
    out = []
    for interface in ("glsu", "reqi", "ringi"):
        pts = [p for p in points if p.interface == interface]
        if not pts:
            continue
        kernels = sorted({p.kernel for p in pts})
        sizes = sorted({p.bytes_per_lane for p in pts})
        rows = []
        for kernel in kernels:
            row: list[object] = [kernel]
            for bpl in sizes:
                pt = next(p for p in pts if p.kernel == kernel
                          and p.bytes_per_lane == bpl)
                row.append(f"{pt.drop * 100:+.1f}%")
            rows.append(row + [f"{max(p.drop for p in pts if p.kernel == kernel) * 100:.1f}%"])
        headers = ["kernel"] + [f"{b} B/lane" for b in sizes] + ["max drop"]
        out.append(render_table(
            headers, rows,
            title=f"Fig 7 ({interface.upper()}) — utilization drop from "
                  f"extra register cuts"))
    return "\n\n".join(out)
