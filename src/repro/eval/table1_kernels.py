"""Table I — benchmark parameters and peak-performance bounds.

For every kernel: the paper's LMUL and max-performance law, the law this
reproduction's kernel implements, and the peak actually *measured* by
running the kernel in the long-vector regime (which should approach the
bound — that is what Fig 6's high-utilization claims mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..kernels import KERNELS
from ..params import AraXLConfig, SystemConfig
from ..report.tables import render_table

#: Published Table I: LMUL values and max perf as a multiple of
#: lanes*clusters (DP-FLOP/cycle).
PAPER_TABLE1 = {
    "fmatmul": {"lmul": (1, 2, 4), "max_perf_factor": Fraction(2)},
    "fconv2d": {"lmul": (2,), "max_perf_factor": Fraction(2)},
    "jacobi2d": {"lmul": (4,), "max_perf_factor": Fraction(1)},
    "fdotproduct": {"lmul": (8,), "max_perf_factor": Fraction(1)},
    "exp": {"lmul": (1,), "max_perf_factor": Fraction(28, 21)},
    "softmax": {"lmul": (1,), "max_perf_factor": Fraction(32, 25)},
}


@dataclass(frozen=True)
class Table1Row:
    """One kernel's peak-performance bounds and measurement."""
    kernel: str
    lmul: int
    paper_factor: float
    model_factor: float
    measured_factor: float

    @property
    def achieved_fraction(self) -> float:
        return self.measured_factor / self.model_factor if self.model_factor \
            else 0.0


def run_table1(config: SystemConfig | None = None,
               bytes_per_lane: int = 512,
               scale: str = "paper",
               trace_cache=None,
               workers: int | None = 1,
               capture_workers: int | None = 1,
               job_timeout: float | None = None,
               sim_pool=None) -> list[Table1Row]:
    """Measure every kernel's peak at one operating point.

    A capture/replay pipeline like the other sweeps: the **capture
    phase** executes each kernel functionally once (or fetches its trace
    from ``trace_cache`` — e.g. the suite's shared disk store, where a
    Fig 6/7 run over the same operating points has already paid for it)
    and the **replay phase** times each capture as its trace lands, both
    inside one shared :class:`~repro.sim.parallel.SimPool`.  ``workers``
    is the pool's total process budget (``1`` stays in-process, ``None``
    autodetects) and ``capture_workers`` the soft share captures may
    hold while replays are pending; pass your own ``sim_pool`` to read
    its stats afterwards.  Rows are byte-identical for any combination
    and any cache state.
    """
    from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline
    from .fig6_scaling import _SCALE_KWARGS

    config = config if config is not None else AraXLConfig(lanes=64)
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)

    # ---- plan: one capture and one replay per kernel.
    meta = []
    captures = []
    replays = []
    for name, builder in KERNELS.items():
        kw = _SCALE_KWARGS[scale].get(name, {})
        run = builder(config, bytes_per_lane, **kw)
        meta.append((name, run))
        replays.append((config, len(captures)))
        captures.append(CaptureTask.for_kernel(name, config,
                                               bytes_per_lane, kw))

    # ---- pipeline: captures fan out, replays start as traces land.
    reports = run_pipeline(captures, replays, sim_pool)

    rows = []
    for (name, run), report in zip(meta, reports):
        rows.append(Table1Row(
            kernel=name,
            lmul=run.problem["lmul"],
            paper_factor=float(PAPER_TABLE1[name]["max_perf_factor"]),
            model_factor=run.max_flops_per_cycle / config.lanes,
            measured_factor=report.flops_per_cycle / config.lanes,
        ))
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Table I: paper law vs model law vs measured peak per kernel."""
    table_rows = [
        (r.kernel, r.lmul, f"{r.paper_factor:.3f}*LC",
         f"{r.model_factor:.3f}*LC", f"{r.measured_factor:.3f}*LC",
         f"{r.achieved_fraction * 100:.1f}%")
        for r in rows
    ]
    return render_table(
        ("kernel", "LMUL", "paper bound", "model bound", "measured",
         "achieved"),
        table_rows,
        title="Table I — kernel peak DP-FLOP/cycle bounds (LC = total lanes)")
