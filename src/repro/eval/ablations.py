"""Timing-knob ablation sweeps (design-space probes beyond the figures).

The benchmark suite's ablations (ring hop latency, GLSU pipeline depth,
sequencer queue depth — see ``benchmarks/bench_ablations.py``) all share
one shape: a set of machine configurations differing only in pure
timing knobs, crossed with a set of kernels.  The knobs never change
VLEN, so each kernel's trace is captured exactly once and every config
replays it.  :func:`run_knob_sweep` is that shape as a reusable driver,
run through the same shared-:class:`~repro.sim.parallel.SimPool`
capture/replay pipeline as the paper sweeps so the parallel byte-
identity harness covers ablations too.
"""

from __future__ import annotations

from typing import Sequence

from ..kernels import zoo_builder
from ..params import SystemConfig
from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline

#: One kernel of a sweep: ``(kernel_name, bytes_per_lane, problem_kwargs)``.
KernelSpec = tuple


def run_knob_sweep(configs: Sequence[SystemConfig],
                   kernel_specs: Sequence[KernelSpec],
                   trace_cache: TraceCache | None = None,
                   workers: int | None = 1,
                   capture_workers: int | None = 1,
                   job_timeout: float | None = None,
                   sim_pool: SimPool | None = None) -> list[list[float]]:
    """Utilization matrix for timing-knob ``configs`` x ``kernel_specs``.

    Capture phase: one functional execution per kernel spec (the knobs
    do not change VLEN, so every config replays the same trace), served
    from ``trace_cache`` — e.g. the suite's shared store — when another
    sweep already captured that point.  Replay phase: the full configs
    x kernels cross-product, each spec's replays entering the shared
    :class:`~repro.sim.parallel.SimPool` as its trace lands.
    ``workers`` is the pool's total process budget, ``capture_workers``
    the soft share captures may hold while replays are pending; pass
    ``sim_pool`` to supply (and afterwards inspect) the pool yourself.
    Returns ``rows[config_index][spec_index] -> utilization``,
    byte-identical for any worker counts.
    """
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)
    runs = []
    captures: list[CaptureTask] = []
    replays = []
    for name, bpl, kw in kernel_specs:
        runs.append(zoo_builder(name)(configs[0], bpl, **kw))
        cidx = len(captures)
        captures.append(CaptureTask.for_kernel(name, configs[0], bpl, kw))
        replays.extend((config, cidx) for config in configs)
    reports = run_pipeline(captures, replays, sim_pool)
    per_spec = len(configs)
    rows: list[list[float]] = [[0.0] * len(kernel_specs) for _ in configs]
    for spec_i, run in enumerate(runs):
        group = reports[spec_i * per_spec:(spec_i + 1) * per_spec]
        for cfg_i, report in enumerate(group):
            rows[cfg_i][spec_i] = report.fpu_utilization(
                run.max_flops_per_cycle)
    return rows
