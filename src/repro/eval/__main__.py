"""Command-line experiment driver: ``python -m repro.eval fig6 table1``.

Runs paper experiments by id and prints the rendered tables.  The
simulation sweeps can attach to the suite-wide shared trace store
(``--trace-store DIR``, or ``$REPRO_TRACE_STORE``; the GC byte budget
comes from ``--store-bytes`` or ``$REPRO_TRACE_STORE_BYTES``), so a CLI
run both reuses and warms the same captures as the benchmark suite.
Machine selection is spec-driven: ``--machine NAME|PATH`` (repeatable)
resolves registry names or YAML spec files through
:mod:`repro.machine`, and ``--list-machines`` prints the registry.
"""

from __future__ import annotations

import argparse
import sys

from ..env import ENV_FUZZ_SEEDS, ENV_STORE_DIR, read_env
from ..errors import ConfigError
from ..machine import get_machine, list_machines
from ..sim.parallel import SimPool
from ..sim.trace_cache import TraceCache
from ..sim.trace_store import TraceStore
from .runner import EXPERIMENTS, SIMULATION_EXPERIMENTS, run_experiment


def _job_timeout(value: str) -> float:
    """``--job-timeout`` parser: a positive number of seconds."""
    seconds = float(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError("job timeout must be > 0 seconds")
    return seconds


def _workers(value: str) -> int | None:
    """``--workers auto`` -> None (autodetect), else a positive int."""
    if value == "auto":
        return None
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1 or 'auto'")
    return count


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.eval`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run paper experiments and print the rendered tables.")
    # nargs="*" (not "+") so `--list-machines` works alone; main()
    # enforces "at least one experiment" and valid ids itself, because
    # argparse's choices= rejects an empty nargs="*" list outright.
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids to run: "
                             + ", ".join(sorted(EXPERIMENTS))
                             + ", 'all' to run every one, or 'fuzz' for "
                             "the seeded differential property sweep")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="seed count for the 'fuzz' sweep (default: "
                             "$REPRO_FUZZ_SEEDS, else 25)")
    parser.add_argument("--fuzz-size", type=int, default=40, metavar="N",
                        help="generated chunks per fuzz program "
                             "(default 40)")
    parser.add_argument("--features", default="all", metavar="SPEC",
                        help="fuzz generator feature set: 'all' or a "
                             "comma list (see docs/fuzzing.md)")
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "reduced"),
                        help="problem-size scale for the simulation sweeps")
    parser.add_argument("--machine", action="append", default=None,
                        metavar="NAME|PATH", dest="machines",
                        help="machine selection for the simulation sweeps: "
                             "a registry name (see --list-machines) or a "
                             "path to a machine-spec YAML file; repeat the "
                             "flag to sweep several machines (default: each "
                             "experiment's paper machines)")
    parser.add_argument("--list-machines", action="store_true",
                        help="print the machine registry (name, family, "
                             "lanes, spec fingerprint) and exit")
    parser.add_argument("--workers", type=_workers, default=1,
                        metavar="N|auto",
                        help="total worker-process budget of the shared "
                             "capture/replay pool (default 1: in-process; "
                             "'auto' sizes to the host CPUs)")
    parser.add_argument("--capture-workers", type=_workers, default=1,
                        metavar="N|auto",
                        help="soft share of the --workers budget the capture "
                             "phase may hold while replays are pending "
                             "(default 1: captures stay in-process; clamped "
                             "to the budget); captures stream into the "
                             "shared pool's replay jobs as traces land")
    parser.add_argument("--job-timeout", type=_job_timeout, default=None,
                        metavar="SECONDS",
                        help="per-job deadline on the shared pool: a pooled "
                             "capture/replay job running longer is treated "
                             "as hung, its worker abandoned and the job "
                             "reassigned (default: no deadline)")
    parser.add_argument("--trace-store", default=None, metavar="DIR",
                        help="shared trace-store directory (default: "
                             "$REPRO_TRACE_STORE, else no disk store)")
    parser.add_argument("--store-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="GC byte budget for the shared store (default: "
                             "$REPRO_TRACE_STORE_BYTES, else 256 MiB)")
    parser.add_argument("--gc", action="store_true",
                        help="run the store's GC pass before the experiments")
    parser.add_argument("--store-stats", action="store_true",
                        help="print the shared store's manifest stats after "
                             "the experiments")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_machines:
        for spec in list_machines().values():
            print(f"{spec.name:12s} family={spec.family:6s} "
                  f"lanes={spec.lanes:<3d} fingerprint={spec.fingerprint}")
        return 0

    # 'fuzz' is deliberately not an EXPERIMENTS entry: the registry's
    # simulation/static partition describes paper artifacts, while the
    # fuzz sweep is a property harness with its own seed arguments.
    valid = set(EXPERIMENTS) | {"all", "fuzz"}
    unknown = [name for name in args.experiments if name not in valid]
    if unknown:
        parser.error(f"unknown experiment(s) {', '.join(unknown)}; "
                     f"choose from {', '.join(sorted(valid))}")
    if not args.experiments:
        parser.error("no experiments requested (pass ids like 'fig6' or "
                     "'all', or use --list-machines)")
    run_fuzz_sweep = "fuzz" in args.experiments
    names = sorted(EXPERIMENTS) if "all" in args.experiments \
        else [name for name in dict.fromkeys(args.experiments)
              if name != "fuzz"]

    # Resolve --machine arguments (registry names or spec-file paths)
    # up front so a typo fails before any simulation work starts.
    machines = None
    if args.machines:
        try:
            machines = [get_machine(arg) for arg in args.machines]
        except ConfigError as exc:
            parser.error(str(exc))

    store = None
    if args.trace_store is not None or read_env(ENV_STORE_DIR):
        store = TraceStore(disk_dir=args.trace_store,
                           max_bytes=args.store_bytes)
    elif args.gc or args.store_stats or args.store_bytes is not None:
        # No store is configured and the documented default is "no disk
        # store" — don't invent one just to report on it, and say so
        # rather than silently dropping the store-related flags.
        print(f"[trace store] none configured (use --trace-store or "
              f"${ENV_STORE_DIR}); --gc/--store-stats/--store-bytes "
              f"ignored", file=sys.stderr)
    if args.gc and store is not None:
        summary = store.gc()
        print(f"[trace store gc] {summary}")

    # One shared SimPool carries every simulation sweep, so its fault
    # log aggregates recoveries across the whole invocation (and its
    # executor — including any rebuilt replacement — is reused).
    pool = None
    if run_fuzz_sweep or any(name in SIMULATION_EXPERIMENTS
                             for name in names):
        pool = SimPool(workers=args.workers,
                       capture_workers=args.capture_workers,
                       cache=store if store is not None else TraceCache(),
                       job_timeout=args.job_timeout)

    fuzz_failures = 0
    try:
        for name in names:
            text = run_experiment(name, scale=args.scale,
                                  workers=args.workers,
                                  trace_store=store,
                                  capture_workers=args.capture_workers,
                                  job_timeout=args.job_timeout,
                                  sim_pool=pool,
                                  machines=machines)
            print(text)
            print()
        if run_fuzz_sweep:
            from .fuzz import run_fuzz

            seeds = args.seeds
            if seeds is None:
                env_seeds = read_env(ENV_FUZZ_SEEDS)
                seeds = int(env_seeds) if env_seeds else 25
            text, fuzz_failures = run_fuzz(
                seeds=seeds, size=args.fuzz_size, features=args.features,
                machines=machines, sim_pool=pool)
            print(text)
            print()
    finally:
        if pool is not None:
            pool.shutdown()

    if args.store_stats and store is not None:
        stats = store.store_stats
        print(f"[trace store] dir={stats['dir']} "
              f"entries={stats['disk_entries']} "
              f"bytes={stats['disk_bytes']} "
              f"oldest_age={stats['oldest_age_s']:.0f}s "
              f"lifetime_hits_served={stats['hits_served']} "
              f"served: mem={stats['hits']} disk={stats['disk_hits']} "
              f"captures={stats['misses']} "
              f"remote_captures={stats['remote_puts']} "
              f"corrupt_purged={stats['corrupt_purged']}")
    if args.store_stats and pool is not None:
        fl = pool.fault_log
        cache = pool.cache
        recovered = (fl.recovered_total() + cache.corrupt_purged
                     + cache.io_retries + int(cache.memory_only))
        print(f"[fault log] crashes={fl.worker_crashes} "
              f"job_errors={fl.job_errors} "
              f"timeouts={fl.timeouts} retries={fl.retries} "
              f"rebuilds={fl.pool_rebuilds} "
              f"quarantined={fl.quarantined} fallbacks={fl.fallbacks} "
              f"serial_degradations={fl.serial_degradations} "
              f"corrupt_purged={cache.corrupt_purged} "
              f"io_retries={cache.io_retries} "
              f"memory_only={int(cache.memory_only)} "
              f"recovered_total={recovered}")
    return 1 if fuzz_failures else 0


if __name__ == "__main__":
    sys.exit(main())
