"""``python -m repro.eval fuzz``: the seeded differential fuzz sweep.

Runs ``--seeds`` generated programs through **both** halves of the
machinery:

1. the standard capture pipeline — every seed becomes a
   :class:`~repro.sim.parallel.CaptureTask` for the ``"fuzz"`` zoo
   kernel, routed through :func:`~repro.sim.parallel.run_pipeline` on
   the shared :class:`~repro.sim.parallel.SimPool` (so a warm trace
   store serves fuzz captures exactly like curated-kernel captures, and
   worker-side verification replays the independent golden check);
2. the in-process property harness —
   :func:`repro.fuzz.properties.check_seed` asserts the four
   differential properties per seed on every requested machine.

A property failure triggers the minimizing shrink loop and the run
prints the minimal reproducer program plus the seed that regenerates
it.
"""

from __future__ import annotations

from typing import Sequence

from ..fuzz.kernel import generate_case
from ..fuzz.properties import (PropertyFailure, check_case, default_configs)
from ..fuzz.shrink import shrink_case
from ..params import SystemConfig
from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline

#: Problem scale of the fuzz sweep, in the suite's B/lane currency:
#: clamped to AVL by the fuzz kernel builder (``max_avl = 64``).
FUZZ_BYTES_PER_LANE = 64

#: Default generated-program length (top-level chunks per program).
FUZZ_SIZE = 40


def _shrink_failure(failure: PropertyFailure, configs) -> str:
    """Minimize the failing case; returns the reproducer report."""
    original = failure.property

    def predicate(candidate):
        try:
            check_case(candidate, configs=configs)
        except PropertyFailure as exc:
            return exc if exc.property == original else None
        return None

    return shrink_case(failure.case, predicate).report()


def run_fuzz(seeds: int = 25, size: int = FUZZ_SIZE, features: str = "all",
             bytes_per_lane: int = FUZZ_BYTES_PER_LANE,
             machines: Sequence[SystemConfig] | None = None,
             trace_cache: TraceCache | None = None,
             workers: int | None = 1, capture_workers: int | None = 1,
             job_timeout: float | None = None,
             sim_pool: SimPool | None = None) -> tuple[str, int]:
    """Run the fuzz sweep; returns ``(rendered report, failure count)``.

    ``machines`` defaults to the registry pair sharing one VLEN
    (``8L-Ara2``/``8L-AraXL``), which is what makes the key-stability
    property observable; captures are deduplicated per VLEN, so the
    default pair shares one capture per seed.
    """
    configs = list(machines) if machines else default_configs()
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)
    kwargs = {"seed": 0, "size": size, "features": features}

    # Phase 1: every seed through the standard capture/replay pipeline.
    captures: list[CaptureTask] = []
    replays = []
    capture_index: dict[tuple, int] = {}
    for seed in range(seeds):
        for config in configs:
            point = (seed, config.vlen_bits)
            if point not in capture_index:
                capture_index[point] = len(captures)
                # verify=False like the curated sweeps: a warm store then
                # serves every capture from disk (replay-only entries
                # satisfy unverified requests); the property phase below
                # re-runs each seed fully verified in-process anyway.
                captures.append(CaptureTask.for_kernel(
                    "fuzz", config, bytes_per_lane,
                    {**kwargs, "seed": seed}))
            replays.append((config, capture_index[point]))
    reports = run_pipeline(captures, replays, sim_pool)

    # Phase 2: the four differential properties, per seed, in-process.
    failures: list[str] = []
    instructions = 0
    for seed in range(seeds):
        case = generate_case(seed, size=size, features=features,
                             max_avl=min(max(int(bytes_per_lane), 1), 256))
        instructions += len(case.program)
        try:
            check_case(case, configs=configs)
        except PropertyFailure as failure:
            failures.append(_shrink_failure(failure, configs))

    names = ", ".join(config.name for config in configs)
    lines = [
        f"fuzz: {seeds} seeds x {len(configs)} machines ({names}), "
        f"size={size}, features={features}, B/lane={bytes_per_lane}",
        f"  pipeline: {len(captures)} captures, {len(reports)} replays "
        f"(shared per VLEN), {instructions} generated instructions",
        f"  properties: replay-identity, key-stability, pack-roundtrip, "
        f"plan-vs-reference on every machine",
    ]
    if failures:
        lines.append(f"  FAILURES: {len(failures)} seed(s)")
        lines.extend(failures)
    else:
        lines.append(f"  all {seeds} seeds hold on every machine")
    return "\n".join(lines), len(failures)
