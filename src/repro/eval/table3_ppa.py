"""Table III — PPA comparison against state-of-the-art laned designs.

Runs fmatmul at 512 B/lane (the paper's operating point for this table)
on 16L Ara2 and 16/32/64L AraXL, rolls each run through the frequency,
area and power models, and lines the rows up with the published table
(plus the static Vitruvius+ reference row).
"""

from __future__ import annotations

from ..kernels import build_fmatmul
from ..params import Ara2Config, AraXLConfig, SystemConfig
from ..ppa import PpaPoint, ppa_point
from ..ppa.efficiency import VITRUVIUS_ROW
from ..report.tables import render_table

#: Published Table III rows.
PAPER_TABLE3 = {
    "8L-Vitruvius+": {"freq": 1.40, "gflops": 22.4, "gflops_w": 47.3,
                      "gflops_mm2": 17.23},
    "16L-Ara2": {"freq": 1.08, "gflops": 34.2, "gflops_w": 30.3,
                 "gflops_mm2": 11.6},
    "16L-AraXL": {"freq": 1.40, "gflops": 44.3, "gflops_w": 39.6,
                  "gflops_mm2": 17.4},
    "32L-AraXL": {"freq": 1.40, "gflops": 87.2, "gflops_w": 40.4,
                  "gflops_mm2": 17.8},
    "64L-AraXL": {"freq": 1.15, "gflops": 146.0, "gflops_w": 40.1,
                  "gflops_mm2": 15.1},
}


def default_configs() -> list[SystemConfig]:
    """The four machines of the paper's Table III comparison."""
    return [Ara2Config(lanes=16), AraXLConfig(lanes=16),
            AraXLConfig(lanes=32), AraXLConfig(lanes=64)]


def run_table3(configs: list[SystemConfig] | None = None,
               bytes_per_lane: int = 512,
               scale: str = "paper",
               trace_cache=None,
               workers: int | None = 1,
               capture_workers: int | None = 1,
               job_timeout: float | None = None,
               sim_pool=None) -> list[PpaPoint]:
    """Run the Table III PPA sweep as a capture/replay pipeline.

    ``workers`` is the shared pool's total process budget and
    ``capture_workers`` the soft share its capture phase may hold; pass
    ``sim_pool`` to supply (and afterwards inspect) the pool yourself.
    """
    from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline
    from .fig6_scaling import _SCALE_KWARGS

    configs = configs if configs is not None else default_configs()
    kw = _SCALE_KWARGS[scale].get("fmatmul", {})
    # 16L-Ara2 and 16L-AraXL share a VLEN: fmatmul runs functionally
    # once per VLEN group, and every machine's timing replay enters the
    # shared SimPool as its group's trace lands (workers=1 stays
    # in-process for both phases).
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)
    cidx_by_key: dict = {}
    captures: list[CaptureTask] = []
    replays = []
    for config in configs:
        run = build_fmatmul(config, bytes_per_lane, **kw)
        key = run.trace_key(config)
        cidx = cidx_by_key.get(key)
        if cidx is None:
            cidx = cidx_by_key[key] = len(captures)
            captures.append(CaptureTask.for_kernel(
                "fmatmul", config, bytes_per_lane, kw))
        replays.append((config, cidx))
    reports = run_pipeline(captures, replays, sim_pool)
    return [ppa_point(config, report)
            for (config, _cidx), report in zip(replays, reports)]


def render_table3(points: list[PpaPoint]) -> str:
    """Table III: model PPA rows lined up with the published numbers."""
    rows = [(
        VITRUVIUS_ROW["machine"], VITRUVIUS_ROW["L"],
        f"{VITRUVIUS_ROW['Freq [GHz]']:.2f}*",
        f"{VITRUVIUS_ROW['Max Perf [GFLOPs]']:.1f}*",
        f"{VITRUVIUS_ROW['Energy Eff [GFLOPs/W]']:.1f}*",
        f"{VITRUVIUS_ROW['Area Eff [GFLOPs/mm2]']:.2f}*",
    )]
    for p in points:
        paper = PAPER_TABLE3.get(p.machine, {})
        rows.append((
            p.machine, p.lanes,
            f"{p.freq_ghz:.2f} ({paper.get('freq', '-')})",
            f"{p.gflops:.1f} ({paper.get('gflops', '-')})",
            f"{p.gflops_per_watt:.1f} ({paper.get('gflops_w', '-')})",
            f"{p.gflops_per_mm2:.1f} ({paper.get('gflops_mm2', '-')})",
        ))
    table = render_table(
        ("machine", "L", "Freq [GHz]", "GFLOPs", "GFLOPs/W", "GFLOPs/mm2"),
        rows,
        title="Table III — PPA, model (paper); * = published reference")
    return table + "\n* Vitruvius+ excludes scalar core and caches (paper note)"
