"""Experiment drivers: one module per table/figure of the paper.

Every driver returns plain data structures plus a ``render()`` helper so
the same code backs the pytest benchmarks, the examples, and the
EXPERIMENTS.md regeneration script.  Paper reference values are embedded
next to each driver for side-by-side comparison.
"""

from .ablations import run_knob_sweep
from .survey import SURVEY, render_survey
from .fig6_scaling import Fig6Point, run_fig6, render_fig6, PAPER_FIG6_CLAIMS
from .fig7_latency import Fig7Point, run_fig7, render_fig7, PAPER_FIG7_CLAIMS
from .fig8_floorplan import run_fig8, render_fig8
from .fig9_area import run_fig9, render_fig9, PAPER_FIG9
from .table1_kernels import run_table1, render_table1, PAPER_TABLE1
from .table2_area import run_table2, render_table2, PAPER_TABLE2
from .table3_ppa import run_table3, render_table3, PAPER_TABLE3
from .runner import EXPERIMENTS, run_experiment

__all__ = [
    "SURVEY",
    "render_survey",
    "Fig6Point",
    "run_fig6",
    "render_fig6",
    "PAPER_FIG6_CLAIMS",
    "Fig7Point",
    "run_fig7",
    "render_fig7",
    "PAPER_FIG7_CLAIMS",
    "run_fig8",
    "render_fig8",
    "run_fig9",
    "render_fig9",
    "PAPER_FIG9",
    "run_table1",
    "render_table1",
    "PAPER_TABLE1",
    "run_table2",
    "render_table2",
    "PAPER_TABLE2",
    "run_table3",
    "render_table3",
    "PAPER_TABLE3",
    "EXPERIMENTS",
    "run_experiment",
    "run_knob_sweep",
]
