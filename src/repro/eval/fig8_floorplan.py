"""Fig 8 — the hierarchical AraXL floorplan.

Builds the two-column cluster floorplan for a configuration, reporting
die dimensions, interface wirelengths, the strait congestion score and
an ASCII rendering of the die (the reproduction's stand-in for the
paper's ICC2 die plot).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import AraXLConfig
from ..physdesign import (build_floorplan, congestion_score, hpwl,
                          ring_wirelength)
from ..physdesign.wirelength import reqi_wirelength
from ..ppa.frequency import araxl_frequency_ghz


@dataclass(frozen=True)
class Fig8Result:
    """Floorplan geometry and wirelengths for one machine."""
    machine: str
    die_w_mm: float
    die_h_mm: float
    clusters: int
    ring_wirelength_mm: float
    reqi_wirelength_mm: float
    broadcast_hpwl_mm: float
    congestion: float
    freq_ghz: float
    art: str


def run_fig8(lanes: int = 16) -> Fig8Result:
    """Build the AraXL floorplan at ``lanes`` and summarize it."""
    config = AraXLConfig(lanes=lanes)
    fp = build_floorplan(config)
    return Fig8Result(
        machine=config.name,
        die_w_mm=fp.die_w,
        die_h_mm=fp.die_h,
        clusters=config.clusters,
        ring_wirelength_mm=ring_wirelength(fp),
        reqi_wirelength_mm=reqi_wirelength(fp),
        broadcast_hpwl_mm=hpwl(fp.blocks),
        congestion=congestion_score(fp),
        freq_ghz=araxl_frequency_ghz(lanes),
        art=fp.ascii_art(),
    )


def render_fig8(result: Fig8Result) -> str:
    """ASCII floorplan art plus the geometry summary lines."""
    lines = [
        result.art,
        "",
        f"die                 {result.die_w_mm:.2f} x {result.die_h_mm:.2f} mm",
        f"clusters            {result.clusters}",
        f"RINGI wirelength    {result.ring_wirelength_mm:.2f} mm",
        f"REQI wirelength     {result.reqi_wirelength_mm:.2f} mm",
        f"top-level HPWL      {result.broadcast_hpwl_mm:.2f} mm",
        f"strait congestion   {result.congestion:.2f} "
        f"({'hotspot' if result.congestion > 1 else 'clean'})",
        f"closed frequency    {result.freq_ghz:.2f} GHz",
    ]
    return "\n".join(lines)
