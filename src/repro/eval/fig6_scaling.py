"""Fig 6 — weak-scaling performance and FPU utilization.

Sweeps every kernel over {8L/16L Ara2, 8/16/32/64L AraXL} at 64-512
bytes of vector per lane, normalizing performance to the 8-lane Ara2
(the paper's bars) and reporting utilization against each kernel's
Table-I bound (the paper's lines).

``scale="paper"`` uses the Table I problem sizes; ``scale="reduced"``
shrinks the non-vectorized dimensions (fewer matrix rows) so unit tests
stay fast — the per-B/lane *shape* is preserved, absolute utilization of
the amortization-heavy kernels lands a little lower.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels import KERNELS
from ..params import Ara2Config, AraXLConfig, SystemConfig
from ..report.tables import render_table
from ..sim import CaptureTask, SimPool, TraceCache, run_pipeline

DEFAULT_BYTES_PER_LANE = (64, 128, 256, 512)

#: Machine every Fig 6 bar is normalized against (the paper's baseline).
BASELINE_MACHINE = "8L-Ara2"

#: Headline numbers from Section IV-B used as acceptance targets.
PAPER_FIG6_CLAIMS = {
    ("fmatmul", "util_64L_512"): 0.99,
    ("fconv2d", "util_64L_512"): 0.97,
    ("fdotproduct", "scaling_64L_512"): 6.1,
    ("softmax", "scaling_64L_512"): 7.3,
}

_SCALE_KWARGS = {
    "paper": {"fmatmul": {}, "fconv2d": {}, "jacobi2d": {},
              "fdotproduct": {}, "exp": {}, "softmax": {}},
    "reduced": {"fmatmul": {"m": 16, "k": 64},
                "fconv2d": {"rows": 32}, "jacobi2d": {"rows": 32},
                "fdotproduct": {}, "exp": {}, "softmax": {}},
}


def default_machines() -> list[SystemConfig]:
    """The six machines of the paper's Fig 6 sweep."""
    return [Ara2Config(lanes=8), Ara2Config(lanes=16),
            AraXLConfig(lanes=8), AraXLConfig(lanes=16),
            AraXLConfig(lanes=32), AraXLConfig(lanes=64)]


@dataclass(frozen=True)
class Fig6Point:
    """One (kernel, machine, B/lane) measurement of the Fig 6 sweep."""
    kernel: str
    machine: str
    lanes: int
    bytes_per_lane: int
    cycles: float
    flops_per_cycle: float
    utilization: float
    scaling_vs_8l_ara2: float


def run_fig6(kernels: tuple[str, ...] | None = None,
             bytes_per_lane: tuple[int, ...] = DEFAULT_BYTES_PER_LANE,
             machines: list[SystemConfig] | None = None,
             scale: str = "paper",
             verify: bool = False,
             trace_cache: TraceCache | None = None,
             workers: int | None = 1,
             capture_workers: int | None = 1,
             job_timeout: float | None = None,
             sim_pool: SimPool | None = None) -> list[Fig6Point]:
    """Execute the Fig 6 sweep; returns one point per (kernel, machine, size).

    A capture/replay pipeline over one shared
    :class:`~repro.sim.parallel.SimPool`.  **Capture**: machines
    sharing a VLEN (e.g. 8L-Ara2 and 8L-AraXL) execute the same program
    over the same data, so one :class:`~repro.sim.parallel.CaptureTask`
    runs per distinct trace key.  **Replay**: every (kernel, machine,
    size) timing replay is independent, and each VLEN group's replays
    enter the pool as soon as its trace lands.  ``workers`` is the
    pool's total process budget (``1`` stays in-process, ``None``
    autodetects) and ``capture_workers`` the soft share of it the
    capture phase may hold while replays are pending; callers that want
    the pool's :class:`~repro.sim.parallel.PipelineStats` afterwards
    pass their own ``sim_pool`` (which then supplies the cache and
    worker budget).  The rendered output is byte-identical for any
    combination.
    """
    kernels = kernels or tuple(KERNELS)
    machines = machines if machines is not None else default_machines()
    kwargs_by_kernel = _SCALE_KWARGS[scale]
    if sim_pool is None:
        cache = trace_cache if trace_cache is not None else TraceCache()
        sim_pool = SimPool(workers=workers, capture_workers=capture_workers,
                           cache=cache, job_timeout=job_timeout)

    # ---- plan: one capture per distinct trace key; every (kernel,
    # machine, size) point replays against its VLEN group's capture.
    cidx_by_key: dict = {}
    captures: list[CaptureTask] = []
    replays = []  # (config, capture index)
    meta: list[tuple[str, int, SystemConfig, object]] = []
    for kernel_name in kernels:
        builder = KERNELS[kernel_name]
        kw = kwargs_by_kernel.get(kernel_name, {})
        for bpl in bytes_per_lane:
            for config in machines:
                run = builder(config, bpl, **kw)
                key = run.trace_key(config)
                cidx = cidx_by_key.get(key)
                if cidx is None:
                    cidx = cidx_by_key[key] = len(captures)
                    captures.append(CaptureTask.for_kernel(
                        kernel_name, config, bpl, kw, verify=verify))
                meta.append((kernel_name, bpl, config, run))
                replays.append((config, cidx))

    # ---- pipeline: captures fan out, replays start as traces land.
    reports = run_pipeline(captures, replays, sim_pool)

    # ---- assembly: index the normalization baseline per (kernel, B/lane)
    # after the replay phase, so custom `machines=` lists are order-
    # independent (a machine listed before 8L-Ara2 still normalizes).
    base_perf: dict[tuple[str, int], float] = {}
    for (kernel_name, bpl, config, _run), report in zip(meta, reports):
        if config.name == BASELINE_MACHINE:
            base_perf[(kernel_name, bpl)] = report.flops_per_cycle
    points: list[Fig6Point] = []
    for (kernel_name, bpl, config, run), report in zip(meta, reports):
        perf = report.flops_per_cycle
        base = base_perf.get((kernel_name, bpl))
        points.append(Fig6Point(
            kernel=kernel_name,
            machine=config.name,
            lanes=config.lanes,
            bytes_per_lane=bpl,
            cycles=report.cycles,
            flops_per_cycle=perf,
            utilization=report.fpu_utilization(run.max_flops_per_cycle),
            scaling_vs_8l_ara2=(perf / base) if base else 0.0,
        ))
    return points


def render_fig6(points: list[Fig6Point]) -> str:
    """One table per kernel, machines as rows, B/lane as columns."""
    out = []
    kernels = sorted({p.kernel for p in points})
    sizes = sorted({p.bytes_per_lane for p in points})
    # Index once: the triple render loop below would otherwise rescan the
    # whole point list per cell (O(n^2) in sweep size).
    by_key = {(p.kernel, p.machine, p.bytes_per_lane): p for p in points}
    for kernel in kernels:
        rows = []
        machines = []
        for p in points:
            if p.kernel == kernel and p.machine not in machines:
                machines.append(p.machine)
        for machine in machines:
            row: list[object] = [machine]
            for bpl in sizes:
                pt = by_key[(kernel, machine, bpl)]
                row.append(f"{pt.scaling_vs_8l_ara2:.2f}x/{pt.utilization * 100:.0f}%")
            rows.append(row)
        headers = ["machine"] + [f"{b} B/lane" for b in sizes]
        out.append(render_table(
            headers, rows,
            title=f"Fig 6 [{kernel}] — scaling vs 8L-Ara2 / FPU utilization"))
    return "\n\n".join(out)
