"""Experiment registry: run any paper table/figure by its identifier.

Every entry takes ``(scale, workers, trace_cache, capture_workers)``.
The **simulation sweeps** (:data:`SIMULATION_EXPERIMENTS`: fig6, fig7,
table1, table3) honour all four — ``workers`` is the total process
budget of the shared :class:`~repro.sim.parallel.SimPool` both sweep
phases run on, ``capture_workers`` the soft share of that budget the
capture phase may hold while replays are pending (the two phases run
as a pipeline: replays start as traces land), and ``trace_cache`` lets
them attach to the suite's shared disk trace store.  The **static
experiments** (:data:`STATIC_EXPERIMENTS`: fig1, fig8, fig9, table2)
regenerate fixed paper data (survey points, floorplan geometry, area
models); they accept the same arguments so the registry stays uniform,
and ignore them *by contract* — :func:`static_experiment` documents the
intent and the test suite asserts the two sets exactly partition
:data:`EXPERIMENTS`, so a new entry must declare which kind it is.
"""

from __future__ import annotations

import functools
from typing import Callable

from ..sim.trace_store import attach_store
from .fig6_scaling import render_fig6, run_fig6
from .fig7_latency import render_fig7, run_fig7
from .fig8_floorplan import render_fig8, run_fig8
from .fig9_area import render_fig9, run_fig9
from .survey import render_survey
from .table1_kernels import render_table1, run_table1
from .table2_area import render_table2, run_table2
from .table3_ppa import render_table3, run_table3

#: Experiments whose runners simulate kernels: ``scale``, ``workers``
#: and ``trace_cache`` all change how (never what) they compute.
SIMULATION_EXPERIMENTS = frozenset({"fig6", "fig7", "table1", "table3"})

#: Experiments that regenerate fixed paper data and deliberately ignore
#: ``scale``/``workers``/``trace_cache`` (see :func:`static_experiment`).
STATIC_EXPERIMENTS = frozenset({"fig1", "fig8", "fig9", "table2"})


def static_experiment(render: Callable[[], str]) -> Callable[..., str]:
    """Adapt a zero-argument static renderer to the registry signature.

    Static experiments have no simulation phase: there is no problem
    size to ``scale``, no batch for ``workers`` or ``capture_workers``
    to fan out, and no trace for a ``trace_cache`` to hold.  Accepting-and-dropping the
    arguments *here*, in one audited place, is what makes every other
    ``def _expN(scale, workers, trace_cache)`` ignoring a parameter a
    bug by definition.
    """
    @functools.wraps(render)
    def runner(scale: str, workers: int | None = 1, trace_cache=None,
               capture_workers: int | None = 1,
               job_timeout: float | None = None, sim_pool=None,
               machines=None) -> str:
        del scale, workers, trace_cache, capture_workers  # static data
        del job_timeout, sim_pool, machines
        return render()
    return runner


def _fig6(scale: str, workers: int | None = 1, trace_cache=None,
          capture_workers: int | None = 1,
          job_timeout: float | None = None, sim_pool=None,
          machines=None) -> str:
    return render_fig6(run_fig6(scale=scale, workers=workers,
                                trace_cache=trace_cache,
                                capture_workers=capture_workers,
                                job_timeout=job_timeout,
                                sim_pool=sim_pool,
                                machines=machines))


def _fig7(scale: str, workers: int | None = 1, trace_cache=None,
          capture_workers: int | None = 1,
          job_timeout: float | None = None, sim_pool=None,
          machines=None) -> str:
    # Fig 7 studies register cuts on one base machine at a time: with a
    # machine selection, the sweep runs once per machine and the tables
    # are concatenated (a single selection renders byte-identically to
    # the default when it names the default 64L machine).
    bases = machines if machines else [None]
    return "\n\n".join(
        render_fig7(run_fig7(scale=scale, workers=workers,
                             trace_cache=trace_cache,
                             capture_workers=capture_workers,
                             job_timeout=job_timeout,
                             sim_pool=sim_pool,
                             base_config=base))
        for base in bases)


def _table1(scale: str, workers: int | None = 1, trace_cache=None,
            capture_workers: int | None = 1,
            job_timeout: float | None = None, sim_pool=None,
            machines=None) -> str:
    # Table I measures kernel peaks on one machine at a time, like fig7.
    configs = machines if machines else [None]
    return "\n\n".join(
        render_table1(run_table1(scale=scale, workers=workers,
                                 trace_cache=trace_cache,
                                 capture_workers=capture_workers,
                                 job_timeout=job_timeout,
                                 sim_pool=sim_pool,
                                 config=config))
        for config in configs)


def _table3(scale: str, workers: int | None = 1, trace_cache=None,
            capture_workers: int | None = 1,
            job_timeout: float | None = None, sim_pool=None,
            machines=None) -> str:
    return render_table3(run_table3(scale=scale, workers=workers,
                                    trace_cache=trace_cache,
                                    capture_workers=capture_workers,
                                    job_timeout=job_timeout,
                                    sim_pool=sim_pool,
                                    configs=machines))


#: Experiment id -> callable(scale, workers, trace_cache,
#: capture_workers, job_timeout, sim_pool, machines) -> rendered text.
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "fig1": static_experiment(render_survey),
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": static_experiment(lambda: render_fig8(run_fig8(lanes=16))),
    "fig9": static_experiment(lambda: render_fig9(run_fig9())),
    "table1": _table1,
    "table2": static_experiment(lambda: render_table2(run_table2())),
    "table3": _table3,
}

assert set(EXPERIMENTS) == SIMULATION_EXPERIMENTS | STATIC_EXPERIMENTS
assert not SIMULATION_EXPERIMENTS & STATIC_EXPERIMENTS


def run_experiment(name: str, scale: str = "paper",
                   workers: int | None = 1,
                   trace_store=None,
                   capture_workers: int | None = 1,
                   job_timeout: float | None = None,
                   sim_pool=None,
                   machines=None) -> str:
    """Run one experiment by id ('fig6', 'table3', ...); returns text.

    ``workers`` is the total worker-process budget of the shared
    :class:`~repro.sim.SimPool` the simulation sweeps run on (``None``
    autodetects, ``1`` stays in-process), and ``capture_workers`` is
    the soft share of that budget the capture phase may hold while
    replays are pending (``1``, the default, captures in-process; the
    value is clamped to the budget).
    ``trace_store`` attaches the run to a shared disk trace store: a
    :class:`~repro.sim.TraceCache`/:class:`~repro.sim.TraceStore`
    instance or a directory path; when omitted, ``$REPRO_TRACE_STORE``
    names the store, and with neither the run keeps a private in-memory
    cache.  ``job_timeout`` arms the pool's per-job deadline (seconds;
    hung workers are cancelled and their jobs reassigned) and
    ``sim_pool`` substitutes an already-built shared pool, in which
    case the other pool knobs are ignored.  Rendered output is
    byte-identical for any ``workers`` value, any store state (cold,
    warm, or GC'd mid-run), and any recovered fault.

    ``machines`` substitutes the machine selection of the simulation
    sweeps: a sequence of :class:`~repro.params.SystemConfig` objects,
    typically resolved from registry names or spec files via
    :func:`repro.machine.get_machine`.  fig6 and table3 sweep the whole
    selection in one table; fig7 and table1 run once per machine
    (concatenating tables); static experiments ignore it by contract.
    ``None`` keeps each experiment's paper defaults, and a selection
    naming exactly the defaults renders byte-identically to them.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    cache = attach_store(trace_store) if name in SIMULATION_EXPERIMENTS \
        else None
    return runner(scale, workers, cache, capture_workers,
                  job_timeout, sim_pool, machines)
