"""Experiment registry: run any paper table/figure by its identifier.

Every entry takes ``(scale, workers)``; the simulation sweeps with a
parallel replay phase (fig6/fig7/table3) thread ``workers`` into their
:class:`~repro.sim.parallel.ReplayPool`, the static experiments accept
and ignore it so the registry stays uniform.
"""

from __future__ import annotations

from typing import Callable

from .fig6_scaling import render_fig6, run_fig6
from .fig7_latency import render_fig7, run_fig7
from .fig8_floorplan import render_fig8, run_fig8
from .fig9_area import render_fig9, run_fig9
from .survey import render_survey
from .table1_kernels import render_table1, run_table1
from .table2_area import render_table2, run_table2
from .table3_ppa import render_table3, run_table3


def _fig6(scale: str, workers: int | None = 1) -> str:
    return render_fig6(run_fig6(scale=scale, workers=workers))


def _fig7(scale: str, workers: int | None = 1) -> str:
    return render_fig7(run_fig7(scale=scale, workers=workers))


def _fig8(scale: str, workers: int | None = 1) -> str:
    return render_fig8(run_fig8(lanes=16))


def _fig9(scale: str, workers: int | None = 1) -> str:
    return render_fig9(run_fig9())


def _table1(scale: str, workers: int | None = 1) -> str:
    return render_table1(run_table1(scale=scale))


def _table2(scale: str, workers: int | None = 1) -> str:
    return render_table2(run_table2())


def _table3(scale: str, workers: int | None = 1) -> str:
    return render_table3(run_table3(scale=scale, workers=workers))


def _fig1(scale: str, workers: int | None = 1) -> str:
    return render_survey()


#: Experiment id -> callable(scale, workers) -> rendered text.
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "fig1": _fig1,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
}


def run_experiment(name: str, scale: str = "paper",
                   workers: int | None = 1) -> str:
    """Run one experiment by id ('fig6', 'table3', ...); returns text.

    ``workers`` fans the replay phase of the simulation sweeps out over
    that many processes (``None`` autodetects, ``1`` stays in-process);
    rendered output is byte-identical for any value.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale, workers)
