"""Fig 9 — area breakdown: 16-lane AraXL vs 16-lane Ara2 (kGE).

The model's components are grouped exactly like the figure (top-level
interfaces folded into their functional units) and compared against the
published bars, including the two headline deltas: A2A units -58%,
total -14%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ppa.area import AreaBreakdown, ara2_area, araxl_area
from ..report.tables import render_table

#: Published Fig 9 bars (kGE).  Note the published component lists sum
#: below the published totals; the residual is the 'misc' glue our model
#: carries explicitly.
PAPER_FIG9 = {
    "16L-Ara2": {"LANES": 10048, "MASKU": 1105, "SLDU": 196, "VLSU": 1677,
                 "SEQ+DISP": 52, "CVA6": 904, "TOTAL": 14773},
    "16L-AraXL": {"LANES": 10032, "MASKU": 328, "SLDU": 425, "VLSU": 507,
                  "SEQ+DISP": 134, "CVA6": 936, "TOTAL": 12641},
    "a2a_reduction": 0.58,
    "total_reduction": 0.14,
}


@dataclass(frozen=True)
class Fig9Result:
    """Area breakdowns of the Ara2 and AraXL 16-lane designs."""
    ara2: AreaBreakdown
    araxl: AreaBreakdown

    @property
    def a2a_reduction(self) -> float:
        return 1.0 - self.araxl.a2a_units_kge / self.ara2.a2a_units_kge

    @property
    def total_reduction(self) -> float:
        return 1.0 - self.araxl.total_kge / self.ara2.total_kge


def run_fig9(lanes: int = 16) -> Fig9Result:
    """Compute both area breakdowns at ``lanes`` lanes."""
    return Fig9Result(ara2=ara2_area(lanes), araxl=araxl_area(lanes))


def render_fig9(result: Fig9Result) -> str:
    """Component-by-component area table against the paper's bars."""
    ara2_row = result.ara2.fig9_row()
    araxl_row = result.araxl.fig9_row()
    paper2 = PAPER_FIG9["16L-Ara2"]
    paperx = PAPER_FIG9["16L-AraXL"]
    rows = []
    for comp in ara2_row:
        rows.append((comp,
                     round(ara2_row[comp]), paper2[comp],
                     round(araxl_row[comp]), paperx[comp]))
    rows.append(("TOTAL",
                 round(result.ara2.total_kge), paper2["TOTAL"],
                 round(result.araxl.total_kge), paperx["TOTAL"]))
    table = render_table(
        ("component", "Ara2 model", "Ara2 paper", "AraXL model",
         "AraXL paper"),
        rows, title="Fig 9 — 16-lane area breakdown [kGE]")
    deltas = (
        f"A2A units: -{result.a2a_reduction * 100:.0f}% "
        f"(paper -{PAPER_FIG9['a2a_reduction'] * 100:.0f}%)   "
        f"total: -{result.total_reduction * 100:.0f}% "
        f"(paper -{PAPER_FIG9['total_reduction'] * 100:.0f}%)"
    )
    return f"{table}\n{deltas}"
