"""Fig 1 — vector processor survey: VLEN vs FPUs per instruction.

Static data read from the paper's Fig 1 (positions are approximate where
the figure is the only public source).  Regenerating the figure means
printing/plotting these points; the claim the figure supports is that no
prior RISC-V design reaches the (65536 bit, 64 FPU) corner AraXL fills.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..report.tables import render_table


@dataclass(frozen=True)
class SurveyEntry:
    """One processor of the paper's Fig 1 survey scatter."""
    name: str
    vlen_bits: int
    fpus: int
    riscv: bool
    source: str = "Fig 1"


SURVEY: tuple[SurveyEntry, ...] = (
    SurveyEntry("2L-Ara2", 2048, 2, True),
    SurveyEntry("4L-Ara2", 4096, 4, True),
    SurveyEntry("8L-Ara2", 8192, 8, True),
    SurveyEntry("16L-Ara2", 16384, 16, True),
    SurveyEntry("Vitruvius+", 16384, 8, True),
    SurveyEntry("16L-AraXL", 16384, 16, True),
    SurveyEntry("32L-AraXL", 32768, 32, True),
    SurveyEntry("64L-AraXL", 65536, 64, True),
    SurveyEntry("SiFive P270", 256, 1, True),
    SurveyEntry("SiFive X280/P670", 512, 2, True),
    SurveyEntry("SiFive X390", 2048, 4, True),
    SurveyEntry("Andes AX45MPV", 1024, 16, True),
    SurveyEntry("Semidynamics", 4096, 32, True),
    SurveyEntry("Spatz", 512, 4, True),
    SurveyEntry("Vicuna-small", 128, 1, True),
    SurveyEntry("Vicuna-fast", 2048, 8, True),
    SurveyEntry("Arrow", 512, 1, True),
    SurveyEntry("Fugaku A64FX", 512, 16, False),
    SurveyEntry("VE30", 16384, 32, False),
)


def araxl_is_frontier() -> bool:
    """AraXL-64 dominates every RISC-V entry on both axes (Fig 1 claim)."""
    xl = next(e for e in SURVEY if e.name == "64L-AraXL")
    others = [e for e in SURVEY if e.riscv and e.name != xl.name]
    return all(e.vlen_bits <= xl.vlen_bits and e.fpus <= xl.fpus
               for e in others) and not any(
        e.vlen_bits >= xl.vlen_bits and e.fpus >= xl.fpus for e in others)


def render_survey() -> str:
    """The Fig 1 survey as a table, sorted by VLEN then FPU count."""
    rows = [(e.name, e.vlen_bits, e.fpus, "RISC-V" if e.riscv else "other")
            for e in sorted(SURVEY, key=lambda e: (e.vlen_bits, e.fpus))]
    table = render_table(
        ("processor", "VLEN [bit]", "FPUs/insn", "ISA"), rows,
        title="Fig 1 — vector processors by VLEN and FPU count")
    frontier = ("64L-AraXL uniquely occupies the max-VLEN/max-FPU corner"
                if araxl_is_frontier() else
                "WARNING: survey no longer shows AraXL on the frontier")
    return f"{table}\n{frontier}"
