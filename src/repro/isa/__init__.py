"""RISC-V scalar IR + RVV 1.0 subset used by the AraXL reproduction.

The ISA layer is deliberately assembly-shaped rather than binary-encoded:
instructions are small dataclasses carrying named operands, and programs are
built with :class:`~repro.isa.asm.Assembler`, whose method names are the RVV
mnemonics.  The functional simulator gives them exact semantics and the
timing engine gives them cycles.
"""

from .vtype import SEW, LMUL, VType, vsetvl_result
from .registers import XReg, FReg, VReg, x, f, v
from .instructions import Instruction, InstrSpec, SPEC_TABLE, spec_for, ExecUnit
from .program import Program
from .asm import Assembler

__all__ = [
    "SEW",
    "LMUL",
    "VType",
    "vsetvl_result",
    "XReg",
    "FReg",
    "VReg",
    "x",
    "f",
    "v",
    "Instruction",
    "InstrSpec",
    "SPEC_TABLE",
    "spec_for",
    "ExecUnit",
    "Program",
    "Assembler",
]
