"""RVV 1.0 ``vtype`` semantics: SEW, LMUL and ``vsetvli`` behaviour.

Implements the architecturally visible part of the vector configuration:
the ``vtype`` CSR fields used by the paper's kernels (integer LMUL 1-8,
SEW 8-64, tail/mask agnosticism is accepted but has no modelled effect)
and the new-``vl`` computation rule of ``vsetvl{i}``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import IllegalInstructionError, IsaError


class SEW(enum.IntEnum):
    """Selected element width in bits."""

    E8 = 8
    E16 = 16
    E32 = 32
    E64 = 64

    @property
    def bytes(self) -> int:
        return self.value // 8

    @classmethod
    def from_bits(cls, bits: int) -> "SEW":
        try:
            return cls(bits)
        except ValueError:
            raise IsaError(f"unsupported SEW: {bits} bits") from None


class LMUL(enum.IntEnum):
    """Vector register grouping factor (integer values only).

    Fractional LMUL exists in RVV 1.0 but is not used by any of the paper's
    benchmarks (Table I uses LMUL 1, 2, 4 and 8) and is rejected here.
    """

    M1 = 1
    M2 = 2
    M4 = 4
    M8 = 8

    @classmethod
    def from_int(cls, value: int) -> "LMUL":
        try:
            return cls(value)
        except ValueError:
            raise IsaError(f"unsupported LMUL: {value}") from None


@dataclass(frozen=True)
class VType:
    """Decoded ``vtype`` value.

    ``vill`` marks the illegal configuration produced when ``vsetvli``
    requests an unsupported combination; any vector instruction executed
    under an ill-formed vtype must trap (RVV 1.0 Section 3.4.4), which the
    functional engine enforces.
    """

    sew: SEW = SEW.E64
    lmul: LMUL = LMUL.M1
    tail_agnostic: bool = True
    mask_agnostic: bool = True
    vill: bool = False

    def vlmax(self, vlen_bits: int) -> int:
        """VLMAX = VLEN * LMUL / SEW for the integer-LMUL subset."""
        if self.vill:
            return 0
        return vlen_bits * int(self.lmul) // int(self.sew)

    def register_group(self, base: int) -> tuple[int, ...]:
        """Register indices occupied by a group starting at ``base``.

        RVV requires the base register of a group to be LMUL-aligned.
        """
        step = int(self.lmul)
        if base % step:
            raise IllegalInstructionError(
                f"v{base} is not aligned to LMUL={step} register group"
            )
        return tuple(range(base, base + step))

    @property
    def sew_bytes(self) -> int:
        return self.sew.bytes

    def encode(self) -> int:
        """Pack into the vtype CSR bit layout (vsew[5:3], vlmul[2:0])."""
        if self.vill:
            return 1 << 63
        vsew = {8: 0, 16: 1, 32: 2, 64: 3}[int(self.sew)]
        vlmul = {1: 0, 2: 1, 4: 2, 8: 3}[int(self.lmul)]
        value = vlmul | (vsew << 3)
        if self.tail_agnostic:
            value |= 1 << 6
        if self.mask_agnostic:
            value |= 1 << 7
        return value

    @classmethod
    def decode(cls, value: int) -> "VType":
        if value >> 63:
            return cls(vill=True)
        vlmul = value & 0x7
        vsew = (value >> 3) & 0x7
        if vlmul > 3 or vsew > 3:
            return cls(vill=True)
        return cls(
            sew=SEW([8, 16, 32, 64][vsew]),
            lmul=LMUL([1, 2, 4, 8][vlmul]),
            tail_agnostic=bool(value & (1 << 6)),
            mask_agnostic=bool(value & (1 << 7)),
        )


def vsetvl_result(avl: int, vtype: VType, vlen_bits: int) -> int:
    """New ``vl`` produced by ``vsetvl{i}`` for an application vector length.

    Implements the RVV 1.0 constraint set in its simplest legal form
    (the one hardware like Ara implements): ``vl = min(avl, VLMAX)``.
    """
    if avl < 0:
        raise IsaError("application vector length cannot be negative")
    vlmax = vtype.vlmax(vlen_bits)
    return min(avl, vlmax)
