"""Register name model for the assembly-level IR.

Registers are represented as small frozen dataclasses rather than raw
strings so operand kinds are checked at assembly time, not deep inside the
simulator.  The ``x()``, ``f()`` and ``v()`` helpers build them from indices
and the parser accepts the usual textual names ("x5", "f1", "v8").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IsaError


@dataclass(frozen=True)
class _Reg:
    index: int

    PREFIX = "?"
    COUNT = 32

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.COUNT:
            raise IsaError(f"{self.PREFIX}{self.index} is out of range")

    def __str__(self) -> str:
        return f"{self.PREFIX}{self.index}"

    def __repr__(self) -> str:
        return str(self)


class XReg(_Reg):
    """Integer register x0..x31 (x0 is hardwired to zero)."""

    PREFIX = "x"


class FReg(_Reg):
    """Floating-point register f0..f31."""

    PREFIX = "f"


class VReg(_Reg):
    """Vector register v0..v31 (v0 doubles as the mask register)."""

    PREFIX = "v"


def x(index: int) -> XReg:
    """Scalar integer register ``x<index>``."""
    return XReg(index)


def f(index: int) -> FReg:
    """Scalar floating-point register ``f<index>``."""
    return FReg(index)


def v(index: int) -> VReg:
    """Vector register ``v<index>``."""
    return VReg(index)


_KINDS = {"x": XReg, "f": FReg, "v": VReg}

#: Register objects are immutable, so textual names resolve to shared
#: instances; assembling leans on this cache for every operand.
_PARSE_CACHE: dict[str, _Reg] = {}


def parse_reg(name: object) -> _Reg:
    """Accept a register object or a textual name like ``"x5"``."""
    if isinstance(name, _Reg):
        return name
    if isinstance(name, str):
        reg = _PARSE_CACHE.get(name)
        if reg is not None:
            return reg
        if len(name) >= 2 and name[0] in _KINDS:
            try:
                reg = _KINDS[name[0]](int(name[1:]))
            except ValueError:
                raise IsaError(f"not a register: {name!r}") from None
            _PARSE_CACHE[name] = reg
            return reg
    raise IsaError(f"not a register: {name!r}")


def expect(reg: object, kind: type, what: str) -> _Reg:
    """Parse ``reg`` and require a particular register file."""
    parsed = parse_reg(reg)
    if not isinstance(parsed, kind):
        raise IsaError(f"{what} must be a {kind.__name__}, got {parsed}")
    return parsed
