"""Assembler DSL: build programs by calling mnemonics as methods.

Every mnemonic in :data:`~repro.isa.instructions.SPEC_TABLE` is available as
a method whose positional arguments follow the RVV assembly operand order
for that instruction's format (see ``FORMAT_ROLES``).  Dots in mnemonics
become underscores, and Python keywords get a trailing underscore::

    a = Assembler("axpy")
    a.vsetvli("x1", "x2", sew=64, lmul=4)
    a.vle64_v("v8", "x10")
    a.vfmacc_vf("v16", "f0", "v8")       # v16 += f0 * v8
    a.vse64_v("v16", "x11")
    a.halt()
    prog = a.build()

Vector instructions accept ``masked=True`` to execute under ``v0.t``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import AssemblerError
from .instructions import (FORMAT_ROLES, Instruction, InstrSpec, SPEC_TABLE,
                           spec_for)
from .program import Program
from .registers import FReg, VReg, XReg, expect
from .vtype import LMUL, SEW

#: Which register class each operand role must hold.
_ROLE_KIND: dict[str, type] = {
    "rd": XReg, "rs1": XReg, "rs2": XReg,
    "frd": FReg, "frs1": FReg, "frs2": FReg, "frs3": FReg,
    "vd": VReg, "vs1": VReg, "vs2": VReg, "vs3": VReg,
}
_INT_ROLES = frozenset({"imm"})
_LABEL_ROLES = frozenset({"target", "name"})


class Assembler:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Define a branch target at the current position."""
        if not isinstance(name, str) or not name:
            raise AssemblerError(f"label name must be a non-empty string: {name!r}")
        if name in self._labels:
            raise AssemblerError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)

    def emit(self, instr: Instruction) -> Instruction:
        """Append an already-constructed instruction (escape hatch)."""
        self._instructions.append(instr)
        return instr

    def build(self) -> Program:
        """Finalize; the assembler can keep being used afterwards."""
        return Program(
            instructions=tuple(self._instructions),
            labels=dict(self._labels),
            name=self._name,
        )

    def __len__(self) -> int:
        return len(self._instructions)

    # ------------------------------------------------------------------
    # Mnemonic dispatch
    # ------------------------------------------------------------------
    def __getattr__(self, mnemonic: str) -> Callable[..., Instruction]:
        if mnemonic.startswith("_") or mnemonic not in SPEC_TABLE:
            raise AttributeError(mnemonic)
        spec = spec_for(mnemonic)

        def emit(*args: Any, **kwargs: Any) -> Instruction:
            return self._assemble(spec, args, kwargs)

        emit.__name__ = mnemonic
        # Cache on the instance so repeated emissions of one mnemonic
        # (every kernel loop body) skip __getattr__ and closure creation.
        self.__dict__[mnemonic] = emit
        return emit

    def _assemble(
        self, spec: InstrSpec, args: tuple[Any, ...], kwargs: dict[str, Any]
    ) -> Instruction:
        roles = FORMAT_ROLES[spec.fmt]
        masked = bool(kwargs.pop("masked", False))
        if masked and not spec.is_vector:
            raise AssemblerError(f"{spec.mnemonic} cannot be masked")
        values: dict[str, Any] = {}
        # vsetvli keeps sew/lmul keyword-only for readability at call sites.
        if spec.fmt == "vsetvli":
            if len(args) != 2:
                raise AssemblerError("vsetvli takes (rd, rs1, sew=, lmul=)")
            values["rd"] = expect(args[0], XReg, "rd")
            values["rs1"] = expect(args[1], XReg, "rs1")
            values["sew"] = SEW.from_bits(int(kwargs.pop("sew", 64)))
            values["lmul"] = LMUL.from_int(int(kwargs.pop("lmul", 1)))
        else:
            merged = list(args)
            for role in roles[len(args):]:
                if role in kwargs:
                    merged.append(kwargs.pop(role))
            if len(merged) != len(roles):
                raise AssemblerError(
                    f"{spec.mnemonic} expects operands {roles}, got {len(merged)}"
                )
            for role, value in zip(roles, merged):
                values[role] = self._check_operand(spec, role, value)
        if kwargs:
            raise AssemblerError(
                f"{spec.mnemonic}: unexpected keyword(s) {sorted(kwargs)}"
            )
        if masked:
            values["masked"] = True
            if values.get("vd") == VReg(0) and not spec.mask_producer:
                raise AssemblerError(
                    f"{spec.mnemonic}: masked op cannot overwrite v0"
                )
        instr = Instruction(spec=spec, ops=values)
        self._instructions.append(instr)
        return instr

    @staticmethod
    def _check_operand(spec: InstrSpec, role: str, value: Any) -> Any:
        if role in _ROLE_KIND:
            return expect(value, _ROLE_KIND[role], role)
        if role in _INT_ROLES:
            if isinstance(value, bool) or not isinstance(value, int):
                raise AssemblerError(
                    f"{spec.mnemonic}: operand {role} must be an int, got {value!r}"
                )
            return value
        if role in _LABEL_ROLES:
            if not isinstance(value, str) or not value:
                raise AssemblerError(
                    f"{spec.mnemonic}: operand {role} must be a label name"
                )
            return value
        raise AssemblerError(f"unhandled operand role {role!r}")  # pragma: no cover
