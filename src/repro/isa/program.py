"""Program container: an instruction list plus resolved labels.

A :class:`Program` is immutable once built.  Branch targets are stored as
label names inside instructions; the program resolves them to instruction
indices, so the interpreters never do string lookups in their hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import AssemblerError
from .instructions import Instruction


@dataclass(frozen=True)
class Program:
    """An assembled instruction sequence with labels and a content hash."""
    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        for instr in self.instructions:
            target = instr.get("target")
            if target is not None and target not in self.labels:
                raise AssemblerError(
                    f"branch to undefined label {target!r} in {self.name}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the instruction stream (cached).

        Keys trace caches: two programs with equal fingerprints execute
        identically from identical initial state at a given VLEN.  Uses
        SHA-256 over the textual instruction listing plus resolved labels
        (not Python ``hash``, which is randomized per interpreter run).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(self.name.encode())
            for label in sorted(self.labels):
                h.update(f"\x00{label}@{self.labels[label]}".encode())
            for instr in self.instructions:
                h.update(b"\x00")
                h.update(str(instr).encode())
            cached = h.hexdigest()
            # Frozen dataclass: cache through __dict__ to bypass the guard.
            self.__dict__["_fingerprint"] = cached
        return cached

    def __getstate__(self):
        # The decoded-plan cache holds lambdas; drop caches and pickle
        # only the declared fields (plans regenerate lazily on load).
        return {"instructions": self.instructions, "labels": self.labels,
                "name": self.name}

    def __setstate__(self, state):
        self.__dict__.update(state)

    def target_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblerError(f"undefined label {label!r}") from None

    def count(self, predicate) -> int:
        """Number of instructions satisfying ``predicate`` (static count)."""
        return sum(1 for instr in self.instructions if predicate(instr))

    @property
    def static_vector_instructions(self) -> int:
        return self.count(lambda i: i.spec.is_vector)

    def listing(self) -> str:
        """Human-readable disassembly with label annotations."""
        by_index: dict[int, list[str]] = {}
        for name, idx in self.labels.items():
            by_index.setdefault(idx, []).append(name)
        lines = []
        for idx, instr in enumerate(self.instructions):
            for name in by_index.get(idx, ()):
                lines.append(f"{name}:")
            lines.append(f"  {idx:5d}  {instr}")
        return "\n".join(lines)
