"""Instruction metadata: formats, execution units, FLOP accounting.

Every supported mnemonic has an :class:`InstrSpec` row describing

* ``fmt`` — its operand signature, used by the assembler to validate and by
  the simulators to pull operands out by role;
* ``unit`` — which execution unit runs it (Ara's VALU / MFPU share a lane
  slot; VLSU / SLDU / MASKU are the units whose interconnects the paper
  redesigns);
* ``flops`` — DP-FLOP per active element, the quantity behind every
  GFLOPs and utilization number in the evaluation (FMA counts 2);
* structural flags used by the timing engine (loads, stores, slides,
  reductions, widening, mask production).

The table is the single source of truth: the assembler exposes exactly
these mnemonics as methods, and both simulators refuse anything absent
from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import IsaError


class ExecUnit(enum.Enum):
    """Execution unit classes of the Ara/AraXL microarchitecture."""

    SCALAR = "scalar"  # CVA6 pipeline
    VALU = "valu"  # per-lane integer SIMD ALU
    VMFPU = "vmfpu"  # per-lane FPU (the 'FPU' of every paper metric)
    VLSU = "vlsu"  # vector load/store unit
    SLDU = "sldu"  # slide unit (+ ring interface in AraXL)
    MASKU = "masku"  # mask unit
    NONE = "none"  # pseudo-ops: label/halt/nop


class MemPattern(enum.Enum):
    """Memory access pattern of an instruction (drives LSU timing)."""
    NONE = "none"
    UNIT = "unit"  # unit-stride: full-bandwidth path
    STRIDED = "strided"  # low-throughput path (1 elem/cycle/cluster)
    INDEXED = "indexed"  # low-throughput path, index vector operand
    MASK = "mask"  # vlm/vsm mask loads


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic: format, unit, FLOPs, flags."""
    mnemonic: str
    fmt: str
    unit: ExecUnit
    flops: float = 0.0
    is_load: bool = False
    is_store: bool = False
    is_reduction: bool = False
    is_slide: bool = False
    slide1: bool = False
    widens: bool = False
    narrows: bool = False
    mask_producer: bool = False
    mask_logical: bool = False
    mem_pattern: MemPattern = MemPattern.NONE
    #: Peak throughput in elements per lane per cycle (1.0 for everything
    #: pipelined; strided/indexed memory ops are limited elsewhere).
    throughput: float = 1.0
    #: True when the scalar core must wait for a result coming back from
    #: the vector unit (vfmv.f.s, vmv.x.s, vcpop, vfirst, and reductions
    #: read through them).
    scalar_result: bool = False

    @property
    def is_vector(self) -> bool:
        return self.unit not in (ExecUnit.SCALAR, ExecUnit.NONE)

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction: a spec reference plus named operands."""

    spec: InstrSpec
    ops: Mapping[str, Any] = field(default_factory=dict)

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def op(self, role: str) -> Any:
        try:
            return self.ops[role]
        except KeyError:
            raise IsaError(
                f"{self.mnemonic} has no operand {role!r} (has {sorted(self.ops)})"
            ) from None

    def get(self, role: str, default: Any = None) -> Any:
        return self.ops.get(role, default)

    @property
    def masked(self) -> bool:
        return bool(self.ops.get("masked", False))

    def __getstate__(self):
        # Decode caches hold lambdas (unpicklable) and are rebuilt on
        # demand; pickle only the declared fields.
        return {"spec": self.spec, "ops": self.ops}

    def __setstate__(self, state):
        self.__dict__.update(state)

    def __str__(self) -> str:
        shown = {k: v for k, v in self.ops.items() if k != "masked"}
        body = ", ".join(f"{k}={v}" for k, v in shown.items())
        suffix = ", v0.t" if self.masked else ""
        return f"{self.mnemonic} {body}{suffix}"


SPEC_TABLE: dict[str, InstrSpec] = {}


def _add(spec: InstrSpec) -> None:
    if spec.mnemonic in SPEC_TABLE:
        raise IsaError(f"duplicate spec {spec.mnemonic}")
    SPEC_TABLE[spec.mnemonic] = spec


def spec_for(mnemonic: str) -> InstrSpec:
    """Look one mnemonic up in the spec table (raises on unknown)."""
    try:
        return SPEC_TABLE[mnemonic]
    except KeyError:
        raise IsaError(f"unknown instruction {mnemonic!r}") from None


# ----------------------------------------------------------------------
# Scalar IR (CVA6 side)
# ----------------------------------------------------------------------
def _scalar(mnemonic: str, fmt: str, **kw: Any) -> None:
    _add(InstrSpec(mnemonic, fmt, ExecUnit.SCALAR, **kw))


for _m in ("nop", "halt"):
    _add(InstrSpec(_m, "none", ExecUnit.NONE))
_add(InstrSpec("label", "label", ExecUnit.NONE))

_scalar("li", "rd_imm")
_scalar("mv", "rd_rs")
for _m in ("add", "sub", "mul", "mulh", "div", "rem", "and_", "or_", "xor",
           "sll", "srl", "sra", "slt", "sltu", "min_", "max_"):
    _scalar(_m, "rd_rs_rs")
for _m in ("addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti"):
    _scalar(_m, "rd_rs_imm")
for _m in ("ld", "lw", "lh", "lb"):
    _scalar(_m, "load", is_load=True)
for _m in ("sd", "sw", "sh", "sb"):
    _scalar(_m, "store", is_store=True)
for _m in ("fld", "flw"):
    _scalar(_m, "fload", is_load=True)
for _m in ("fsd", "fsw"):
    _scalar(_m, "fstore", is_store=True)
for _m in ("fadd_d", "fsub_d", "fmul_d", "fdiv_d", "fmin_d", "fmax_d", "fsgnj_d"):
    _scalar(_m, "frd_frs_frs")
for _m in ("fmadd_d", "fmsub_d", "fnmadd_d", "fnmsub_d"):
    _scalar(_m, "frd_frs_frs_frs")
_scalar("fsqrt_d", "frd_frs")
_scalar("fmv_d", "frd_frs")
_scalar("fneg_d", "frd_frs")
_scalar("fabs_d", "frd_frs")
_scalar("fmv_d_x", "frd_rs")
_scalar("fcvt_d_l", "frd_rs")
_scalar("fmv_x_d", "rd_frs")
_scalar("fcvt_l_d", "rd_frs")
for _m in ("feq_d", "flt_d", "fle_d"):
    _scalar(_m, "rd_frs_frs")
for _m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
    _scalar(_m, "branch")
for _m in ("beqz", "bnez", "bltz", "bgez", "blez", "bgtz"):
    _scalar(_m, "branchz")
_scalar("j", "jump")

# ----------------------------------------------------------------------
# Vector configuration
# ----------------------------------------------------------------------
_add(InstrSpec("vsetvli", "vsetvli", ExecUnit.SCALAR))

# ----------------------------------------------------------------------
# Vector memory
# ----------------------------------------------------------------------
for _ew in (8, 16, 32, 64):
    _add(InstrSpec(f"vle{_ew}_v", "vl_unit", ExecUnit.VLSU, is_load=True,
                   mem_pattern=MemPattern.UNIT))
    _add(InstrSpec(f"vse{_ew}_v", "vs_unit", ExecUnit.VLSU, is_store=True,
                   mem_pattern=MemPattern.UNIT))
    _add(InstrSpec(f"vlse{_ew}_v", "vl_strided", ExecUnit.VLSU, is_load=True,
                   mem_pattern=MemPattern.STRIDED))
    _add(InstrSpec(f"vsse{_ew}_v", "vs_strided", ExecUnit.VLSU, is_store=True,
                   mem_pattern=MemPattern.STRIDED))
    _add(InstrSpec(f"vluxei{_ew}_v", "vl_indexed", ExecUnit.VLSU, is_load=True,
                   mem_pattern=MemPattern.INDEXED))
    _add(InstrSpec(f"vsuxei{_ew}_v", "vs_indexed", ExecUnit.VLSU, is_store=True,
                   mem_pattern=MemPattern.INDEXED))
_add(InstrSpec("vlm_v", "vl_unit", ExecUnit.VLSU, is_load=True,
               mem_pattern=MemPattern.MASK))
_add(InstrSpec("vsm_v", "vs_unit", ExecUnit.VLSU, is_store=True,
               mem_pattern=MemPattern.MASK))

# ----------------------------------------------------------------------
# Vector integer arithmetic (VALU)
# ----------------------------------------------------------------------
def _int_op(base: str, forms: str = "vxi") -> None:
    if "v" in forms:
        _add(InstrSpec(f"{base}_vv", "vvv", ExecUnit.VALU))
    if "x" in forms:
        _add(InstrSpec(f"{base}_vx", "vvx", ExecUnit.VALU))
    if "i" in forms:
        _add(InstrSpec(f"{base}_vi", "vvi", ExecUnit.VALU))


_int_op("vadd")
_int_op("vsub", "vx")
_int_op("vrsub", "xi")
_int_op("vand")
_int_op("vor")
_int_op("vxor")
_int_op("vsll")
_int_op("vsrl")
_int_op("vsra")
_int_op("vmin", "vx")
_int_op("vmax", "vx")
_int_op("vminu", "vx")
_int_op("vmaxu", "vx")
_int_op("vmul", "vx")
_int_op("vmulh", "vx")
_int_op("vdiv", "vx")
_int_op("vrem", "vx")
_add(InstrSpec("vmacc_vv", "fma_vv", ExecUnit.VALU))
_add(InstrSpec("vmacc_vx", "fma_vx", ExecUnit.VALU))
_add(InstrSpec("vnmsac_vv", "fma_vv", ExecUnit.VALU))
_add(InstrSpec("vmv_v_v", "v_unary", ExecUnit.VALU))
_add(InstrSpec("vmv_v_x", "vx_splat", ExecUnit.VALU))
_add(InstrSpec("vmv_v_i", "vi_splat", ExecUnit.VALU))
_add(InstrSpec("vmv_s_x", "sx", ExecUnit.VALU))
_add(InstrSpec("vmv_x_s", "xs", ExecUnit.VALU, scalar_result=True))
# widening integer
_add(InstrSpec("vwadd_vv", "vvv", ExecUnit.VALU, widens=True))
_add(InstrSpec("vwmul_vv", "vvv", ExecUnit.VALU, widens=True))
_add(InstrSpec("vnsrl_wx", "vvx", ExecUnit.VALU, narrows=True))
_add(InstrSpec("vnsrl_wi", "vvi", ExecUnit.VALU, narrows=True))

# integer compares -> mask register destination
for _base, _forms in (
    ("vmseq", "vxi"), ("vmsne", "vxi"), ("vmslt", "vx"),
    ("vmsle", "vxi"), ("vmsgt", "xi"), ("vmsltu", "vx"), ("vmsleu", "vxi"),
):
    if "v" in _forms:
        _add(InstrSpec(f"{_base}_vv", "vvv", ExecUnit.VALU, mask_producer=True))
    if "x" in _forms:
        _add(InstrSpec(f"{_base}_vx", "vvx", ExecUnit.VALU, mask_producer=True))
    if "i" in _forms:
        _add(InstrSpec(f"{_base}_vi", "vvi", ExecUnit.VALU, mask_producer=True))

# merges (read v0 as the selector)
_add(InstrSpec("vmerge_vvm", "vvv", ExecUnit.VALU))
_add(InstrSpec("vmerge_vxm", "vvx", ExecUnit.VALU))
_add(InstrSpec("vmerge_vim", "vvi", ExecUnit.VALU))
_add(InstrSpec("vfmerge_vfm", "vvf", ExecUnit.VMFPU))

# ----------------------------------------------------------------------
# Vector floating point (VMFPU) — the FLOP counters of the evaluation
# ----------------------------------------------------------------------
def _fp_op(base: str, forms: str = "vf", flops: float = 1.0, **kw: Any) -> None:
    if "v" in forms:
        _add(InstrSpec(f"{base}_vv", "vvv", ExecUnit.VMFPU, flops=flops, **kw))
    if "f" in forms:
        _add(InstrSpec(f"{base}_vf", "vvf", ExecUnit.VMFPU, flops=flops, **kw))


_fp_op("vfadd")
_fp_op("vfsub")
_fp_op("vfrsub", "f")
_fp_op("vfmul")
_fp_op("vfdiv")
_fp_op("vfrdiv", "f")
_fp_op("vfmin")
_fp_op("vfmax")
_fp_op("vfsgnj", flops=0.0)
_fp_op("vfsgnjn", flops=0.0)
_fp_op("vfsgnjx", flops=0.0)
_add(InstrSpec("vfsqrt_v", "v_unary", ExecUnit.VMFPU, flops=1.0))
_add(InstrSpec("vfabs_v", "v_unary", ExecUnit.VMFPU, flops=0.0))
_add(InstrSpec("vfneg_v", "v_unary", ExecUnit.VMFPU, flops=0.0))

for _base in ("vfmacc", "vfnmacc", "vfmsac", "vfnmsac",
              "vfmadd", "vfmsub", "vfnmadd", "vfnmsub"):
    _add(InstrSpec(f"{_base}_vv", "fma_vv", ExecUnit.VMFPU, flops=2.0))
    _add(InstrSpec(f"{_base}_vf", "fma_vf", ExecUnit.VMFPU, flops=2.0))

_add(InstrSpec("vfmv_v_f", "vf_splat", ExecUnit.VMFPU))
_add(InstrSpec("vfmv_s_f", "sf", ExecUnit.VMFPU))
_add(InstrSpec("vfmv_f_s", "fv", ExecUnit.VMFPU, scalar_result=True))

# FP compares -> mask destination
for _base, _forms in (("vmfeq", "vf"), ("vmfne", "vf"), ("vmflt", "vf"),
                      ("vmfle", "vf"), ("vmfgt", "f"), ("vmfge", "f")):
    if "v" in _forms:
        _add(InstrSpec(f"{_base}_vv", "vvv", ExecUnit.VMFPU, flops=1.0,
                       mask_producer=True))
    if "f" in _forms:
        _add(InstrSpec(f"{_base}_vf", "vvf", ExecUnit.VMFPU, flops=1.0,
                       mask_producer=True))

# conversions
_add(InstrSpec("vfcvt_x_f_v", "v_unary", ExecUnit.VMFPU, flops=1.0))
_add(InstrSpec("vfcvt_f_x_v", "v_unary", ExecUnit.VMFPU, flops=1.0))
_add(InstrSpec("vfcvt_rtz_x_f_v", "v_unary", ExecUnit.VMFPU, flops=1.0))
_add(InstrSpec("vfwcvt_f_f_v", "v_unary", ExecUnit.VMFPU, flops=1.0, widens=True))
_add(InstrSpec("vfncvt_f_f_w", "v_unary", ExecUnit.VMFPU, flops=1.0, narrows=True))

# widening FP
_add(InstrSpec("vfwadd_vv", "vvv", ExecUnit.VMFPU, flops=1.0, widens=True))
_add(InstrSpec("vfwmul_vv", "vvv", ExecUnit.VMFPU, flops=1.0, widens=True))
_add(InstrSpec("vfwmacc_vv", "fma_vv", ExecUnit.VMFPU, flops=2.0, widens=True))
_add(InstrSpec("vfwmacc_vf", "fma_vf", ExecUnit.VMFPU, flops=2.0, widens=True))

# ----------------------------------------------------------------------
# Reductions (VMFPU/VALU + SLDU tree; timing handled by the engine)
# ----------------------------------------------------------------------
for _m in ("vredsum", "vredmax", "vredmin", "vredand", "vredor", "vredxor"):
    _add(InstrSpec(f"{_m}_vs", "red_vs", ExecUnit.VALU, is_reduction=True))
for _m, _fl in (("vfredusum", 1.0), ("vfredosum", 1.0),
                ("vfredmax", 1.0), ("vfredmin", 1.0)):
    _add(InstrSpec(f"{_m}_vs", "red_vs", ExecUnit.VMFPU, flops=_fl,
                   is_reduction=True))

# ----------------------------------------------------------------------
# Slides and permutations (SLDU / RINGI)
# ----------------------------------------------------------------------
_add(InstrSpec("vslideup_vx", "slide_vx", ExecUnit.SLDU, is_slide=True))
_add(InstrSpec("vslideup_vi", "slide_vi", ExecUnit.SLDU, is_slide=True))
_add(InstrSpec("vslidedown_vx", "slide_vx", ExecUnit.SLDU, is_slide=True))
_add(InstrSpec("vslidedown_vi", "slide_vi", ExecUnit.SLDU, is_slide=True))
_add(InstrSpec("vslide1up_vx", "slide1_vx", ExecUnit.SLDU, is_slide=True, slide1=True))
_add(InstrSpec("vslide1down_vx", "slide1_vx", ExecUnit.SLDU, is_slide=True, slide1=True))
_add(InstrSpec("vfslide1up_vf", "slide1_vf", ExecUnit.SLDU, is_slide=True, slide1=True))
_add(InstrSpec("vfslide1down_vf", "slide1_vf", ExecUnit.SLDU, is_slide=True, slide1=True))
_add(InstrSpec("vrgather_vv", "vvv", ExecUnit.SLDU, is_slide=True, throughput=0.25))
_add(InstrSpec("vcompress_vm", "vvv", ExecUnit.SLDU, is_slide=True, throughput=0.25))

# ----------------------------------------------------------------------
# Mask instructions (MASKU)
# ----------------------------------------------------------------------
for _m in ("vmand", "vmor", "vmxor", "vmnand", "vmnor", "vmxnor",
           "vmandn", "vmorn"):
    _add(InstrSpec(f"{_m}_mm", "mm", ExecUnit.MASKU, mask_logical=True,
                   mask_producer=True))
_add(InstrSpec("vcpop_m", "xm", ExecUnit.MASKU, scalar_result=True))
_add(InstrSpec("vfirst_m", "xm", ExecUnit.MASKU, scalar_result=True))
_add(InstrSpec("vmsbf_m", "m_unary", ExecUnit.MASKU, mask_producer=True))
_add(InstrSpec("vmsif_m", "m_unary", ExecUnit.MASKU, mask_producer=True))
_add(InstrSpec("vmsof_m", "m_unary", ExecUnit.MASKU, mask_producer=True))
_add(InstrSpec("vid_v", "vid", ExecUnit.MASKU))
_add(InstrSpec("viota_m", "m_unary", ExecUnit.MASKU))


#: Operand roles for every format, used by the assembler for validation and
#: by tools that want to introspect instructions generically.
FORMAT_ROLES: dict[str, tuple[str, ...]] = {
    "none": (),
    "label": ("name",),
    "rd_imm": ("rd", "imm"),
    "rd_rs": ("rd", "rs1"),
    "rd_rs_rs": ("rd", "rs1", "rs2"),
    "rd_rs_imm": ("rd", "rs1", "imm"),
    "load": ("rd", "rs1", "imm"),
    "store": ("rs2", "rs1", "imm"),
    "fload": ("frd", "rs1", "imm"),
    "fstore": ("frs2", "rs1", "imm"),
    "frd_frs": ("frd", "frs1"),
    "frd_frs_frs": ("frd", "frs1", "frs2"),
    "frd_frs_frs_frs": ("frd", "frs1", "frs2", "frs3"),
    "rd_frs_frs": ("rd", "frs1", "frs2"),
    "rd_frs": ("rd", "frs1"),
    "frd_rs": ("frd", "rs1"),
    "branch": ("rs1", "rs2", "target"),
    "branchz": ("rs1", "target"),
    "jump": ("target",),
    "vsetvli": ("rd", "rs1", "sew", "lmul"),
    "vl_unit": ("vd", "rs1"),
    "vs_unit": ("vs3", "rs1"),
    "vl_strided": ("vd", "rs1", "rs2"),
    "vs_strided": ("vs3", "rs1", "rs2"),
    "vl_indexed": ("vd", "rs1", "vs2"),
    "vs_indexed": ("vs3", "rs1", "vs2"),
    "vvv": ("vd", "vs2", "vs1"),
    "vvx": ("vd", "vs2", "rs1"),
    "vvi": ("vd", "vs2", "imm"),
    "vvf": ("vd", "vs2", "frs1"),
    "v_unary": ("vd", "vs2"),
    "vx_splat": ("vd", "rs1"),
    "vi_splat": ("vd", "imm"),
    "vf_splat": ("vd", "frs1"),
    "sx": ("vd", "rs1"),
    "xs": ("rd", "vs2"),
    "sf": ("vd", "frs1"),
    "fv": ("frd", "vs2"),
    "fma_vv": ("vd", "vs1", "vs2"),
    "fma_vx": ("vd", "rs1", "vs2"),
    "fma_vf": ("vd", "frs1", "vs2"),
    "red_vs": ("vd", "vs2", "vs1"),
    "mm": ("vd", "vs2", "vs1"),
    "xm": ("rd", "vs2"),
    "m_unary": ("vd", "vs2"),
    "vid": ("vd",),
    "slide_vx": ("vd", "vs2", "rs1"),
    "slide_vi": ("vd", "vs2", "imm"),
    "slide1_vx": ("vd", "vs2", "rs1"),
    "slide1_vf": ("vd", "vs2", "frs1"),
}
